// Determinism contract of the parallel engine (DESIGN.md): EcoEngine::run
// must produce bit-identical patches — cost, size, base selection — for any
// worker count, and the batched parallel FRAIG sweep must refine to the
// same equivalence classes as the sequential incremental-solver path.

#include <gtest/gtest.h>

#include <vector>

#include "base/thread_pool.h"
#include "benchgen/benchgen.h"
#include "eco/engine.h"
#include "eco/verify.h"
#include "fraig/fraig.h"

namespace eco {
namespace {

/// A small slice of the contest suite plus a handcrafted multi-cluster
/// instance; kept small so the thread sweep stays tier-1 fast.
std::vector<EcoInstance> exampleInstances() {
  std::vector<EcoInstance> instances;
  const std::vector<benchgen::UnitSpec> suite = benchgen::contestSuite();
  for (std::size_t i = 0; i < suite.size() && i < 6; ++i) {
    instances.push_back(benchgen::generateUnit(suite[i]));
  }

  // Two independent output cones -> two clusters, exercising the parallel
  // per-cluster dispatch with more than one task.
  EcoInstance inst;
  inst.name = "two_clusters";
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    const Lit d = g.addPi("d");
    g.addPo(g.mkXor(a, b), "o1");
    g.addPo(g.mkOr(c, d), "o2");
  }
  {
    Aig& f = inst.faulty;
    const Lit a = f.addPi("a");
    const Lit b = f.addPi("b");
    const Lit c = f.addPi("c");
    const Lit d = f.addPi("d");
    const Lit t0 = f.addPi("t0");
    const Lit t1 = f.addPi("t1");
    inst.num_x = 4;
    f.setSignalName(f.addAnd(a, b), "nab");
    f.setSignalName(f.addAnd(c, d), "ncd");
    f.addPo(t0, "o1");
    f.addPo(t1, "o2");
  }
  inst.weights = {{"a", 2}, {"b", 2}, {"c", 2}, {"d", 2}, {"nab", 1}, {"ncd", 1}};
  instances.push_back(std::move(inst));
  return instances;
}

TEST(ParallelDeterminism, IdenticalPatchAcrossThreadCounts) {
  for (const EcoInstance& inst : exampleInstances()) {
    EcoOptions opt;
    opt.num_threads = 1;
    const PatchResult ref = EcoEngine(opt).run(inst);
    ASSERT_TRUE(ref.success) << inst.name << ": " << ref.message;
    EXPECT_EQ(ref.num_threads_used, 1u);

    for (const std::uint32_t threads : {2u, 4u}) {
      opt.num_threads = threads;
      const PatchResult r = EcoEngine(opt).run(inst);
      ASSERT_TRUE(r.success) << inst.name << " with " << threads << " threads";
      EXPECT_EQ(r.num_threads_used, threads);
      EXPECT_DOUBLE_EQ(r.cost, ref.cost) << inst.name << " @" << threads;
      EXPECT_EQ(r.size, ref.size) << inst.name << " @" << threads;
      EXPECT_DOUBLE_EQ(r.initial_cost, ref.initial_cost)
          << inst.name << " @" << threads;
      EXPECT_EQ(r.initial_size, ref.initial_size)
          << inst.name << " @" << threads;
      ASSERT_EQ(r.base.size(), ref.base.size()) << inst.name << " @" << threads;
      for (std::size_t i = 0; i < r.base.size(); ++i) {
        EXPECT_EQ(r.base[i].name, ref.base[i].name)
            << inst.name << " base " << i << " @" << threads;
      }
      EXPECT_EQ(r.patch.numAnds(), ref.patch.numAnds());
      EXPECT_EQ(r.num_clusters, ref.num_clusters);
      EXPECT_EQ(r.cut_size, ref.cut_size);
    }
  }
}

TEST(ParallelDeterminism, ParallelRunsProduceVerifiedPatches) {
  for (const EcoInstance& inst : exampleInstances()) {
    if (inst.num_x > 12) continue;  // keep the exhaustive check cheap
    EcoOptions opt;
    opt.num_threads = 4;
    const PatchResult r = EcoEngine(opt).run(inst);
    ASSERT_TRUE(r.success) << inst.name;
    for (std::uint32_t m = 0; m < (1u << inst.num_x); ++m) {
      std::vector<bool> x(inst.num_x);
      for (std::uint32_t i = 0; i < inst.num_x; ++i) x[i] = (m >> i) & 1;
      ASSERT_EQ(evaluatePatched(inst, r, x), inst.golden.evaluate(x))
          << inst.name << " minterm " << m;
    }
  }
}

TEST(ParallelDeterminism, FraigClassesMatchSequentialSweep) {
  for (const EcoInstance& inst : exampleInstances()) {
    // Sweep the faulty+golden region exactly as the engine's FRAIG stage
    // does, with and without worker pools.
    Aig region = inst.faulty;
    std::vector<Lit> roots;
    for (std::uint32_t i = 0; i < region.numPos(); ++i) {
      roots.push_back(region.poDriver(i));
    }

    fraig::Options seq_opt;
    fraig::Stats seq_stats;
    const fraig::EquivClasses seq =
        fraig::computeEquivClasses(region, roots, seq_opt, &seq_stats);
    EXPECT_GE(seq_stats.rounds, 1u);

    for (const unsigned workers : {2u, 4u}) {
      ThreadPool pool(workers);
      fraig::Options par_opt;
      par_opt.pool = &pool;
      fraig::Stats par_stats;
      const fraig::EquivClasses par =
          fraig::computeEquivClasses(region, roots, par_opt, &par_stats);
      ASSERT_EQ(par.numVars(), seq.numVars());
      for (std::uint32_t v = 0; v < seq.numVars(); ++v) {
        EXPECT_EQ(par.normalize(Lit::fromVar(v, false)),
                  seq.normalize(Lit::fromVar(v, false)))
            << inst.name << " var " << v << " @" << workers;
      }
      // Regions without any simulation-equal pair issue no queries at all;
      // otherwise the batched sweep must have done SAT work too.
      if (seq_stats.sat_queries > 0) EXPECT_GE(par_stats.sat_queries, 1u);
    }
  }
}

}  // namespace
}  // namespace eco
