// End-to-end tests for the ECO engine: handcrafted single- and multi-target
// instances checked exhaustively, unrectifiable instances reported as such,
// and option-matrix sweeps on generated units.

#include <gtest/gtest.h>

#include <vector>

#include "benchgen/benchgen.h"
#include "eco/baseline.h"
#include "eco/engine.h"
#include "eco/verify.h"

namespace eco {
namespace {

/// Exhaustively checks that the patched faulty circuit matches golden.
void expectPatchedEquivalent(const EcoInstance& inst, const PatchResult& r) {
  ASSERT_TRUE(r.success) << r.message;
  ASSERT_LE(inst.num_x, 16u) << "instance too wide for exhaustive checking";
  for (std::uint32_t m = 0; m < (1u << inst.num_x); ++m) {
    std::vector<bool> x(inst.num_x);
    for (std::uint32_t i = 0; i < inst.num_x; ++i) x[i] = (m >> i) & 1;
    const auto patched = evaluatePatched(inst, r, x);
    const auto golden = inst.golden.evaluate(x);
    ASSERT_EQ(patched, golden) << "minterm " << m;
  }
}

/// Golden o = a & b; faulty o = t (the AND was ripped out).
EcoInstance tinySingleTarget() {
  EcoInstance inst;
  inst.name = "tiny1";
  const Lit ga = inst.golden.addPi("a");
  const Lit gb = inst.golden.addPi("b");
  inst.golden.addPo(inst.golden.addAnd(ga, gb), "o");

  const Lit fa = inst.faulty.addPi("a");
  const Lit fb = inst.faulty.addPi("b");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 2;
  // Keep a and b visible as named internal candidates via a spare buffer net.
  inst.faulty.setSignalName(fa, "na");
  inst.faulty.setSignalName(fb, "nb");
  inst.faulty.addPo(t, "o");
  inst.weights = {{"a", 3}, {"b", 3}, {"na", 1}, {"nb", 1}};
  return inst;
}

TEST(EcoEngine, SingleTargetTiny) {
  const EcoInstance inst = tinySingleTarget();
  const PatchResult r = EcoEngine().run(inst);
  expectPatchedEquivalent(inst, r);
  EXPECT_GE(r.size, 1u);  // must contain at least the AND gate
  EXPECT_LE(r.base.size(), 2u);
}

TEST(EcoEngine, CostMetricsConsistent) {
  const EcoInstance inst = tinySingleTarget();
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success);
  double sum = 0;
  for (const BaseRef& b : r.base) sum += b.weight;
  EXPECT_DOUBLE_EQ(sum, r.cost);
  EXPECT_EQ(r.size, r.patch.numAnds());
  EXPECT_EQ(r.patch.numPos(), inst.numTargets());
  EXPECT_EQ(r.patch.numPis(), r.base.size());
}

/// Two coupled targets on one output cone: o = (a & b) | (a ^ c) in golden;
/// the faulty circuit lost both inner functions.
EcoInstance coupledTwoTargets() {
  EcoInstance inst;
  inst.name = "coupled2";
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    g.addPo(g.mkOr(g.addAnd(a, b), g.mkXor(a, c)), "o");
  }
  {
    Aig& f = inst.faulty;
    const Lit a = f.addPi("a");
    const Lit b = f.addPi("b");
    const Lit c = f.addPi("c");
    (void)b;
    (void)c;
    const Lit t0 = f.addPi("t0");
    const Lit t1 = f.addPi("t1");
    inst.num_x = 3;
    f.setSignalName(a, "na");
    f.addPo(f.mkOr(t0, t1), "o");
  }
  inst.default_weight = 2.0;
  return inst;
}

TEST(EcoEngine, MultiTargetCoupled) {
  const EcoInstance inst = coupledTwoTargets();
  const PatchResult r = EcoEngine().run(inst);
  expectPatchedEquivalent(inst, r);
}

TEST(EcoEngine, MultiTargetCoupledWithInterpolationFirst) {
  EcoOptions opt;
  opt.try_interpolation_first = true;
  const EcoInstance inst = coupledTwoTargets();
  const PatchResult r = EcoEngine(opt).run(inst);
  expectPatchedEquivalent(inst, r);
}

TEST(EcoEngine, ReportsUnrectifiable) {
  // Golden o = b; faulty o = t & a: with a=0 the output is stuck at 0, but
  // golden needs b. No patch function of any support can fix this.
  EcoInstance inst;
  inst.name = "unfixable";
  {
    const Lit a = inst.golden.addPi("a");
    (void)a;
    const Lit b = inst.golden.addPi("b");
    inst.golden.addPo(b, "o");
  }
  {
    const Lit a = inst.faulty.addPi("a");
    const Lit b = inst.faulty.addPi("b");
    (void)b;
    const Lit t = inst.faulty.addPi("t0");
    inst.num_x = 2;
    inst.faulty.addPo(inst.faulty.addAnd(t, a), "o");
  }
  const PatchResult r = EcoEngine().run(inst);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.message.find("unrectifiable"), std::string::npos) << r.message;
}

TEST(EcoEngine, ReportsUntouchedOutputMismatch) {
  // Second output differs but has no target in its cone.
  EcoInstance inst;
  inst.name = "untouched";
  {
    const Lit a = inst.golden.addPi("a");
    const Lit b = inst.golden.addPi("b");
    inst.golden.addPo(inst.golden.addAnd(a, b), "o0");
    inst.golden.addPo(inst.golden.mkXor(a, b), "o1");
  }
  {
    const Lit a = inst.faulty.addPi("a");
    const Lit b = inst.faulty.addPi("b");
    const Lit t = inst.faulty.addPi("t0");
    inst.num_x = 2;
    inst.faulty.addPo(t, "o0");
    inst.faulty.addPo(inst.faulty.mkOr(a, b), "o1");  // wrong, no target
  }
  const PatchResult r = EcoEngine().run(inst);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.message.find("unrectifiable"), std::string::npos);
}

TEST(EcoEngine, NoTargetsRejected) {
  EcoInstance inst;
  inst.name = "none";
  const Lit a = inst.golden.addPi("a");
  inst.golden.addPo(a, "o");
  const Lit fa = inst.faulty.addPi("a");
  inst.faulty.addPo(fa, "o");
  inst.num_x = 1;
  const PatchResult r = EcoEngine().run(inst);
  EXPECT_FALSE(r.success);
}

TEST(EcoEngine, CostOptNeverWorsensCost) {
  using benchgen::Family;
  benchgen::UnitSpec spec{.name = "opt",
                          .family = Family::Alu,
                          .size_param = 3,
                          .num_targets = 2,
                          .seed = 77,
                          .pi_weight = 20};
  const EcoInstance inst = benchgen::generateUnit(spec);
  EcoOptions opt;
  const PatchResult r = EcoEngine(opt).run(inst);
  ASSERT_TRUE(r.success) << r.message;
  EXPECT_LE(r.cost, r.initial_cost);
}

TEST(EcoEngine, LocalizationBeatsPiOnlyOnExpensivePiInstance) {
  using benchgen::Family;
  benchgen::UnitSpec spec{.name = "loc",
                          .family = Family::Adder,
                          .size_param = 6,
                          .num_targets = 1,
                          .seed = 5,
                          .target_depth_frac = 0.5,
                          .pi_weight = 50,
                          .internal_weight = 1};
  const EcoInstance inst = benchgen::generateUnit(spec);
  const PatchResult ours = EcoEngine().run(inst);
  const PatchResult pi_only = runWinnerProxy(inst);
  ASSERT_TRUE(ours.success) << ours.message;
  ASSERT_TRUE(pi_only.success) << pi_only.message;
  EXPECT_LE(ours.cost, pi_only.cost);
}

// ---------------------------------------------------------------------------
// Option-matrix sweep over generated units with exhaustive equivalence.

struct SweepParam {
  benchgen::Family family;
  std::uint32_t size_param;
  std::uint32_t num_targets;
  std::uint64_t seed;
  bool localization;
  bool cost_opt;
  bool itp_first;
};

class EngineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineSweep, PatchVerifiesExhaustively) {
  const SweepParam p = GetParam();
  benchgen::UnitSpec spec{.name = "sweep",
                          .family = p.family,
                          .size_param = p.size_param,
                          .num_targets = p.num_targets,
                          .seed = p.seed};
  const EcoInstance inst = benchgen::generateUnit(spec);
  EcoOptions opt;
  opt.use_localization = p.localization;
  opt.use_cost_opt = p.cost_opt;
  opt.try_interpolation_first = p.itp_first;
  const PatchResult r = EcoEngine(opt).run(inst);
  expectPatchedEquivalent(inst, r);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineSweep,
    ::testing::Values(
        SweepParam{benchgen::Family::Adder, 4, 1, 1, true, true, false},
        SweepParam{benchgen::Family::Adder, 4, 1, 1, false, false, false},
        SweepParam{benchgen::Family::Adder, 4, 2, 2, true, true, true},
        SweepParam{benchgen::Family::Comparator, 4, 2, 3, true, true, false},
        SweepParam{benchgen::Family::Comparator, 4, 1, 4, false, true, false},
        SweepParam{benchgen::Family::MuxTree, 2, 2, 5, true, true, false},
        SweepParam{benchgen::Family::MuxTree, 2, 1, 6, true, false, true},
        SweepParam{benchgen::Family::Alu, 3, 2, 7, true, true, false},
        SweepParam{benchgen::Family::Alu, 3, 3, 8, true, true, true},
        SweepParam{benchgen::Family::Parity, 8, 2, 9, true, true, false},
        SweepParam{benchgen::Family::Random, 120, 2, 10, true, true, false},
        SweepParam{benchgen::Family::Random, 120, 3, 11, false, true, true},
        SweepParam{benchgen::Family::Multiplier, 3, 2, 12, true, true, false},
        SweepParam{benchgen::Family::Multiplier, 3, 1, 13, true, true, true},
        SweepParam{benchgen::Family::PriorityEnc, 8, 2, 14, true, true, false},
        SweepParam{benchgen::Family::PriorityEnc, 8, 3, 15, false, true, false}));

// Randomized multi-seed robustness: many generated instances, all engines.
class EngineSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineSeeds, GeneratedUnitsAlwaysPatchable) {
  benchgen::UnitSpec spec{.name = "seed",
                          .family = benchgen::Family::Random,
                          .size_param = 150,
                          .num_targets = 3,
                          .seed = GetParam(),
                          .target_depth_frac = 0.3};
  const EcoInstance inst = benchgen::generateUnit(spec);
  const PatchResult r = EcoEngine().run(inst);
  expectPatchedEquivalent(inst, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeeds,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace eco
