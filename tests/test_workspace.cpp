// Tests for workspace construction and provenance (eco/relations), the
// glue every downstream stage relies on.

#include <gtest/gtest.h>

#include "benchgen/benchgen.h"
#include "eco/relations.h"

namespace eco {
namespace {

EcoInstance smallInstance() {
  benchgen::UnitSpec spec{.name = "ws",
                          .family = benchgen::Family::Adder,
                          .size_param = 3,
                          .num_targets = 2,
                          .seed = 5};
  return benchgen::generateUnit(spec);
}

TEST(Workspace, SharesXInputsBetweenCircuits) {
  const EcoInstance inst = smallInstance();
  const Workspace ws = buildWorkspace(inst);
  ASSERT_EQ(ws.x_pis.size(), inst.num_x);
  ASSERT_EQ(ws.t_pis.size(), inst.numTargets());
  ASSERT_EQ(ws.f_roots.size(), inst.faulty.numPos());
  ASSERT_EQ(ws.g_roots.size(), inst.golden.numPos());
  // Workspace PIs: X first, then targets.
  EXPECT_EQ(ws.w.numPis(), inst.num_x + inst.numTargets());
}

TEST(Workspace, RootsComputeSameFunctions) {
  const EcoInstance inst = smallInstance();
  Workspace ws = buildWorkspace(inst);
  Aig& w = ws.w;
  for (const Lit r : ws.f_roots) w.addPo(r, "");
  for (const Lit r : ws.g_roots) w.addPo(r, "");
  const std::uint32_t total_pis = w.numPis();
  ASSERT_LE(total_pis, 14u);
  for (std::uint32_t m = 0; m < (1u << total_pis); m += 7) {  // sampled
    std::vector<bool> in(total_pis);
    for (std::uint32_t i = 0; i < total_pis; ++i) in[i] = (m >> i) & 1;
    const auto out = w.evaluate(in);
    // Faulty takes (X, T); golden takes X only.
    std::vector<bool> fin(in.begin(), in.end());
    const auto f_out = inst.faulty.evaluate(fin);
    std::vector<bool> gin(in.begin(), in.begin() + inst.num_x);
    const auto g_out = inst.golden.evaluate(gin);
    const std::size_t n_po = inst.faulty.numPos();
    for (std::size_t j = 0; j < n_po; ++j) {
      ASSERT_EQ(out[out.size() - 2 * n_po + j], f_out[j]) << "f_root " << j;
      ASSERT_EQ(out[out.size() - n_po + j], g_out[j]) << "g_root " << j;
    }
  }
}

TEST(Workspace, ProvenanceCoversNamedSignals) {
  const EcoInstance inst = smallInstance();
  const Workspace ws = buildWorkspace(inst);
  // Every named faulty signal must have been carried into the workspace.
  for (const auto& [name, lit] : inst.faulty.namedSignals()) {
    EXPECT_TRUE(ws.faulty_to_w.count(lit.var()) != 0) << name;
  }
  // Provenance tags are set for mapped nodes.
  for (const auto& [fvar, wlit] : ws.faulty_to_w) {
    (void)fvar;
    EXPECT_TRUE(ws.from_faulty[wlit.var()]);
  }
}

TEST(Workspace, CofactorRootsFixesTarget) {
  const EcoInstance inst = smallInstance();
  Workspace ws = buildWorkspace(inst);
  const std::vector<Lit> f0 =
      cofactorRoots(ws.w, ws.f_roots, ws.t_pis[0], false);
  const std::vector<Lit> f1 =
      cofactorRoots(ws.w, ws.f_roots, ws.t_pis[0], true);
  // Cofactors must not depend on t_0 anymore.
  const auto depends = [&](std::span<const Lit> roots) {
    const auto support = supportPis(ws.w, roots);
    for (const std::uint32_t pi : support) {
      if (pi == ws.t_pis[0].var()) return true;
    }
    return false;
  };
  EXPECT_FALSE(depends(f0));
  EXPECT_FALSE(depends(f1));
  EXPECT_TRUE(depends(ws.f_roots));  // original still does
}

TEST(Relations, OnOffSetsAreDisjointOnCareSpace) {
  // on & off nonempty simultaneously would mean an input needing both
  // values — possible across outputs (Sec. 4.3) but not for a single
  // output with a fresh target. Check the single-output disjointness.
  EcoInstance inst;
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    g.addPo(g.mkOr(g.addAnd(a, b), c), "o");
  }
  {
    Aig& f = inst.faulty;
    f.addPi("a");
    f.addPi("b");
    const Lit c = f.addPi("c");
    const Lit t = f.addPi("t0");
    inst.num_x = 3;
    f.addPo(f.mkOr(t, c), "o");
  }
  Workspace ws = buildWorkspace(inst);
  const OnOffSets oo = buildOnOff(ws.w, ws.f_roots, ws.g_roots, ws.t_pis[0]);
  const Lit both = ws.w.addAnd(oo.on, oo.off);
  ws.w.addPo(both, "both");
  for (std::uint32_t m = 0; m < 16; ++m) {
    std::vector<bool> in(4);
    for (int i = 0; i < 4; ++i) in[i] = (m >> i) & 1;
    EXPECT_FALSE(ws.w.evaluate(in).back()) << "m=" << m;
  }
}

}  // namespace
}  // namespace eco
