// Unit and property tests for the CDCL SAT solver.
//
// The property sweep cross-checks the solver against brute-force
// enumeration on random small CNFs, including incremental use with
// assumptions and unsat-core extraction.

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "sat/solver.h"

namespace eco::sat {
namespace {

SLit pos(Var v) { return SLit::make(v, false); }
SLit neg(Var v) { return SLit::make(v, true); }

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.newVar();
  s.addClause({pos(a)});
  EXPECT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.modelValue(a), LBool::True);
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.newVar();
  s.addClause({pos(a)});
  s.addClause({neg(a)});
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Solver s;
  s.addClause(std::span<const SLit>{});
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Solver, UnitPropagationChain) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar(), c = s.newVar();
  s.addClause({pos(a)});
  s.addClause({neg(a), pos(b)});
  s.addClause({neg(b), pos(c)});
  EXPECT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.modelValue(c), LBool::True);
}

TEST(Solver, XorChainRequiresSearch) {
  // x1 xor x2 xor x3 = 1 encoded in CNF; satisfiable.
  Solver s;
  const Var x1 = s.newVar(), x2 = s.newVar(), x3 = s.newVar();
  s.addClause({pos(x1), pos(x2), pos(x3)});
  s.addClause({pos(x1), neg(x2), neg(x3)});
  s.addClause({neg(x1), pos(x2), neg(x3)});
  s.addClause({neg(x1), neg(x2), pos(x3)});
  ASSERT_EQ(s.solve(), Status::Sat);
  const int ones = (s.modelValue(x1) == LBool::True) +
                   (s.modelValue(x2) == LBool::True) +
                   (s.modelValue(x3) == LBool::True);
  EXPECT_EQ(ones % 2, 1);
}

TEST(Solver, PigeonholeUnsat) {
  // 4 pigeons, 3 holes.
  const int P = 4, H = 3;
  Solver s;
  std::vector<std::vector<Var>> v(P, std::vector<Var>(H));
  for (int p = 0; p < P; ++p) {
    for (int h = 0; h < H; ++h) v[p][h] = s.newVar();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<SLit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(v[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({neg(v[p1][h]), neg(v[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar();
  s.addClause({neg(a), pos(b)});
  s.addClause({neg(b), neg(a)});  // a -> b and a -> !b: a must be false
  EXPECT_EQ(s.solve({pos(a)}), Status::Unsat);
  EXPECT_EQ(s.solve({neg(a)}), Status::Sat);
  // Solver stays usable incrementally.
  EXPECT_EQ(s.solve(), Status::Sat);
  EXPECT_EQ(s.modelValue(a), LBool::False);
}

TEST(Solver, FailedAssumptionCoreIsSubset) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar(), c = s.newVar(), d = s.newVar();
  s.addClause({neg(a), neg(b)});  // a and b conflict
  (void)c;
  (void)d;
  ASSERT_EQ(s.solve({pos(c), pos(a), pos(d), pos(b)}), Status::Unsat);
  const auto& core = s.failedAssumptions();
  // The core must mention a and b but need not mention c or d.
  bool has_a = false, has_b = false, has_cd = false;
  for (const SLit l : core) {
    if (l.var() == a) has_a = true;
    if (l.var() == b) has_b = true;
    if (l.var() == c || l.var() == d) has_cd = true;
  }
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
  EXPECT_FALSE(has_cd);
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  // A hard pigeonhole with a tiny budget must return Undef, not hang.
  const int P = 8, H = 7;
  Solver s;
  std::vector<std::vector<Var>> v(P, std::vector<Var>(H));
  for (auto& row : v) {
    for (auto& var : row) var = s.newVar();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<SLit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(v[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({neg(v[p1][h]), neg(v[p2][h])});
      }
    }
  }
  s.setConflictBudget(10);
  EXPECT_EQ(s.solve(), Status::Undef);
}

// ---------------------------------------------------------------------------
// Property sweep: random 3-CNF vs brute force.

struct RandomCnfParam {
  std::uint32_t vars;
  std::uint32_t clauses;
  std::uint64_t seed;
};

class SolverRandomCnf : public ::testing::TestWithParam<RandomCnfParam> {};

std::vector<std::vector<SLit>> randomCnf(const RandomCnfParam& p, Rng& rng) {
  std::vector<std::vector<SLit>> cnf;
  for (std::uint32_t i = 0; i < p.clauses; ++i) {
    std::vector<SLit> clause;
    const std::uint32_t len = 1 + rng.below(3);
    for (std::uint32_t j = 0; j < len; ++j) {
      clause.push_back(
          SLit::make(static_cast<Var>(rng.below(p.vars)), rng.chance(1, 2)));
    }
    cnf.push_back(clause);
  }
  return cnf;
}

bool bruteForceSat(std::uint32_t vars, const std::vector<std::vector<SLit>>& cnf) {
  for (std::uint32_t m = 0; m < (1u << vars); ++m) {
    bool all = true;
    for (const auto& clause : cnf) {
      bool any = false;
      for (const SLit l : clause) {
        const bool v = (m >> l.var()) & 1;
        if (v != l.sign()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST_P(SolverRandomCnf, AgreesWithBruteForce) {
  const RandomCnfParam p = GetParam();
  Rng rng(p.seed);
  for (int round = 0; round < 30; ++round) {
    const auto cnf = randomCnf(p, rng);
    Solver s;
    for (std::uint32_t v = 0; v < p.vars; ++v) s.newVar();
    for (const auto& clause : cnf) s.addClause(clause);
    const Status st = s.solve();
    const bool expected = bruteForceSat(p.vars, cnf);
    ASSERT_EQ(st, expected ? Status::Sat : Status::Unsat)
        << "vars=" << p.vars << " clauses=" << p.clauses << " round=" << round;
    if (st == Status::Sat) {
      // The model must actually satisfy the formula.
      for (const auto& clause : cnf) {
        bool any = false;
        for (const SLit l : clause) {
          if (s.modelValue(l) == LBool::True) {
            any = true;
            break;
          }
        }
        ASSERT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverRandomCnf,
    ::testing::Values(RandomCnfParam{4, 10, 11}, RandomCnfParam{6, 18, 22},
                      RandomCnfParam{8, 30, 33}, RandomCnfParam{10, 42, 44},
                      RandomCnfParam{12, 52, 55}, RandomCnfParam{14, 60, 66},
                      RandomCnfParam{9, 60, 77}, RandomCnfParam{7, 12, 88}));

// Incremental property: solve twice with growing clauses, answers stay
// consistent with brute force each time.
TEST(Solver, IncrementalAgreesWithBruteForce) {
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    const std::uint32_t vars = 6 + rng.below(4);
    Solver s;
    for (std::uint32_t v = 0; v < vars; ++v) s.newVar();
    std::vector<std::vector<SLit>> cnf;
    for (int step = 0; step < 4; ++step) {
      for (int add = 0; add < 6; ++add) {
        std::vector<SLit> clause;
        const std::uint32_t len = 1 + rng.below(3);
        for (std::uint32_t j = 0; j < len; ++j) {
          clause.push_back(
              SLit::make(static_cast<Var>(rng.below(vars)), rng.chance(1, 2)));
        }
        cnf.push_back(clause);
        s.addClause(clause);
      }
      const bool expected = bruteForceSat(vars, cnf);
      ASSERT_EQ(s.solve(), expected ? Status::Sat : Status::Unsat);
      if (!expected) break;  // once unsat, always unsat
    }
  }
}

}  // namespace
}  // namespace eco::sat
