// Resolution-proof validation: replay every logged chain by literal-set
// resolution and check that it derives exactly the stored learned clause
// (and the empty clause for the final refutation). This pins down the proof
// logger independently of interpolation.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/rng.h"
#include "sat/solver.h"

namespace eco::sat {
namespace {

using LitSet = std::set<std::uint32_t>;  // literal indices

LitSet clauseSet(const Solver& s, ClauseId id) {
  LitSet out;
  for (const SLit l : s.clauseLits(id)) out.insert(l.index());
  return out;
}

/// Resolves `cur` with clause `other` on `pivot`; checks the pivot occurs
/// with opposite polarities. Returns false on malformed steps.
bool resolveStep(LitSet& cur, const LitSet& other, Var pivot) {
  const std::uint32_t pos = SLit::make(pivot, false).index();
  const std::uint32_t neg = SLit::make(pivot, true).index();
  const bool cur_pos = cur.count(pos) != 0;
  const bool cur_neg = cur.count(neg) != 0;
  const bool oth_pos = other.count(pos) != 0;
  const bool oth_neg = other.count(neg) != 0;
  if (!((cur_pos && oth_neg) || (cur_neg && oth_pos))) return false;
  cur.erase(pos);
  cur.erase(neg);
  for (const std::uint32_t l : other) {
    if (l != pos && l != neg) cur.insert(l);
  }
  // A valid resolvent must not be tautological here (trivial resolution).
  for (const std::uint32_t l : cur) {
    if (cur.count(l ^ 1) != 0) return false;
  }
  return true;
}

/// Validates the entire proof of an UNSAT solver run.
void validateProof(const Solver& s) {
  const Proof& proof = s.proof();
  ASSERT_TRUE(proof.has_empty_clause);
  const auto replay = [&](const ProofChain& chain, const LitSet* expect) {
    LitSet cur = clauseSet(s, chain.start);
    for (const auto& step : chain.steps) {
      ASSERT_TRUE(resolveStep(cur, clauseSet(s, step.clause), step.pivot))
          << "bad resolution step on pivot " << step.pivot;
    }
    if (expect) {
      ASSERT_EQ(cur, *expect) << "chain does not derive the stored clause";
    } else {
      ASSERT_TRUE(cur.empty()) << "final chain does not derive the empty clause";
    }
  };
  for (ClauseId id = 0; id < proof.chains.size(); ++id) {
    if (proof.chains[id].start == kNoClause) continue;  // original clause
    const LitSet expect = clauseSet(s, id);
    replay(proof.chains[id], &expect);
  }
  replay(proof.empty_clause, nullptr);
}

TEST(Proof, PigeonholeProofValidates) {
  const int P = 5, H = 4;
  Solver s(/*log_proof=*/true);
  std::vector<std::vector<Var>> v(P, std::vector<Var>(H));
  for (auto& row : v) {
    for (auto& var : row) var = s.newVar();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<SLit> c;
    for (int h = 0; h < H; ++h) c.push_back(SLit::make(v[p][h], false));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({SLit::make(v[p1][h], true), SLit::make(v[p2][h], true)});
      }
    }
  }
  ASSERT_EQ(s.solve(), Status::Unsat);
  validateProof(s);
}

TEST(Proof, RootLevelConflictValidates) {
  Solver s(/*log_proof=*/true);
  const Var a = s.newVar(), b = s.newVar();
  s.addClause({SLit::make(a, false)});
  s.addClause({SLit::make(a, true), SLit::make(b, false)});
  s.addClause({SLit::make(b, true)});
  EXPECT_EQ(s.solve(), Status::Unsat);
  validateProof(s);
}

class ProofRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProofRandom, RandomUnsatProofsValidate) {
  Rng rng(GetParam());
  int unsat_seen = 0;
  for (int round = 0; round < 60 && unsat_seen < 15; ++round) {
    const std::uint32_t vars = 6 + rng.below(6);
    const std::uint32_t clauses = vars * 5;
    Solver s(/*log_proof=*/true);
    for (std::uint32_t v = 0; v < vars; ++v) s.newVar();
    for (std::uint32_t i = 0; i < clauses; ++i) {
      std::vector<SLit> clause;
      const std::uint32_t len = 1 + rng.below(3);
      for (std::uint32_t j = 0; j < len; ++j) {
        clause.push_back(
            SLit::make(static_cast<Var>(rng.below(vars)), rng.chance(1, 2)));
      }
      s.addClause(clause);
    }
    if (s.solve() != Status::Unsat) continue;
    ++unsat_seen;
    validateProof(s);
  }
  EXPECT_GE(unsat_seen, 5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProofRandom,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace eco::sat
