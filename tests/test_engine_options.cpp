// Engine option-surface tests: every configuration must stay sound (the
// patch verifies); options only trade cost/size/time.

#include <gtest/gtest.h>

#include "benchgen/benchgen.h"
#include "eco/engine.h"
#include "eco/verify.h"

namespace eco {
namespace {

EcoInstance midInstance(std::uint64_t seed) {
  benchgen::UnitSpec spec{.name = "opts",
                          .family = benchgen::Family::Alu,
                          .size_param = 3,
                          .num_targets = 2,
                          .seed = seed,
                          .pi_weight = 15};
  return benchgen::generateUnit(spec);
}

void expectVerified(const EcoInstance& inst, const PatchResult& r) {
  ASSERT_TRUE(r.success) << r.message;
  for (std::uint32_t m = 0; m < (1u << inst.num_x); ++m) {
    std::vector<bool> x(inst.num_x);
    for (std::uint32_t i = 0; i < inst.num_x; ++i) x[i] = (m >> i) & 1;
    ASSERT_EQ(evaluatePatched(inst, r, x), inst.golden.evaluate(x)) << m;
  }
}

TEST(EngineOptions, ZeroOptRoundsSkipsOptimization) {
  const EcoInstance inst = midInstance(1);
  EcoOptions opt;
  opt.opt_rounds = 0;
  const PatchResult r = EcoEngine(opt).run(inst);
  expectVerified(inst, r);
  EXPECT_DOUBLE_EQ(r.cost, r.initial_cost);
}

TEST(EngineOptions, MinimizeOffStillSound) {
  const EcoInstance inst = midInstance(2);
  EcoOptions on_opt, off_opt;
  off_opt.minimize_patches = false;
  const PatchResult r_on = EcoEngine(on_opt).run(inst);
  const PatchResult r_off = EcoEngine(off_opt).run(inst);
  expectVerified(inst, r_on);
  expectVerified(inst, r_off);
  EXPECT_LE(r_on.size, r_off.size + 5u);  // minimization should not hurt much
}

TEST(EngineOptions, HugeWatchGroup) {
  const EcoInstance inst = midInstance(3);
  EcoOptions opt;
  opt.watch_size = 50;  // larger than any base
  const PatchResult r = EcoEngine(opt).run(inst);
  expectVerified(inst, r);
}

TEST(EngineOptions, TinyCandidateCap) {
  const EcoInstance inst = midInstance(4);
  EcoOptions opt;
  opt.max_candidates = 4;
  opt.max_step2_candidates = 2;
  const PatchResult r = EcoEngine(opt).run(inst);
  expectVerified(inst, r);
}

TEST(EngineOptions, SharedBaseAccountingOffStillSound) {
  const EcoInstance inst = midInstance(5);
  EcoOptions opt;
  opt.account_shared_bases = false;
  const PatchResult r = EcoEngine(opt).run(inst);
  expectVerified(inst, r);
}

TEST(EngineOptions, AggressiveCompressionThreshold) {
  const EcoInstance inst = midInstance(6);
  EcoOptions opt;
  opt.compress_threshold = 1;  // compress after every iteration
  const PatchResult r = EcoEngine(opt).run(inst);
  expectVerified(inst, r);
}

TEST(EngineOptions, DeterministicAcrossRuns) {
  const EcoInstance inst = midInstance(7);
  const PatchResult r1 = EcoEngine().run(inst);
  const PatchResult r2 = EcoEngine().run(inst);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_DOUBLE_EQ(r1.cost, r2.cost);
  EXPECT_EQ(r1.size, r2.size);
  EXPECT_EQ(r1.base.size(), r2.base.size());
}

TEST(EngineOptions, SeedChangesAreStillSound) {
  const EcoInstance inst = midInstance(8);
  for (const std::uint64_t seed : {1ull, 99ull, 12345ull}) {
    EcoOptions opt;
    opt.seed = seed;
    expectVerified(inst, EcoEngine(opt).run(inst));
  }
}

}  // namespace
}  // namespace eco
