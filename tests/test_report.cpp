// Tests for run-report formatting and the aig structural utilities
// (levels, fanout counts) added for them.

#include <gtest/gtest.h>

#include "aig/aig_ops.h"
#include "eco/engine.h"
#include "eco/report.h"
#include "eco/report_json.h"
#include "obs/json.h"
#include "obs/obs_config.h"

namespace eco {
namespace {

TEST(AigOps, Levels) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit n1 = aig.addAnd(a, b);
  const Lit n2 = aig.addAnd(n1, a);
  const auto d = levels(aig);
  EXPECT_EQ(d[a.var()], 0u);
  EXPECT_EQ(d[n1.var()], 1u);
  EXPECT_EQ(d[n2.var()], 2u);
}

TEST(AigOps, FanoutCounts) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit n1 = aig.addAnd(a, b);
  const Lit n2 = aig.addAnd(n1, !a);
  aig.addPo(n2, "o");
  aig.addPo(n1, "o2");
  const auto refs = fanoutCounts(aig);
  EXPECT_EQ(refs[a.var()], 2u);   // n1 + n2
  EXPECT_EQ(refs[b.var()], 1u);
  EXPECT_EQ(refs[n1.var()], 2u);  // n2 + PO
  EXPECT_EQ(refs[n2.var()], 1u);  // PO
}

EcoInstance tinyInstance() {
  EcoInstance inst;
  inst.name = "report-tiny";
  const Lit a = inst.golden.addPi("a");
  const Lit b = inst.golden.addPi("b");
  inst.golden.addPo(inst.golden.addAnd(a, b), "o");
  inst.faulty.addPi("a");
  inst.faulty.addPi("b");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 2;
  inst.faulty.addPo(t, "o");
  return inst;
}

TEST(Report, RunReportContainsKeyNumbers) {
  const EcoInstance inst = tinyInstance();
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success);
  const std::string report = formatRunReport(inst, r);
  EXPECT_NE(report.find("report-tiny"), std::string::npos);
  EXPECT_NE(report.find("final patch"), std::string::npos);
  EXPECT_NE(report.find("base"), std::string::npos);
}

TEST(Report, RunReportShowsFailure) {
  EcoInstance inst = tinyInstance();
  PatchResult r;
  r.success = false;
  r.message = "unrectifiable: something";
  const std::string report = formatRunReport(inst, r);
  EXPECT_NE(report.find("FAILED"), std::string::npos);
  EXPECT_NE(report.find("unrectifiable"), std::string::npos);
}

TEST(Report, ComparisonTableGeometry) {
  ComparisonRow row;
  row.name = "u1";
  row.num_targets = 2;
  row.baseline.success = true;
  row.baseline.cost = 100;
  row.baseline.size = 50;
  row.baseline.seconds = 1.0;
  row.ours.success = true;
  row.ours.cost = 10;
  row.ours.size = 5;
  row.ours.seconds = 2.0;
  const std::string table = formatComparisonTable({row, row});
  // Ratio columns 0.100 for cost and size; geometric mean of equal rows is
  // the same ratio.
  EXPECT_NE(table.find("0.100"), std::string::npos);
  EXPECT_NE(table.find("geomean"), std::string::npos);
  EXPECT_NE(table.find("2.00"), std::string::npos);  // time ratio
}

TEST(Report, ComparisonTableHandlesFailures) {
  ComparisonRow row;
  row.name = "bad";
  row.baseline.success = false;
  row.baseline.message = "timeout";
  row.ours.success = true;
  const std::string table = formatComparisonTable({row});
  EXPECT_NE(table.find("timeout"), std::string::npos);
  EXPECT_EQ(table.find("geomean"), std::string::npos);  // no counted rows
}

TEST(Report, ComparisonTableGuardsZeroTime) {
  // A sub-millisecond baseline rounds to 0.00s; the time ratio must render
  // as "n/a" (not inf/nan) and the cost/size geomeans must still appear.
  ComparisonRow row;
  row.name = "fast";
  row.num_targets = 1;
  row.baseline.success = true;
  row.baseline.cost = 100;
  row.baseline.size = 50;
  row.baseline.seconds = 0.0;
  row.ours.success = true;
  row.ours.cost = 10;
  row.ours.size = 5;
  row.ours.seconds = 0.5;
  const std::string table = formatComparisonTable({row});
  EXPECT_NE(table.find("n/a"), std::string::npos);
  EXPECT_EQ(table.find("inf"), std::string::npos);
  EXPECT_EQ(table.find("nan"), std::string::npos);
  EXPECT_NE(table.find("0.100"), std::string::npos);  // cost/size still ratio
  EXPECT_NE(table.find("geomean"), std::string::npos);
}

TEST(Report, ComparisonTableZeroOverZeroIsParity) {
  ComparisonRow row;
  row.name = "degenerate";
  row.baseline.success = true;
  row.baseline.seconds = 0.0;
  row.ours.success = true;
  row.ours.seconds = 0.0;  // 0/0: both engines degenerate equally
  const std::string table = formatComparisonTable({row});
  EXPECT_EQ(table.find("inf"), std::string::npos);
  EXPECT_EQ(table.find("nan"), std::string::npos);
  EXPECT_NE(table.find("1.000"), std::string::npos);
}

TEST(ReportJson, RunReportValidates) {
  const EcoInstance inst = tinyInstance();
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success);
  const std::string json = writeJsonReport(inst, r);
  std::string error;
  EXPECT_TRUE(validateJsonReport(json, &error)) << error;

  obs::json::Value doc;
  ASSERT_TRUE(obs::json::parse(json, &doc, &error)) << error;
  EXPECT_EQ(doc.find("schema")->string, kRunReportSchema);
  EXPECT_EQ(doc.find("instance")->find("name")->string, "report-tiny");
  EXPECT_TRUE(doc.find("result")->find("success")->boolean);
  EXPECT_EQ(doc.find("result")->find("cost")->number, r.cost);
  // The stage seconds populated by the obs spans must be present and finite.
  EXPECT_GE(doc.find("result")->find("seconds")->number, 0.0);
  EXPECT_GE(doc.find("stages")->find("fraig_seconds")->number, 0.0);
}

TEST(ReportJson, ValidatorRejectsCorruptReports) {
  const EcoInstance inst = tinyInstance();
  PatchResult r;
  r.success = true;
  const std::string good = writeJsonReport(inst, r);
  ASSERT_TRUE(validateJsonReport(good));

  std::string error;
  EXPECT_FALSE(validateJsonReport("{not json", &error));
  EXPECT_NE(error.find("not valid JSON"), std::string::npos);

  EXPECT_FALSE(validateJsonReport("[1,2,3]", &error));

  // Wrong schema name.
  std::string wrong = good;
  const auto pos = wrong.find("ecopatch-run-report");
  ASSERT_NE(pos, std::string::npos);
  wrong.replace(pos, 8, "other-th");
  EXPECT_FALSE(validateJsonReport(wrong, &error));

  // Missing a required section.
  std::string no_stages = good;
  const auto spos = no_stages.find("\"stages\"");
  ASSERT_NE(spos, std::string::npos);
  no_stages.replace(spos, 8, "\"st_ges\"");
  EXPECT_FALSE(validateJsonReport(no_stages, &error));
  EXPECT_NE(error.find("stages"), std::string::npos);
}

TEST(ReportJson, V2ReportCarriesResourceAttribution) {
  const EcoInstance inst = tinyInstance();
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success);
  const std::string json = writeJsonReport(inst, r);

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(json, &doc, &error)) << error;
  EXPECT_EQ(doc.find("schema_version")->number,
            static_cast<double>(kRunReportSchemaVersion));
  const obs::json::Value* res = doc.find("resources");
  ASSERT_NE(res, nullptr);
  EXPECT_GE(res->find("cpu_seconds")->number, 0.0);
#if ECO_OBS_ENABLED
  // RSS is real on any run; allocation counters need the obs alloc hook,
  // which sanitizer builds compile out even with obs enabled.
  EXPECT_GT(res->find("peak_rss_bytes")->number, 0.0);
#endif
  // One row per engine stage that ran, in run order.
  const obs::json::Value* stages = res->find("stages");
  ASSERT_TRUE(stages->isArray());
  ASSERT_FALSE(stages->array.empty());
  EXPECT_EQ(stages->array.front().find("stage")->string, "setup");
  for (const obs::json::Value& s : stages->array) {
    EXPECT_GE(s.find("cpu_seconds")->number, 0.0);
    ASSERT_NE(s.find("peak_rss_bytes"), nullptr);
  }
  ASSERT_TRUE(res->find("threads")->isArray());
}

TEST(ReportJson, ValidatorAcceptsV1WithoutResources) {
  // Backward compatibility: a v1 document (pre-resources) must stay valid.
  const EcoInstance inst = tinyInstance();
  PatchResult r;
  r.success = true;
  std::string v1 = writeJsonReport(inst, r);
  const auto vpos = v1.find("\"schema_version\":2");
  ASSERT_NE(vpos, std::string::npos);
  v1.replace(vpos, 18, "\"schema_version\":1");
  const auto rpos = v1.find(",\"resources\":{");
  ASSERT_NE(rpos, std::string::npos);
  const auto rend = v1.find(",\"base\"", rpos);
  const auto rend2 = rend == std::string::npos ? v1.find(",\"metrics\"", rpos) : rend;
  const auto cut = rend2 == std::string::npos ? v1.rfind('}') : rend2;
  v1.erase(rpos, cut - rpos);
  std::string error;
  EXPECT_TRUE(validateJsonReport(v1, &error)) << error;
}

TEST(ReportJson, ValidatorRequiresResourcesAtV2) {
  const EcoInstance inst = tinyInstance();
  PatchResult r;
  r.success = true;
  std::string v2 = writeJsonReport(inst, r);
  ASSERT_TRUE(validateJsonReport(v2));

  // Same document minus the resources section: invalid at version 2.
  const auto rpos = v2.find("\"resources\"");
  ASSERT_NE(rpos, std::string::npos);
  std::string no_res = v2;
  no_res.replace(rpos, 11, "\"res_urces\"");
  std::string error;
  EXPECT_FALSE(validateJsonReport(no_res, &error));
  EXPECT_NE(error.find("resources"), std::string::npos);

  // Unknown future version: rejected.
  std::string v9 = v2;
  const auto vpos = v9.find("\"schema_version\":2");
  ASSERT_NE(vpos, std::string::npos);
  v9.replace(vpos, 18, "\"schema_version\":9");
  EXPECT_FALSE(validateJsonReport(v9, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
}

}  // namespace
}  // namespace eco
