// Property test for Theorem 2: the localized network re-expresses the
// cluster's faulty and golden cones over the cut exactly — evaluating the
// cut signals in the workspace and feeding those values into net.v must
// reproduce the original output functions for every (X, T) assignment.

#include <gtest/gtest.h>

#include "benchgen/benchgen.h"
#include "eco/candidates.h"
#include "eco/clustering.h"
#include "eco/localization.h"
#include "eco/relations.h"
#include "fraig/fraig.h"

namespace eco {
namespace {

class LocalizationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalizationProperty, CutReexpressionIsExact) {
  benchgen::UnitSpec spec{.name = "locprop",
                          .family = benchgen::Family::Alu,
                          .size_param = 3,
                          .num_targets = 2,
                          .seed = GetParam(),
                          .restructure_pct = 25};
  const EcoInstance inst = benchgen::generateUnit(spec);
  Workspace ws = buildWorkspace(inst);
  std::vector<Lit> roots = ws.f_roots;
  roots.insert(roots.end(), ws.g_roots.begin(), ws.g_roots.end());
  const fraig::EquivClasses classes = fraig::computeEquivClasses(ws.w, roots);
  const std::vector<Candidate> candidates = collectCandidates(inst, ws);
  const auto clusters = clusterTargets(inst);

  for (const TargetCluster& cluster : clusters) {
    LocalNetwork net =
        buildLocalNetwork(inst, ws, cluster, candidates, &classes);
    ASSERT_EQ(net.f_roots.size(), cluster.outputs.size());

    // Evaluate the whole workspace on sampled (X, T) assignments; cut
    // signal values are read from the *implementing faulty signal* (with
    // the recorded inversion), exactly as a spliced patch would see them.
    const std::uint32_t n_w = ws.w.numPis();
    ASSERT_LE(n_w, 20u);
    for (std::uint32_t sample = 0; sample < 64; ++sample) {
      const std::uint32_t m = sample * 2654435761u;  // Weyl-ish spread
      std::vector<bool> in(n_w);
      for (std::uint32_t i = 0; i < n_w; ++i) in[i] = (m >> (i % 31)) & 1;

      // Node values of the workspace.
      std::vector<bool> value(ws.w.numNodes(), false);
      for (std::uint32_t v = 1; v < ws.w.numNodes(); ++v) {
        if (ws.w.isPi(v)) {
          value[v] = in[ws.w.piIndex(v)];
        } else {
          const Lit f0 = ws.w.fanin0(v);
          const Lit f1 = ws.w.fanin1(v);
          value[v] = (value[f0.var()] ^ f0.complemented()) &&
                     (value[f1.var()] ^ f1.complemented());
        }
      }

      // Inputs of net.v: cluster targets first, then the cut bases.
      std::vector<bool> vin(net.v.numPis(), false);
      for (std::size_t t = 0; t < cluster.targets.size(); ++t) {
        const Lit wt = ws.t_pis[cluster.targets[t]];
        vin[net.v.piIndex(net.t_pis[t].var())] =
            value[wt.var()] ^ wt.complemented();
      }
      for (const CutBase& b : net.bases) {
        const Lit sig = b.signal.w_fn;  // implementing signal, in workspace
        const bool raw = value[sig.var()] ^ sig.complemented();
        vin[net.v.piIndex(b.v_pi.var())] = raw ^ b.inverted;
      }

      Aig& v_net = net.v;
      // Evaluate net.v nodes.
      std::vector<bool> vval(v_net.numNodes(), false);
      for (std::uint32_t v = 1; v < v_net.numNodes(); ++v) {
        if (v_net.isPi(v)) {
          vval[v] = vin[v_net.piIndex(v)];
        } else {
          const Lit f0 = v_net.fanin0(v);
          const Lit f1 = v_net.fanin1(v);
          vval[v] = (vval[f0.var()] ^ f0.complemented()) &&
                    (vval[f1.var()] ^ f1.complemented());
        }
      }

      for (std::size_t j = 0; j < cluster.outputs.size(); ++j) {
        const Lit orig_f = ws.f_roots[cluster.outputs[j]];
        const Lit loc_f = net.f_roots[j];
        ASSERT_EQ(vval[loc_f.var()] ^ loc_f.complemented(),
                  value[orig_f.var()] ^ orig_f.complemented())
            << "faulty output " << j << " sample " << sample;
        const Lit orig_g = ws.g_roots[cluster.outputs[j]];
        const Lit loc_g = net.g_roots[j];
        ASSERT_EQ(vval[loc_g.var()] ^ loc_g.complemented(),
                  value[orig_g.var()] ^ orig_g.complemented())
            << "golden output " << j << " sample " << sample;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LocalizationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace eco
