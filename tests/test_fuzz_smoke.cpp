// Self-checking fuzz harness tests.
//
// Compiled twice: the default build is the tier-1 smoke test (corpus replay
// plus a small deterministic sweep); with ECO_FUZZ_SWEEP defined it becomes
// the tier-2 1000-instance sweep that nightly CI runs under sanitizers.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/faults.h"
#include "io/instance_io.h"
#include "qa/fuzz.h"

namespace eco::qa {
namespace {

#ifndef ECO_CORPUS_DIR
#define ECO_CORPUS_DIR ""
#endif

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Shrunk regression instances from past fuzzing campaigns replay first:
/// each must now sail through the full differential matrix.
TEST(FuzzCorpus, RegressionInstancesPass) {
  namespace fs = std::filesystem;
  const fs::path corpus(ECO_CORPUS_DIR);
  if (corpus.empty() || !fs::is_directory(corpus)) {
    GTEST_SKIP() << "no corpus directory";
  }
  std::vector<fs::path> cases;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.is_directory() && fs::exists(entry.path() / "faulty.v")) {
      cases.push_back(entry.path());
    }
  }
  std::sort(cases.begin(), cases.end());
  ASSERT_FALSE(cases.empty()) << "corpus directory holds no instances";
  for (const fs::path& dir : cases) {
    SCOPED_TRACE(dir.filename().string());
    const EcoInstance inst = io::loadInstance(
        slurp(dir / "faulty.v"), slurp(dir / "golden.v"),
        slurp(dir / "weight.txt"), dir.filename().string());
    // Corpus instances are kept because they once failed; rectifiability is
    // not guaranteed, so replay with known_rectifiable=false — agreement,
    // oracle, and counterexample checks still apply in full.
    const InstanceVerdict verdict =
        checkInstance(inst, /*known_rectifiable=*/false, CheckOptions{});
    EXPECT_TRUE(verdict.ok) << (verdict.violations.empty()
                                    ? ""
                                    : verdict.violations.front());
  }
}

#ifdef ECO_FUZZ_SWEEP

// Tier 2: the full acceptance sweep — 1000 seeded instances across every
// fault mode and the whole config matrix, zero discrepancies expected.
TEST(FuzzSweep, ThousandInstancesClean) {
  FuzzOptions options;
  options.seed = 1;
  options.count = 1000;
  options.shrink = false;  // a failure here fails the test; shrink offline
  options.max_failures = 5;
  options.log = stderr;
  options.progress_every = 100;
  const FuzzOutcome outcome = runFuzz(options);
  EXPECT_EQ(outcome.failures, 0u);
  EXPECT_EQ(outcome.instances, 1000u);
  // Both rectifiable and unrectifiable populations must be exercised.
  EXPECT_GT(outcome.rectifiable, 0u);
  EXPECT_GT(outcome.unrectifiable, 0u);
}

#else  // tier 1

TEST(FuzzSmoke, DeterministicSweepIsClean) {
  FuzzOptions options;
  options.seed = 1;
  options.count = 25;
  options.shrink = false;
  const FuzzOutcome outcome = runFuzz(options);
  EXPECT_EQ(outcome.failures, 0u);
  EXPECT_EQ(outcome.instances, 25u);
  EXPECT_EQ(outcome.engine_runs, 25 * defaultMatrix().size());
}

TEST(FuzzSmoke, SpecGenerationIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto a = benchgen::randomFuzzSpec(seed);
    const auto b = benchgen::randomFuzzSpec(seed);
    EXPECT_EQ(benchgen::describeSpec(a), benchgen::describeSpec(b));
    const auto ia = benchgen::generateFuzzInstance(a);
    const auto ib = benchgen::generateFuzzInstance(b);
    EXPECT_EQ(ia.instance.faulty.numAnds(), ib.instance.faulty.numAnds());
    EXPECT_EQ(ia.known_rectifiable, ib.known_rectifiable);
  }
}

// The "testing the tester" gate: a deliberately corrupted engine must be
// caught by the harness and shrunk to a minimal reproducer.
TEST(FuzzSmoke, PlantedBugCaughtAndShrunk) {
  FuzzOptions options;
  options.seed = 1;
  options.count = 10;
  options.check.plant_bug = PlantedBug::FlipPatchPolarity;
  options.shrink = true;
  options.max_failures = 1;
  const FuzzOutcome outcome = runFuzz(options);
  ASSERT_GE(outcome.failures, 1u);
  ASSERT_FALSE(outcome.shrunk_failures.empty());
  const FuzzFailure& f = outcome.shrunk_failures.front();
  EXPECT_FALSE(f.shrunk.verdict.ok);
  EXPECT_LE(f.shrunk.faulty_ands, 8u)
      << "shrinker left " << f.shrunk.faulty_ands << " AND gates";
}

TEST(FuzzSmoke, ReproducerRoundTrips) {
  FuzzOptions options;
  options.seed = 1;
  options.count = 5;
  options.check.plant_bug = PlantedBug::FlipPatchPolarity;
  options.max_failures = 1;
  const auto tmp = std::filesystem::temp_directory_path() / "eco_fuzz_test";
  std::filesystem::remove_all(tmp);
  options.reproducer_dir = tmp.string();
  const FuzzOutcome outcome = runFuzz(options);
  ASSERT_FALSE(outcome.shrunk_failures.empty());
  const std::filesystem::path dir(outcome.shrunk_failures.front().reproducer_path);
  ASSERT_FALSE(dir.empty());
  const EcoInstance inst =
      io::loadInstance(slurp(dir / "faulty.v"), slurp(dir / "golden.v"),
                       slurp(dir / "weight.txt"), "roundtrip");
  EXPECT_EQ(inst.numTargets(),
            outcome.shrunk_failures.front().shrunk.instance.numTargets());
  std::filesystem::remove_all(tmp);
}

#endif  // ECO_FUZZ_SWEEP

}  // namespace
}  // namespace eco::qa
