// Tests for the baseline engines: the PI-support winner proxy must be
// complete, and the Tang'11-style independent per-target fix must succeed
// on decoupled instances while failing on coupled ones (the incompleteness
// the paper's Algorithm 1 exists to solve — experiment E6).

#include <gtest/gtest.h>

#include "benchgen/benchgen.h"
#include "eco/baseline.h"
#include "eco/verify.h"

namespace eco {
namespace {

void expectPatchedEquivalent(const EcoInstance& inst, const PatchResult& r) {
  ASSERT_TRUE(r.success) << r.message;
  ASSERT_LE(inst.num_x, 14u);
  for (std::uint32_t m = 0; m < (1u << inst.num_x); ++m) {
    std::vector<bool> x(inst.num_x);
    for (std::uint32_t i = 0; i < inst.num_x; ++i) x[i] = (m >> i) & 1;
    ASSERT_EQ(evaluatePatched(inst, r, x), inst.golden.evaluate(x))
        << "minterm " << m;
  }
}

TEST(WinnerProxy, SolvesGeneratedUnits) {
  benchgen::UnitSpec spec{.name = "wp",
                          .family = benchgen::Family::Comparator,
                          .size_param = 4,
                          .num_targets = 2,
                          .seed = 9};
  const EcoInstance inst = benchgen::generateUnit(spec);
  const PatchResult r = runWinnerProxy(inst);
  expectPatchedEquivalent(inst, r);
  // PI-support only: every base must be an X input.
  for (const BaseRef& b : r.base) {
    EXPECT_TRUE(inst.faulty.findPi(b.name).has_value()) << b.name;
  }
}

/// Decoupled: two targets on disjoint output cones.
EcoInstance decoupledInstance() {
  EcoInstance inst;
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    const Lit d = g.addPi("d");
    g.addPo(g.addAnd(a, b), "o0");
    g.addPo(g.mkXor(c, d), "o1");
  }
  {
    Aig& f = inst.faulty;
    f.addPi("a");
    f.addPi("b");
    f.addPi("c");
    f.addPi("d");
    const Lit t0 = f.addPi("t0");
    const Lit t1 = f.addPi("t1");
    inst.num_x = 4;
    f.addPo(t0, "o0");
    f.addPo(t1, "o1");
  }
  return inst;
}

TEST(Tang11, SucceedsOnDecoupledTargets) {
  const EcoInstance inst = decoupledInstance();
  const PatchResult r = runTang11(inst);
  expectPatchedEquivalent(inst, r);
}

/// Coupled: o = t0 XOR t1 with golden o = a. Fixing t0 under "t1 = 0"
/// yields t0 = a; fixing t1 under "t0 = 0" yields t1 = a; together
/// t0 ^ t1 = 0 != a. Algorithm 1 handles this; the independent fix cannot.
EcoInstance xorCoupledInstance() {
  EcoInstance inst;
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    g.addPo(a, "o");
  }
  {
    Aig& f = inst.faulty;
    f.addPi("a");
    const Lit t0 = f.addPi("t0");
    const Lit t1 = f.addPi("t1");
    inst.num_x = 1;
    f.addPo(f.mkXor(t0, t1), "o");
  }
  return inst;
}

TEST(Tang11, FailsOnXorCoupledTargets) {
  const EcoInstance inst = xorCoupledInstance();
  const PatchResult r = runTang11(inst);
  EXPECT_FALSE(r.success);
}

TEST(EcoEngine, SolvesXorCoupledTargets) {
  const EcoInstance inst = xorCoupledInstance();
  const PatchResult r = EcoEngine().run(inst);
  expectPatchedEquivalent(inst, r);
}

TEST(WinnerProxy, SolvesXorCoupledTargets) {
  // The proxy shares Algorithm 1, so it is complete too — only its base
  // vocabulary (PIs) differs.
  const EcoInstance inst = xorCoupledInstance();
  const PatchResult r = runWinnerProxy(inst);
  expectPatchedEquivalent(inst, r);
}

}  // namespace
}  // namespace eco
