// Full contest-interface integration: generate a unit, serialize it as
// Verilog + weight files, parse everything back, run the engine, write the
// patch as Verilog, re-parse it, splice it into the faulty netlist, and
// check equivalence against the golden netlist exhaustively. Exercises io,
// benchgen, and the engine as one pipeline, exactly as a downstream user
// would drive them.

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>

#include "aig/aig_ops.h"
#include "benchgen/benchgen.h"
#include "eco/engine.h"
#include "io/verilog.h"

namespace eco {
namespace {

/// Writes an instance's faulty circuit as Verilog with the target
/// pseudo-PIs emitted as floating wires (the contest encoding).
std::string writeFaultyAsVerilog(const EcoInstance& inst) {
  std::vector<std::uint32_t> floating;
  for (std::uint32_t k = 0; k < inst.numTargets(); ++k) {
    floating.push_back(inst.targetPi(k));
  }
  return io::writeVerilogWithFloating(inst.faulty, "top", floating);
}

TEST(IntegrationFlow, FileRoundTripAndPatchSplice) {
  benchgen::UnitSpec spec{.name = "roundtrip",
                          .family = benchgen::Family::Alu,
                          .size_param = 3,
                          .num_targets = 2,
                          .seed = 404,
                          .pi_weight = 9};
  const EcoInstance generated = benchgen::generateUnit(spec);

  // --- serialize all three contest files ---------------------------------
  const std::string f_text = writeFaultyAsVerilog(generated);
  const std::string g_text = io::writeVerilog(generated.golden, "top");
  std::unordered_map<std::string, double> weights = generated.weights;
  const std::string w_text = io::writeWeights(weights);

  // --- parse back ----------------------------------------------------------
  io::Netlist faulty = io::parseVerilog(f_text);
  io::Netlist golden = io::parseVerilog(g_text);
  ASSERT_EQ(faulty.targets.size(), generated.numTargets());
  ASSERT_EQ(faulty.inputs.size(), generated.num_x);

  EcoInstance inst;
  inst.name = "roundtrip";
  inst.faulty = std::move(faulty.aig);
  inst.golden = std::move(golden.aig);
  inst.num_x = static_cast<std::uint32_t>(faulty.inputs.size());
  inst.weights = io::parseWeights(w_text);

  // The writer names wires "nK" after AIG vars; parsed signal names differ
  // from the generated ones but weights for PIs still apply. Unknown names
  // fall back to default_weight.
  inst.default_weight = 1.0;

  // --- run the engine -------------------------------------------------------
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success) << r.message;

  // --- write the patch, re-parse it, splice, verify -------------------------
  const std::string patch_text = io::writeVerilog(r.patch, "patch");
  io::Netlist patch = io::parseVerilog(patch_text);
  ASSERT_EQ(patch.aig.numPos(), inst.numTargets());
  ASSERT_EQ(patch.aig.numPis(), r.base.size());

  // Splice: evaluate the faulty circuit with targets driven by the patch.
  ASSERT_LE(inst.num_x, 10u);
  for (std::uint32_t m = 0; m < (1u << inst.num_x); ++m) {
    std::vector<bool> x(inst.num_x);
    for (std::uint32_t i = 0; i < inst.num_x; ++i) x[i] = (m >> i) & 1;

    // Base signal values from the faulty AIG (targets tied to 0: bases are
    // outside target fanout by construction).
    std::vector<bool> fpis(inst.faulty.numPis(), false);
    for (std::uint32_t i = 0; i < inst.num_x; ++i) fpis[i] = x[i];
    // Evaluate every node once.
    std::vector<bool> value(inst.faulty.numNodes(), false);
    for (std::uint32_t v = 1; v < inst.faulty.numNodes(); ++v) {
      if (inst.faulty.isPi(v)) {
        value[v] = fpis[inst.faulty.piIndex(v)];
      } else {
        const Lit f0 = inst.faulty.fanin0(v);
        const Lit f1 = inst.faulty.fanin1(v);
        value[v] = (value[f0.var()] ^ f0.complemented()) &&
                   (value[f1.var()] ^ f1.complemented());
      }
    }
    // Patch inputs resolved by *name* against the faulty netlist (as a
    // physical splice would connect them).
    std::vector<bool> pin(patch.aig.numPis());
    for (std::uint32_t i = 0; i < patch.aig.numPis(); ++i) {
      const std::string& name = patch.aig.piName(i);
      Lit sig;
      if (auto pi = inst.faulty.findPi(name)) {
        sig = Lit::fromVar(*pi, false);
      } else {
        auto s = inst.faulty.findSignal(name);
        ASSERT_TRUE(s.has_value()) << "patch input " << name
                                   << " not found in faulty netlist";
        sig = *s;
      }
      pin[i] = value[sig.var()] ^ sig.complemented();
    }
    const std::vector<bool> tvals = patch.aig.evaluate(pin);
    for (std::uint32_t k = 0; k < inst.numTargets(); ++k) {
      fpis[inst.num_x + k] = tvals[k];
    }
    ASSERT_EQ(inst.faulty.evaluate(fpis), inst.golden.evaluate(x))
        << "minterm " << m;
  }
}

TEST(IntegrationFlow, PatchOutputsNamedAfterTargets) {
  benchgen::UnitSpec spec{.name = "names",
                          .family = benchgen::Family::Comparator,
                          .size_param = 3,
                          .num_targets = 2,
                          .seed = 7};
  const EcoInstance inst = benchgen::generateUnit(spec);
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.patch.numPos(), 2u);
  EXPECT_EQ(r.patch.poName(0), inst.targetName(0));
  EXPECT_EQ(r.patch.poName(1), inst.targetName(1));
  // Every base is a real faulty-circuit signal.
  for (const BaseRef& b : r.base) {
    const bool is_pi = inst.faulty.findPi(b.name).has_value();
    const bool is_sig = inst.faulty.findSignal(b.name).has_value();
    EXPECT_TRUE(is_pi || is_sig) << b.name;
  }
}

}  // namespace
}  // namespace eco
