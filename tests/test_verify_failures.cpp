// Failure paths of eco::verifyPatches: a patch with the wrong function must
// produce a genuine counterexample, an uncovered target must fail unless it
// is irrelevant, and a patch reading a target pseudo-PI must be rejected by
// verification rather than silently accepted.

#include <gtest/gtest.h>

#include <vector>

#include "eco/engine.h"
#include "eco/relations.h"
#include "eco/verify.h"

namespace eco {
namespace {

/// Golden o = a & b; faulty o = t0.
EcoInstance tinyInstance() {
  EcoInstance inst;
  inst.name = "verify-tiny";
  const Lit ga = inst.golden.addPi("a");
  const Lit gb = inst.golden.addPi("b");
  inst.golden.addPo(inst.golden.addAnd(ga, gb), "o");

  inst.faulty.addPi("a");
  inst.faulty.addPi("b");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 2;
  inst.faulty.addPo(t, "o");
  return inst;
}

/// A one-output patch computing `fn(a, b)` over X-input candidates.
TargetPatch patchOver(const Workspace& ws, const EcoInstance& inst,
                      Lit (*build)(Aig&, Lit, Lit)) {
  TargetPatch p;
  p.target = 0;
  const Lit a = p.fn.addPi("a");
  const Lit b = p.fn.addPi("b");
  p.fn.addPo(build(p.fn, a, b));
  for (std::uint32_t i = 0; i < 2; ++i) {
    Candidate c;
    c.name = inst.faulty.piName(i);
    c.f_lit = inst.faulty.piLit(i);
    c.w_fn = ws.x_pis[i];
    c.weight = 1;
    p.inputs.push_back(std::move(c));
  }
  return p;
}

TEST(VerifyFailures, WrongPatchYieldsGenuineCounterexample) {
  const EcoInstance inst = tinyInstance();
  Workspace ws = buildWorkspace(inst);
  // Patch computes a | b instead of a & b.
  const TargetPatch wrong = patchOver(
      ws, inst, +[](Aig& g, Lit a, Lit b) { return g.mkOr(a, b); });
  const std::vector<TargetPatch> patches{wrong};
  const VerifyOutcome v = verifyPatches(ws, patches);
  ASSERT_FALSE(v.equivalent);
  ASSERT_EQ(v.cex_inputs.size(), inst.num_x);
  // The cex must actually distinguish a|b from a&b: exactly one input true.
  EXPECT_NE(v.cex_inputs[0], v.cex_inputs[1]);
  EXPECT_EQ(v.failing_output, 0u);
}

TEST(VerifyFailures, CorrectPatchVerifies) {
  const EcoInstance inst = tinyInstance();
  Workspace ws = buildWorkspace(inst);
  const TargetPatch right = patchOver(
      ws, inst, +[](Aig& g, Lit a, Lit b) { return g.addAnd(a, b); });
  const std::vector<TargetPatch> patches{right};
  EXPECT_TRUE(verifyPatches(ws, patches).equivalent);
}

TEST(VerifyFailures, UncoveredTargetFails) {
  const EcoInstance inst = tinyInstance();
  Workspace ws = buildWorkspace(inst);
  // No patch at all: t0 stays free, and since o depends on it the miter
  // must be satisfiable.
  const VerifyOutcome v = verifyPatches(ws, {});
  EXPECT_FALSE(v.equivalent);
  EXPECT_EQ(v.cex_inputs.size(), inst.num_x);
}

TEST(VerifyFailures, PatchReadingTargetPseudoPiIsRejected) {
  const EcoInstance inst = tinyInstance();
  Workspace ws = buildWorkspace(inst);
  // An adversarial "patch" wired to the target pseudo-PI itself: t0 := t0.
  // Substitution leaves the target free, so verification must fail — this
  // is the self-referential support the structural oracle also rejects.
  TargetPatch cyclic;
  cyclic.target = 0;
  const Lit in = cyclic.fn.addPi("t0");
  cyclic.fn.addPo(in);
  Candidate c;
  c.name = "t0";
  c.f_lit = inst.faulty.piLit(2);
  c.w_fn = ws.t_pis[0];
  c.weight = 0;
  cyclic.inputs.push_back(std::move(c));
  const std::vector<TargetPatch> patches{cyclic};
  const VerifyOutcome v = verifyPatches(ws, patches);
  EXPECT_FALSE(v.equivalent);
}

TEST(VerifyFailures, UntouchedOutputMismatchReported) {
  // po0 matches golden, po1 = !a differs and no target reaches it.
  EcoInstance inst;
  inst.name = "verify-untouched";
  const Lit ga = inst.golden.addPi("a");
  inst.golden.addPo(ga, "o0");
  inst.golden.addPo(ga, "o1");
  const Lit fa = inst.faulty.addPi("a");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 1;
  inst.faulty.addPo(t, "o0");
  inst.faulty.addPo(!fa, "o1");

  Workspace ws = buildWorkspace(inst);
  const std::vector<std::uint32_t> untouched{1};
  const VerifyOutcome v = verifyUntouchedOutputs(ws, untouched);
  ASSERT_FALSE(v.equivalent);
  EXPECT_EQ(v.failing_output, 1u);

  // The engine reaches the same verdict end to end.
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_FALSE(r.success);
  EXPECT_NE(r.message.find("unrectifiable"), std::string::npos);
  EXPECT_EQ(r.counterexample.size(), inst.num_x);
}

}  // namespace
}  // namespace eco
