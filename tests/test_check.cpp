// Invariant-audit layer tests (src/check).
//
// The positive direction — clean graphs, solvers, and engine results audit
// clean — rides along every case; the heart of this file is the negative
// direction: each test corrupts one internal table through the audit
// backdoors (AigAudit / SolverAudit / PickerAudit) and asserts the matching
// auditor reports the *exact* violated rule. A checker that cannot see a
// planted corruption is itself broken.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/benchgen.h"
#include "check/aig_audit.h"
#include "check/check.h"
#include "check/patch_audit.h"
#include "check/sat_audit.h"
#include "eco/engine.h"
#include "io/instance_io.h"
#include "qa/differential.h"

namespace eco {
namespace {

#ifndef ECO_CORPUS_DIR
#define ECO_CORPUS_DIR ""
#endif

using check::AuditReport;
using check::Level;

// --- level plumbing ----------------------------------------------------------

TEST(CheckLevel, ParseAndName) {
  EXPECT_EQ(check::parseLevel("off"), Level::kOff);
  EXPECT_EQ(check::parseLevel("stage"), Level::kStage);
  EXPECT_EQ(check::parseLevel("paranoid"), Level::kParanoid);
  EXPECT_EQ(check::parseLevel("0"), Level::kOff);
  EXPECT_EQ(check::parseLevel("1"), Level::kStage);
  EXPECT_EQ(check::parseLevel("2"), Level::kParanoid);
  EXPECT_FALSE(check::parseLevel("zealous").has_value());
  EXPECT_FALSE(check::parseLevel("").has_value());
  EXPECT_STREQ(check::levelName(Level::kOff), "off");
  EXPECT_STREQ(check::levelName(Level::kStage), "stage");
  EXPECT_STREQ(check::levelName(Level::kParanoid), "paranoid");
}

TEST(CheckLevel, ReportSummaryAndJson) {
  AuditReport report;
  report.subject = "unit";
  report.checks_run = 7;
  EXPECT_TRUE(report.ok());
  EXPECT_NE(report.summary().find("ok (7 checks)"), std::string::npos);
  report.add("aig", "topo-order", "AND 3 reads AND 5");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("topo-order"));
  EXPECT_FALSE(report.hasRule("strash-map"));
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"schema\":\"ecopatch-audit-report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"topo-order\""), std::string::npos);
  EXPECT_THROW(check::raise(report), CheckError);
}

// --- AIG structural linter ---------------------------------------------------

Aig sampleAig() {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit c = aig.addPi("c");
  const Lit ab = aig.addAnd(a, b);
  const Lit abc = aig.addAnd(ab, !c);
  aig.addPo(abc, "out");
  aig.addPo(!ab, "aux");
  aig.setSignalName(ab, "n_ab");
  return aig;
}

TEST(AigAudit, CleanGraphPasses) {
  const Aig aig = sampleAig();
  const AuditReport report = check::auditAig(aig, "sample");
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks_run, 10u);
  const AuditReport empty = check::auditAig(Aig{});
  EXPECT_TRUE(empty.ok()) << empty.summary();
}

TEST(AigAudit, DetectsCorruptedStrashEntry) {
  Aig aig = sampleAig();
  // Redirect one strash entry to the wrong node.
  auto& strash = AigAudit::strashMut(aig);
  ASSERT_FALSE(strash.empty());
  strash.begin()->second = 1;  // a PI variable — never a legal AND mapping
  const AuditReport report = check::auditAig(aig);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("strash-map") || report.hasRule("strash-orphan"))
      << report.summary();
}

TEST(AigAudit, DetectsMissingStrashEntry) {
  Aig aig = sampleAig();
  auto& strash = AigAudit::strashMut(aig);
  strash.erase(strash.begin());
  const AuditReport report = check::auditAig(aig);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("strash-missing")) << report.summary();
  EXPECT_TRUE(report.hasRule("strash-size")) << report.summary();
}

TEST(AigAudit, DetectsTopologicalOrderViolation) {
  Aig aig = sampleAig();
  auto& nodes = AigAudit::nodesMut(aig);
  // First AND node (var 4 in sampleAig) now reads the later AND (var 5):
  // a cycle through the second gate.
  nodes[4].fanin0 = Lit::fromVar(5, false);
  const AuditReport report = check::auditAig(aig);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("topo-order")) << report.summary();
}

TEST(AigAudit, DetectsDanglingFanin) {
  Aig aig = sampleAig();
  auto& nodes = AigAudit::nodesMut(aig);
  nodes[5].fanin1 = Lit::fromVar(1000, true);
  const AuditReport report = check::auditAig(aig);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("dangling-fanin")) << report.summary();
}

TEST(AigAudit, DetectsBadPoDriverAndPiOrdinal) {
  Aig aig = sampleAig();
  AigAudit::posMut(aig)[0] = Lit::fromVar(99, false);
  AuditReport report = check::auditAig(aig);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("po-driver")) << report.summary();

  Aig aig2 = sampleAig();
  // PI variable 1 is the 0th PI; make it claim ordinal 1 — round-trip breaks.
  AigAudit::nodesMut(aig2)[1].fanin1 = Lit::fromValue(1);
  report = check::auditAig(aig2);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("pi-index")) << report.summary();
}

TEST(AigAudit, DetectsNameIndexDivergence) {
  Aig aig = sampleAig();
  auto& index = AigAudit::nameIndexMut(aig);
  ASSERT_EQ(index.count("n_ab"), 1u);
  index["n_ab"] = !index["n_ab"];
  const AuditReport report = check::auditAig(aig);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("name-index")) << report.summary();
}

TEST(AigAudit, DetectsConstantFanin) {
  // addAnd folds constants, so a constant fanin can only appear through
  // corruption; point the top AND at the constant node.
  Aig aig = sampleAig();
  auto& nodes = AigAudit::nodesMut(aig);
  nodes[5].fanin0 = Lit::fromVar(0, false);
  const AuditReport report = check::auditAig(aig);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("const-fanin")) << report.summary();
}

// --- SAT solver state auditor ------------------------------------------------

/// Loads a small satisfiable CNF with enough clauses to exercise watches
/// and GC into `s` (Solver is pinned in place — no move constructor).
void loadChainCnf(sat::Solver& s, std::uint32_t chain = 12) {
  std::vector<sat::Var> v;
  for (std::uint32_t i = 0; i < chain; ++i) v.push_back(s.newVar());
  for (std::uint32_t i = 0; i + 1 < chain; ++i) {
    s.addClause({sat::SLit::make(v[i], true), sat::SLit::make(v[i + 1], false)});
    s.addClause({sat::SLit::make(v[i], false), sat::SLit::make(v[i + 1], false),
                 sat::SLit::make(v[(i + 2) % chain], true)});
  }
}

TEST(SatAudit, CleanSolverPassesBeforeAndAfterSolveAndGc) {
  sat::Solver s;
  loadChainCnf(s);
  AuditReport report = check::auditSolver(s, "fresh");
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks_run, 20u);

  ASSERT_EQ(s.solve(), sat::Status::Sat);
  report = check::auditSolver(s, "solved");
  EXPECT_TRUE(report.ok()) << report.summary();

  s.garbageCollect();
  report = check::auditSolver(s, "after-gc");
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SatAudit, CleanPreprocessedSolverPasses) {
  sat::Solver s;
  loadChainCnf(s, 16);
  s.setPreprocessing(true);
  ASSERT_EQ(s.solve(), sat::Status::Sat);
  const AuditReport report = check::auditSolver(s, "preprocessed");
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SatAudit, DetectsWatcherBlockerCorruption) {
  sat::Solver s;
  loadChainCnf(s);
  auto& watches = sat::SolverAudit::watchesMut(s);
  bool corrupted = false;
  for (auto& ws : watches) {
    if (!ws.empty()) {
      // A fresh variable's literal can appear in no clause.
      const sat::Var v = s.newVar();
      ws.front().blocker = sat::SLit::make(v, false);
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const AuditReport report = check::auditSolver(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("watch-blocker")) << report.summary();
}

TEST(SatAudit, DetectsLostWatcher) {
  sat::Solver s;
  loadChainCnf(s);
  auto& watches = sat::SolverAudit::watchesMut(s);
  bool corrupted = false;
  for (auto& ws : watches) {
    if (!ws.empty()) {
      ws.pop_back();
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const AuditReport report = check::auditSolver(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("watch-count")) << report.summary();
}

TEST(SatAudit, DetectsStaleClauseRefAfterGc) {
  sat::Solver s;
  loadChainCnf(s);
  auto& refs = sat::SolverAudit::clauseRefsMut(s);
  ASSERT_GE(refs.size(), 2u);
  // Simulate a ref the garbage collector failed to rebind: point clause 0
  // at clause 1's slot. The slot stores id 1, so ref 0 is visibly stale.
  refs[0] = refs[1];
  const AuditReport report = check::auditSolver(s);
  ASSERT_FALSE(report.ok());
  // The slot stores id 1, so ref 0 is stale (and drops out of the live set —
  // its watchers then dangle); the alias rule is for two *live* ids sharing
  // a slot, which an id-mismatch ref by definition cannot be.
  EXPECT_TRUE(report.hasRule("stale-ref")) << report.summary();
  EXPECT_TRUE(report.hasRule("watch-clause")) << report.summary();
}

TEST(SatAudit, DetectsAssignmentTrailDivergence) {
  sat::Solver s;
  loadChainCnf(s);
  // A unit clause enqueues its literal on the root trail immediately;
  // silently unassign the variable behind the trail's back.
  const sat::Var u = s.newVar();
  s.addClause({sat::SLit::make(u, false)});
  ASSERT_FALSE(sat::SolverAudit::trail(s).empty());
  sat::SolverAudit::assignsMut(s)[u] = sat::LBool::Undef;
  const AuditReport report = check::auditSolver(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("trail-value") ||
              report.hasRule("trail-coverage"))
      << report.summary();
}

TEST(SatAudit, DetectsStaleReasonOnUnassignedVar) {
  sat::Solver s;
  loadChainCnf(s);
  const sat::Var v = s.newVar();
  auto& reasons = sat::SolverAudit::reasonsMut(s);
  reasons[v] = sat::SolverAudit::clauseRefs(s).front();
  const AuditReport report = check::auditSolver(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("reason-stale")) << report.summary();
}

TEST(SatAudit, DetectsVsidsHeapCorruption) {
  sat::Solver s;
  loadChainCnf(s);
  auto& activity =
      sat::PickerAudit::activitiesMut(sat::SolverAudit::pickerMut(s));
  ASSERT_GE(activity.size(), 3u);
  // All activities are equal on a fresh solver; boosting a non-root key
  // makes it order before its heap parent.
  activity.back() = 1e50;
  const AuditReport report = check::auditSolver(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("vsids-heap")) << report.summary();
}

TEST(SatAudit, DetectsLearnedCountDrift) {
  sat::Solver s;
  loadChainCnf(s);
  sat::SolverAudit::numLearnedMut(s) += 5;
  const AuditReport report = check::auditSolver(s);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("learned-count")) << report.summary();
}

TEST(SatAudit, ParanoidGlobalLevelArmsGcHook) {
  ASSERT_EQ(check::globalLevel(), Level::kOff);
  check::setGlobalLevel(Level::kParanoid);
  EXPECT_EQ(check::globalLevel(), Level::kParanoid);

  // Clean solver: the post-GC audit passes silently.
  sat::Solver clean;
  loadChainCnf(clean);
  EXPECT_NO_THROW(clean.garbageCollect());

  // Corrupted solver: the post-GC audit raises.
  sat::Solver bad;
  loadChainCnf(bad);
  sat::SolverAudit::numLearnedMut(bad) += 1;
  EXPECT_THROW(bad.garbageCollect(), CheckError);

  check::setGlobalLevel(Level::kOff);
  EXPECT_EQ(check::globalLevel(), Level::kOff);
  // Disarmed: the corrupted solver no longer throws.
  sat::Solver bad2;
  loadChainCnf(bad2);
  sat::SolverAudit::numLearnedMut(bad2) += 1;
  EXPECT_NO_THROW(bad2.garbageCollect());
}

// --- patch/engine contract checker -------------------------------------------

benchgen::UnitSpec smallSpec() {
  benchgen::UnitSpec spec;
  spec.name = "check_unit";
  spec.family = benchgen::Family::Adder;
  spec.size_param = 4;
  spec.num_targets = 2;
  spec.seed = 11;
  return spec;
}

TEST(PatchAudit, EngineResultSatisfiesContract) {
  const EcoInstance inst = benchgen::generateUnit(smallSpec());
  EcoOptions opt;
  opt.num_threads = 1;
  opt.check_level = Level::kStage;  // engine runs its own gates too
  const PatchResult r = EcoEngine(opt).run(inst);
  ASSERT_TRUE(r.success) << r.message;
  check::PatchAuditOptions pao;
  const AuditReport report = check::auditPatchContract(inst, r, pao);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks_run, 0u);
  // Failed results carry no contract.
  PatchResult failed;
  failed.success = false;
  EXPECT_TRUE(check::auditPatchContract(inst, failed).ok());
}

TEST(PatchAudit, DetectsCostAndSizeMisreport) {
  const EcoInstance inst = benchgen::generateUnit(smallSpec());
  EcoOptions opt;
  opt.num_threads = 1;
  PatchResult r = EcoEngine(opt).run(inst);
  ASSERT_TRUE(r.success) << r.message;

  PatchResult bad_cost = r;
  bad_cost.cost += 1.0;
  AuditReport report = check::auditPatchContract(inst, bad_cost);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("cost-mismatch")) << report.summary();

  PatchResult bad_size = r;
  bad_size.size += 3;
  report = check::auditPatchContract(inst, bad_size);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("size-mismatch")) << report.summary();
}

TEST(PatchAudit, DetectsIllegalBases) {
  const EcoInstance inst = benchgen::generateUnit(smallSpec());
  EcoOptions opt;
  opt.num_threads = 1;
  PatchResult r = EcoEngine(opt).run(inst);
  ASSERT_TRUE(r.success) << r.message;
  ASSERT_FALSE(r.base.empty());

  PatchResult unknown = r;
  unknown.base[0].name = "no_such_signal";
  AuditReport report = check::auditPatchContract(inst, unknown);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("base-unknown") || report.hasRule("base-align"))
      << report.summary();

  // A base reading a target pseudo-PI closes a combinational loop.
  PatchResult loop = r;
  loop.base[0].name = inst.targetName(0);
  loop.base[0].lit = inst.faulty.piLit(inst.targetPi(0));
  report = check::auditPatchContract(inst, loop);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("base-loop")) << report.summary();

  PatchResult bad_weight = r;
  bad_weight.base[0].weight += 0.5;
  report = check::auditPatchContract(inst, bad_weight);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("base-weight")) << report.summary();
}

TEST(PatchAudit, DetectsUndeclaredPatchOutput) {
  const EcoInstance inst = benchgen::generateUnit(smallSpec());
  EcoOptions opt;
  opt.num_threads = 1;
  PatchResult r = EcoEngine(opt).run(inst);
  ASSERT_TRUE(r.success) << r.message;
  r.patch.addPo(kFalse, "rogue_output");
  const AuditReport report = check::auditPatchContract(inst, r);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.hasRule("po-targets")) << report.summary();
}

// --- engine checkpoints ------------------------------------------------------

TEST(EngineAudit, StageCheckpointRejectsCorruptedInstance) {
  EcoInstance inst = benchgen::generateUnit(smallSpec());
  // Corrupt the faulty AIG's strash table; only an audited run notices.
  auto& strash = AigAudit::strashMut(inst.faulty);
  ASSERT_FALSE(strash.empty());
  strash.erase(strash.begin());

  EcoOptions unchecked;
  unchecked.num_threads = 1;
  unchecked.check_level = Level::kOff;
  const PatchResult blind = EcoEngine(unchecked).run(inst);
  EXPECT_TRUE(blind.success) << blind.message;  // strash unused in the run

  EcoOptions checked = unchecked;
  checked.check_level = Level::kStage;
  const PatchResult caught = EcoEngine(checked).run(inst);
  ASSERT_FALSE(caught.success);
  EXPECT_EQ(caught.message.rfind("internal error: invariant audit", 0), 0u)
      << caught.message;
  EXPECT_NE(caught.audit_json.find("strash-missing"), std::string::npos)
      << caught.audit_json;
}

TEST(EngineAudit, ParanoidRunPassesCleanInstance) {
  const EcoInstance inst = benchgen::generateUnit(smallSpec());
  EcoOptions opt;
  opt.num_threads = 1;
  opt.check_level = Level::kParanoid;
  const PatchResult r = EcoEngine(opt).run(inst);
  check::setGlobalLevel(Level::kOff);  // disarm the process-global hook
  ASSERT_TRUE(r.success) << r.message;
  EXPECT_TRUE(r.audit_json.empty());
}

// --- QA harness integration --------------------------------------------------

TEST(QaAudit, HarnessAuditCatchesMisreportedCost) {
  const EcoInstance inst = benchgen::generateUnit(smallSpec());
  qa::CheckOptions options;
  options.audit_level = Level::kStage;
  options.plant_bug = qa::PlantedBug::MisreportCost;
  const qa::InstanceVerdict verdict =
      qa::checkInstance(inst, /*known_rectifiable=*/true, options);
  ASSERT_FALSE(verdict.ok);
  const bool contract_hit =
      std::any_of(verdict.violations.begin(), verdict.violations.end(),
                  [](const std::string& v) {
                    return v.find("contract audit") != std::string::npos &&
                           v.find("cost-mismatch") != std::string::npos;
                  });
  EXPECT_TRUE(contract_hit) << (verdict.violations.empty()
                                    ? std::string("no violations")
                                    : verdict.violations.front());
}

TEST(QaAudit, HarnessAuditPassesCleanRuns) {
  const EcoInstance inst = benchgen::generateUnit(smallSpec());
  qa::CheckOptions options;
  options.audit_level = Level::kStage;
  const qa::InstanceVerdict verdict =
      qa::checkInstance(inst, /*known_rectifiable=*/true, options);
  EXPECT_TRUE(verdict.ok) << (verdict.violations.empty()
                                  ? std::string()
                                  : verdict.violations.front());
}

// --- paranoid smoke over the regression corpus -------------------------------

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CheckSmoke, ParanoidAuditOverRegressionCorpus) {
  namespace fs = std::filesystem;
  const fs::path corpus(ECO_CORPUS_DIR);
  if (corpus.empty() || !fs::is_directory(corpus)) {
    GTEST_SKIP() << "no corpus directory";
  }
  std::vector<fs::path> cases;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (entry.is_directory() && fs::exists(entry.path() / "faulty.v")) {
      cases.push_back(entry.path());
    }
  }
  std::sort(cases.begin(), cases.end());
  ASSERT_FALSE(cases.empty()) << "corpus directory holds no instances";
  for (const fs::path& dir : cases) {
    SCOPED_TRACE(dir.filename().string());
    const EcoInstance inst = io::loadInstance(
        slurp(dir / "faulty.v"), slurp(dir / "golden.v"),
        slurp(dir / "weight.txt"), dir.filename().string());
    EcoOptions opt;
    opt.num_threads = 1;
    opt.check_level = Level::kParanoid;
    const PatchResult r = EcoEngine(opt).run(inst);
    // Corpus instances need not be rectifiable, but a paranoid run must
    // never trip its own invariants.
    EXPECT_NE(r.message.rfind("internal error", 0), 0u) << r.message;
    EXPECT_TRUE(r.audit_json.empty()) << r.audit_json;
  }
  check::setGlobalLevel(Level::kOff);
}

}  // namespace
}  // namespace eco
