// End-to-end tests for the live-introspection surface: the embeddable
// stats server (/metrics, /status), the status emitter thread, and the
// postmortem dump paths (CheckError at the throw site; a fatal signal in
// a forked child through the crash handlers).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "base/check.h"
#include "obs/obs.h"

namespace eco::obs {
namespace {

// Minimal HTTP client: one GET, read until the peer closes.
std::string httpGet(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target + " HTTP/1.1\r\n"
                          "Host: 127.0.0.1\r\nConnection: close\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(StatsServer, ServesMetricsAndStatus) {
  StatsServer server;
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;  // 0 = ephemeral port
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string metrics = httpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(body(metrics).find("ecopatch_"), std::string::npos);

  const std::string status = httpGet(server.port(), "/status");
  EXPECT_NE(status.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(status.find("application/json"), std::string::npos);
  std::string verror;
  EXPECT_TRUE(validateStatusJson(body(status), &verror)) << verror;

  EXPECT_NE(httpGet(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(StatsServer, RestartsAndRefusesDoubleStart) {
  StatsServer server;
  ASSERT_TRUE(server.start(0));
  const std::uint16_t first = server.port();
  EXPECT_FALSE(server.start(0)) << "second start must be refused";
  EXPECT_EQ(server.port(), first);
  server.stop();
  ASSERT_TRUE(server.start(0));
  EXPECT_FALSE(body(httpGet(server.port(), "/metrics")).empty());
  server.stop();
}

TEST(StatusEmitter, StreamsValidStatusLines) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(startStatusEmitter(fds[1], 0.05));
  EXPECT_FALSE(startStatusEmitter(fds[1], 0.05)) << "already running";
  requestStatusDump();  // on-demand line in addition to the periodic ones
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stopStatusEmitter();
  ::close(fds[1]);

  std::string stream;
  char buf[65536];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    stream.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);

  std::istringstream lines(stream);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++count;
    std::string error;
    EXPECT_TRUE(validateStatusJson(line, &error)) << error << "\n" << line;
  }
  // ~250ms at a 50ms period plus the requested dump and the final line.
  EXPECT_GE(count, 3u);
}

TEST(Postmortem, CheckErrorDumpsAtThrowSite) {
  const std::string path = ::testing::TempDir() + "/eco_check_postmortem.json";
  std::remove(path.c_str());
  setPostmortemPath(path.c_str());

  // The dump happens inside checkFailed, before unwinding: the stage
  // label active at the throw site must appear in the postmortem even
  // though this scope is gone by the time the exception is caught.
  EXPECT_THROW(
      {
        ProgressScope stage("engine.stage", "postmortem-test-stage");
        ECO_CHECK_MSG(false, "planted failure");
      },
      CheckError);
  setPostmortemPath(nullptr);

  const std::string json = readFile(path);
  ASSERT_FALSE(json.empty()) << "no postmortem written to " << path;
  std::string error;
  EXPECT_TRUE(validatePostmortemJson(json, &error)) << error;

  json::Value doc;
  ASSERT_TRUE(json::parse(json, &doc, &error)) << error;
  EXPECT_EQ(doc.find("reason")->string, "check-error");
  EXPECT_NE(doc.find("detail")->string.find("planted failure"),
            std::string::npos);
#if ECO_OBS_ENABLED
  const json::Value* labels = doc.find("labels");
  ASSERT_NE(labels->find("engine.stage"), nullptr);
  EXPECT_EQ(labels->find("engine.stage")->string, "postmortem-test-stage");
#endif
  std::remove(path.c_str());
}

TEST(Postmortem, FatalSignalInChildDumpsViaCrashHandlers) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer runtimes intercept fatal signals";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "sanitizer runtimes intercept fatal signals";
#endif
#endif
  const std::string path = ::testing::TempDir() + "/eco_crash_postmortem.json";
  std::remove(path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: configure the dump, record some activity, then die the way
    // a real crash does. _exit on any unexpected path so gtest state
    // never doubles up.
    setPostmortemPath(path.c_str());
    installCrashHandlers();
    setLabel("engine.stage", "child-crash-stage");
    { Span s("child.crash.span", Span::Mode::kTimed); }
    ::raise(SIGSEGV);
    ::_exit(97);  // unreachable if the handler re-raises correctly
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // The handler re-raises with default disposition: death by SIGSEGV,
  // not a clean exit.
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with "
                                   << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string json = readFile(path);
  ASSERT_FALSE(json.empty()) << "crash handler wrote no postmortem";
  std::string error;
  EXPECT_TRUE(validatePostmortemJson(json, &error)) << error;
  json::Value doc;
  ASSERT_TRUE(json::parse(json, &doc, &error)) << error;
  EXPECT_EQ(doc.find("reason")->string, "signal:SIGSEGV");
#if ECO_OBS_ENABLED
  EXPECT_EQ(doc.find("labels")->find("engine.stage")->string,
            "child-crash-stage");
  bool saw_span = false;
  for (const json::Value& t : doc.find("threads")->array) {
    for (const json::Value& e : t.find("events")->array) {
      if (e.find("name")->string == "child.crash.span") saw_span = true;
    }
  }
  EXPECT_TRUE(saw_span);
#endif
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eco::obs
