// Tests for whole-instance save/load in the contest file layout, including
// the end-to-end property: save -> load -> rectify -> verified patch.

#include <gtest/gtest.h>

#include <stdexcept>

#include "benchgen/benchgen.h"
#include "eco/engine.h"
#include "io/instance_io.h"

namespace eco::io {
namespace {

TEST(InstanceIo, SaveLoadRoundTrip) {
  benchgen::UnitSpec spec{.name = "rt",
                          .family = benchgen::Family::Comparator,
                          .size_param = 4,
                          .num_targets = 2,
                          .seed = 99};
  const EcoInstance orig = benchgen::generateUnit(spec);
  const InstanceFiles files = saveInstance(orig);
  const EcoInstance back =
      loadInstance(files.faulty_v, files.golden_v, files.weights, "rt");

  EXPECT_EQ(back.num_x, orig.num_x);
  EXPECT_EQ(back.numTargets(), orig.numTargets());
  EXPECT_EQ(back.faulty.numPos(), orig.faulty.numPos());
  // Functions agree (targets tied identically on both sides).
  for (std::uint32_t m = 0; m < (1u << std::min(orig.faulty.numPis(), 12u));
       ++m) {
    std::vector<bool> in(orig.faulty.numPis());
    for (std::uint32_t i = 0; i < in.size(); ++i) in[i] = (m >> i) & 1;
    ASSERT_EQ(orig.faulty.evaluate(in), back.faulty.evaluate(in)) << m;
  }
  // Weights survive for every carried name.
  for (const auto& [name, w] : back.weights) {
    const auto it = orig.weights.find(name);
    if (it != orig.weights.end()) {
      EXPECT_DOUBLE_EQ(w, it->second) << name;
    }
  }
}

TEST(InstanceIo, LoadedInstanceRectifies) {
  benchgen::UnitSpec spec{.name = "solve",
                          .family = benchgen::Family::Alu,
                          .size_param = 3,
                          .num_targets = 2,
                          .seed = 4242,
                          .pi_weight = 12};
  const EcoInstance orig = benchgen::generateUnit(spec);
  const InstanceFiles files = saveInstance(orig);
  const EcoInstance inst =
      loadInstance(files.faulty_v, files.golden_v, files.weights, "solve");
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success) << r.message;
  // Weight continuity: the optimizer can see the same cheap internal
  // signals by name, so the final cost must be well below all-PI cost.
  double pi_cost = 0;
  for (std::uint32_t i = 0; i < inst.num_x; ++i) {
    pi_cost += inst.weightOf(inst.faulty.piName(i));
  }
  EXPECT_LT(r.cost, pi_cost);
}

TEST(InstanceIo, RejectsMismatchedInputs) {
  const std::string f = R"(
module top ( a, o );
input a;
output o;
wire t0;
buf g1 ( o, t0 );
endmodule
)";
  const std::string g = R"(
module top ( b, o );
input b;
output o;
buf g1 ( o, b );
endmodule
)";
  EXPECT_THROW(loadInstance(f, g, ""), std::runtime_error);
}

TEST(InstanceIo, RejectsGoldenWithFloatingWires) {
  const std::string f = R"(
module top ( a, o );
input a;
output o;
wire t0;
buf g1 ( o, t0 );
endmodule
)";
  const std::string g = R"(
module top ( a, o );
input a;
output o;
wire ghost;
buf g1 ( o, a );
endmodule
)";
  EXPECT_THROW(loadInstance(f, g, ""), std::runtime_error);
}

TEST(InstanceIo, RejectsTargetlessFaulty) {
  const std::string f = R"(
module top ( a, o );
input a;
output o;
buf g1 ( o, a );
endmodule
)";
  EXPECT_THROW(loadInstance(f, f, ""), std::runtime_error);
}

}  // namespace
}  // namespace eco::io
