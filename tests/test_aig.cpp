// Unit tests for the AIG data structure and cone operations.

#include <gtest/gtest.h>

#include "aig/aig.h"
#include "aig/aig_ops.h"

namespace eco {
namespace {

TEST(Aig, ConstantsAndFolding) {
  Aig aig;
  const Lit a = aig.addPi("a");
  EXPECT_EQ(aig.addAnd(a, kTrue), a);
  EXPECT_EQ(aig.addAnd(a, kFalse), kFalse);
  EXPECT_EQ(aig.addAnd(a, a), a);
  EXPECT_EQ(aig.addAnd(a, !a), kFalse);
  EXPECT_EQ(aig.addAnd(kTrue, kTrue), kTrue);
}

TEST(Aig, StructuralHashing) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit n1 = aig.addAnd(a, b);
  const Lit n2 = aig.addAnd(b, a);  // commuted
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(aig.numAnds(), 1u);
}

TEST(Aig, EvaluateBasicGates) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  aig.addPo(aig.addAnd(a, b), "and");
  aig.addPo(aig.mkOr(a, b), "or");
  aig.addPo(aig.mkXor(a, b), "xor");
  aig.addPo(aig.mkEquiv(a, b), "xnor");
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      const auto out = aig.evaluate({av != 0, bv != 0});
      EXPECT_EQ(out[0], (av & bv) != 0);
      EXPECT_EQ(out[1], (av | bv) != 0);
      EXPECT_EQ(out[2], (av ^ bv) != 0);
      EXPECT_EQ(out[3], (av ^ bv) == 0);
    }
  }
}

TEST(Aig, MuxSemantics) {
  Aig aig;
  const Lit s = aig.addPi("s");
  const Lit t = aig.addPi("t");
  const Lit e = aig.addPi("e");
  aig.addPo(aig.mkMux(s, t, e), "y");
  for (int sv = 0; sv < 2; ++sv) {
    for (int tv = 0; tv < 2; ++tv) {
      for (int ev = 0; ev < 2; ++ev) {
        const auto out = aig.evaluate({sv != 0, tv != 0, ev != 0});
        EXPECT_EQ(out[0], sv ? (tv != 0) : (ev != 0));
      }
    }
  }
}

TEST(AigOps, CopyConesAcrossGraphs) {
  Aig src;
  const Lit a = src.addPi("a");
  const Lit b = src.addPi("b");
  const Lit f = src.mkXor(a, b);
  src.addPo(f, "f");

  Aig dst;
  const Lit p = dst.addPi("p");
  const Lit q = dst.addPi("q");
  const std::vector<Lit> roots{f};
  const std::vector<Lit> pi_map{p, q};
  const std::vector<Lit> out = copyCones(src, roots, pi_map, dst);
  dst.addPo(out[0], "g");
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      EXPECT_EQ(dst.evaluate({av != 0, bv != 0})[0], (av ^ bv) != 0);
    }
  }
}

TEST(AigOps, CopyConesHonorsBoundary) {
  Aig src;
  const Lit a = src.addPi("a");
  const Lit b = src.addPi("b");
  const Lit inner = src.addAnd(a, b);
  const Lit outer = src.mkOr(inner, a);
  Aig dst;
  const Lit cut = dst.addPi("cut");
  VarMap map;
  map[inner.var()] = cut;
  map[a.var()] = dst.addPi("a2");
  // b is only reachable through `inner`; boundary must prevent expansion.
  const std::vector<Lit> roots{outer};
  const std::vector<Lit> out = copyCones(src, roots, map, dst);
  dst.addPo(out[0], "y");
  EXPECT_EQ(dst.numPis(), 2u);
  // y = cut | a2
  EXPECT_EQ(dst.evaluate({true, false})[0], true);
  EXPECT_EQ(dst.evaluate({false, true})[0], true);
  EXPECT_EQ(dst.evaluate({false, false})[0], false);
}

TEST(AigOps, SubstituteCofactorsPseudoPi) {
  Aig aig;
  const Lit x = aig.addPi("x");
  const Lit t = aig.addPi("t");
  const Lit f = aig.mkXor(x, t);
  VarMap repl0, repl1;
  repl0[t.var()] = kFalse;
  repl1[t.var()] = kTrue;
  const std::vector<Lit> roots{f};
  const Lit f0 = substitute(aig, roots, repl0)[0];
  const Lit f1 = substitute(aig, roots, repl1)[0];
  aig.addPo(f0, "f0");
  aig.addPo(f1, "f1");
  for (int xv = 0; xv < 2; ++xv) {
    const auto out = aig.evaluate({xv != 0, false});
    EXPECT_EQ(out[0], xv != 0);       // x xor 0
    EXPECT_EQ(out[1], xv == 0);       // x xor 1
  }
}

TEST(AigOps, SupportAndConeCount) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit c = aig.addPi("c");
  (void)c;
  const Lit f = aig.addAnd(a, b);
  const std::vector<Lit> roots{f};
  const auto support = supportPis(aig, roots);
  EXPECT_EQ(support.size(), 2u);
  EXPECT_EQ(coneAndCount(aig, roots), 1u);
}

TEST(AigOps, TransitiveFanoutMask) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit n1 = aig.addAnd(a, b);
  const Lit n2 = aig.addAnd(n1, a);
  const Lit n3 = aig.addAnd(b, !a);
  const std::vector<std::uint32_t> srcs{n1.var()};
  const auto mask = transitiveFanoutMask(aig, srcs);
  EXPECT_TRUE(mask[n1.var()]);
  EXPECT_TRUE(mask[n2.var()]);
  EXPECT_FALSE(mask[n3.var()]);
  EXPECT_FALSE(mask[a.var()]);
}

TEST(AigOps, CleanupDropsDeadLogic) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit live = aig.addAnd(a, b);
  aig.mkXor(a, b);  // dead
  aig.addPo(live, "y");
  const Aig swept = cleanup(aig);
  EXPECT_EQ(swept.numAnds(), 1u);
  EXPECT_EQ(swept.numPis(), 2u);
  EXPECT_EQ(swept.numPos(), 1u);
}

TEST(AigOps, StrashEquivalentDetectsSameFunctionStructure) {
  Aig a1;
  {
    const Lit x = a1.addPi("x");
    const Lit y = a1.addPi("y");
    a1.addPo(a1.addAnd(x, y), "o");
  }
  Aig a2;
  {
    const Lit x = a2.addPi("x");
    const Lit y = a2.addPi("y");
    a2.addPo(a2.addAnd(y, x), "o");
  }
  EXPECT_TRUE(strashEquivalent(a1, a2));
  Aig a3;
  {
    const Lit x = a3.addPi("x");
    const Lit y = a3.addPi("y");
    a3.addPo(a3.mkOr(x, y), "o");
  }
  EXPECT_FALSE(strashEquivalent(a1, a3));
}

TEST(Aig, NamedSignals) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit n = aig.addAnd(a, b);
  aig.setSignalName(n, "net5");
  ASSERT_TRUE(aig.findSignal("net5").has_value());
  EXPECT_EQ(*aig.findSignal("net5"), n);
  EXPECT_FALSE(aig.findSignal("nope").has_value());
}

}  // namespace
}  // namespace eco
