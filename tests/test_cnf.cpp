// Tests for the Tseitin encoder: SAT answers over encoded cones must agree
// with exhaustive evaluation of the AIG.

#include <gtest/gtest.h>

#include "aig/aig.h"
#include "base/rng.h"
#include "cnf/cnf.h"
#include "sat/solver.h"

namespace eco {
namespace {

using sat::LBool;
using sat::SLit;
using sat::Status;

TEST(Cnf, EncodeSimpleCone) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit f = aig.mkXor(a, b);

  sat::Solver solver;
  cnf::SolverSink sink(solver);
  cnf::CnfMap map;
  const sat::Var va = solver.newVar();
  const sat::Var vb = solver.newVar();
  map[a.var()] = SLit::make(va, false);
  map[b.var()] = SLit::make(vb, false);
  const SLit fl = cnf::encodeCone(aig, f, map, sink);

  // f & a & b must be unsat; f & a & !b sat.
  EXPECT_EQ(solver.solve({fl, SLit::make(va, false), SLit::make(vb, false)}),
            Status::Unsat);
  EXPECT_EQ(solver.solve({fl, SLit::make(va, false), SLit::make(vb, true)}),
            Status::Sat);
}

TEST(Cnf, ConstantRoots) {
  Aig aig;
  sat::Solver solver;
  cnf::SolverSink sink(solver);
  cnf::CnfMap map;
  const SLit f = cnf::encodeCone(aig, kFalse, map, sink);
  const SLit t = cnf::encodeCone(aig, kTrue, map, sink);
  EXPECT_EQ(solver.solve({f}), Status::Unsat);
  EXPECT_EQ(solver.solve({t}), Status::Sat);
}

TEST(Cnf, BoundaryNodesActAsLeaves) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit inner = aig.addAnd(a, b);
  const Lit outer = aig.mkOr(inner, !b);

  sat::Solver solver;
  cnf::SolverSink sink(solver);
  cnf::CnfMap map;
  const sat::Var vcut = solver.newVar();
  const sat::Var vb = solver.newVar();
  map[inner.var()] = SLit::make(vcut, false);  // cut: inner is free
  map[b.var()] = SLit::make(vb, false);
  const SLit out = cnf::encodeCone(aig, outer, map, sink);
  // With cut=0, b=1: outer = 0 | !1 = 0.
  EXPECT_EQ(
      solver.solve({out, SLit::make(vcut, true), SLit::make(vb, false)}),
      Status::Unsat);
  // a was never needed: the encoder must not have required its mapping.
  SUCCEED();
}

// Property: random cone, every minterm agrees between SAT (via assumptions)
// and direct evaluation.
class CnfRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CnfRandom, AgreesWithEvaluation) {
  Rng rng(GetParam());
  Aig aig;
  const std::uint32_t n = 5;
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < n; ++i) {
    pool.push_back(aig.addPi("x" + std::to_string(i)));
  }
  for (int i = 0; i < 40; ++i) {
    const Lit x = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit y = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    pool.push_back(aig.addAnd(x, y));
  }
  const Lit f = pool.back() ^ rng.chance(1, 2);
  aig.addPo(f, "f");

  sat::Solver solver;
  cnf::SolverSink sink(solver);
  cnf::CnfMap map;
  std::vector<sat::Var> vars;
  for (std::uint32_t i = 0; i < n; ++i) {
    vars.push_back(solver.newVar());
    map[aig.piLit(i).var()] = SLit::make(vars[i], false);
  }
  const SLit fl = cnf::encodeCone(aig, f, map, sink);

  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    std::vector<bool> in(n);
    std::vector<SLit> assumptions;
    for (std::uint32_t i = 0; i < n; ++i) {
      in[i] = (m >> i) & 1;
      assumptions.push_back(SLit::make(vars[i], !in[i]));
    }
    const bool expect = aig.evaluate(in)[0];
    assumptions.push_back(expect ? fl : ~fl);
    ASSERT_EQ(solver.solve(assumptions), Status::Sat) << "m=" << m;
    assumptions.back() = expect ? ~fl : fl;
    ASSERT_EQ(solver.solve(assumptions), Status::Unsat) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CnfRandom, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace eco
