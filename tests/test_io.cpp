// Tests for the structural Verilog parser/writer and weight files.

#include <gtest/gtest.h>

#include <stdexcept>

#include "aig/aig_ops.h"
#include "io/verilog.h"

namespace eco::io {
namespace {

TEST(Verilog, ParseSimpleModule) {
  const std::string src = R"(
// full adder
module fa ( a, b, cin, s, cout );
input a, b, cin;
output s, cout;
wire w1, w2, w3;
xor g1 ( w1, a, b );
xor g2 ( s, w1, cin );
and g3 ( w2, a, b );
and g4 ( w3, w1, cin );
or  g5 ( cout, w2, w3 );
endmodule
)";
  const Netlist nl = parseVerilog(src);
  EXPECT_EQ(nl.module_name, "fa");
  EXPECT_EQ(nl.inputs.size(), 3u);
  EXPECT_EQ(nl.outputs.size(), 2u);
  EXPECT_TRUE(nl.targets.empty());
  // Semantics: full adder truth table.
  for (int m = 0; m < 8; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1;
    const auto out = nl.aig.evaluate({a, b, c});
    EXPECT_EQ(out[0], (a ^ b ^ c) != 0);
    EXPECT_EQ(out[1], (a + b + c) >= 2);
  }
}

TEST(Verilog, FloatingWiresBecomeTargets) {
  const std::string src = R"(
module f ( a, o );
input a;
output o;
wire t_0, w1;
and g1 ( w1, a, t_0 );
buf g2 ( o, w1 );
endmodule
)";
  const Netlist nl = parseVerilog(src);
  ASSERT_EQ(nl.targets.size(), 1u);
  EXPECT_EQ(nl.targets[0], "t_0");
  EXPECT_EQ(nl.aig.numPis(), 2u);  // a + floating t_0
  // o = a & t_0.
  EXPECT_EQ(nl.aig.evaluate({true, true})[0], true);
  EXPECT_EQ(nl.aig.evaluate({true, false})[0], false);
}

TEST(Verilog, GateVariety) {
  const std::string src = R"(
module g ( a, b, o1, o2, o3, o4, o5 );
input a, b;
output o1, o2, o3, o4, o5;
nand n1 ( o1, a, b );
nor n2 ( o2, a, b );
xnor n3 ( o3, a, b );
not n4 ( o4, a );
and n5 ( o5, a, b, a );
endmodule
)";
  const Netlist nl = parseVerilog(src);
  for (int m = 0; m < 4; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1;
    const auto o = nl.aig.evaluate({a, b});
    EXPECT_EQ(o[0], !(a && b));
    EXPECT_EQ(o[1], !(a || b));
    EXPECT_EQ(o[2], a == b);
    EXPECT_EQ(o[3], !a);
    EXPECT_EQ(o[4], a && b);
  }
}

TEST(Verilog, AssignAndConstants) {
  const std::string src = R"(
module g ( a, o1, o2, o3 );
input a;
output o1, o2, o3;
wire w;
assign w = ~a;
assign o1 = w;
and g1 ( o2, a, 1'b1 );
or g2 ( o3, a, 1'b0 );
endmodule
)";
  const Netlist nl = parseVerilog(src);
  EXPECT_EQ(nl.aig.evaluate({true})[0], false);
  EXPECT_EQ(nl.aig.evaluate({true})[1], true);
  EXPECT_EQ(nl.aig.evaluate({false})[2], false);
}

TEST(Verilog, GatesOutOfOrder) {
  const std::string src = R"(
module g ( a, b, o );
input a, b;
output o;
wire w1, w2;
or g2 ( o, w1, w2 );
and g1 ( w1, a, b );
and g3 ( w2, a, a );
endmodule
)";
  const Netlist nl = parseVerilog(src);
  EXPECT_EQ(nl.aig.evaluate({true, false})[0], true);
  EXPECT_EQ(nl.aig.evaluate({false, true})[0], false);
}

TEST(Verilog, ReconvergentFaninIsNotACycle) {
  // Two fanins of one gate where the later one depends on the earlier one:
  // a naive work-stack DFS misreports this diamond as a cycle.
  const std::string src = R"(
module g ( a, b, o );
input a, b;
output o;
wire n1, n2;
and g3 ( o, n1, n2 );
and g1 ( n1, a, b );
not g2 ( n2, n1 );
endmodule
)";
  const Netlist nl = parseVerilog(src);
  // o = (a&b) & !(a&b) = 0.
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(nl.aig.evaluate({(m & 1) != 0, (m & 2) != 0})[0], false);
  }
}

TEST(Verilog, RejectsCycle) {
  const std::string src = R"(
module g ( a, o );
input a;
output o;
wire w1, w2;
and g1 ( w1, w2, a );
and g2 ( w2, w1, a );
buf g3 ( o, w1 );
endmodule
)";
  EXPECT_THROW(parseVerilog(src), std::runtime_error);
}

TEST(Verilog, RejectsMultipleDrivers) {
  const std::string src = R"(
module g ( a, o );
input a;
output o;
and g1 ( o, a, a );
or g2 ( o, a, a );
endmodule
)";
  EXPECT_THROW(parseVerilog(src), std::runtime_error);
}

TEST(Verilog, RoundTripPreservesFunction) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit c = aig.addPi("c");
  aig.addPo(aig.mkOr(aig.mkXor(a, b), aig.addAnd(b, !c)), "y0");
  aig.addPo(!aig.addAnd(a, c), "y1");
  aig.addPo(kTrue, "y2");

  const std::string text = writeVerilog(aig, "rt");
  const Netlist back = parseVerilog(text);
  ASSERT_EQ(back.aig.numPis(), 3u);
  ASSERT_EQ(back.aig.numPos(), 3u);
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> in{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    EXPECT_EQ(aig.evaluate(in), back.aig.evaluate(in)) << "m=" << m;
  }
}

TEST(Verilog, WriterAvoidsNameCollisionWithPorts) {
  // A PI deliberately named like a generated internal wire ("n3"): the
  // writer must rename its internal wires to avoid shadowing the input.
  Aig aig;
  const Lit a = aig.addPi("n3");
  const Lit b = aig.addPi("n4");
  aig.addPo(aig.mkXor(a, b), "t0");
  aig.addPo(aig.addAnd(a, !b), "t1");
  const Netlist back = parseVerilog(writeVerilog(aig, "patch"));
  for (int m = 0; m < 4; ++m) {
    const std::vector<bool> in{(m & 1) != 0, (m & 2) != 0};
    EXPECT_EQ(aig.evaluate(in), back.aig.evaluate(in)) << "m=" << m;
  }
}

TEST(Verilog, RejectsGateDrivingAnInput) {
  const std::string src = R"(
module g ( a, o );
input a;
output o;
and g1 ( a, a, a );
buf g2 ( o, a );
endmodule
)";
  EXPECT_THROW(parseVerilog(src), std::runtime_error);
}

TEST(Weights, ParseAndWrite) {
  const std::string text = "n1 4\nn2 0.5  # comment\n\n# full line comment\nn3 12\n";
  const auto w = parseWeights(text);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.at("n1"), 4);
  EXPECT_DOUBLE_EQ(w.at("n2"), 0.5);
  EXPECT_DOUBLE_EQ(w.at("n3"), 12);
  const auto round = parseWeights(writeWeights(w));
  EXPECT_EQ(round.size(), w.size());
  EXPECT_DOUBLE_EQ(round.at("n2"), 0.5);
}

TEST(Weights, RejectsNegative) {
  EXPECT_THROW(parseWeights("n1 -3\n"), std::runtime_error);
}

TEST(Weights, RejectsMissingValue) {
  EXPECT_THROW(parseWeights("n1\n"), std::runtime_error);
  EXPECT_THROW(parseWeights("n1 abc\n"), std::runtime_error);
}

TEST(Weights, RejectsNonFinite) {
  EXPECT_THROW(parseWeights("n1 inf\n"), std::runtime_error);
  EXPECT_THROW(parseWeights("n1 nan\n"), std::runtime_error);
  EXPECT_THROW(parseWeights("n1 1e999\n"), std::runtime_error);
}

TEST(Weights, RejectsTrailingGarbage) {
  EXPECT_THROW(parseWeights("n1 3 junk\n"), std::runtime_error);
  EXPECT_THROW(parseWeights("n1 3 4\n"), std::runtime_error);
  // A comment after the value is fine.
  EXPECT_DOUBLE_EQ(parseWeights("n1 3 # ok\n").at("n1"), 3);
}

}  // namespace
}  // namespace eco::io
