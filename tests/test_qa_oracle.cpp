// Unit tests for the independent QA oracle: a correct engine result passes,
// and every class of corruption — wrong function, wrong bookkeeping, illegal
// base support — is flagged.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/faults.h"
#include "eco/engine.h"
#include "qa/differential.h"
#include "qa/oracle.h"

namespace eco::qa {
namespace {

/// Golden o = a & b; faulty o = t0 (the AND was ripped out).
EcoInstance tinyInstance() {
  EcoInstance inst;
  inst.name = "oracle-tiny";
  const Lit ga = inst.golden.addPi("a");
  const Lit gb = inst.golden.addPi("b");
  inst.golden.addPo(inst.golden.addAnd(ga, gb), "o");

  const Lit fa = inst.faulty.addPi("a");
  const Lit fb = inst.faulty.addPi("b");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 2;
  inst.faulty.setSignalName(fa, "na");
  inst.faulty.setSignalName(fb, "nb");
  inst.faulty.addPo(t, "o");
  inst.weights = {{"a", 3}, {"b", 3}, {"na", 1}, {"nb", 1}};
  return inst;
}

PatchResult runEngine(const EcoInstance& inst) {
  const PatchResult r = EcoEngine().run(inst);
  EXPECT_TRUE(r.success) << r.message;
  return r;
}

bool mentions(const OracleReport& report, const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Oracle, AcceptsCorrectResult) {
  const EcoInstance inst = tinyInstance();
  const OracleReport report = checkPatch(inst, runEngine(inst));
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

TEST(Oracle, AcceptsGeneratedInstances) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const auto fi = benchgen::generateFuzzInstance(benchgen::randomFuzzSpec(seed));
    const PatchResult r = EcoEngine().run(fi.instance);
    if (!r.success) continue;  // gate-flip instances may be unrectifiable
    const OracleReport report = checkPatch(fi.instance, r);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  }
}

TEST(Oracle, CatchesFlippedPatchFunction) {
  const EcoInstance inst = tinyInstance();
  PatchResult r = runEngine(inst);
  r.patch.setPoDriver(0, !r.patch.poDriver(0));
  const OracleReport report = checkPatch(inst, r);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "differs from golden"));
}

TEST(Oracle, CatchesMisreportedCost) {
  const EcoInstance inst = tinyInstance();
  PatchResult r = runEngine(inst);
  r.cost += 1;
  const OracleReport report = checkPatch(inst, r);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "cost"));
}

TEST(Oracle, CatchesMisreportedSize) {
  const EcoInstance inst = tinyInstance();
  PatchResult r = runEngine(inst);
  r.size += 2;
  const OracleReport report = checkPatch(inst, r);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "size"));
}

TEST(Oracle, CatchesUnknownBaseName) {
  const EcoInstance inst = tinyInstance();
  PatchResult r = runEngine(inst);
  ASSERT_FALSE(r.base.empty());
  r.base[0].name = "no_such_signal";
  const OracleReport report = checkPatch(inst, r);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "not a faulty-netlist signal"));
}

TEST(Oracle, CatchesWrongBaseLiteral) {
  const EcoInstance inst = tinyInstance();
  PatchResult r = runEngine(inst);
  ASSERT_FALSE(r.base.empty());
  r.base[0].lit = Lit::fromVar(r.base[0].lit.var() + 1, false);
  const OracleReport report = checkPatch(inst, r);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "disagrees with the netlist"));
}

TEST(Oracle, CatchesBaseInsideTargetFanout) {
  // Faulty o = t0 & c, with "mid" naming that AND: mid is in t0's fanout
  // cone and must never be accepted as a patch base.
  EcoInstance inst;
  inst.name = "oracle-tfo";
  const Lit ga = inst.golden.addPi("a");
  const Lit gc = inst.golden.addPi("c");
  inst.golden.addPo(inst.golden.addAnd(ga, gc), "o");

  const Lit fa = inst.faulty.addPi("a");
  const Lit fc = inst.faulty.addPi("c");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 2;
  const Lit mid = inst.faulty.addAnd(t, fc);
  inst.faulty.setSignalName(mid, "mid");
  inst.faulty.setSignalName(fa, "na");
  inst.faulty.addPo(mid, "o");

  PatchResult r = runEngine(inst);
  ASSERT_FALSE(r.base.empty());
  r.base[0].name = "mid";
  r.base[0].lit = mid;
  r.base[0].weight = inst.weightOf("mid");
  const OracleReport report = checkPatch(inst, r);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "fanout"));
}

TEST(Oracle, CounterexampleAcceptedForTrulyBrokenInstance) {
  // Faulty po0 = !a with no target influence: unrectifiable, and any cex
  // the engine produces must survive pointwise checking.
  EcoInstance inst;
  inst.name = "oracle-cex";
  const Lit ga = inst.golden.addPi("a");
  inst.golden.addPo(ga, "o");
  const Lit fa = inst.faulty.addPi("a");
  const Lit t = inst.faulty.addPi("t0");
  (void)t;
  inst.num_x = 1;
  inst.faulty.addPo(!fa, "o");

  const PatchResult r = EcoEngine().run(inst);
  ASSERT_FALSE(r.success);
  ASSERT_FALSE(r.counterexample.empty());
  EXPECT_TRUE(checkCounterexample(inst, r.counterexample).ok);
}

TEST(Oracle, CounterexampleRefutedWhenTargetCanFix) {
  // Faulty o = t0, golden o = a: for ANY x the valuation t0 = a reproduces
  // the golden outputs, so no counterexample can be genuine.
  EcoInstance inst;
  inst.name = "oracle-badcex";
  const Lit ga = inst.golden.addPi("a");
  inst.golden.addPo(ga, "o");
  inst.faulty.addPi("a");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 1;
  inst.faulty.addPo(t, "o");

  const OracleReport report = checkCounterexample(inst, {true});
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "refuted"));
}

TEST(Oracle, CounterexampleWidthChecked) {
  const EcoInstance inst = tinyInstance();
  const OracleReport report = checkCounterexample(inst, {true, false, true});
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "bits"));
}

TEST(Differential, PlantedSemanticBugIsCaught) {
  const auto fi = benchgen::generateFuzzInstance(benchgen::randomFuzzSpec(7));
  CheckOptions options;
  options.plant_bug = PlantedBug::FlipPatchPolarity;
  const InstanceVerdict verdict =
      checkInstance(fi.instance, fi.known_rectifiable, options);
  EXPECT_FALSE(verdict.ok);
}

TEST(Differential, PlantedBookkeepingBugIsCaught) {
  const auto fi = benchgen::generateFuzzInstance(benchgen::randomFuzzSpec(7));
  CheckOptions options;
  options.plant_bug = PlantedBug::MisreportCost;
  const InstanceVerdict verdict =
      checkInstance(fi.instance, fi.known_rectifiable, options);
  EXPECT_FALSE(verdict.ok);
}

TEST(Differential, CleanInstancePassesMatrix) {
  const auto fi = benchgen::generateFuzzInstance(benchgen::randomFuzzSpec(7));
  const InstanceVerdict verdict =
      checkInstance(fi.instance, fi.known_rectifiable, CheckOptions{});
  EXPECT_TRUE(verdict.ok) << (verdict.violations.empty()
                                  ? ""
                                  : verdict.violations.front());
  EXPECT_EQ(verdict.engine_runs, defaultMatrix().size());
}

}  // namespace
}  // namespace eco::qa
