// Tests for bit-parallel simulation and FRAIG equivalence classes.

#include <gtest/gtest.h>

#include "aig/aig.h"
#include "aig/aig_ops.h"
#include "base/rng.h"
#include "fraig/fraig.h"
#include "sim/sim.h"

namespace eco {
namespace {

TEST(Sim, MatchesPointEvaluation) {
  Rng rng(7);
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit c = aig.addPi("c");
  const Lit f = aig.mkOr(aig.addAnd(a, b), aig.mkXor(b, !c));
  aig.addPo(f, "f");

  sim::PatternSet patterns(3, 2);
  patterns.randomize(rng);
  const sim::PatternSet values = sim::simulateAll(aig, patterns);
  std::vector<std::uint64_t> out(2);
  sim::litValues(values, f, out);

  for (std::uint32_t bit = 0; bit < 128; ++bit) {
    std::vector<bool> in(3);
    for (std::uint32_t p = 0; p < 3; ++p) {
      in[p] = (patterns.of(p)[bit / 64] >> (bit % 64)) & 1;
    }
    const bool expect = aig.evaluate(in)[0];
    const bool got = (out[bit / 64] >> (bit % 64)) & 1;
    ASSERT_EQ(got, expect) << "bit " << bit;
  }
}

TEST(Sim, SetBit) {
  sim::PatternSet p(1, 1);
  p.setBit(0, 5, true);
  EXPECT_EQ(p.of(0)[0], std::uint64_t{1} << 5);
  p.setBit(0, 5, false);
  EXPECT_EQ(p.of(0)[0], 0u);
}

TEST(Fraig, DetectsStructuralAndComplementEquivalences) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  // f1 = a & b; f2 = !(!a | !b) == f1 (structurally identical in an AIG,
  // so build a genuinely different realization: mux(a, b, 0)).
  const Lit f1 = aig.addAnd(a, b);
  const Lit f2 = aig.mkMux(a, b, kFalse);  // a ? b : 0 == a & b
  const Lit f3 = !aig.mkOr(!a, !b);        // strashes onto f1
  const Lit g = aig.mkOr(!a, !b);          // == !f1 (complement class)
  aig.addPo(f1, "f1");
  aig.addPo(f2, "f2");
  aig.addPo(f3, "f3");
  aig.addPo(g, "g");

  std::vector<Lit> roots{f1, f2, f3, g};
  const fraig::EquivClasses classes = fraig::computeEquivClasses(aig, roots);
  EXPECT_EQ(classes.normalize(f1), classes.normalize(f2));
  EXPECT_EQ(classes.normalize(f1), classes.normalize(f3));
  EXPECT_EQ(classes.normalize(f1), !classes.normalize(g));
}

TEST(Fraig, DetectsConstantSignals) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit z = aig.addAnd(aig.mkXor(a, b), aig.mkEquiv(a, b));  // constant 0
  const Lit one = aig.mkOr(aig.mkXor(a, b), aig.mkEquiv(a, b));  // constant 1
  aig.addPo(z, "z");
  aig.addPo(one, "one");
  std::vector<Lit> roots{z, one};
  const fraig::EquivClasses classes = fraig::computeEquivClasses(aig, roots);
  EXPECT_EQ(classes.normalize(z), kFalse);
  EXPECT_EQ(classes.normalize(one), kTrue);
}

TEST(Fraig, DoesNotMergeInequivalentNodes) {
  // Functions agreeing on most inputs (differ on a single minterm) — random
  // simulation may bucket them; SAT must split them.
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit c = aig.addPi("c");
  const Lit d = aig.addPi("d");
  std::vector<Lit> all{a, b, c, d};
  const Lit f1 = aig.mkAndN(all);                         // abcd
  const Lit f2 = kFalse;                                   // constant 0
  const Lit f3 = aig.addAnd(aig.mkAndN(all), !a);          // also constant 0
  aig.addPo(f1, "f1");
  aig.addPo(f2, "f2");
  aig.addPo(f3, "f3");
  std::vector<Lit> roots{f1, f2, f3};
  const fraig::EquivClasses classes = fraig::computeEquivClasses(aig, roots);
  EXPECT_NE(classes.normalize(f1), classes.normalize(kFalse));
  EXPECT_EQ(classes.normalize(f3), kFalse);
}

TEST(Fraig, CrossCircuitSharedEquivalences) {
  // Two adder realizations of the same function over shared PIs.
  Aig aig;
  const Lit a0 = aig.addPi("a0");
  const Lit a1 = aig.addPi("a1");
  const Lit b0 = aig.addPi("b0");
  const Lit b1 = aig.addPi("b1");
  // Circuit 1 sum bits.
  const Lit s0 = aig.mkXor(a0, b0);
  const Lit c0 = aig.addAnd(a0, b0);
  const Lit s1 = aig.mkXor(aig.mkXor(a1, b1), c0);
  // Circuit 2: same functions, built differently.
  const Lit s0b = aig.mkOr(aig.addAnd(a0, !b0), aig.addAnd(!a0, b0));
  const Lit c0b = !aig.mkOr(!a0, !b0);
  const Lit s1b = aig.mkXor(a1, aig.mkXor(b1, c0b));
  aig.addPo(s0, "s0");
  aig.addPo(s1, "s1");
  aig.addPo(s0b, "s0b");
  aig.addPo(s1b, "s1b");
  std::vector<Lit> roots{s0, s1, s0b, s1b};
  const fraig::EquivClasses classes = fraig::computeEquivClasses(aig, roots);
  EXPECT_EQ(classes.normalize(s0), classes.normalize(s0b));
  EXPECT_EQ(classes.normalize(s1), classes.normalize(s1b));
}

// Property: on random AIGs, every merge FRAIG reports is a true functional
// equivalence (exhaustively checked over up to 2^10 inputs).
class FraigRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FraigRandom, MergesAreSound) {
  Rng rng(GetParam());
  Aig aig;
  const std::uint32_t n_pis = 6;
  for (std::uint32_t i = 0; i < n_pis; ++i) aig.addPi("x" + std::to_string(i));
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < n_pis; ++i) pool.push_back(aig.piLit(i));
  for (int i = 0; i < 120; ++i) {
    const Lit x = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit y = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit n = aig.addAnd(x, y);
    pool.push_back(n);
  }
  std::vector<Lit> roots;
  for (int i = 0; i < 8; ++i) roots.push_back(pool[pool.size() - 1 - i]);
  for (const Lit r : roots) aig.addPo(r, "");

  const fraig::EquivClasses classes = fraig::computeEquivClasses(aig, roots);
  // Exhaustive soundness check for every merged node in the cones.
  const std::vector<std::uint32_t> cone = collectCone(aig, roots);
  for (std::uint32_t m = 0; m < (1u << n_pis); ++m) {
    std::vector<bool> in(n_pis);
    for (std::uint32_t i = 0; i < n_pis; ++i) in[i] = (m >> i) & 1;
    // Evaluate all nodes.
    std::vector<bool> value(aig.numNodes(), false);
    for (std::uint32_t v = 1; v < aig.numNodes(); ++v) {
      if (aig.isPi(v)) {
        value[v] = in[aig.piIndex(v)];
      } else {
        const Lit f0 = aig.fanin0(v);
        const Lit f1 = aig.fanin1(v);
        value[v] = (value[f0.var()] ^ f0.complemented()) &&
                   (value[f1.var()] ^ f1.complemented());
      }
    }
    for (const std::uint32_t v : cone) {
      const Lit nl = classes.normalize(Lit::fromVar(v, false));
      if (nl.var() == v) continue;  // representative
      const bool rep_val = value[nl.var()] ^ nl.complemented();
      ASSERT_EQ(value[v], rep_val) << "node " << v << " minterm " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FraigRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace eco
