// Tests for Craig interpolation (ItpJob + proof replay).
//
// The central property, checked by exhaustive evaluation on random
// partitioned CNF pairs: for UNSAT (A, B) the interpolant I over the shared
// variables satisfies  A -> I  and  I & B unsat,  with support limited to
// the shared variables by construction of the result AIG.

#include <gtest/gtest.h>

#include <vector>

#include "aig/aig.h"
#include "base/rng.h"
#include "itp/itp.h"

namespace eco {
namespace {

using sat::SLit;
using sat::Status;
using sat::Var;

SLit pos(Var v) { return SLit::make(v, false); }
SLit neg(Var v) { return SLit::make(v, true); }

TEST(Itp, SharedUnitInterpolant) {
  // A = {a, a -> s}, B = {b, b -> !s}; shared = {s}. I must be equivalent
  // to s (the only interpolant over {s} here).
  itp::ItpJob job;
  const Var a = job.solver().newVar();
  const Var s = job.solver().newVar();
  const Var b = job.solver().newVar();
  Aig result;
  const Lit s_pi = result.addPi("s");
  job.markShared(s, s_pi);
  job.addClauseA({pos(a)});
  job.addClauseA({neg(a), pos(s)});
  job.addClauseB({pos(b)});
  job.addClauseB({neg(b), neg(s)});
  ASSERT_EQ(job.solve(), Status::Unsat);
  const Lit itp = job.buildInterpolant(result);
  result.addPo(itp, "itp");
  EXPECT_EQ(result.evaluate({true})[0], true);
  EXPECT_EQ(result.evaluate({false})[0], false);
}

TEST(Itp, InconsistentAGivesFalse) {
  itp::ItpJob job;
  const Var a = job.solver().newVar();
  const Var s = job.solver().newVar();
  Aig result;
  job.markShared(s, result.addPi("s"));
  job.addClauseA({pos(a)});
  job.addClauseA({neg(a)});
  job.addClauseB({pos(s)});
  ASSERT_EQ(job.solve(), Status::Unsat);
  const Lit itp = job.buildInterpolant(result);
  result.addPo(itp, "itp");
  // I must be false everywhere (B alone is consistent, A is inconsistent:
  // the strongest interpolant works; any sound one must still block B...
  // here A -> I allows I == false, and I & B unsat requires I(s=1) == 0).
  EXPECT_EQ(result.evaluate({true})[0], false);
}

TEST(Itp, InconsistentBGivesTrue) {
  itp::ItpJob job;
  const Var b = job.solver().newVar();
  const Var s = job.solver().newVar();
  Aig result;
  job.markShared(s, result.addPi("s"));
  job.addClauseA({pos(s)});
  job.addClauseB({pos(b)});
  job.addClauseB({neg(b)});
  ASSERT_EQ(job.solve(), Status::Unsat);
  const Lit itp = job.buildInterpolant(result);
  result.addPo(itp, "itp");
  // A -> I requires I(s=1) == 1.
  EXPECT_EQ(result.evaluate({true})[0], true);
}

// ---------------------------------------------------------------------------
// Property sweep on random partitioned CNF pairs.

struct ItpParam {
  std::uint32_t shared;
  std::uint32_t local_a;
  std::uint32_t local_b;
  std::uint32_t clauses_each;
  std::uint64_t seed;
};

class ItpRandom : public ::testing::TestWithParam<ItpParam> {};

TEST_P(ItpRandom, InterpolantSoundOnUnsatPairs) {
  const ItpParam p = GetParam();
  Rng rng(p.seed);
  const std::uint32_t n_all = p.shared + p.local_a + p.local_b;
  ASSERT_LE(n_all, 18u);
  int unsat_seen = 0;

  for (int round = 0; round < 60 && unsat_seen < 12; ++round) {
    itp::ItpJob job;
    std::vector<Var> vars;
    for (std::uint32_t i = 0; i < n_all; ++i) vars.push_back(job.solver().newVar());
    Aig result;
    for (std::uint32_t i = 0; i < p.shared; ++i) {
      job.markShared(vars[i], result.addPi("s" + std::to_string(i)));
    }
    // A over shared + local_a; B over shared + local_b.
    std::vector<std::vector<SLit>> cnf_a, cnf_b;
    const auto randClause = [&](bool is_a) {
      std::vector<SLit> c;
      const std::uint32_t len = 2 + rng.below(2);
      for (std::uint32_t j = 0; j < len; ++j) {
        std::uint32_t idx;
        const std::uint32_t local = is_a ? p.local_a : p.local_b;
        if (local == 0 || rng.chance(2, 3)) {
          idx = static_cast<std::uint32_t>(rng.below(p.shared));
        } else if (is_a) {
          idx = p.shared + static_cast<std::uint32_t>(rng.below(p.local_a));
        } else {
          idx = p.shared + p.local_a +
                static_cast<std::uint32_t>(rng.below(p.local_b));
        }
        c.push_back(SLit::make(vars[idx], rng.chance(1, 2)));
      }
      return c;
    };
    for (std::uint32_t i = 0; i < p.clauses_each; ++i) {
      cnf_a.push_back(randClause(true));
      cnf_b.push_back(randClause(false));
    }
    for (const auto& c : cnf_a) job.addClauseA(c);
    for (const auto& c : cnf_b) job.addClauseB(c);

    if (job.solve() != Status::Unsat) continue;
    ++unsat_seen;
    const Lit itp = job.buildInterpolant(result);
    result.addPo(itp, "itp");

    // Exhaustive check over all assignments.
    const auto evalCnf = [&](const std::vector<std::vector<SLit>>& cnf,
                             std::uint32_t m) {
      for (const auto& clause : cnf) {
        bool any = false;
        for (const SLit l : clause) {
          std::uint32_t idx = 0;
          for (; idx < n_all; ++idx) {
            if (vars[idx] == l.var()) break;
          }
          const bool v = (m >> idx) & 1;
          if (v != l.sign()) {
            any = true;
            break;
          }
        }
        if (!any) return false;
      }
      return true;
    };
    for (std::uint32_t m = 0; m < (1u << n_all); ++m) {
      std::vector<bool> shared_vals(p.shared);
      for (std::uint32_t i = 0; i < p.shared; ++i) shared_vals[i] = (m >> i) & 1;
      const bool i_val = result.evaluate(shared_vals)[0];
      if (evalCnf(cnf_a, m)) {
        ASSERT_TRUE(i_val) << "A true but interpolant false, m=" << m;
      }
      if (evalCnf(cnf_b, m)) {
        ASSERT_FALSE(i_val) << "B true but interpolant true, m=" << m;
      }
    }
  }
  // The clause densities below are chosen so a healthy share of pairs is
  // jointly UNSAT; require we actually exercised the property.
  EXPECT_GE(unsat_seen, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ItpRandom,
    ::testing::Values(ItpParam{3, 2, 2, 14, 1}, ItpParam{4, 3, 3, 20, 2},
                      ItpParam{5, 3, 3, 24, 3}, ItpParam{2, 4, 4, 18, 4},
                      ItpParam{6, 4, 4, 30, 5}, ItpParam{4, 0, 0, 16, 6},
                      ItpParam{1, 3, 3, 10, 7}, ItpParam{5, 5, 5, 32, 8}));

}  // namespace
}  // namespace eco
