// Unit tests for the individual ECO pipeline stages: clustering (Fig. 2),
// workspace relations (care/diff algebra), localization cuts (Alg. 2),
// rebasing (Eq. 12), and base selection (Sec. 6.2).

#include <gtest/gtest.h>

#include <unordered_set>

#include "eco/candidates.h"
#include "eco/clustering.h"
#include "eco/costopt.h"
#include "eco/localization.h"
#include "eco/rebase.h"
#include "eco/relations.h"

namespace eco {
namespace {

/// The Figure 2 scenario: t1 and t2 share an output, t2 and t3 share
/// another; t4 is separate — expect clusters {t1,t2,t3} and {t4}.
EcoInstance figure2Instance() {
  EcoInstance inst;
  inst.name = "fig2";
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    const Lit d = g.addPi("d");
    g.addPo(g.addAnd(a, b), "o1");
    g.addPo(g.mkOr(b, c), "o2");
    g.addPo(g.mkXor(c, d), "o3");
    g.addPo(g.addAnd(c, d), "o4");
  }
  {
    Aig& f = inst.faulty;
    const Lit a = f.addPi("a");
    const Lit b = f.addPi("b");
    const Lit c = f.addPi("c");
    const Lit d = f.addPi("d");
    (void)a;
    (void)c;
    const Lit t1 = f.addPi("t1");
    const Lit t2 = f.addPi("t2");
    const Lit t3 = f.addPi("t3");
    const Lit t4 = f.addPi("t4");
    inst.num_x = 4;
    // o1 sees t1 and t2; o2 sees t2 and t3; o3 sees t3; o4 sees t4.
    f.addPo(f.addAnd(t1, t2), "o1");
    f.addPo(f.mkOr(t2, f.addAnd(t3, b)), "o2");
    f.addPo(f.mkXor(t3, d), "o3");
    f.addPo(t4, "o4");
  }
  return inst;
}

TEST(Clustering, Figure2Grouping) {
  const EcoInstance inst = figure2Instance();
  const auto clusters = clusterTargets(inst);
  ASSERT_EQ(clusters.size(), 2u);
  const std::unordered_set<std::uint32_t> c0(clusters[0].targets.begin(),
                                             clusters[0].targets.end());
  EXPECT_EQ(c0, (std::unordered_set<std::uint32_t>{0, 1, 2}));
  ASSERT_EQ(clusters[1].targets.size(), 1u);
  EXPECT_EQ(clusters[1].targets[0], 3u);
  // Output partition: cluster 0 owns o1,o2,o3; cluster 1 owns o4.
  EXPECT_EQ(clusters[0].outputs, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(clusters[1].outputs, (std::vector<std::uint32_t>{3}));
}

TEST(Clustering, TargetWithNoOutputGetsOwnCluster) {
  EcoInstance inst;
  const Lit a = inst.golden.addPi("a");
  inst.golden.addPo(a, "o");
  const Lit fa = inst.faulty.addPi("a");
  inst.faulty.addPi("t0");  // floating, reaches nothing
  inst.num_x = 1;
  inst.faulty.addPo(fa, "o");
  const auto clusters = clusterTargets(inst);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_TRUE(clusters[0].outputs.empty());
}

TEST(Relations, CareAndDiffSetsSingleOutput) {
  // f = x1 & t; g = x1 & x2. care^t = x1; on-set = x1 & !(x1&x2 == x1&0)...
  // concretely: on = care & (f|t=0 xor g) = x1 & (0 xor x1&x2) = x1&x2.
  EcoInstance inst;
  {
    Aig& g = inst.golden;
    const Lit x1 = g.addPi("x1");
    const Lit x2 = g.addPi("x2");
    g.addPo(g.addAnd(x1, x2), "o");
  }
  {
    Aig& f = inst.faulty;
    const Lit x1 = f.addPi("x1");
    f.addPi("x2");
    const Lit t = f.addPi("t0");
    inst.num_x = 2;
    f.addPo(f.addAnd(x1, t), "o");
  }
  Workspace ws = buildWorkspace(inst);
  const OnOffSets oo =
      buildOnOff(ws.w, ws.f_roots, ws.g_roots, ws.t_pis[0]);
  ws.w.addPo(oo.on, "on");
  ws.w.addPo(oo.off, "off");
  // Workspace PIs: x1, x2, t (t irrelevant for on/off after cofactoring).
  for (int m = 0; m < 4; ++m) {
    const bool x1 = m & 1, x2 = (m >> 1) & 1;
    const auto out = ws.w.evaluate({x1, x2, false});
    const std::size_t n_po = ws.w.numPos();
    EXPECT_EQ(out[n_po - 2], x1 && x2) << "on-set at m=" << m;
    EXPECT_EQ(out[n_po - 1], x1 && !x2) << "off-set at m=" << m;
  }
}

TEST(Localization, CutUsesSharedEquivalentSignals) {
  // Faulty and golden share a mid-level signal (a&b built differently).
  // The localized network must offer it as a base instead of only PIs.
  EcoInstance inst;
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    const Lit shared = g.addAnd(a, b);
    g.addPo(g.mkXor(shared, c), "o");
  }
  {
    Aig& f = inst.faulty;
    const Lit a = f.addPi("a");
    const Lit b = f.addPi("b");
    f.addPi("c");
    const Lit t = f.addPi("t0");
    inst.num_x = 3;
    const Lit shared = f.mkMux(a, b, kFalse);  // a&b, different structure
    f.setSignalName(shared, "mid");
    f.addPo(f.mkXor(shared, t), "o");
  }
  inst.weights = {{"a", 10}, {"b", 10}, {"c", 10}, {"mid", 1}};

  Workspace ws = buildWorkspace(inst);
  std::vector<Lit> roots = ws.f_roots;
  roots.insert(roots.end(), ws.g_roots.begin(), ws.g_roots.end());
  const fraig::EquivClasses classes = fraig::computeEquivClasses(ws.w, roots);
  const std::vector<Candidate> candidates = collectCandidates(inst, ws);
  const auto clusters = clusterTargets(inst);
  ASSERT_EQ(clusters.size(), 1u);
  const LocalNetwork net =
      buildLocalNetwork(inst, ws, clusters[0], candidates, &classes);
  bool has_mid = false;
  for (const CutBase& b : net.bases) has_mid |= (b.signal.name == "mid");
  EXPECT_TRUE(has_mid);
  // The cut network must re-express both cones: sanity-check PO count.
  EXPECT_EQ(net.f_roots.size(), 1u);
  EXPECT_EQ(net.g_roots.size(), 1u);
}

TEST(Localization, WithoutClassesFallsBackToPis) {
  EcoInstance inst = figure2Instance();
  Workspace ws = buildWorkspace(inst);
  const std::vector<Candidate> candidates = collectCandidates(inst, ws);
  const auto clusters = clusterTargets(inst);
  const LocalNetwork net =
      buildLocalNetwork(inst, ws, clusters[0], candidates, nullptr);
  for (const CutBase& b : net.bases) {
    EXPECT_TRUE(inst.faulty.findPi(b.signal.name).has_value())
        << b.signal.name << " is not a PI";
  }
}

TEST(Candidates, ExcludesTargetFanout) {
  EcoInstance inst;
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    g.addPo(g.addAnd(g.addAnd(a, b), a), "o");
  }
  {
    Aig& f = inst.faulty;
    const Lit a = f.addPi("a");
    const Lit b = f.addPi("b");
    const Lit t = f.addPi("t0");
    inst.num_x = 2;
    const Lit pre = f.addAnd(a, b);       // independent of t: candidate
    const Lit post = f.addAnd(t, a);      // in TFO(t): excluded
    f.setSignalName(pre, "pre");
    f.setSignalName(post, "post");
    f.addPo(post, "o");
  }
  Workspace ws = buildWorkspace(inst);
  const std::vector<Candidate> cands = collectCandidates(inst, ws);
  bool has_pre = false, has_post = false;
  for (const Candidate& c : cands) {
    has_pre |= c.name == "pre";
    has_post |= c.name == "post";
  }
  EXPECT_TRUE(has_pre);
  EXPECT_FALSE(has_post);
}

// ---------------------------------------------------------------------------
// Rebase oracle: feasibility must match brute-force functional dependency.

struct RebaseFixture {
  EcoInstance inst;
  Workspace ws;
  Lit on, off;
  std::vector<Candidate> cands;
};

/// Patch requirement: on = x0&x1, off = !x0&!x1 (i.e. implement any f with
/// f(11)=1, f(00)=0 on the care set). Candidates: x0, x1, x0^x1, x0&x1.
RebaseFixture makeRebaseFixture() {
  RebaseFixture fx;
  EcoInstance& inst = fx.inst;
  {
    Aig& g = inst.golden;
    g.addPi("x0");
    g.addPi("x1");
    g.addPo(kFalse, "o");
  }
  {
    Aig& f = inst.faulty;
    const Lit x0 = f.addPi("x0");
    const Lit x1 = f.addPi("x1");
    f.addPi("t0");
    inst.num_x = 2;
    f.setSignalName(f.mkXor(x0, x1), "nxor");
    f.setSignalName(f.addAnd(x0, x1), "nand2");
    f.addPo(kFalse, "o");
  }
  fx.ws = buildWorkspace(inst);
  const Lit x0 = fx.ws.x_pis[0];
  const Lit x1 = fx.ws.x_pis[1];
  fx.on = fx.ws.w.addAnd(x0, x1);
  fx.off = fx.ws.w.addAnd(!x0, !x1);
  fx.cands = collectCandidates(inst, fx.ws);
  return fx;
}

TEST(Rebase, FeasibilityMatchesFunctionalDependency) {
  RebaseFixture fx = makeRebaseFixture();
  RebaseOracle oracle(fx.ws, fx.on, fx.off, fx.cands);
  // Candidate order: x0, x1, nxor, nand2 (PIs first, then named signals).
  ASSERT_EQ(fx.cands.size(), 4u);
  ASSERT_EQ(fx.cands[2].name, "nxor");
  ASSERT_EQ(fx.cands[3].name, "nand2");
  // x0 alone distinguishes on (x0=1) from off (x0=0): feasible.
  EXPECT_TRUE(oracle.feasible(std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(oracle.feasible(std::vector<std::uint32_t>{1}));
  // nand2 alone: on->1, off->0: feasible.
  EXPECT_TRUE(oracle.feasible(std::vector<std::uint32_t>{3}));
  // nxor alone: on gives 0 and off gives 0 — cannot distinguish.
  EXPECT_FALSE(oracle.feasible(std::vector<std::uint32_t>{2}));
  // Empty base: infeasible (on and off both nonempty).
  EXPECT_FALSE(oracle.feasible(std::vector<std::uint32_t>{}));
}

TEST(Rebase, SynthesisProducesCorrectPatch) {
  RebaseFixture fx = makeRebaseFixture();
  const std::vector<std::uint32_t> sel{3};  // nand2
  const auto patch = synthesizeOverBase(fx.ws, fx.on, fx.off, fx.cands, sel, -1);
  ASSERT_TRUE(patch.has_value());
  ASSERT_EQ(patch->numPis(), 1u);
  // Patch over nand2 must map on-set value (nand2=1) to 1 and off-set value
  // (nand2=0) to 0.
  EXPECT_EQ(patch->evaluate({true})[0], true);
  EXPECT_EQ(patch->evaluate({false})[0], false);
}

TEST(Rebase, CexEnumerationTerminatesAndBlocks) {
  RebaseFixture fx = makeRebaseFixture();
  RebaseOracle oracle(fx.ws, fx.on, fx.off, fx.cands);
  // Watch {x0, x1}, nothing selected: every on-side valuation is (1,1),
  // so exactly one counterexample pattern must be found.
  const std::vector<std::uint32_t> watch{0, 1};
  const auto pats = oracle.enumerateCex({}, watch, 16);
  ASSERT_EQ(pats.size(), 1u);
  EXPECT_EQ(pats[0], 0b11u);
  // Oracle must remain usable: feasibility query unaffected by controls.
  EXPECT_TRUE(oracle.feasible(std::vector<std::uint32_t>{0}));
}

TEST(CostOpt, SelectsCheaperEquivalentBase) {
  // on = x0&x1 / off = !(x0&x1): only fn is nand2 itself; base {x0,x1}
  // costs 20, base {nand2} costs 1. Selection must find the cheap one.
  RebaseFixture fx = makeRebaseFixture();
  // Rebuild with off = !(on) over the care universe.
  fx.off = !fx.on;
  RebaseOracle oracle(fx.ws, fx.on, fx.off, fx.cands);
  std::vector<double> w{10, 10, 5, 1};
  const std::vector<std::uint32_t> initial{0, 1};
  ASSERT_TRUE(oracle.feasible(initial));
  EcoOptions opt;
  opt.watch_size = 2;
  const BaseSelection sel = selectBase(oracle, w, initial, opt);
  ASSERT_EQ(sel.base.size(), 1u);
  EXPECT_EQ(sel.base[0], 3u);
  EXPECT_DOUBLE_EQ(sel.cost, 1.0);
}

TEST(CostOpt, KeepsFeasibleBaseWhenNothingCheaperExists) {
  RebaseFixture fx = makeRebaseFixture();
  RebaseOracle oracle(fx.ws, fx.on, fx.off, fx.cands);
  std::vector<double> w{1, 5, 9, 9};
  const std::vector<std::uint32_t> initial{0};
  EcoOptions opt;
  const BaseSelection sel = selectBase(oracle, w, initial, opt);
  EXPECT_TRUE(oracle.feasible(sel.base));
  EXPECT_LE(sel.cost, 1.0);
}

}  // namespace
}  // namespace eco
