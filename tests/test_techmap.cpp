// Technology mapping tests: library matching correctness, mapped-netlist
// equivalence (exhaustively via toAig), known-structure pattern captures
// (XOR cones map to XOR2 cells), and the library ablation (a richer
// library never yields larger area).

#include <gtest/gtest.h>

#include "base/rng.h"
#include "techmap/library.h"
#include "techmap/mapper.h"

namespace eco::techmap {
namespace {

void expectEquivalent(const Aig& a, const Aig& b) {
  ASSERT_EQ(a.numPis(), b.numPis());
  ASSERT_EQ(a.numPos(), b.numPos());
  ASSERT_LE(a.numPis(), 12u);
  for (std::uint32_t m = 0; m < (1u << a.numPis()); ++m) {
    std::vector<bool> in(a.numPis());
    for (std::uint32_t i = 0; i < a.numPis(); ++i) in[i] = (m >> i) & 1;
    ASSERT_EQ(a.evaluate(in), b.evaluate(in)) << "minterm " << m;
  }
}

TEST(Library, MatchesBasicFunctions) {
  const CellLibrary lib = CellLibrary::standard();
  const TruthTable a = ttVar(0), b = ttVar(1);
  // AND2 exact.
  const auto m_and = lib.matchFunction(2, static_cast<TruthTable>(a & b & ttMask(2)));
  ASSERT_TRUE(m_and.has_value());
  EXPECT_EQ(lib.cell(m_and->cell).name, "AND2");
  // NAND2 exact, cheaper than AND2 + INV.
  const auto m_nand =
      lib.matchFunction(2, static_cast<TruthTable>(~(a & b) & ttMask(2)));
  ASSERT_TRUE(m_nand.has_value());
  EXPECT_EQ(lib.cell(m_nand->cell).name, "NAND2");
  // XOR2.
  const auto m_xor =
      lib.matchFunction(2, static_cast<TruthTable>((a ^ b) & ttMask(2)));
  ASSERT_TRUE(m_xor.has_value());
  EXPECT_EQ(lib.cell(m_xor->cell).name, "XOR2");
  // (!a) & b: AND2/NOR2 with one inverted input — must match something.
  const auto m_andn =
      lib.matchFunction(2, static_cast<TruthTable>((~a & b) & ttMask(2)));
  ASSERT_TRUE(m_andn.has_value());
}

TEST(Library, Nand2OnlyCoversAllTwoInputAndFunctions) {
  const CellLibrary lib = CellLibrary::nand2Only();
  const TruthTable a = ttVar(0), b = ttVar(1);
  // All +-a & +-b forms and their complements must match.
  for (const TruthTable f : {
           static_cast<TruthTable>(a & b), static_cast<TruthTable>(~a & b),
           static_cast<TruthTable>(a & ~b), static_cast<TruthTable>(~a & ~b)}) {
    EXPECT_TRUE(lib.matchFunction(2, static_cast<TruthTable>(f & ttMask(2)))
                    .has_value());
    EXPECT_TRUE(lib.matchFunction(2, static_cast<TruthTable>(~f & ttMask(2)))
                    .has_value());
  }
  // XOR2 is not a single NAND2 (+ inverters) — no match expected.
  EXPECT_FALSE(
      lib.matchFunction(2, static_cast<TruthTable>((a ^ b) & ttMask(2)))
          .has_value());
}

TEST(Mapper, XorConeMapsToXorCell) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  aig.addPo(aig.mkXor(a, b), "y");
  const CellLibrary lib = CellLibrary::standard();
  const MappedNetlist mapped = mapAig(aig, lib);
  ASSERT_EQ(mapped.cellCount(), 1u);
  EXPECT_EQ(lib.cell(mapped.gates[0].cell).name, "XOR2");
  expectEquivalent(aig, mapped.toAig());
}

TEST(Mapper, FullAdderIsCompact) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit c = aig.addPi("c");
  aig.addPo(aig.mkXor(aig.mkXor(a, b), c), "s");
  aig.addPo(aig.mkOr(aig.addAnd(a, b), aig.addAnd(aig.mkXor(a, b), c)), "co");
  const CellLibrary lib = CellLibrary::standard();
  const MappedNetlist mapped = mapAig(aig, lib);
  expectEquivalent(aig, mapped.toAig());
  // XOR3 + MAJ3 would be 2 cells; allow some slack but require far fewer
  // cells than AND nodes.
  EXPECT_LE(mapped.cellCount(), 4u);
}

TEST(Mapper, ConstantAndComplementedOutputs) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  aig.addPo(kFalse, "zero");
  aig.addPo(kTrue, "one");
  aig.addPo(!aig.addAnd(a, b), "nand");
  const CellLibrary lib = CellLibrary::standard();
  const MappedNetlist mapped = mapAig(aig, lib);
  expectEquivalent(aig, mapped.toAig());
}

TEST(Mapper, RicherLibraryNeverWorse) {
  Rng rng(42);
  for (int round = 0; round < 6; ++round) {
    Aig aig;
    const std::uint32_t n = 6;
    std::vector<Lit> pool;
    for (std::uint32_t i = 0; i < n; ++i) {
      pool.push_back(aig.addPi("x" + std::to_string(i)));
    }
    for (int i = 0; i < 60; ++i) {
      const Lit x = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
      const Lit y = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
      pool.push_back(aig.addAnd(x, y));
    }
    for (int j = 0; j < 3; ++j) {
      aig.addPo(pool[pool.size() - 1 - j] ^ rng.chance(1, 2),
                "o" + std::to_string(j));
    }
    const MappedNetlist rich = mapAig(aig, CellLibrary::standard());
    const MappedNetlist poor = mapAig(aig, CellLibrary::nand2Only());
    expectEquivalent(aig, rich.toAig());
    expectEquivalent(aig, poor.toAig());
    EXPECT_LE(rich.area(), poor.area());
  }
}

class MapperRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperRandom, MappedNetlistsAreEquivalent) {
  Rng rng(GetParam());
  Aig aig;
  const std::uint32_t n = 7;
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < n; ++i) {
    pool.push_back(aig.addPi("x" + std::to_string(i)));
  }
  for (int i = 0; i < 120; ++i) {
    const Lit x = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit y = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    pool.push_back(aig.addAnd(x, y));
  }
  for (int j = 0; j < 4; ++j) {
    aig.addPo(pool[pool.size() - 1 - j] ^ rng.chance(1, 2),
              "o" + std::to_string(j));
  }
  for (const auto& lib :
       {CellLibrary::standard(), CellLibrary::nand2Only()}) {
    const MappedNetlist mapped = mapAig(aig, lib);
    expectEquivalent(aig, mapped.toAig());
    EXPECT_GT(mapped.cellCount(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MapperRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Mapper, WriterEmitsCellInstances) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  aig.addPo(aig.mkXor(a, b), "y");
  const CellLibrary lib = CellLibrary::standard();
  const MappedNetlist mapped = mapAig(aig, lib);
  const std::string text = writeMappedVerilog(mapped, "m");
  EXPECT_NE(text.find("XOR2"), std::string::npos);
  EXPECT_NE(text.find("module m"), std::string::npos);
  EXPECT_NE(text.find("assign y"), std::string::npos);
}

}  // namespace
}  // namespace eco::techmap
