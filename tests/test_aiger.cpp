// Tests for AIGER I/O: ASCII and binary round trips, symbol tables, error
// handling, and a known-bytes golden vector for the binary delta encoding.

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/rng.h"
#include "io/aiger.h"

namespace eco::io {
namespace {

Aig sampleAig() {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit c = aig.addPi("c");
  aig.addPo(aig.mkXor(aig.addAnd(a, b), c), "y0");
  aig.addPo(!aig.mkOr(a, c), "y1");
  return aig;
}

void expectSameFunction(const Aig& x, const Aig& y) {
  ASSERT_EQ(x.numPis(), y.numPis());
  ASSERT_EQ(x.numPos(), y.numPos());
  for (std::uint32_t m = 0; m < (1u << x.numPis()); ++m) {
    std::vector<bool> in(x.numPis());
    for (std::uint32_t i = 0; i < x.numPis(); ++i) in[i] = (m >> i) & 1;
    ASSERT_EQ(x.evaluate(in), y.evaluate(in)) << "m=" << m;
  }
}

TEST(Aiger, AsciiRoundTrip) {
  const Aig aig = sampleAig();
  const Aig back = parseAiger(writeAigerAscii(aig));
  expectSameFunction(aig, back);
  EXPECT_EQ(back.piName(0), "a");
  EXPECT_EQ(back.poName(1), "y1");
}

TEST(Aiger, BinaryRoundTrip) {
  const Aig aig = sampleAig();
  const Aig back = parseAiger(writeAigerBinary(aig));
  expectSameFunction(aig, back);
  EXPECT_EQ(back.piName(2), "c");
  EXPECT_EQ(back.poName(0), "y0");
}

TEST(Aiger, ParsesHandWrittenAag) {
  // Half adder from the AIGER spec family: s = a ^ b, c = a & b.
  const std::string text =
      "aag 7 2 0 2 3\n"
      "2\n"
      "4\n"
      "10\n"   // output: s encoded below
      "6\n"    // output: carry = a & b
      "6 2 4\n"
      "8 3 5\n"
      "10 7 9\n"
      "i0 a\ni1 b\no0 s\no1 c\n";
  const Aig aig = parseAiger(text);
  ASSERT_EQ(aig.numPis(), 2u);
  for (int m = 0; m < 4; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1;
    const auto out = aig.evaluate({a, b});
    EXPECT_EQ(out[0], a != b);
    EXPECT_EQ(out[1], a && b);
  }
}

TEST(Aiger, ConstantOutputs) {
  Aig aig;
  aig.addPi("a");
  aig.addPo(kFalse, "zero");
  aig.addPo(kTrue, "one");
  for (const std::string& text : {writeAigerAscii(aig), writeAigerBinary(aig)}) {
    const Aig back = parseAiger(text);
    EXPECT_EQ(back.evaluate({false})[0], false);
    EXPECT_EQ(back.evaluate({false})[1], true);
  }
}

TEST(Aiger, RejectsLatches) {
  EXPECT_THROW(parseAiger("aag 1 0 1 0 0\n2 0\n"), std::runtime_error);
}

TEST(Aiger, RejectsBadMagic) {
  EXPECT_THROW(parseAiger("agg 0 0 0 0 0\n"), std::runtime_error);
}

TEST(Aiger, RejectsTruncatedBinary) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  aig.addPo(aig.addAnd(a, b), "o");
  std::string bin = writeAigerBinary(aig);
  bin.resize(bin.size() > 4 ? bin.size() - 4 : 0);
  EXPECT_THROW(parseAiger(bin), std::runtime_error);
}

class AigerRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AigerRandom, RandomRoundTripsBothFormats) {
  Rng rng(GetParam());
  Aig aig;
  const std::uint32_t n = 6;
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < n; ++i) {
    pool.push_back(aig.addPi("x" + std::to_string(i)));
  }
  for (int i = 0; i < 80; ++i) {
    const Lit x = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit y = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    pool.push_back(aig.addAnd(x, y));
  }
  for (int j = 0; j < 3; ++j) {
    aig.addPo(pool[pool.size() - 1 - j] ^ rng.chance(1, 2), "o" + std::to_string(j));
  }
  expectSameFunction(aig, parseAiger(writeAigerAscii(aig)));
  expectSameFunction(aig, parseAiger(writeAigerBinary(aig)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AigerRandom, ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace eco::io
