// Property tests for the SAT core's clause-management machinery:
//
//  - a 500-instance seeded CNF sweep that must agree on SAT/UNSAT across
//    preprocessing OFF / ON / ON-with-every-variable-frozen (the last is
//    behaviorally the legacy configuration: BVE can touch nothing, only
//    BCP-to-fixpoint and clause strengthening run), cross-checked against
//    brute-force enumeration on the smaller instances, with every Sat
//    model — including reconstructed eliminated variables — evaluated
//    against the original clause list;
//  - incremental use on a preprocessed solver (blocking clauses over frozen
//    variables), mirroring the diagnosis loop;
//  - proof logging under arena relocation: a checked UNSAT proof must stay
//    checkable after garbageCollect() rebinds every clause ref, and
//    clauseLits (stable-id access) must return identical literals;
//  - the VSIDS activity-increment overflow guard (regression: the increment
//    grows every conflict regardless of bumps and previously saturated to
//    inf in long-lived incremental solvers).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/rng.h"
#include "sat/proof_check.h"
#include "sat/solver.h"
#include "sat/vsids_picker.h"

namespace eco::sat {
namespace {

SLit pos(Var v) { return SLit::make(v, false); }

using Cnf = std::vector<std::vector<SLit>>;

Cnf randomCnf(Rng& rng, std::uint32_t n_vars, std::uint32_t n_clauses) {
  Cnf cnf;
  for (std::uint32_t c = 0; c < n_clauses; ++c) {
    const auto width = static_cast<std::uint32_t>(rng.range(1, 4));
    std::vector<SLit> clause;
    for (std::uint32_t k = 0; k < width; ++k) {
      clause.push_back(SLit::make(static_cast<Var>(rng.below(n_vars)),
                                  rng.chance(1, 2)));
    }
    cnf.push_back(std::move(clause));
  }
  return cnf;
}

bool bruteForceSat(const Cnf& cnf, std::uint32_t n_vars) {
  for (std::uint64_t m = 0; m < (1ull << n_vars); ++m) {
    bool all = true;
    for (const auto& clause : cnf) {
      bool sat = false;
      for (const SLit l : clause) {
        if (((m >> l.var()) & 1) != (l.sign() ? 1u : 0u)) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool modelSatisfies(const Solver& s, const Cnf& cnf) {
  for (const auto& clause : cnf) {
    bool sat = false;
    for (const SLit l : clause) {
      if (s.modelValue(l) == LBool::True) {
        sat = true;
        break;
      }
    }
    if (!sat && !clause.empty()) return false;
  }
  return true;
}

enum class Config { Off, On, OnAllFrozen };

Status solveCnf(const Cnf& cnf, std::uint32_t n_vars, Config cfg,
                Solver& s) {
  if (cfg != Config::Off) s.setPreprocessing(true);
  for (std::uint32_t v = 0; v < n_vars; ++v) {
    s.newVar();
    if (cfg == Config::OnAllFrozen) s.freezeVar(v);
  }
  for (const auto& clause : cnf) s.addClause(clause);
  return s.solve();
}

TEST(SatPreprocess, FiveHundredSeededCnfsAgreeAcrossConfigs) {
  Rng rng(0xEC0'0001);
  std::uint64_t total_eliminated = 0, total_resolvents = 0, total_pure = 0;
  for (int instance = 0; instance < 500; ++instance) {
    const auto n_vars = static_cast<std::uint32_t>(rng.range(3, 12));
    const auto n_clauses =
        static_cast<std::uint32_t>(rng.range(n_vars, 5 * n_vars));
    const Cnf cnf = randomCnf(rng, n_vars, n_clauses);

    Solver off, on, frozen;
    const Status r_off = solveCnf(cnf, n_vars, Config::Off, off);
    const Status r_on = solveCnf(cnf, n_vars, Config::On, on);
    const Status r_frozen = solveCnf(cnf, n_vars, Config::OnAllFrozen, frozen);
    ASSERT_NE(r_off, Status::Undef);
    ASSERT_EQ(r_on, r_off) << "preprocessing changed the verdict, seed inst "
                           << instance;
    ASSERT_EQ(r_frozen, r_off)
        << "frozen preprocessing changed the verdict, seed inst " << instance;
    if (n_vars <= 9) {
      ASSERT_EQ(r_off == Status::Sat, bruteForceSat(cnf, n_vars))
          << "solver disagrees with brute force, seed inst " << instance;
    }
    if (r_off == Status::Sat) {
      EXPECT_TRUE(modelSatisfies(off, cnf)) << "inst " << instance;
      EXPECT_TRUE(modelSatisfies(on, cnf))
          << "reconstructed model violates an original clause, inst "
          << instance;
      EXPECT_TRUE(modelSatisfies(frozen, cnf)) << "inst " << instance;
    }
    total_eliminated += on.preprocessStats().eliminated_vars;
    total_resolvents += on.preprocessStats().added_resolvents;
    total_pure += on.preprocessStats().pure_literals;
    // The frozen config must never eliminate anything.
    EXPECT_EQ(frozen.preprocessStats().eliminated_vars, 0u);
  }
  // The sweep must actually exercise the elimination machinery.
  EXPECT_GT(total_eliminated, 0u);
  EXPECT_GT(total_resolvents, 0u);
  EXPECT_GT(total_pure, 0u);
}

TEST(SatPreprocess, IncrementalBlockingClausesOverFrozenVars) {
  // The diagnosis pattern: enumerate models, blocking each over the frozen
  // X variables; verify the model count matches an unpreprocessed solver.
  Rng rng(0xEC0'0002);
  for (int instance = 0; instance < 50; ++instance) {
    const auto n_vars = static_cast<std::uint32_t>(rng.range(3, 8));
    const Cnf cnf =
        randomCnf(rng, n_vars, static_cast<std::uint32_t>(rng.range(2, 3 * n_vars)));
    Solver pre, plain;
    pre.setPreprocessing(true);
    for (std::uint32_t v = 0; v < n_vars; ++v) {
      pre.newVar();
      pre.freezeVar(v);
      plain.newVar();
    }
    for (const auto& clause : cnf) {
      pre.addClause(clause);
      plain.addClause(clause);
    }
    for (int round = 0; round < 200; ++round) {
      const Status rp = pre.solve();
      const Status rq = plain.solve();
      ASSERT_EQ(rp, rq) << "inst " << instance << " round " << round;
      if (rp != Status::Sat) break;
      // Block this model (projection onto all variables) in both solvers.
      std::vector<SLit> block_pre, block_plain;
      for (std::uint32_t v = 0; v < n_vars; ++v) {
        block_pre.push_back(pre.modelValue(v) == LBool::True ? ~pos(v) : pos(v));
        block_plain.push_back(plain.modelValue(v) == LBool::True ? ~pos(v)
                                                                 : pos(v));
      }
      // Both models satisfy the same CNF; block each solver's own model.
      pre.addClause(block_pre);
      plain.addClause(block_plain);
    }
  }
}

TEST(SatPreprocess, AssumptionsOverFrozenVarsMatchPlainSolver) {
  Rng rng(0xEC0'0003);
  for (int instance = 0; instance < 50; ++instance) {
    const auto n_vars = static_cast<std::uint32_t>(rng.range(4, 10));
    const Cnf cnf =
        randomCnf(rng, n_vars, static_cast<std::uint32_t>(rng.range(4, 4 * n_vars)));
    Solver pre, plain;
    pre.setPreprocessing(true);
    // Freeze the first two variables and use them as assumptions.
    for (std::uint32_t v = 0; v < n_vars; ++v) {
      pre.newVar();
      plain.newVar();
      if (v < 2) pre.freezeVar(v);
    }
    for (const auto& clause : cnf) {
      pre.addClause(clause);
      plain.addClause(clause);
    }
    for (int mask = 0; mask < 4; ++mask) {
      const std::vector<SLit> assume{SLit::make(0, (mask & 1) != 0),
                                     SLit::make(1, (mask & 2) != 0)};
      ASSERT_EQ(pre.solve(assume), plain.solve(assume))
          << "inst " << instance << " mask " << mask;
    }
  }
}

TEST(SatPreprocess, GatedOffUnderProofLogging) {
  Solver s(/*log_proof=*/true);
  s.setPreprocessing(true);
  EXPECT_FALSE(s.preprocessingEnabled());
  const Var a = s.newVar();
  s.addClause({pos(a)});
  s.addClause({~pos(a)});
  ASSERT_EQ(s.solve(), Status::Unsat);
  EXPECT_TRUE(checkProof(s));
  EXPECT_EQ(s.preprocessStats().eliminated_vars, 0u);
}

TEST(SatArena, ProofSurvivesExplicitGarbageCollection) {
  // Find seeded UNSAT instances, certify their proofs, force a full arena
  // relocation, and certify again: stable ids must still resolve to the
  // same literals and the replay must still derive the empty clause.
  Rng rng(0xEC0'0004);
  int unsat_seen = 0;
  for (int instance = 0; instance < 200 && unsat_seen < 25; ++instance) {
    const auto n_vars = static_cast<std::uint32_t>(rng.range(4, 10));
    const Cnf cnf = randomCnf(
        rng, n_vars, static_cast<std::uint32_t>(rng.range(4 * n_vars, 6 * n_vars)));
    Solver s(/*log_proof=*/true);
    for (std::uint32_t v = 0; v < n_vars; ++v) s.newVar();
    for (const auto& clause : cnf) s.addClause(clause);
    if (s.solve() != Status::Unsat) continue;
    ++unsat_seen;
    ASSERT_TRUE(checkProof(s)) << checkProof(s).error;

    // Snapshot literals by stable id, relocate, compare, re-certify.
    const auto n_clauses = static_cast<ClauseId>(s.proof().chains.size());
    std::vector<std::vector<SLit>> before(n_clauses);
    for (ClauseId id = 0; id < n_clauses; ++id) {
      const auto lits = s.clauseLits(id);
      before[id].assign(lits.begin(), lits.end());
    }
    s.garbageCollect();
    for (ClauseId id = 0; id < n_clauses; ++id) {
      const auto lits = s.clauseLits(id);
      ASSERT_EQ(before[id], std::vector<SLit>(lits.begin(), lits.end()))
          << "clause " << id << " changed across relocation";
    }
    const ProofCheckResult res = checkProof(s);
    ASSERT_TRUE(res) << res.error;
    EXPECT_GE(s.numGcs(), 1u);
  }
  ASSERT_EQ(unsat_seen, 25) << "sweep generated too few UNSAT instances";
}

TEST(SatArena, SolvingContinuesAcrossGarbageCollection) {
  // Interleave solving, clause addition, and forced compaction on one
  // incremental solver; verdicts must match a fresh solver per step.
  Rng rng(0xEC0'0005);
  const std::uint32_t n_vars = 12;
  Solver inc;
  for (std::uint32_t v = 0; v < n_vars; ++v) inc.newVar();
  Cnf so_far;
  for (int step = 0; step < 60; ++step) {
    const Cnf batch = randomCnf(rng, n_vars, 6);
    for (const auto& clause : batch) {
      inc.addClause(clause);
      so_far.push_back(clause);
    }
    inc.garbageCollect();
    const Status ri = inc.solve();
    Solver fresh;
    for (std::uint32_t v = 0; v < n_vars; ++v) fresh.newVar();
    for (const auto& clause : so_far) fresh.addClause(clause);
    ASSERT_EQ(ri, fresh.solve()) << "step " << step;
    if (ri == Status::Unsat) break;
    ASSERT_TRUE(modelSatisfies(inc, so_far)) << "step " << step;
  }
}

TEST(VsidsPicker, ActivityIncrementRescalesInsteadOfOverflowing) {
  // Regression: inc_ /= 0.95 every conflict crosses 1e100 after ~4.5k
  // conflicts with no intervening bump; without the decay-side guard it
  // reaches inf and every later bump saturates all activities to inf,
  // erasing the ordering. Emulate a long incremental run.
  VsidsPicker picker;
  for (int v = 0; v < 4; ++v) picker.addVar();
  for (int conflict = 0; conflict < 20000; ++conflict) {
    picker.decay();
    ASSERT_TRUE(std::isfinite(picker.activityInc())) << "at " << conflict;
  }
  // Ordering must still be expressible: bump var 2 twice, var 1 once.
  picker.bump(2);
  picker.bump(2);
  picker.bump(1);
  ASSERT_TRUE(std::isfinite(picker.activity(2)));
  EXPECT_GT(picker.activity(2), picker.activity(1));
  EXPECT_GT(picker.activity(1), picker.activity(0));
  EXPECT_EQ(picker.pick([](Var) { return true; }), 2u);
  EXPECT_EQ(picker.pick([](Var) { return true; }), 1u);
}

TEST(VsidsPicker, SolverSurvivesManyIncrementalSolves) {
  // End-to-end version of the overflow regression: thousands of conflicts
  // on one solver instance must leave the picker's increment finite.
  Rng rng(0xEC0'0006);
  Solver s;
  const std::uint32_t n_vars = 30;
  for (std::uint32_t v = 0; v < n_vars; ++v) s.newVar();
  std::uint64_t conflicts = 0;
  for (int round = 0; round < 400 && conflicts < 20000; ++round) {
    const Cnf batch = randomCnf(rng, n_vars, 10);
    for (const auto& clause : batch) s.addClause(clause);
    if (s.solve() == Status::Unsat) break;
    conflicts = s.numConflicts();
  }
  EXPECT_TRUE(std::isfinite(s.picker().activityInc()));
}

}  // namespace
}  // namespace eco::sat
