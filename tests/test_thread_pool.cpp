// Thread-pool unit tests: submission and futures, work distribution,
// exception propagation, parallelFor coverage, and graceful shutdown while
// tasks are still queued.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/thread_pool.h"

namespace eco {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.numWorkers(), 2u);
  std::future<int> f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  constexpr int kTasks = 1000;
  std::atomic<int> done{0};
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i, &done] {
      done.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(futures[i].get(), i);
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex m;
  std::set<std::thread::id> ids;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(m);
      ids.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, StealingDrainsImbalancedLoad) {
  // Round-robin submission with 64 tasks over 4 deques; long and short
  // tasks interleave, so finishing within the timeout requires idle
  // workers to steal rather than wait for their own deque.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    const bool heavy = (i % 4) == 0;  // all heavy tasks land on one deque
    futures.push_back(pool.submit([heavy, &done] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(heavy ? 20 : 1));
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);

  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.parallelFor(0, [](std::size_t) { FAIL() << "no indices expected"; });
  int calls = 0;
  pool.parallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallelFor(100,
                       [&](std::size_t i) {
                         executed.fetch_add(1, std::memory_order_relaxed);
                         if (i == 13) throw std::logic_error("unlucky");
                       }),
      std::logic_error);
  // Every claimed index either ran or the loop stopped — but the pool is
  // still usable afterwards.
  EXPECT_GE(executed.load(), 1);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, GracefulShutdownDrainsQueuedTasks) {
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs immediately with most tasks still queued.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPool, SingleWorkerPoolRunsEverything) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallelFor(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // inline: sequential, in order
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace eco
