// Tests for the AIG minimizer: size never grows, semantics never change
// (exhaustively checked), and the specific flatten/annihilate/FRAIG wins
// actually happen.

#include <gtest/gtest.h>

#include "aig/aig_ops.h"
#include "aig/minimize.h"
#include "base/rng.h"

namespace eco {
namespace {

void expectEquivalent(const Aig& a, const Aig& b) {
  ASSERT_EQ(a.numPis(), b.numPis());
  ASSERT_EQ(a.numPos(), b.numPos());
  ASSERT_LE(a.numPis(), 12u);
  for (std::uint32_t m = 0; m < (1u << a.numPis()); ++m) {
    std::vector<bool> in(a.numPis());
    for (std::uint32_t i = 0; i < a.numPis(); ++i) in[i] = (m >> i) & 1;
    ASSERT_EQ(a.evaluate(in), b.evaluate(in)) << "minterm " << m;
  }
}

TEST(Minimize, AnnihilatesComplementaryChainLeaves) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit c = aig.addPi("c");
  // ((a & b) & c) & !a == 0, but strash alone cannot see it.
  const Lit f = aig.addAnd(aig.addAnd(aig.addAnd(a, b), c), !a);
  aig.addPo(f, "f");
  const Aig min = minimizeAig(aig);
  EXPECT_EQ(min.numAnds(), 0u);
  EXPECT_EQ(min.poDriver(0), kFalse);
}

TEST(Minimize, DeduplicatesChainLeaves) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  // a & (b & (a & b)) has 3 ANDs; the function is a & b.
  const Lit f = aig.addAnd(a, aig.addAnd(b, aig.addAnd(a, b)));
  aig.addPo(f, "f");
  const Aig min = minimizeAig(aig);
  EXPECT_EQ(min.numAnds(), 1u);
  expectEquivalent(aig, min);
}

TEST(Minimize, FraigMergesRedundantRealizations) {
  Aig aig;
  const Lit a = aig.addPi("a");
  const Lit b = aig.addPi("b");
  const Lit f1 = aig.addAnd(a, b);
  const Lit f2 = aig.mkMux(a, b, kFalse);  // == a & b, different structure
  aig.addPo(aig.mkOr(f1, f2), "f");        // == a & b
  const Aig min = minimizeAig(aig);
  EXPECT_LE(min.numAnds(), 1u);
  expectEquivalent(aig, min);
}

TEST(Minimize, PreservesNamesAndOrder) {
  Aig aig;
  const Lit a = aig.addPi("in_a");
  const Lit b = aig.addPi("in_b");
  aig.addPo(aig.mkXor(a, b), "out_x");
  aig.addPo(aig.addAnd(a, b), "out_y");
  const Aig min = minimizeAig(aig);
  EXPECT_EQ(min.piName(0), "in_a");
  EXPECT_EQ(min.piName(1), "in_b");
  EXPECT_EQ(min.poName(0), "out_x");
  EXPECT_EQ(min.poName(1), "out_y");
  expectEquivalent(aig, min);
}

TEST(Minimize, ConstantOutputs) {
  Aig aig;
  const Lit a = aig.addPi("a");
  aig.addPo(aig.addAnd(a, !a), "zero");
  aig.addPo(kTrue, "one");
  const Aig min = minimizeAig(aig);
  EXPECT_EQ(min.numAnds(), 0u);
  EXPECT_EQ(min.poDriver(0), kFalse);
  EXPECT_EQ(min.poDriver(1), kTrue);
}

class MinimizeRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizeRandom, NeverGrowsAndPreservesFunction) {
  Rng rng(GetParam());
  Aig aig;
  const std::uint32_t n = 7;
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < n; ++i) {
    pool.push_back(aig.addPi("x" + std::to_string(i)));
  }
  for (int i = 0; i < 160; ++i) {
    const Lit x = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit y = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    Lit v = aig.addAnd(x, y);
    if (rng.chance(1, 4)) {
      // Inject redundancy the minimizer should find.
      const Lit other = pool[rng.below(pool.size())];
      v = aig.mkOr(v, aig.addAnd(v, other));
    }
    pool.push_back(v);
  }
  for (int j = 0; j < 4; ++j) {
    aig.addPo(pool[pool.size() - 1 - j] ^ rng.chance(1, 2), "o" + std::to_string(j));
  }
  const Aig min = minimizeAig(aig);
  EXPECT_LE(min.numAnds(), cleanup(aig).numAnds());
  expectEquivalent(aig, min);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinimizeRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace eco
