// Edge-case tests for the SAT solver's incremental interface: budget
// semantics, reuse after UNSAT, degenerate formulas, clause normalization.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "sat/solver.h"

namespace eco::sat {
namespace {

SLit pos(Var v) { return SLit::make(v, false); }
SLit neg(Var v) { return SLit::make(v, true); }

TEST(SolverEdge, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Status::Sat);
  s.newVar();
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(SolverEdge, SolverStaysUnsatAfterGlobalConflict) {
  Solver s;
  const Var a = s.newVar();
  s.addClause({pos(a)});
  s.addClause({neg(a)});
  EXPECT_EQ(s.solve(), Status::Unsat);
  EXPECT_EQ(s.solve(), Status::Unsat);
  // Adding more clauses cannot resurrect it.
  const Var b = s.newVar();
  s.addClause({pos(b)});
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(SolverEdge, BudgetIsPerSolveCall) {
  // Build a moderately hard pigeonhole; a starved call returns Undef, a
  // later unrestricted call on the same solver finishes.
  const int P = 7, H = 6;
  Solver s;
  std::vector<std::vector<Var>> v(P, std::vector<Var>(H));
  for (auto& row : v) {
    for (auto& var : row) var = s.newVar();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<SLit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(v[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({neg(v[p1][h]), neg(v[p2][h])});
      }
    }
  }
  s.setConflictBudget(5);
  EXPECT_EQ(s.solve(), Status::Undef);
  s.setConflictBudget(5);
  EXPECT_EQ(s.solve(), Status::Undef);  // relative budget: starved again
  s.setConflictBudget(-1);
  EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(SolverEdge, TautologicalAndDuplicateClauses) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar();
  EXPECT_EQ(s.addClause({pos(a), neg(a)}), kNoClause);  // tautology dropped
  const ClauseId id = s.addClause({pos(a), pos(a), pos(b)});
  EXPECT_NE(id, kNoClause);
  EXPECT_EQ(s.clauseLits(id).size(), 2u);  // deduplicated
  EXPECT_EQ(s.solve({neg(a)}), Status::Sat);
  EXPECT_EQ(s.modelValue(b), LBool::True);
}

TEST(SolverEdge, SatisfiedAtRootClauseDropped) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar();
  s.addClause({pos(a)});
  EXPECT_EQ(s.addClause({pos(a), pos(b)}), kNoClause);  // subsumed by unit
  EXPECT_EQ(s.solve(), Status::Sat);
}

TEST(SolverEdge, AssumptionOnlyConflictLeavesSolverUsable) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar();
  s.addClause({neg(a), pos(b)});
  s.addClause({neg(a), neg(b)});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(s.solve({pos(a)}), Status::Unsat);
    EXPECT_EQ(s.solve({neg(a)}), Status::Sat);
  }
}

TEST(SolverEdge, ManyAssumptions) {
  Solver s;
  std::vector<Var> vars;
  std::vector<SLit> assumptions;
  for (int i = 0; i < 200; ++i) {
    vars.push_back(s.newVar());
    assumptions.push_back(pos(vars.back()));
  }
  // Chain: v0 -> v1 -> ... forces consistency with the assumptions.
  for (int i = 0; i + 1 < 200; ++i) {
    s.addClause({neg(vars[i]), pos(vars[i + 1])});
  }
  EXPECT_EQ(s.solve(assumptions), Status::Sat);
  s.addClause({neg(vars[199])});
  EXPECT_EQ(s.solve(assumptions), Status::Unsat);
  // Core must include some assumption (v199's ancestors or itself).
  EXPECT_FALSE(s.failedAssumptions().empty());
}

TEST(SolverEdge, ModelConsistencyOnRandomSat) {
  Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    Solver s;
    const std::uint32_t n = 12;
    for (std::uint32_t i = 0; i < n; ++i) s.newVar();
    std::vector<std::vector<SLit>> cnf;
    for (int c = 0; c < 30; ++c) {
      std::vector<SLit> clause;
      for (int j = 0; j < 3; ++j) {
        clause.push_back(SLit::make(static_cast<Var>(rng.below(n)),
                                    rng.chance(1, 2)));
      }
      cnf.push_back(clause);
      s.addClause(clause);
    }
    if (s.solve() != Status::Sat) continue;
    for (std::uint32_t v = 0; v < n; ++v) {
      // SLit and Var accessors agree.
      EXPECT_EQ(s.modelValue(pos(v)), s.modelValue(v));
      EXPECT_EQ(s.modelValue(neg(v)) == LBool::True,
                s.modelValue(v) == LBool::False);
    }
  }
}

}  // namespace
}  // namespace eco::sat
