// Unit tests for the standalone resolution-proof checker (sat/proof_check):
// genuine proofs from the solver must certify, and deliberately corrupted
// proofs — wrong pivots, truncated chains, out-of-range references,
// rewritten refutations — must be rejected with a diagnostic.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/rng.h"
#include "sat/proof_check.h"
#include "sat/solver.h"

namespace eco::sat {
namespace {

/// Unsatisfiable pigeonhole instance (P pigeons into H holes, P > H).
void buildPigeonhole(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> v(pigeons, std::vector<Var>(holes));
  for (auto& row : v) {
    for (auto& var : row) var = s.newVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<SLit> c;
    for (int h = 0; h < holes; ++h) c.push_back(SLit::make(v[p][h], false));
    s.addClause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.addClause({SLit::make(v[p1][h], true), SLit::make(v[p2][h], true)});
      }
    }
  }
}

ClauseLitsFn litsOf(const Solver& s) {
  return [&s](ClauseId id) { return s.clauseLits(id); };
}

TEST(ProofChecker, CertifiesPigeonholeProof) {
  Solver s(/*log_proof=*/true);
  buildPigeonhole(s, 5, 4);
  ASSERT_EQ(s.solve(), Status::Unsat);
  const ProofCheckResult r = checkProof(s);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.chains_checked, 0u);
  EXPECT_GT(r.steps_checked, 0u);
}

TEST(ProofChecker, CertifiesRootLevelConflict) {
  Solver s(/*log_proof=*/true);
  const Var a = s.newVar(), b = s.newVar();
  s.addClause({SLit::make(a, false)});
  s.addClause({SLit::make(a, true), SLit::make(b, false)});
  s.addClause({SLit::make(b, true)});
  ASSERT_EQ(s.solve(), Status::Unsat);
  const ProofCheckResult r = checkProof(s);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ProofChecker, RejectsProofWithoutRefutation) {
  Proof empty;
  const ProofCheckResult r =
      checkProof(empty, [](ClauseId) { return std::span<const SLit>(); });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no empty-clause"), std::string::npos);
}

/// Fixture providing a genuine Unsat proof that individual tests corrupt.
class CorruptedProof : public ::testing::Test {
 protected:
  void SetUp() override {
    solver_ = std::make_unique<Solver>(/*log_proof=*/true);
    buildPigeonhole(*solver_, 5, 4);
    ASSERT_EQ(solver_->solve(), Status::Unsat);
    proof_ = solver_->proof();  // mutable copy
    ASSERT_TRUE(checkProof(proof_, litsOf(*solver_)).ok);
    // Locate some learned clause with a non-trivial chain.
    learned_ = kNoClause;
    for (ClauseId id = 0; id < proof_.chains.size(); ++id) {
      if (proof_.chains[id].start != kNoClause && !proof_.chains[id].steps.empty()) {
        learned_ = id;
        break;
      }
    }
    ASSERT_NE(learned_, kNoClause) << "proof has no learned clause to corrupt";
  }

  std::unique_ptr<Solver> solver_;
  Proof proof_;
  ClauseId learned_ = kNoClause;
};

TEST_F(CorruptedProof, RejectsWrongPivot) {
  // A pivot variable beyond every clause cannot resolve anything.
  proof_.chains[learned_].steps[0].pivot = solver_->numVars() + 7;
  const ProofCheckResult r = checkProof(proof_, litsOf(*solver_));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("pivot"), std::string::npos) << r.error;
}

TEST_F(CorruptedProof, RejectsTruncatedChain) {
  proof_.chains[learned_].steps.pop_back();
  const ProofCheckResult r = checkProof(proof_, litsOf(*solver_));
  EXPECT_FALSE(r.ok);
}

TEST_F(CorruptedProof, RejectsForwardReference) {
  // A learned clause may only resolve over clauses derived before it.
  proof_.chains[learned_].steps[0].clause =
      static_cast<ClauseId>(proof_.chains.size() - 1);
  const ProofCheckResult r = checkProof(proof_, litsOf(*solver_));
  EXPECT_FALSE(r.ok);
}

TEST_F(CorruptedProof, RejectsOutOfRangeReference) {
  proof_.empty_clause.steps[0].clause =
      static_cast<ClauseId>(proof_.chains.size()) + 100;
  const ProofCheckResult r = checkProof(proof_, litsOf(*solver_));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out-of-range"), std::string::npos) << r.error;
}

TEST_F(CorruptedProof, RejectsTruncatedRefutation) {
  // Dropping the tail of the final chain leaves a non-empty literal set.
  ASSERT_FALSE(proof_.empty_clause.steps.empty());
  proof_.empty_clause.steps.pop_back();
  const ProofCheckResult r = checkProof(proof_, litsOf(*solver_));
  EXPECT_FALSE(r.ok);
}

TEST(ProofChecker, RandomUnsatProofsCertify) {
  Rng rng(0xFADEDu);
  int unsat_seen = 0;
  for (int round = 0; round < 80 && unsat_seen < 15; ++round) {
    const std::uint32_t vars = 6 + rng.below(6);
    Solver s(/*log_proof=*/true);
    for (std::uint32_t v = 0; v < vars; ++v) s.newVar();
    for (std::uint32_t i = 0; i < vars * 5; ++i) {
      std::vector<SLit> clause;
      const std::uint32_t len = 1 + rng.below(3);
      for (std::uint32_t j = 0; j < len; ++j) {
        clause.push_back(
            SLit::make(static_cast<Var>(rng.below(vars)), rng.chance(1, 2)));
      }
      s.addClause(clause);
    }
    if (s.solve() != Status::Unsat) continue;
    ++unsat_seen;
    const ProofCheckResult r = checkProof(s);
    ASSERT_TRUE(r.ok) << r.error;

    // Corrupting a random step's pivot to an unused variable must always
    // be caught — the "tester of the tester" sanity direction.
    Proof bad = s.proof();
    ProofChain* chain = bad.empty_clause.steps.empty() ? nullptr : &bad.empty_clause;
    for (auto& c : bad.chains) {
      if (c.start != kNoClause && !c.steps.empty()) chain = &c;
    }
    if (chain != nullptr) {
      chain->steps[chain->steps.size() / 2].pivot = vars + 3;
      EXPECT_FALSE(checkProof(bad, litsOf(s)).ok);
    }
  }
  EXPECT_GE(unsat_seen, 5);
}

}  // namespace
}  // namespace eco::sat
