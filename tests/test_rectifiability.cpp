// Tests for the Eq. (2) 2QBF rectifiability oracle, including agreement
// with the patch-generation engine (completeness cross-check).

#include <gtest/gtest.h>

#include "aig/aig_ops.h"
#include "benchgen/benchgen.h"
#include "eco/engine.h"
#include "eco/rectifiability.h"

namespace eco {
namespace {

TEST(Rectifiability, SimpleRectifiable) {
  EcoInstance inst;
  const Lit a = inst.golden.addPi("a");
  const Lit b = inst.golden.addPi("b");
  inst.golden.addPo(inst.golden.addAnd(a, b), "o");
  inst.faulty.addPi("a");
  inst.faulty.addPi("b");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 2;
  inst.faulty.addPo(t, "o");
  const auto r = checkRectifiability(inst);
  EXPECT_EQ(r.status, Rectifiability::Rectifiable);
}

TEST(Rectifiability, SimpleUnrectifiable) {
  // Golden o = b; faulty o = t & a: at a=0 the output sticks at 0.
  EcoInstance inst;
  inst.golden.addPi("a");
  const Lit b = inst.golden.addPi("b");
  inst.golden.addPo(b, "o");
  const Lit fa = inst.faulty.addPi("a");
  inst.faulty.addPi("b");
  const Lit t = inst.faulty.addPi("t0");
  inst.num_x = 2;
  inst.faulty.addPo(inst.faulty.addAnd(t, fa), "o");
  const auto r = checkRectifiability(inst);
  ASSERT_EQ(r.status, Rectifiability::Unrectifiable);
  // The witness must be a = 0, b = 1 (the only failing X).
  ASSERT_EQ(r.witness_x.size(), 2u);
  EXPECT_FALSE(r.witness_x[0]);
  EXPECT_TRUE(r.witness_x[1]);
}

TEST(Rectifiability, XorCoupledNeedsJointStrategy) {
  // o = t0 xor t1 vs golden o = x: rectifiable, but no single constant
  // strategy works — forces at least one CEGAR refinement.
  EcoInstance inst;
  const Lit x = inst.golden.addPi("x");
  inst.golden.addPo(x, "o");
  inst.faulty.addPi("x");
  const Lit t0 = inst.faulty.addPi("t0");
  const Lit t1 = inst.faulty.addPi("t1");
  inst.num_x = 1;
  inst.faulty.addPo(inst.faulty.mkXor(t0, t1), "o");
  const auto r = checkRectifiability(inst);
  EXPECT_EQ(r.status, Rectifiability::Rectifiable);
  EXPECT_GE(r.iterations, 2u);
}

// Cross-check: on generated (always rectifiable) units and mutated
// (possibly unrectifiable) ones, the oracle and the engine agree.
class RectifiabilityAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RectifiabilityAgreement, OracleAgreesWithEngine) {
  benchgen::UnitSpec spec{.name = "agree",
                          .family = benchgen::Family::Random,
                          .size_param = 120,
                          .num_targets = 2,
                          .seed = GetParam()};
  EcoInstance inst = benchgen::generateUnit(spec);
  {
    const auto r = checkRectifiability(inst);
    EXPECT_EQ(r.status, Rectifiability::Rectifiable);
    const PatchResult p = EcoEngine().run(inst);
    EXPECT_TRUE(p.success) << p.message;
  }
  // Break the instance: flip one golden output so the faulty circuit's
  // untouched logic can no longer match (may or may not stay rectifiable
  // depending on target reach — the two deciders must still agree).
  EcoInstance broken = inst;
  Aig g2;
  VarMap map;
  for (std::uint32_t i = 0; i < inst.golden.numPis(); ++i) {
    map[inst.golden.piVar(i)] = g2.addPi(inst.golden.piName(i));
  }
  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < inst.golden.numPos(); ++j) {
    roots.push_back(inst.golden.poDriver(j));
  }
  const std::vector<Lit> mapped = copyCones(inst.golden, roots, map, g2);
  for (std::uint32_t j = 0; j < inst.golden.numPos(); ++j) {
    g2.addPo(j == 0 ? !mapped[j] : mapped[j], inst.golden.poName(j));
  }
  broken.golden = std::move(g2);
  const auto r = checkRectifiability(broken);
  const PatchResult p = EcoEngine().run(broken);
  ASSERT_NE(r.status, Rectifiability::Unknown);
  EXPECT_EQ(p.success, r.status == Rectifiability::Rectifiable) << p.message;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RectifiabilityAgreement,
                         ::testing::Values(51, 52, 53, 54));

}  // namespace
}  // namespace eco
