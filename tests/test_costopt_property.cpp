// Property tests for rebasing and base selection on randomized
// specifications: selection always returns a feasible base no costlier
// than the initial one, and synthesis over any feasible base yields a
// function that exhaustively satisfies  on -> p  and  p & off = 0.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "eco/costopt.h"
#include "eco/rebase.h"
#include "eco/relations.h"

namespace eco {
namespace {

struct RebaseSetup {
  EcoInstance inst;
  Workspace ws;
  Lit on, off;
  std::vector<Candidate> cands;
};

/// Random on/off pair (disjoint by construction) over n X inputs, plus a
/// pool of random candidate functions that always includes the X inputs
/// themselves (so feasibility of {all X} is guaranteed).
RebaseSetup makeRandomSetup(std::uint32_t n, std::uint32_t n_extra, Rng& rng) {
  RebaseSetup s;
  for (std::uint32_t i = 0; i < n; ++i) {
    s.inst.golden.addPi("x" + std::to_string(i));
    s.inst.faulty.addPi("x" + std::to_string(i));
  }
  s.inst.faulty.addPi("t0");
  s.inst.num_x = n;
  s.inst.golden.addPo(kFalse, "o");
  s.inst.faulty.addPo(kFalse, "o");

  // Random extra candidate functions as named signals of the faulty AIG.
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < n; ++i) pool.push_back(s.inst.faulty.piLit(i));
  for (std::uint32_t i = 0; i < n_extra; ++i) {
    const Lit a = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit b = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit v = s.inst.faulty.addAnd(a, b);
    if (!s.inst.faulty.isPi(v.var()) && v.var() != 0) {
      s.inst.faulty.setSignalName(v, "c" + std::to_string(i));
      pool.push_back(v);
    }
  }
  s.ws = buildWorkspace(s.inst);
  s.cands = collectCandidates(s.inst, s.ws);

  // Random disjoint on/off in the workspace.
  Lit f = kFalse, g = kFalse;
  std::vector<Lit> wpool = s.ws.x_pis;
  for (int i = 0; i < 20; ++i) {
    const Lit a = wpool[rng.below(wpool.size())] ^ rng.chance(1, 2);
    const Lit b = wpool[rng.below(wpool.size())] ^ rng.chance(1, 2);
    wpool.push_back(s.ws.w.addAnd(a, b));
  }
  f = wpool[wpool.size() - 1 - rng.below(5)];
  g = wpool[wpool.size() - 1 - rng.below(5)] ^ true;
  s.on = s.ws.w.addAnd(f, g);
  s.off = s.ws.w.addAnd(f, !g);  // disjoint from on by construction
  return s;
}

/// Evaluates a workspace literal under an X assignment.
bool evalW(const Workspace& ws, Lit l, std::uint32_t m) {
  std::vector<bool> in(ws.w.numPis(), false);
  for (std::size_t i = 0; i < ws.x_pis.size(); ++i) {
    in[ws.w.piIndex(ws.x_pis[i].var())] = (m >> i) & 1;
  }
  // Point evaluation via a one-PO probe is wasteful but simple: reuse
  // Aig::evaluate over a temporary PO? Instead evaluate all nodes directly.
  std::vector<bool> value(ws.w.numNodes(), false);
  for (std::uint32_t v = 1; v < ws.w.numNodes(); ++v) {
    if (ws.w.isPi(v)) {
      value[v] = in[ws.w.piIndex(v)];
    } else {
      const Lit f0 = ws.w.fanin0(v);
      const Lit f1 = ws.w.fanin1(v);
      value[v] = (value[f0.var()] ^ f0.complemented()) &&
                 (value[f1.var()] ^ f1.complemented());
    }
  }
  return value[l.var()] ^ l.complemented();
}

class CostOptProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CostOptProperty, SelectionFeasibleAndSynthesisSound) {
  Rng rng(GetParam());
  const std::uint32_t n = 5;
  RebaseSetup s = makeRandomSetup(n, 12, rng);

  RebaseOracle oracle(s.ws, s.on, s.off, s.cands);
  std::vector<double> weight(s.cands.size());
  for (auto& w : weight) w = 1 + rng.below(9);

  // Initial base: all X inputs (always feasible — on/off are X functions).
  std::vector<std::uint32_t> initial;
  for (std::uint32_t i = 0; i < n; ++i) initial.push_back(i);
  ASSERT_TRUE(oracle.feasible(initial));
  double initial_cost = 0;
  for (const std::uint32_t i : initial) initial_cost += weight[i];

  EcoOptions opt;
  opt.watch_size = 3;
  const BaseSelection sel = selectBase(oracle, weight, initial, opt);
  EXPECT_TRUE(oracle.feasible(sel.base));
  EXPECT_LE(sel.cost, initial_cost);

  // Synthesize over the selected base and verify exhaustively.
  const auto patch =
      synthesizeOverBase(s.ws, s.on, s.off, s.cands, sel.base, -1);
  ASSERT_TRUE(patch.has_value());
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    std::vector<bool> base_vals;
    for (const std::uint32_t i : sel.base) {
      base_vals.push_back(evalW(s.ws, s.cands[i].w_fn, m));
    }
    const bool p = patch->evaluate(base_vals)[0];
    if (evalW(s.ws, s.on, m)) {
      EXPECT_TRUE(p) << "on-set violated at " << m;
    }
    if (evalW(s.ws, s.off, m)) {
      EXPECT_FALSE(p) << "off-set violated at " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CostOptProperty,
                         ::testing::Values(7, 17, 27, 37, 47, 57, 67, 77));

}  // namespace
}  // namespace eco
