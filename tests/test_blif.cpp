// Tests for BLIF I/O: SOP cover semantics (on-set and off-set polarity,
// don't-cares, constants), structure handling, and round trips.

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/rng.h"
#include "io/blif.h"

namespace eco::io {
namespace {

TEST(Blif, ParseSop) {
  const std::string text = R"(
# a 2-bit equality comparator
.model eq2
.inputs a0 a1 b0 b1
.outputs eq
.names a0 b0 e0
11 1
00 1
.names a1 b1 e1
11 1
00 1
.names e0 e1 eq
11 1
.end
)";
  const Aig aig = parseBlif(text);
  ASSERT_EQ(aig.numPis(), 4u);
  for (std::uint32_t m = 0; m < 16; ++m) {
    const std::uint32_t a = m & 3, b = (m >> 2) & 3;
    const std::vector<bool> in{(a & 1) != 0, (a & 2) != 0, (b & 1) != 0,
                               (b & 2) != 0};
    EXPECT_EQ(aig.evaluate(in)[0], a == b) << "m=" << m;
  }
}

TEST(Blif, DontCareColumnsAndOffsetPolarity) {
  const std::string text = R"(
.model f
.inputs a b c
.outputs onf offf
.names a b c onf
1-1 1
01- 1
.names a b c offf
000 0
111 0
.end
)";
  const Aig aig = parseBlif(text);
  for (std::uint32_t m = 0; m < 8; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1;
    const auto out = aig.evaluate({a, b, c});
    EXPECT_EQ(out[0], (a && c) || (!a && b)) << m;
    // off-set cover: function is 0 exactly on listed cubes.
    EXPECT_EQ(out[1], !((!a && !b && !c) || (a && b && c))) << m;
  }
}

TEST(Blif, ConstantsAndEmptyCover) {
  const std::string text = R"(
.model k
.inputs a
.outputs one zero empty
.names one
1
.names zero
0
.names empty
.end
)";
  const Aig aig = parseBlif(text);
  const auto out = aig.evaluate({false});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_FALSE(out[2]);
}

TEST(Blif, LineContinuation) {
  const std::string text =
      ".model c\n.inputs \\\na b\n.outputs o\n.names a b o\n11 1\n.end\n";
  const Aig aig = parseBlif(text);
  EXPECT_EQ(aig.numPis(), 2u);
  EXPECT_TRUE(aig.evaluate({true, true})[0]);
}

TEST(Blif, RejectsLatch) {
  EXPECT_THROW(parseBlif(".model l\n.latch a b 0\n.end\n"), std::runtime_error);
}

TEST(Blif, RejectsMixedPolarity) {
  const std::string text =
      ".model m\n.inputs a\n.outputs o\n.names a o\n1 1\n0 0\n.end\n";
  EXPECT_THROW(parseBlif(text), std::runtime_error);
}

TEST(Blif, RejectsCycle) {
  const std::string text = R"(
.model c
.inputs a
.outputs o
.names a x y
11 1
.names a y x
11 1
.names x o
1 1
.end
)";
  EXPECT_THROW(parseBlif(text), std::runtime_error);
}

TEST(Blif, RejectsUndriven) {
  const std::string text =
      ".model u\n.inputs a\n.outputs o\n.names a ghost o\n11 1\n.end\n";
  EXPECT_THROW(parseBlif(text), std::runtime_error);
}

class BlifRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlifRandom, RoundTripPreservesFunction) {
  Rng rng(GetParam());
  Aig aig;
  const std::uint32_t n = 5;
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < n; ++i) {
    pool.push_back(aig.addPi("x" + std::to_string(i)));
  }
  for (int i = 0; i < 60; ++i) {
    const Lit x = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit y = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    pool.push_back(aig.addAnd(x, y));
  }
  aig.addPo(pool.back() ^ rng.chance(1, 2), "f");
  aig.addPo(kTrue, "t");
  const Aig back = parseBlif(writeBlif(aig, "rt"));
  ASSERT_EQ(back.numPis(), n);
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    std::vector<bool> in(n);
    for (std::uint32_t i = 0; i < n; ++i) in[i] = (m >> i) & 1;
    ASSERT_EQ(aig.evaluate(in), back.evaluate(in)) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlifRandom, ::testing::Values(3, 6, 9, 12));

}  // namespace
}  // namespace eco::io
