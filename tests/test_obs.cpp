// Tests for the observability subsystem: JSON emitter/parser round trips,
// metrics aggregation under concurrency, and trace sessions producing
// well-formed Chrome trace_event JSON with per-thread monotonic spans.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "obs/obs.h"

namespace eco::obs {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, WriterEscapesAndNests) {
  JsonWriter w;
  w.beginObject();
  w.key("s"); w.value("a\"b\\c\n\t\x01");
  w.key("n"); w.value(std::uint64_t{18446744073709551615ULL});
  w.key("neg"); w.value(std::int64_t{-42});
  w.key("f"); w.valueFixed(1.5, 3);
  w.key("b"); w.value(true);
  w.key("z"); w.nullValue();
  w.key("arr");
  w.beginArray();
  w.value(std::uint32_t{1});
  w.beginObject();
  w.key("k"); w.value("v");
  w.endObject();
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\","
            "\"n\":18446744073709551615,\"neg\":-42,\"f\":1.500,"
            "\"b\":true,\"z\":null,\"arr\":[1,{\"k\":\"v\"}]}");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  JsonWriter w;
  w.beginObject();
  w.key("name"); w.value("xéy");
  w.key("vals");
  w.beginArray();
  w.value(std::int64_t{-1});
  w.valueFixed(0.25, 2);
  w.endArray();
  w.endObject();

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(w.str(), &doc, &error)) << error;
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("name")->string, "xéy");
  ASSERT_TRUE(doc.find("vals")->isArray());
  EXPECT_EQ(doc.find("vals")->array[0].number, -1.0);
  EXPECT_EQ(doc.find("vals")->array[1].number, 0.25);
}

TEST(Json, ParserRejectsMalformedInput) {
  json::Value doc;
  std::string error;
  EXPECT_FALSE(json::parse("", &doc, &error));
  EXPECT_FALSE(json::parse("{", &doc, &error));
  EXPECT_FALSE(json::parse("{\"a\":1,}", &doc, &error));
  EXPECT_FALSE(json::parse("[1 2]", &doc, &error));
  EXPECT_FALSE(json::parse("\"unterminated", &doc, &error));
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", &doc, &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(Json, RawValueSplicesDocument) {
  JsonWriter inner;
  inner.beginObject();
  inner.key("x"); inner.value(std::uint64_t{7});
  inner.endObject();
  JsonWriter w;
  w.beginObject();
  w.key("first"); w.value(std::uint64_t{1});
  w.key("inner"); w.rawValue(inner.str());
  w.key("last"); w.value(std::uint64_t{2});
  w.endObject();
  json::Value doc;
  ASSERT_TRUE(json::parse(w.str(), &doc, nullptr));
  EXPECT_EQ(doc.find("inner")->find("x")->number, 7.0);
  EXPECT_EQ(doc.find("last")->number, 2.0);
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, HistogramBucketMath) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::bucketLowerBound(3), 4u);
}

#if ECO_OBS_ENABLED

TEST(Metrics, CounterAndHistogramBasics) {
  Counter& c = counter("test.obs.basic_counter");
  const std::uint64_t before = c.value();
  ECO_OBS_COUNT("test.obs.basic_counter", 3);
  ECO_OBS_COUNT("test.obs.basic_counter", 2);
  EXPECT_EQ(c.value(), before + 5);
  EXPECT_EQ(counterValue("test.obs.basic_counter"), before + 5);
  EXPECT_EQ(counterValue("test.obs.never_registered"), 0u);

  Histogram& h = histogram("test.obs.basic_hist");
  h.observe(0);
  h.observe(5);
  h.observe(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 105u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucketCount(Histogram::bucketOf(5)), 1u);
}

TEST(Metrics, ConcurrentAggregationIsExact) {
  Counter& c = counter("test.obs.concurrent_counter");
  Histogram& h = histogram("test.obs.concurrent_hist");
  const std::uint64_t c0 = c.value();
  const std::uint64_t n0 = h.count();
  const std::uint64_t s0 = h.sum();

  constexpr std::uint64_t kItems = 10000;
  ThreadPool pool(4);
  pool.parallelFor(kItems, [&](std::size_t i) {
    c.add(2);
    h.observe(i % 17);
  });

  EXPECT_EQ(c.value() - c0, 2 * kItems);
  EXPECT_EQ(h.count() - n0, kItems);
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) expected_sum += i % 17;
  EXPECT_EQ(h.sum() - s0, expected_sum);
}

TEST(Metrics, SnapshotSerializesToValidJson) {
  ECO_OBS_COUNT("test.obs.snap_counter", 1);
  ECO_OBS_OBSERVE("test.obs.snap_hist", 9);
  const MetricsSnapshot snap = snapshotMetrics();
  JsonWriter w;
  writeMetricsJson(w, snap);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(w.str(), &doc, &error)) << error;
  const json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("test.obs.snap_counter"), nullptr);
  const json::Value* hist = doc.find("histograms")->find("test.obs.snap_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->find("count")->number, 1.0);
  ASSERT_TRUE(hist->find("buckets")->isArray());
}

// --------------------------------------------------------------- trace --

TEST(Trace, DisabledByDefaultAndSpansAreCheap) {
  ASSERT_FALSE(traceEnabled());
  Span s("test.untraced");
  EXPECT_EQ(s.stop(), 0.0);  // kTrace mode does not even read the clock

  Span timed("test.timed", Span::Mode::kTimed);
  EXPECT_GE(timed.stop(), 0.0);  // kTimed always measures
  EXPECT_EQ(timed.stop(), timed.stop());  // idempotent
}

TEST(Trace, SessionCapturesNestedSpansAcrossPoolWorkers) {
  setThreadName("gtest-main");
  startTrace();
  {
    Span outer("test.outer", Span::Mode::kTimed);
    outer.arg("answer", 42);
    {
      Span inner("test.inner");
      inner.arg("k", 7);
    }
    ThreadPool pool(3);
    pool.parallelFor(16, [&](std::size_t i) {
      Span worker("test.worker");
      worker.arg("i", i);
    });
  }
  const TraceDump dump = stopTrace();

  ASSERT_FALSE(dump.events.empty());
  EXPECT_EQ(dump.dropped_events, 0u);
  EXPECT_GT(dump.session_ns, 0u);

  std::size_t outer_n = 0, inner_n = 0, worker_n = 0;
  std::uint32_t outer_tid = 0;
  std::uint64_t outer_ts = 0, outer_end = 0;
  for (const TraceEvent& e : dump.events) {
    const std::string name = e.name;
    if (name == "test.outer") {
      ++outer_n;
      outer_tid = e.tid;
      outer_ts = e.ts_ns;
      outer_end = e.ts_ns + e.dur_ns;
      ASSERT_NE(e.arg_name, nullptr);
      EXPECT_EQ(e.arg_value, 42u);
    } else if (name == "test.inner") {
      ++inner_n;
    } else if (name == "test.worker") {
      ++worker_n;
    }
  }
  EXPECT_EQ(outer_n, 1u);
  EXPECT_EQ(inner_n, 1u);
  EXPECT_EQ(worker_n, 16u);

  // The inner span is contained in the outer span on the same thread.
  for (const TraceEvent& e : dump.events) {
    if (std::string(e.name) == "test.inner") {
      EXPECT_EQ(e.tid, outer_tid);
      EXPECT_GE(e.ts_ns, outer_ts);
      EXPECT_LE(e.ts_ns + e.dur_ns, outer_end);
    }
  }

  // Per-thread monotonic start order (the dump is sorted by tid, ts).
  std::map<std::uint32_t, std::uint64_t> last_ts;
  for (const TraceEvent& e : dump.events) {
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) EXPECT_GE(e.ts_ns, it->second);
    last_ts[e.tid] = e.ts_ns;
  }

  // Worker threads registered their names.
  bool main_named = false, pool_named = false;
  for (const auto& [tid, name] : dump.thread_names) {
    if (name == "gtest-main") main_named = true;
    if (name.rfind("pool-", 0) == 0) pool_named = true;
  }
  EXPECT_TRUE(main_named);
  EXPECT_TRUE(pool_named);
}

TEST(Trace, ChromeExportIsValidTraceEventJson) {
  // Each gtest case may run in its own process (ctest per-test invocation),
  // so register this thread's name here rather than relying on a prior test.
  setThreadName("gtest-main");
  startTrace();
  {
    Span s("test.export", Span::Mode::kTimed);
    s.arg("bytes", 1024);
  }
  const TraceDump dump = stopTrace();
  const std::string json = chromeTraceJson(dump);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(json, &doc, &error)) << error;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());

  bool saw_export = false, saw_thread_name = false;
  for (const json::Value& e : events->array) {
    const std::string ph = e.find("ph")->string;
    if (ph == "M" && e.find("name")->string == "thread_name") {
      saw_thread_name = true;
    }
    if (ph != "X") continue;
    EXPECT_GE(e.find("ts")->number, 0.0);
    EXPECT_GE(e.find("dur")->number, 0.0);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (e.find("name")->string == "test.export") {
      saw_export = true;
      EXPECT_EQ(e.find("args")->find("bytes")->number, 1024.0);
    }
  }
  EXPECT_TRUE(saw_export);
  EXPECT_TRUE(saw_thread_name);
}

TEST(Trace, SecondSessionDoesNotReplayOldEvents) {
  startTrace();
  { Span s("test.first_session"); }
  (void)stopTrace();

  startTrace();
  { Span s("test.second_session"); }
  const TraceDump dump = stopTrace();
  for (const TraceEvent& e : dump.events) {
    EXPECT_STRNE(e.name, "test.first_session");
  }
}

#endif  // ECO_OBS_ENABLED

}  // namespace
}  // namespace eco::obs
