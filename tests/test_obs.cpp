// Tests for the observability subsystem: JSON emitter/parser round trips,
// metrics aggregation under concurrency, and trace sessions producing
// well-formed Chrome trace_event JSON with per-thread monotonic spans.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "obs/obs.h"

namespace eco::obs {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, WriterEscapesAndNests) {
  JsonWriter w;
  w.beginObject();
  w.key("s"); w.value("a\"b\\c\n\t\x01");
  w.key("n"); w.value(std::uint64_t{18446744073709551615ULL});
  w.key("neg"); w.value(std::int64_t{-42});
  w.key("f"); w.valueFixed(1.5, 3);
  w.key("b"); w.value(true);
  w.key("z"); w.nullValue();
  w.key("arr");
  w.beginArray();
  w.value(std::uint32_t{1});
  w.beginObject();
  w.key("k"); w.value("v");
  w.endObject();
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0001\","
            "\"n\":18446744073709551615,\"neg\":-42,\"f\":1.500,"
            "\"b\":true,\"z\":null,\"arr\":[1,{\"k\":\"v\"}]}");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  JsonWriter w;
  w.beginObject();
  w.key("name"); w.value("xéy");
  w.key("vals");
  w.beginArray();
  w.value(std::int64_t{-1});
  w.valueFixed(0.25, 2);
  w.endArray();
  w.endObject();

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(w.str(), &doc, &error)) << error;
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("name")->string, "xéy");
  ASSERT_TRUE(doc.find("vals")->isArray());
  EXPECT_EQ(doc.find("vals")->array[0].number, -1.0);
  EXPECT_EQ(doc.find("vals")->array[1].number, 0.25);
}

TEST(Json, ParserRejectsMalformedInput) {
  json::Value doc;
  std::string error;
  EXPECT_FALSE(json::parse("", &doc, &error));
  EXPECT_FALSE(json::parse("{", &doc, &error));
  EXPECT_FALSE(json::parse("{\"a\":1,}", &doc, &error));
  EXPECT_FALSE(json::parse("[1 2]", &doc, &error));
  EXPECT_FALSE(json::parse("\"unterminated", &doc, &error));
  EXPECT_FALSE(json::parse("{\"a\":1} trailing", &doc, &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(Json, NonAsciiAndControlCharactersRoundTrip) {
  // UTF-8 multibyte passes through verbatim; every control byte below
  // 0x20 without a short escape becomes \u00XX. Both must survive a
  // write -> parse round trip byte-exactly.
  const std::string original =
      std::string("héllo wörld \xE2\x82\xAC \xF0\x9F\x94\xA5 ") +  // € + 🔥
      std::string("ctl:\x01\x02\x1f\x7f") + "\b\f\r";
  JsonWriter w;
  w.beginObject();
  w.key("s"); w.value(original);
  w.endObject();

  // The emitted document contains no raw control bytes.
  for (const char c : w.str()) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte in JSON output";
  }

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(w.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.find("s")->string, original);
}

TEST(Json, ParserDecodesUnicodeEscapes) {
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse("{\"s\":\"a\\u0041\\u00e9\\u20ac\"}", &doc, &error))
      << error;
  EXPECT_EQ(doc.find("s")->string, "aA\xC3\xA9\xE2\x82\xAC");  // A é €
}

TEST(Json, RawValueSplicesDocument) {
  JsonWriter inner;
  inner.beginObject();
  inner.key("x"); inner.value(std::uint64_t{7});
  inner.endObject();
  JsonWriter w;
  w.beginObject();
  w.key("first"); w.value(std::uint64_t{1});
  w.key("inner"); w.rawValue(inner.str());
  w.key("last"); w.value(std::uint64_t{2});
  w.endObject();
  json::Value doc;
  ASSERT_TRUE(json::parse(w.str(), &doc, nullptr));
  EXPECT_EQ(doc.find("inner")->find("x")->number, 7.0);
  EXPECT_EQ(doc.find("last")->number, 2.0);
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, HistogramBucketMath) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::bucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::bucketLowerBound(3), 4u);
}

#if ECO_OBS_ENABLED

TEST(Metrics, CounterAndHistogramBasics) {
  Counter& c = counter("test.obs.basic_counter");
  const std::uint64_t before = c.value();
  ECO_OBS_COUNT("test.obs.basic_counter", 3);
  ECO_OBS_COUNT("test.obs.basic_counter", 2);
  EXPECT_EQ(c.value(), before + 5);
  EXPECT_EQ(counterValue("test.obs.basic_counter"), before + 5);
  EXPECT_EQ(counterValue("test.obs.never_registered"), 0u);

  Histogram& h = histogram("test.obs.basic_hist");
  h.observe(0);
  h.observe(5);
  h.observe(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 105u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucketCount(Histogram::bucketOf(5)), 1u);
}

TEST(Metrics, ConcurrentAggregationIsExact) {
  Counter& c = counter("test.obs.concurrent_counter");
  Histogram& h = histogram("test.obs.concurrent_hist");
  const std::uint64_t c0 = c.value();
  const std::uint64_t n0 = h.count();
  const std::uint64_t s0 = h.sum();

  constexpr std::uint64_t kItems = 10000;
  ThreadPool pool(4);
  pool.parallelFor(kItems, [&](std::size_t i) {
    c.add(2);
    h.observe(i % 17);
  });

  EXPECT_EQ(c.value() - c0, 2 * kItems);
  EXPECT_EQ(h.count() - n0, kItems);
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) expected_sum += i % 17;
  EXPECT_EQ(h.sum() - s0, expected_sum);
}

TEST(Metrics, SnapshotSerializesToValidJson) {
  ECO_OBS_COUNT("test.obs.snap_counter", 1);
  ECO_OBS_OBSERVE("test.obs.snap_hist", 9);
  const MetricsSnapshot snap = snapshotMetrics();
  JsonWriter w;
  writeMetricsJson(w, snap);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(w.str(), &doc, &error)) << error;
  const json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("test.obs.snap_counter"), nullptr);
  const json::Value* hist = doc.find("histograms")->find("test.obs.snap_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->find("count")->number, 1.0);
  ASSERT_TRUE(hist->find("buckets")->isArray());
}

// --------------------------------------------------------------- trace --

TEST(Trace, DisabledByDefaultAndSpansAreCheap) {
  ASSERT_FALSE(traceEnabled());
  Span s("test.untraced");
  EXPECT_EQ(s.stop(), 0.0);  // kTrace mode does not even read the clock

  Span timed("test.timed", Span::Mode::kTimed);
  EXPECT_GE(timed.stop(), 0.0);  // kTimed always measures
  EXPECT_EQ(timed.stop(), timed.stop());  // idempotent
}

TEST(Trace, SessionCapturesNestedSpansAcrossPoolWorkers) {
  setThreadName("gtest-main");
  startTrace();
  {
    Span outer("test.outer", Span::Mode::kTimed);
    outer.arg("answer", 42);
    {
      Span inner("test.inner");
      inner.arg("k", 7);
    }
    ThreadPool pool(3);
    pool.parallelFor(16, [&](std::size_t i) {
      Span worker("test.worker");
      worker.arg("i", i);
    });
  }
  const TraceDump dump = stopTrace();

  ASSERT_FALSE(dump.events.empty());
  EXPECT_EQ(dump.dropped_events, 0u);
  EXPECT_GT(dump.session_ns, 0u);

  std::size_t outer_n = 0, inner_n = 0, worker_n = 0;
  std::uint32_t outer_tid = 0;
  std::uint64_t outer_ts = 0, outer_end = 0;
  for (const TraceEvent& e : dump.events) {
    const std::string name = e.name;
    if (name == "test.outer") {
      ++outer_n;
      outer_tid = e.tid;
      outer_ts = e.ts_ns;
      outer_end = e.ts_ns + e.dur_ns;
      ASSERT_NE(e.arg_name, nullptr);
      EXPECT_EQ(e.arg_value, 42u);
    } else if (name == "test.inner") {
      ++inner_n;
    } else if (name == "test.worker") {
      ++worker_n;
    }
  }
  EXPECT_EQ(outer_n, 1u);
  EXPECT_EQ(inner_n, 1u);
  EXPECT_EQ(worker_n, 16u);

  // The inner span is contained in the outer span on the same thread.
  for (const TraceEvent& e : dump.events) {
    if (std::string(e.name) == "test.inner") {
      EXPECT_EQ(e.tid, outer_tid);
      EXPECT_GE(e.ts_ns, outer_ts);
      EXPECT_LE(e.ts_ns + e.dur_ns, outer_end);
    }
  }

  // Per-thread monotonic start order (the dump is sorted by tid, ts).
  std::map<std::uint32_t, std::uint64_t> last_ts;
  for (const TraceEvent& e : dump.events) {
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) EXPECT_GE(e.ts_ns, it->second);
    last_ts[e.tid] = e.ts_ns;
  }

  // Worker threads registered their names.
  bool main_named = false, pool_named = false;
  for (const auto& [tid, name] : dump.thread_names) {
    if (name == "gtest-main") main_named = true;
    if (name.rfind("pool-", 0) == 0) pool_named = true;
  }
  EXPECT_TRUE(main_named);
  EXPECT_TRUE(pool_named);
}

TEST(Trace, ChromeExportIsValidTraceEventJson) {
  // Each gtest case may run in its own process (ctest per-test invocation),
  // so register this thread's name here rather than relying on a prior test.
  setThreadName("gtest-main");
  startTrace();
  {
    Span s("test.export", Span::Mode::kTimed);
    s.arg("bytes", 1024);
  }
  const TraceDump dump = stopTrace();
  const std::string json = chromeTraceJson(dump);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(json, &doc, &error)) << error;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());

  bool saw_export = false, saw_thread_name = false;
  for (const json::Value& e : events->array) {
    const std::string ph = e.find("ph")->string;
    if (ph == "M" && e.find("name")->string == "thread_name") {
      saw_thread_name = true;
    }
    if (ph != "X") continue;
    EXPECT_GE(e.find("ts")->number, 0.0);
    EXPECT_GE(e.find("dur")->number, 0.0);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (e.find("name")->string == "test.export") {
      saw_export = true;
      EXPECT_EQ(e.find("args")->find("bytes")->number, 1024.0);
    }
  }
  EXPECT_TRUE(saw_export);
  EXPECT_TRUE(saw_thread_name);
}

TEST(Trace, SecondSessionDoesNotReplayOldEvents) {
  startTrace();
  { Span s("test.first_session"); }
  (void)stopTrace();

  startTrace();
  { Span s("test.second_session"); }
  const TraceDump dump = stopTrace();
  for (const TraceEvent& e : dump.events) {
    EXPECT_STRNE(e.name, "test.first_session");
  }
}

// ------------------------------------------------------------ progress --

TEST(Progress, GaugesAndLabelsPublish) {
  ECO_OBS_GAUGE_SET("test.obs.gauge", 41);
  ECO_OBS_GAUGE_ADD("test.obs.gauge", 1);
  EXPECT_EQ(gaugeValue("test.obs.gauge"), 42);
  EXPECT_EQ(gaugeValue("test.obs.gauge_never"), 0);

  setLabel("test.obs.slot", "alpha");
  EXPECT_STREQ(labelValue("test.obs.slot"), "alpha");
  {
    ProgressScope outer("test.obs.slot", "beta");
    EXPECT_STREQ(labelValue("test.obs.slot"), "beta");
    {
      ProgressScope inner("test.obs.slot", "gamma");
      EXPECT_STREQ(labelValue("test.obs.slot"), "gamma");
    }
    // Nested scopes unwind to the enclosing value, not to empty.
    EXPECT_STREQ(labelValue("test.obs.slot"), "beta");
  }
  EXPECT_STREQ(labelValue("test.obs.slot"), "alpha");
  setLabel("test.obs.slot", nullptr);
  EXPECT_EQ(labelValue("test.obs.slot"), nullptr);
}

TEST(Progress, SnapshotSeesCurrentState) {
  ECO_OBS_GAUGE_SET("test.obs.snap_gauge", 7);
  setLabel("test.obs.snap_slot", "running");
  const StatusSnapshot snap = snapshotStatus();
  bool saw_gauge = false, saw_label = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "test.obs.snap_gauge") {
      saw_gauge = true;
      EXPECT_EQ(g.value, 7);
    }
  }
  for (const auto& l : snap.labels) {
    if (l.slot == "test.obs.snap_slot") {
      saw_label = true;
      EXPECT_EQ(l.value, "running");
    }
  }
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_label);
  setLabel("test.obs.snap_slot", nullptr);
}

// ------------------------------------------------------ flight recorder --

TEST(FlightRecorder, RecordsSpansAndCounts) {
  flightSetThreadName("flight-test");
  { Span s("test.flight.span", Span::Mode::kTimed); }
  ECO_OBS_COUNT("test.flight.count", 5);

  const FlightDump dump = snapshotFlight();
  bool begin = false, end = false, count = false;
  for (const auto& t : dump.threads) {
    for (const FlightEvent& e : t.events) {
      if (e.name == nullptr) continue;
      const std::string name = e.name;
      if (name == "test.flight.span") {
        if (e.kind == FlightEvent::Kind::kSpanBegin) begin = true;
        if (e.kind == FlightEvent::Kind::kSpanEnd) end = true;
      } else if (name == "test.flight.count" &&
                 e.kind == FlightEvent::Kind::kCount && e.value == 5) {
        count = true;
      }
    }
  }
  EXPECT_TRUE(begin);
  EXPECT_TRUE(end);
  EXPECT_TRUE(count);
}

TEST(FlightRecorder, RingBoundsMemoryAndKeepsNewest) {
  // Far more events than the ring holds: the snapshot stays bounded and
  // contains the most recent events, monotonically timestamped.
  for (int i = 0; i < 5000; ++i) ECO_OBS_COUNT("test.flight.flood", 1);
  { Span last("test.flight.after_flood", Span::Mode::kTimed); }

  const FlightDump dump = snapshotFlight();
  bool saw_last = false;
  for (const auto& t : dump.threads) {
    EXPECT_LE(t.events.size(), 1024u) << "ring did not bound history";
    std::uint64_t prev_ts = 0;
    for (const FlightEvent& e : t.events) {
      EXPECT_GE(e.ts_ns, prev_ts);
      prev_ts = e.ts_ns;
      if (e.name != nullptr &&
          std::string(e.name) == "test.flight.after_flood") {
        saw_last = true;
      }
    }
    if (t.name == "flight-test" || t.recorded > 5000) {
      EXPECT_GE(t.recorded, t.events.size());
    }
  }
  EXPECT_TRUE(saw_last);
}

TEST(FlightRecorder, WorkerThreadsGetOwnRings) {
  std::thread worker([] {
    setThreadName("flight-worker");
    ECO_OBS_COUNT("test.flight.worker_count", 1);
  });
  worker.join();
  const FlightDump dump = snapshotFlight();
  bool saw = false;
  for (const auto& t : dump.threads) {
    if (t.name != "flight-worker") continue;
    for (const FlightEvent& e : t.events) {
      if (e.name != nullptr &&
          std::string(e.name) == "test.flight.worker_count") {
        saw = true;
      }
    }
  }
  EXPECT_TRUE(saw);
}

#endif  // ECO_OBS_ENABLED

// The documents below must stay schema-valid in BOTH obs modes: an
// ECO_OBS_DISABLED build still serves /status and writes postmortems,
// just with empty registries.

TEST(Progress, StatusJsonValidates) {
  const std::string json = statusJson();
  std::string error;
  EXPECT_TRUE(validateStatusJson(json, &error)) << error << "\n" << json;
  // One line: safe to stream over --status-fd.
  EXPECT_EQ(json.find('\n'), std::string::npos);

  EXPECT_FALSE(validateStatusJson("{}", &error));
  EXPECT_FALSE(validateStatusJson("not json", &error));
  std::string wrong = json;
  const auto pos = wrong.find("ecopatch-status");
  ASSERT_NE(pos, std::string::npos);
  wrong.replace(pos, 15, "ecopatch-nonsns");
  EXPECT_FALSE(validateStatusJson(wrong, &error));
}

TEST(Progress, HeartbeatFiresAfterSilence) {
  Heartbeat hb(0.05);
  EXPECT_FALSE(hb.due());  // armed at construction, no silence yet
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(hb.due());
  EXPECT_FALSE(hb.due());  // edge-triggered: re-armed by the firing
  hb.beat();
  EXPECT_FALSE(hb.due());

  Heartbeat never(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(never.due());  // non-positive period never fires
}

TEST(FlightRecorder, PostmortemJsonValidates) {
  const std::string json = postmortemJson("unit-test", "synthetic dump");
  std::string error;
  EXPECT_TRUE(validatePostmortemJson(json, &error)) << error << "\n" << json;

  json::Value doc;
  ASSERT_TRUE(json::parse(json, &doc, &error)) << error;
  EXPECT_EQ(doc.find("schema")->string, kPostmortemSchema);
  EXPECT_EQ(doc.find("reason")->string, "unit-test");
  EXPECT_EQ(doc.find("detail")->string, "synthetic dump");
  ASSERT_TRUE(doc.find("threads")->isArray());

  EXPECT_FALSE(validatePostmortemJson("{}", &error));
  EXPECT_FALSE(validatePostmortemJson("[]", &error));
}

TEST(FlightRecorder, DumpPostmortemWritesConfiguredPathOnce) {
  const std::string path =
      ::testing::TempDir() + "/eco_obs_postmortem_test.json";
  std::remove(path.c_str());

  // Disabled by default: no path, no file, no error.
  setPostmortemPath(nullptr);
  EXPECT_FALSE(dumpPostmortem("unit-test", "ignored"));

  setPostmortemPath(path.c_str());
  EXPECT_EQ(postmortemPath(), path);
  EXPECT_TRUE(dumpPostmortem("unit-test", "first"));
  // Single-shot: the first dump wins until the path is reconfigured.
  EXPECT_FALSE(dumpPostmortem("unit-test", "second"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::string error;
  EXPECT_TRUE(validatePostmortemJson(ss.str(), &error)) << error;
  json::Value doc;
  ASSERT_TRUE(json::parse(ss.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.find("detail")->string, "first");

  setPostmortemPath(nullptr);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- prometheus --

TEST(Prometheus, LabelEscaping) {
  std::string out;
  appendPrometheusLabelEscaped(out, "a\\b\"c\nd");
  EXPECT_EQ(out, "a\\\\b\\\"c\\nd");
}

TEST(Prometheus, NameSanitization) {
  std::string out;
  appendPrometheusName(out, "sat.conflicts-per run:x");
  EXPECT_EQ(out, "sat_conflicts_per_run:x");
}

TEST(Prometheus, ExpositionIsWellFormed) {
  ECO_OBS_COUNT("test.obs.prom_counter", 3);
  ECO_OBS_OBSERVE("test.obs.prom_hist", 6);
  const std::string text = prometheusText();

  // Every line is a comment or `name{labels} value` with a sane name.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ecopatch_", 0), 0u) << line;
      continue;
    }
    EXPECT_EQ(line.rfind("ecopatch_", 0), 0u) << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "non-numeric sample value: " << line;
  }

#if ECO_OBS_ENABLED
  EXPECT_NE(text.find("# TYPE ecopatch_test_obs_prom_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ecopatch_test_obs_prom_hist_count"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);

  // Histogram buckets are cumulative and end at the count.
  ECO_OBS_OBSERVE("test.obs.prom_cumulative", 1);
  ECO_OBS_OBSERVE("test.obs.prom_cumulative", 100);
  const std::string text2 = prometheusText();
  std::uint64_t prev = 0;
  std::uint64_t last = 0;
  std::istringstream lines2(text2);
  while (std::getline(lines2, line)) {
    if (line.rfind("ecopatch_test_obs_prom_cumulative_bucket", 0) != 0) {
      continue;
    }
    const std::uint64_t v =
        std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
    EXPECT_GE(v, prev) << "buckets must be cumulative: " << line;
    prev = v;
    last = v;
  }
  EXPECT_EQ(last, 2u);  // +Inf bucket equals the observation count
#endif  // ECO_OBS_ENABLED

  // The resource series are present in both obs modes.
  EXPECT_NE(text.find("ecopatch_peak_rss_bytes"), std::string::npos);
  EXPECT_NE(text.find("ecopatch_cpu_seconds_total"), std::string::npos);
}

// ------------------------------------------------------------ resource --

TEST(Resource, SnapshotIsPlausible) {
  const ResourceSnapshot snap = snapshotResources();
  EXPECT_GT(snap.peak_rss_bytes, 0u);
  EXPECT_GE(snap.cpu_seconds, 0.0);

  JsonWriter w;
  writeResourceJson(w, snap);
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(w.str(), &doc, &error)) << error;
  EXPECT_GT(doc.find("peak_rss_bytes")->number, 0.0);
  ASSERT_TRUE(doc.find("threads")->isArray());
}

TEST(Resource, ThreadCpuRegistrationAppearsInSnapshot) {
  std::atomic<bool> go{false};
  std::thread t([&] {
    ThreadCpuRegistration reg("resource-test-thread");
    // Burn a little CPU so the clock reads nonzero.
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 2000000; ++i) x += i;
    go.store(true);
    while (go.load()) std::this_thread::yield();
  });
  while (!go.load()) std::this_thread::yield();
  const ResourceSnapshot snap = snapshotResources();
  bool saw = false;
  for (const auto& row : snap.threads) {
    if (row.name == "resource-test-thread") {
      saw = true;
      EXPECT_GE(row.cpu_seconds, 0.0);
    }
  }
  EXPECT_TRUE(saw);
  go.store(false);
  t.join();

  // After the registration dies the row is gone.
  const ResourceSnapshot after = snapshotResources();
  for (const auto& row : after.threads) {
    EXPECT_NE(row.name, "resource-test-thread");
  }
}

TEST(Resource, UsageSinceComputesDeltas) {
  const ResourceUsage begin = currentUsage();
  std::vector<std::unique_ptr<std::uint64_t>> keep;
  for (int i = 0; i < 1000; ++i) {
    keep.push_back(std::make_unique<std::uint64_t>(i));
  }
  const ResourceUsage delta = usageSince(begin);
  EXPECT_GE(delta.cpu_seconds, 0.0);
  // Peak RSS carries the current monotonic peak, not a delta.
  EXPECT_GE(delta.peak_rss_bytes, begin.peak_rss_bytes);
  // The allocation hook is compiled out under sanitizers and
  // ECO_OBS_DISABLED; a nonzero global count means it is live.
  if (allocCount() != 0) {
    EXPECT_GE(delta.alloc_count, 1000u);
  }
}

}  // namespace
}  // namespace eco::obs
