// Tests for rectification-target diagnosis: injected single faults must be
// found, certified, and fixable end to end (diagnose -> cut -> patch ->
// verify); equivalent circuits report no work.

#include <gtest/gtest.h>

#include "aig/aig_ops.h"
#include "base/rng.h"
#include "benchgen/families.h"
#include "eco/diagnosis.h"
#include "eco/engine.h"
#include "eco/verify.h"

namespace eco {
namespace {

/// Builds a faulty copy of `golden` with the function of AND node
/// `victim` replaced by a wrong gate (OR of its fanins).
Aig injectWrongGate(const Aig& golden, std::uint32_t victim) {
  Aig f;
  VarMap map;
  for (std::uint32_t i = 0; i < golden.numPis(); ++i) {
    map[golden.piVar(i)] = f.addPi(golden.piName(i));
  }
  for (std::uint32_t v = 1; v < golden.numNodes(); ++v) {
    if (!golden.isAnd(v)) continue;
    const Lit f0 = golden.fanin0(v);
    const Lit f1 = golden.fanin1(v);
    const Lit a = map.at(f0.var()) ^ f0.complemented();
    const Lit b = map.at(f1.var()) ^ f1.complemented();
    map[v] = (v == victim) ? f.mkOr(a, b) : f.addAnd(a, b);
  }
  for (std::uint32_t j = 0; j < golden.numPos(); ++j) {
    const Lit d = golden.poDriver(j);
    f.addPo(map.at(d.var()) ^ d.complemented(), golden.poName(j));
  }
  // Name all internal nodes so diagnosis can report them.
  for (std::uint32_t v = 1; v < f.numNodes(); ++v) {
    if (f.isAnd(v)) f.setSignalName(Lit::fromVar(v, false), "n" + std::to_string(v));
  }
  return f;
}

/// Picks an AND node of `g` that actually matters (in a PO cone, with an
/// observable cut).
std::uint32_t pickVictim(const Aig& g, Rng& rng) {
  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < g.numPos(); ++j) roots.push_back(g.poDriver(j));
  std::vector<std::uint32_t> ands;
  for (const std::uint32_t v : collectCone(g, roots)) {
    if (g.isAnd(v)) ands.push_back(v);
  }
  return ands[rng.below(ands.size())];
}

TEST(Diagnosis, EquivalentCircuitsReportNothing) {
  const Aig g = benchgen::makeRippleAdder(4);
  const DiagnosisResult r = diagnoseSingleFix(g, g);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.candidates.empty());
}

TEST(Diagnosis, FindsInjectedFaultSite) {
  const Aig g = benchgen::makeComparator(4);
  Rng rng(3);
  const std::uint32_t victim = pickVictim(g, rng);
  const Aig f = injectWrongGate(g, victim);

  const DiagnosisResult r = diagnoseSingleFix(f, g);
  ASSERT_FALSE(r.equivalent);
  ASSERT_FALSE(r.candidates.empty());
  // Some certified candidate must exist (the true site always is, though a
  // dominator may legitimately outrank it).
  bool any_certified = false;
  for (const auto& c : r.candidates) any_certified |= c.certified;
  EXPECT_TRUE(any_certified);
}

class DiagnoseAndPatch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagnoseAndPatch, EndToEndRepair) {
  const Aig g = benchgen::makeAlu(3);
  Rng rng(GetParam());
  const std::uint32_t victim = pickVictim(g, rng);
  const Aig f = injectWrongGate(g, victim);

  const DiagnosisResult diag = diagnoseSingleFix(f, g);
  ASSERT_FALSE(diag.equivalent);
  ASSERT_FALSE(diag.candidates.empty());

  // Take the best certified candidate; cut and patch it.
  const DiagnosisCandidate* pick = nullptr;
  for (const auto& c : diag.candidates) {
    if (c.certified) {
      pick = &c;
      break;
    }
  }
  ASSERT_NE(pick, nullptr) << "no certified single-fix site found";
  EcoInstance inst = cutAsTarget(f, g, pick->var);
  inst.default_weight = 1.0;
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success) << r.message;
  for (std::uint32_t m = 0; m < (1u << inst.num_x); ++m) {
    std::vector<bool> x(inst.num_x);
    for (std::uint32_t i = 0; i < inst.num_x; ++i) x[i] = (m >> i) & 1;
    ASSERT_EQ(evaluatePatched(inst, r, x), g.evaluate(x)) << "minterm " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiagnoseAndPatch,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

/// Builds a faulty copy with TWO wrong gates in different output cones.
Aig injectTwoWrongGates(const Aig& golden, std::uint32_t v1, std::uint32_t v2) {
  Aig f;
  VarMap map;
  for (std::uint32_t i = 0; i < golden.numPis(); ++i) {
    map[golden.piVar(i)] = f.addPi(golden.piName(i));
  }
  for (std::uint32_t v = 1; v < golden.numNodes(); ++v) {
    if (!golden.isAnd(v)) continue;
    const Lit f0 = golden.fanin0(v);
    const Lit f1 = golden.fanin1(v);
    const Lit a = map.at(f0.var()) ^ f0.complemented();
    const Lit b = map.at(f1.var()) ^ f1.complemented();
    map[v] = (v == v1 || v == v2) ? f.mkOr(a, b) : f.addAnd(a, b);
  }
  for (std::uint32_t j = 0; j < golden.numPos(); ++j) {
    const Lit d = golden.poDriver(j);
    f.addPo(map.at(d.var()) ^ d.complemented(), golden.poName(j));
  }
  for (std::uint32_t v = 1; v < f.numNodes(); ++v) {
    if (f.isAnd(v)) f.setSignalName(Lit::fromVar(v, false), "n" + std::to_string(v));
  }
  return f;
}

TEST(Diagnosis, DoubleFixFindsAPairAndEngineRepairsIt) {
  // Two independent wrong gates: one in each half of a two-output design.
  Aig g;
  const Lit a = g.addPi("a");
  const Lit b = g.addPi("b");
  const Lit c = g.addPi("c");
  const Lit d = g.addPi("d");
  const Lit left = g.addAnd(g.addAnd(a, b), c);
  const Lit right = g.addAnd(g.mkXor(c, d), a);
  g.addPo(left, "o0");
  g.addPo(right, "o1");
  // Victims: the two inner gates.
  const std::uint32_t v1 = g.fanin0(left.var()).var();   // a & b
  const std::uint32_t v2 = right.var();
  const Aig f = injectTwoWrongGates(g, v1, v2);

  const PairDiagnosisResult pr = diagnoseDoubleFix(f, g);
  ASSERT_FALSE(pr.equivalent);
  ASSERT_TRUE(pr.found) << "no certified pair";

  const std::uint32_t pair_vars[2] = {pr.var_a, pr.var_b};
  EcoInstance inst = cutAsTargets(f, g, pair_vars);
  inst.default_weight = 1.0;
  const PatchResult r = EcoEngine().run(inst);
  ASSERT_TRUE(r.success) << r.message;
  for (std::uint32_t m = 0; m < 16; ++m) {
    std::vector<bool> x(4);
    for (int i = 0; i < 4; ++i) x[i] = (m >> i) & 1;
    ASSERT_EQ(evaluatePatched(inst, r, x), g.evaluate(x)) << m;
  }
}

TEST(Diagnosis, DoubleFixReportsEquivalentInputs) {
  const Aig g = benchgen::makeComparator(3);
  const PairDiagnosisResult pr = diagnoseDoubleFix(g, g);
  EXPECT_TRUE(pr.equivalent);
  EXPECT_FALSE(pr.found);
}

TEST(Diagnosis, ScoreScreensIrrelevantSignals) {
  // A fault in one output cone must not give perfect scores to signals that
  // only feed other outputs.
  Aig g;
  const Lit a = g.addPi("a");
  const Lit b = g.addPi("b");
  const Lit c = g.addPi("c");
  const Lit d = g.addPi("d");
  const Lit left = g.addAnd(a, b);
  const Lit right = g.addAnd(c, d);
  g.addPo(left, "o0");
  g.addPo(right, "o1");
  const Aig f = injectWrongGate(g, left.var());
  const DiagnosisResult r = diagnoseSingleFix(f, g);
  for (const auto& cand : r.candidates) {
    if (cand.score >= 1.0) {
      // Perfect scorers must influence o0's cone; `right` cannot.
      EXPECT_NE(cand.var, right.var());
    }
  }
}

}  // namespace
}  // namespace eco
