// Tests for the synthetic benchmark generator: rectifiability by
// construction, floating-target bookkeeping, weight coverage, and family
// semantics.

#include <gtest/gtest.h>

#include "aig/aig_ops.h"
#include "benchgen/benchgen.h"
#include "benchgen/families.h"
#include "eco/relations.h"
#include "eco/verify.h"

namespace eco::benchgen {
namespace {

TEST(Families, AdderMatchesArithmetic) {
  const Aig a = makeRippleAdder(4);
  ASSERT_EQ(a.numPis(), 8u);
  ASSERT_EQ(a.numPos(), 5u);
  for (std::uint32_t x = 0; x < 16; ++x) {
    for (std::uint32_t y = 0; y < 16; ++y) {
      std::vector<bool> in(8);
      for (int i = 0; i < 4; ++i) {
        in[i] = (x >> i) & 1;
        in[4 + i] = (y >> i) & 1;
      }
      const auto out = a.evaluate(in);
      const std::uint32_t sum = x + y;
      for (int i = 0; i < 4; ++i) ASSERT_EQ(out[i], ((sum >> i) & 1) != 0);
      ASSERT_EQ(out[4], sum >= 16);
    }
  }
}

TEST(Families, ComparatorMatchesSemantics) {
  const Aig c = makeComparator(3);
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      std::vector<bool> in(6);
      for (int i = 0; i < 3; ++i) {
        in[i] = (x >> i) & 1;
        in[3 + i] = (y >> i) & 1;
      }
      const auto out = c.evaluate(in);
      ASSERT_EQ(out[0], x < y);
      ASSERT_EQ(out[1], x == y);
      ASSERT_EQ(out[2], x > y);
    }
  }
}

TEST(Families, MuxTreeSelects) {
  const Aig m = makeMuxTree(2, 2);  // 4 words of 2 bits
  ASSERT_EQ(m.numPis(), 2u + 8u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    std::vector<bool> in(10, false);
    in[0] = s & 1;
    in[1] = (s >> 1) & 1;
    // word s = 0b10, everything else 0b01.
    for (std::uint32_t wd = 0; wd < 4; ++wd) {
      in[2 + 2 * wd + 0] = wd != s;
      in[2 + 2 * wd + 1] = wd == s;
    }
    const auto out = m.evaluate(in);
    EXPECT_EQ(out[0], false);
    EXPECT_EQ(out[1], true);
  }
}

TEST(Families, AluOps) {
  const Aig alu = makeAlu(3);
  for (std::uint32_t op = 0; op < 4; ++op) {
    for (std::uint32_t a = 0; a < 8; ++a) {
      for (std::uint32_t b = 0; b < 8; ++b) {
        std::vector<bool> in(8);
        for (int i = 0; i < 3; ++i) {
          in[i] = (a >> i) & 1;
          in[3 + i] = (b >> i) & 1;
        }
        in[6] = op & 1;
        in[7] = (op >> 1) & 1;
        const auto out = alu.evaluate(in);
        std::uint32_t expect = 0;
        switch (op) {
          case 0: expect = a + b; break;
          case 1: expect = a & b; break;
          case 2: expect = a | b; break;
          case 3: expect = a ^ b; break;
        }
        for (int i = 0; i < 3; ++i) {
          ASSERT_EQ(out[i], ((expect >> i) & 1) != 0)
              << "op=" << op << " a=" << a << " b=" << b << " bit=" << i;
        }
      }
    }
  }
}

TEST(Families, MultiplierMatchesArithmetic) {
  const Aig m = makeMultiplier(3);
  ASSERT_EQ(m.numPis(), 6u);
  ASSERT_EQ(m.numPos(), 6u);
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      std::vector<bool> in(6);
      for (int i = 0; i < 3; ++i) {
        in[i] = (x >> i) & 1;
        in[3 + i] = (y >> i) & 1;
      }
      const auto out = m.evaluate(in);
      const std::uint32_t prod = x * y;
      for (int i = 0; i < 6; ++i) {
        ASSERT_EQ(out[i], ((prod >> i) & 1) != 0)
            << x << "*" << y << " bit " << i;
      }
    }
  }
}

TEST(Families, PriorityEncoderSemantics) {
  const Aig p = makePriorityEncoder(6);
  ASSERT_EQ(p.numPos(), 4u);  // 3 index bits + valid
  for (std::uint32_t m = 0; m < 64; ++m) {
    std::vector<bool> in(6);
    int expect = -1;
    for (int i = 0; i < 6; ++i) {
      in[i] = (m >> i) & 1;
      if (in[i]) expect = i;  // highest index wins
    }
    const auto out = p.evaluate(in);
    ASSERT_EQ(out[3], expect >= 0) << m;
    if (expect >= 0) {
      for (int b = 0; b < 3; ++b) {
        ASSERT_EQ(out[b], ((expect >> b) & 1) != 0) << "m=" << m;
      }
    }
  }
}

TEST(Generator, NewFamiliesProduceSolvableUnits) {
  for (const Family fam : {Family::Multiplier, Family::PriorityEnc}) {
    UnitSpec spec{.name = "newfam",
                  .family = fam,
                  .size_param = fam == Family::Multiplier ? 3u : 8u,
                  .num_targets = 2,
                  .seed = 77};
    const EcoInstance inst = generateUnit(spec);
    EXPECT_EQ(inst.numTargets(), 2u);
    EXPECT_GT(inst.faulty.numAnds(), 0u);
  }
}

TEST(Families, ParitySlices) {
  const Aig p = makeParity(8, 4);
  ASSERT_EQ(p.numPos(), 3u);  // two slices + total
  for (std::uint32_t m = 0; m < 256; ++m) {
    std::vector<bool> in(8);
    int p0 = 0, p1 = 0;
    for (int i = 0; i < 8; ++i) {
      in[i] = (m >> i) & 1;
      (i < 4 ? p0 : p1) += in[i];
    }
    const auto out = p.evaluate(in);
    ASSERT_EQ(out[0], (p0 % 2) != 0);
    ASSERT_EQ(out[1], (p1 % 2) != 0);
    ASSERT_EQ(out[2], ((p0 + p1) % 2) != 0);
  }
}

TEST(Generator, InstancesAreRectifiableByConstruction) {
  // For each family: the faulty circuit with the *golden local functions*
  // substituted must be equivalent to golden. We verify semantically: the
  // engine-level tests cover patching; here we check the instance shape.
  for (const Family fam : {Family::Adder, Family::Comparator, Family::MuxTree,
                           Family::Alu, Family::Parity, Family::Random}) {
    UnitSpec spec{.name = "gen",
                  .family = fam,
                  .size_param = fam == Family::Random ? 100u : 3u,
                  .num_targets = 2,
                  .seed = 42};
    if (fam == Family::Parity) spec.size_param = 8;
    const EcoInstance inst = generateUnit(spec);
    EXPECT_EQ(inst.numTargets(), 2u);
    EXPECT_EQ(inst.golden.numPis(), inst.num_x);
    EXPECT_EQ(inst.faulty.numPos(), inst.golden.numPos());
    // Every PI and named signal has a weight.
    for (std::uint32_t i = 0; i < inst.faulty.numPis(); ++i) {
      if (i < inst.num_x) {
        EXPECT_TRUE(inst.weights.count(inst.faulty.piName(i)) != 0);
      }
    }
    for (const auto& [name, lit] : inst.faulty.namedSignals()) {
      (void)lit;
      EXPECT_TRUE(inst.weights.count(name) != 0) << name;
    }
  }
}

TEST(Generator, TargetsTouchOutputs) {
  // Targets must influence at least one output (picked from live cones).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    UnitSpec spec{.name = "live",
                  .family = Family::Random,
                  .size_param = 200,
                  .num_targets = 3,
                  .seed = seed};
    const EcoInstance inst = generateUnit(spec);
    std::vector<Lit> roots;
    for (std::uint32_t j = 0; j < inst.faulty.numPos(); ++j) {
      roots.push_back(inst.faulty.poDriver(j));
    }
    const auto support = supportPis(inst.faulty, roots);
    for (std::uint32_t k = 0; k < inst.numTargets(); ++k) {
      const std::uint32_t tv = inst.faulty.piVar(inst.targetPi(k));
      EXPECT_TRUE(std::find(support.begin(), support.end(), tv) !=
                  support.end())
          << "target " << k << " unreachable, seed " << seed;
    }
  }
}

TEST(Generator, DeterministicForFixedSeed) {
  UnitSpec spec{.name = "det",
                .family = Family::Random,
                .size_param = 150,
                .num_targets = 2,
                .seed = 31};
  const EcoInstance a = generateUnit(spec);
  const EcoInstance b = generateUnit(spec);
  EXPECT_TRUE(strashEquivalent(a.faulty, b.faulty));
  EXPECT_TRUE(strashEquivalent(a.golden, b.golden));
  EXPECT_EQ(a.weights, b.weights);
}

TEST(Generator, ContestSuiteShape) {
  const auto suite = contestSuite();
  ASSERT_EQ(suite.size(), 20u);
  // Names unique.
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name, suite[j].name);
    }
  }
}

}  // namespace
}  // namespace eco::benchgen
