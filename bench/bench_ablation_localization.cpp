// E3 — localization ablation (Sec. 5): the paper claims localization
// "dramatically reduces the runtime of interpolation-based patch
// optimization and substantially reduces patch sizes of difficult
// instances". We run the difficult units (6, 10, 11, 19 analogues) plus a
// few easy ones with localization on and off and compare the *initial*
// patch (before optimization) and the final result.

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/engine.h"

int main() {
  using namespace eco;

  std::printf("E3: localization ablation (Sec. 5)\n");
  std::printf("%-8s | %27s | %27s\n", "", "localization OFF", "localization ON");
  std::printf("%-8s | %9s %8s %8s | %9s %8s %8s\n", "ckt", "init.size",
              "cost", "time", "init.size", "cost", "time");

  const auto suite = benchgen::contestSuite();
  // Difficult units first (paper's highlighted rows), then two easy ones.
  // The big random units (10, 19) are excluded: without localization their
  // optimization oracles grow to hundreds of thousands of clauses and a
  // single run takes minutes — which *is* the paper's point; unit06/11
  // show the same shape at bench-friendly runtimes. Both columns use one
  // optimization round and the same candidate cap so only the cut differs.
  const char* selected[] = {"unit06", "unit17", "unit01", "unit04"};
  int rc = 0;
  for (const char* name : selected) {
    const benchgen::UnitSpec* spec = nullptr;
    for (const auto& s : suite) {
      if (s.name == name) spec = &s;
    }
    if (!spec) continue;
    const EcoInstance inst = benchgen::generateUnit(*spec);

    EcoOptions off;
    off.use_localization = false;
    off.opt_rounds = 1;
    off.max_candidates = 48;
    off.max_step2_candidates = 24;
    const PatchResult r_off = EcoEngine(off).run(inst);

    EcoOptions on;
    on.use_localization = true;
    on.opt_rounds = 1;
    on.max_candidates = 48;
    on.max_step2_candidates = 24;
    const PatchResult r_on = EcoEngine(on).run(inst);

    if (!r_off.success || !r_on.success) {
      std::printf("%-8s | FAILED (%s / %s)\n", name, r_off.message.c_str(),
                  r_on.message.c_str());
      rc = 1;
      continue;
    }
    std::printf("%-8s | %9u %8.1f %7.2fs | %9u %8.1f %7.2fs\n", name,
                r_off.initial_size, r_off.cost, r_off.seconds, r_on.initial_size,
                r_on.cost, r_on.seconds);
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected shape: ON column has much smaller initial patches on the\n"
      "difficult units and equal-or-lower final cost.\n");
  return rc;
}
