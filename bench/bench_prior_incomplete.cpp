// E6 — incompleteness of the prior independent-fix method ([19]-style) on
// pre-specified multi-target instances, vs the completeness of Algorithm 1.
// The paper motivates multi-fix generation precisely with this failure
// mode: "fixing an erroneous function e_i might make others unrectifiable".

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/baseline.h"
#include "eco/engine.h"

namespace {

/// The canonical coupled instance: o = t0 xor t1, golden o = x. The
/// independent fix (other target tied to 0) derives t0 = x and t1 = x,
/// whose composition is constant 0.
eco::EcoInstance xorCoupled() {
  using namespace eco;
  EcoInstance inst;
  const Lit a = inst.golden.addPi("x");
  inst.golden.addPo(a, "o");
  inst.faulty.addPi("x");
  const Lit t0 = inst.faulty.addPi("t0");
  const Lit t1 = inst.faulty.addPi("t1");
  inst.num_x = 1;
  inst.faulty.addPo(inst.faulty.mkXor(t0, t1), "o");
  return inst;
}

}  // namespace

int main() {
  using namespace eco;

  std::printf("E6: prior independent per-target fix [19] vs Algorithm 1\n\n");
  {
    const EcoInstance inst = xorCoupled();
    const PatchResult prior = runTang11(inst);
    const PatchResult ours = EcoEngine().run(inst);
    std::printf("handcrafted xor-coupled instance: prior=%s, ours=%s\n",
                prior.success ? "fixed" : "FAILS", ours.success ? "fixed" : "FAILS");
  }

  std::printf("\nrandomized multi-target sweep (same-cone targets):\n");
  std::printf("%-10s %8s %12s %12s\n", "family", "#inst", "prior fixed",
              "ours fixed");
  struct Row {
    benchgen::Family family;
    std::uint32_t size_param;
    const char* label;
  };
  const Row rows[] = {
      {benchgen::Family::Adder, 6, "adder"},
      {benchgen::Family::Alu, 5, "alu"},
      {benchgen::Family::Random, 250, "random"},
  };
  int rc = 0;
  std::uint32_t prior_total = 0, ours_total = 0, n_total = 0;
  for (const Row& row : rows) {
    const int n_inst = 10;
    std::uint32_t prior_ok = 0, ours_ok = 0;
    for (int i = 0; i < n_inst; ++i) {
      benchgen::UnitSpec spec{.name = "e6",
                              .family = row.family,
                              .size_param = row.size_param,
                              .num_targets = 3,
                              .seed = 2000 + static_cast<std::uint64_t>(i)};
      const EcoInstance inst = benchgen::generateUnit(spec);
      if (runTang11(inst).success) ++prior_ok;
      if (EcoEngine().run(inst).success) ++ours_ok;
    }
    std::printf("%-10s %8d %12u %12u\n", row.label, n_inst, prior_ok, ours_ok);
    prior_total += prior_ok;
    ours_total += ours_ok;
    n_total += n_inst;
    if (ours_ok != static_cast<std::uint32_t>(n_inst)) rc = 1;
  }
  std::printf("\ntotals: prior %u/%u, ours %u/%u\n", prior_total, n_total,
              ours_total, n_total);
  std::printf("expected shape: ours fixes every instance (the generator\n"
              "guarantees rectifiability); the independent fix loses some.\n");
  return rc;
}
