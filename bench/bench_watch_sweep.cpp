// E4 — |Watch| (beta) sweep (Sec. 6.2): the paper reports |Watch| = 5 as a
// good quality/performance trade-off; counterexample enumeration is bounded
// by 2^|Watch| x |B'| SAT calls, so cost falls and runtime rises with beta.

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/engine.h"

int main() {
  using namespace eco;

  std::printf("E4: |Watch| = beta sweep (Sec. 6.2, paper default beta = 5)\n");
  const std::uint32_t betas[] = {1, 2, 3, 5, 8};

  const auto suite = benchgen::contestSuite();
  const char* selected[] = {"unit05", "unit06", "unit09", "unit16", "unit20"};

  std::printf("%-8s", "ckt");
  for (const std::uint32_t b : betas) std::printf(" | b=%-2u cost     time", b);
  std::printf("\n");

  int rc = 0;
  for (const char* name : selected) {
    const benchgen::UnitSpec* spec = nullptr;
    for (const auto& s : suite) {
      if (s.name == name) spec = &s;
    }
    if (!spec) continue;
    const EcoInstance inst = benchgen::generateUnit(*spec);
    std::printf("%-8s", name);
    for (const std::uint32_t beta : betas) {
      EcoOptions opt;
      opt.watch_size = beta;
      const PatchResult r = EcoEngine(opt).run(inst);
      if (!r.success) {
        std::printf(" |   FAILED        ");
        rc = 1;
        continue;
      }
      std::printf(" | %9.1f %7.2fs", r.cost, r.seconds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: cost non-increasing (then flat) in beta,\n"
              "runtime increasing; beta = 5 near the knee.\n");
  return rc;
}
