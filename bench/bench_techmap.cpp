// E9 — technology-accurate patch size: every suite patch is mapped onto
// the generic standard-cell library (and onto an INV/NAND2-only library as
// ablation). The contest's real "resource" metric counts cells, not AIG
// AND nodes; this bench reports both and their relationship.

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/engine.h"
#include "techmap/mapper.h"

int main() {
  using namespace eco;
  using techmap::CellLibrary;
  using techmap::MappedNetlist;

  std::printf("E9: mapped patch size (generic library vs NAND2-only)\n");
  std::printf("%-8s %8s | %8s %8s | %8s %8s\n", "ckt", "AIG ands", "cells",
              "area", "n2cells", "n2area");

  const CellLibrary generic = CellLibrary::standard();
  const CellLibrary nand2 = CellLibrary::nand2Only();

  int rc = 0;
  std::uint32_t total_ands = 0, total_cells = 0;
  for (const auto& spec : benchgen::contestSuite()) {
    const EcoInstance inst = benchgen::generateUnit(spec);
    const PatchResult r = EcoEngine().run(inst);
    if (!r.success) {
      std::printf("%-8s FAILED: %s\n", spec.name.c_str(), r.message.c_str());
      rc = 1;
      continue;
    }
    const MappedNetlist rich = techmap::mapAig(r.patch, generic);
    const MappedNetlist poor = techmap::mapAig(r.patch, nand2);
    std::printf("%-8s %8u | %8u %8.1f | %8u %8.1f\n", spec.name.c_str(),
                r.size, rich.cellCount(), rich.area(), poor.cellCount(),
                poor.area());
    std::fflush(stdout);
    total_ands += r.size;
    total_cells += rich.cellCount();
  }
  std::printf("\ntotals: %u AIG ands -> %u generic cells\n", total_ands,
              total_cells);
  std::printf("expected shape: generic-cell count below the AND count\n"
              "(XOR/MUX/AOI absorption), NAND2-only strictly above it.\n");
  return rc;
}
