// Parallel scaling of the ECO engine (thread pool, DESIGN.md "Parallel
// architecture"): sweeps worker counts {1, 2, 4, 8} over a tiled
// multi-cluster instance and emits one JSON document with per-stage
// wall-clock, solver-call counters, and speedup relative to the
// single-thread run.
//
// The workload tiles K independent benchgen units into one EcoInstance so
// the engine sees K-plus clusters — the unit of per-cluster parallelism.
// Cost optimization is disabled by default: it is intentionally sequential
// (globally stateful base selection), so including it would only dilute
// the stages this bench measures. The patch must be bit-identical across
// all worker counts; any divergence is reported and fails the bench.
//
// Usage: bench_parallel_scaling [tiles] [size_param] [num_targets] [out.json]
// Defaults (6, 16, 5) finish in under a minute on one core; the JSON
// document also lands in BENCH_parallel.json ("-" disables the file).
// Speedup > 1 requires actual hardware parallelism; on a single-CPU machine
// the interesting output is the overhead column staying near 1.0.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "aig/aig_ops.h"
#include "base/thread_pool.h"
#include "benchgen/benchgen.h"
#include "eco/engine.h"
#include "obs/json.h"

namespace eco {
namespace {

/// Splice independent benchgen units into one instance: the parts' X
/// inputs come first (so num_x stays a prefix), then every part's target
/// pseudo-PIs; cones, PO names, named signals, and weights are copied with
/// a "uN/" prefix. Each part keeps its own output cones, so clustering
/// recovers at least one cluster per part.
EcoInstance tileUnits(const std::vector<benchgen::UnitSpec>& specs,
                      const std::string& name) {
  std::vector<EcoInstance> parts;
  parts.reserve(specs.size());
  for (const benchgen::UnitSpec& s : specs) {
    parts.push_back(benchgen::generateUnit(s));
  }

  EcoInstance out;
  out.name = name;
  std::vector<VarMap> fmap(parts.size());
  std::vector<VarMap> gmap(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const EcoInstance& p = parts[i];
    const std::string pre = "u" + std::to_string(i) + "/";
    for (std::uint32_t x = 0; x < p.num_x; ++x) {
      const std::string nm = pre + p.faulty.piName(x);
      fmap[i][p.faulty.piVar(x)] = out.faulty.addPi(nm);
      gmap[i][p.golden.piVar(x)] = out.golden.addPi(nm);
    }
    out.num_x += p.num_x;
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const EcoInstance& p = parts[i];
    const std::string pre = "u" + std::to_string(i) + "/";
    for (std::uint32_t k = p.num_x; k < p.faulty.numPis(); ++k) {
      fmap[i][p.faulty.piVar(k)] = out.faulty.addPi(pre + p.faulty.piName(k));
    }
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const EcoInstance& p = parts[i];
    const std::string pre = "u" + std::to_string(i) + "/";
    std::vector<Lit> fr, gr;
    for (std::uint32_t j = 0; j < p.faulty.numPos(); ++j) {
      fr.push_back(p.faulty.poDriver(j));
    }
    for (std::uint32_t j = 0; j < p.golden.numPos(); ++j) {
      gr.push_back(p.golden.poDriver(j));
    }
    const std::vector<Lit> fo = copyCones(p.faulty, fr, fmap[i], out.faulty);
    const std::vector<Lit> go = copyCones(p.golden, gr, gmap[i], out.golden);
    for (std::size_t j = 0; j < fo.size(); ++j) {
      out.faulty.addPo(fo[j], pre + p.faulty.poName(static_cast<std::uint32_t>(j)));
    }
    for (std::size_t j = 0; j < go.size(); ++j) {
      out.golden.addPo(go[j], pre + p.golden.poName(static_cast<std::uint32_t>(j)));
    }
    for (const auto& [nm, lit] : p.faulty.namedSignals()) {
      const auto it = fmap[i].find(lit.var());
      if (it != fmap[i].end()) {
        out.faulty.setSignalName(it->second ^ lit.complemented(), pre + nm);
      }
    }
    for (const auto& [nm, w] : p.weights) out.weights[pre + nm] = w;
  }
  return out;
}

struct RunSample {
  std::uint32_t threads = 0;
  PatchResult result;
  double seconds = 0;
};

}  // namespace
}  // namespace eco

int main(int argc, char** argv) {
  using namespace eco;

  const unsigned tiles = argc > 1 ? std::atoi(argv[1]) : 6;
  const unsigned size_param = argc > 2 ? std::atoi(argv[2]) : 16;
  const unsigned num_targets = argc > 3 ? std::atoi(argv[3]) : 5;
  const std::string json_path = argc > 4 ? argv[4] : "BENCH_parallel.json";

  std::vector<benchgen::UnitSpec> specs;
  for (unsigned i = 0; i < tiles; ++i) {
    specs.push_back({.name = "p" + std::to_string(i),
                     .family = benchgen::Family::Parity,
                     .size_param = size_param,
                     .num_targets = num_targets,
                     .seed = 900 + i});
  }
  const EcoInstance inst = tileUnits(specs, "tiled_parity");

  std::vector<RunSample> samples;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    EcoOptions opt;
    opt.num_threads = threads;
    opt.use_cost_opt = false;
    const auto t0 = std::chrono::steady_clock::now();
    RunSample s;
    s.threads = threads;
    s.result = EcoEngine(opt).run(inst);
    s.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    samples.push_back(std::move(s));
    std::fprintf(stderr, "threads=%u done in %.2fs\n", threads,
                 samples.back().seconds);
  }

  const RunSample& ref = samples.front();
  bool deterministic = true;
  bool all_ok = true;
  for (const RunSample& s : samples) {
    all_ok = all_ok && s.result.success;
    deterministic = deterministic && s.result.cost == ref.result.cost &&
                    s.result.size == ref.result.size &&
                    s.result.num_clusters == ref.result.num_clusters;
  }

  obs::JsonWriter w;
  w.beginObject();
  w.key("schema"); w.value("ecopatch-bench-parallel");
  w.key("schema_version"); w.value(std::int64_t{1});
  w.key("bench"); w.value("parallel_scaling");
  w.key("workload");
  w.beginObject();
  w.key("instance"); w.value(inst.name);
  w.key("tiles"); w.value(std::uint64_t{tiles});
  w.key("size_param"); w.value(std::uint64_t{size_param});
  w.key("num_targets"); w.value(std::uint64_t{num_targets});
  w.key("clusters"); w.value(static_cast<std::uint64_t>(ref.result.num_clusters));
  w.key("cost_opt"); w.value(false);
  w.endObject();
  w.key("hardware_threads");
  w.value(static_cast<std::uint64_t>(ThreadPool::defaultThreads()));
  w.key("runs");
  w.beginArray();
  for (const RunSample& s : samples) {
    w.beginObject();
    w.key("threads"); w.value(static_cast<std::uint64_t>(s.threads));
    w.key("ok"); w.value(s.result.success);
    w.key("total_seconds"); w.valueFixed(s.seconds, 3);
    w.key("fraig_seconds"); w.valueFixed(s.result.fraig_seconds, 3);
    w.key("patchgen_seconds"); w.valueFixed(s.result.patchgen_seconds, 3);
    w.key("verify_seconds"); w.valueFixed(s.result.verify_seconds, 3);
    w.key("fraig_sat_queries"); w.value(s.result.fraig_sat_queries);
    w.key("fraig_rounds");
    w.value(static_cast<std::uint64_t>(s.result.fraig_rounds));
    w.key("sat_conflicts"); w.value(s.result.sat_conflicts);
    w.key("cost"); w.valueFixed(s.result.cost, 1);
    w.key("size"); w.value(static_cast<std::uint64_t>(s.result.size));
    w.key("speedup_vs_1");
    w.valueFixed(s.seconds > 0 ? ref.seconds / s.seconds : 0.0, 3);
    w.endObject();
  }
  w.endArray();
  w.key("deterministic"); w.value(deterministic);
  w.key("all_ok"); w.value(all_ok);
  w.endObject();

  const std::string doc = w.take();
  std::printf("%s\n", doc.c_str());
  if (json_path != "-") {
    std::ofstream out(json_path);
    if (out) {
      out << doc;
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "bench_parallel_scaling: cannot write '%s'\n",
                   json_path.c_str());
    }
  }

  return all_ok && deterministic ? 0 : 1;
}
