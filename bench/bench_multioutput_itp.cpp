// E5 — Sec. 4.3: for multi-output circuits, interpolating Eqs. (7)/(8) can
// fail (the on/off pair is satisfiable) even though the instance is
// rectifiable; taking the on-set function always succeeds. We measure how
// often interpolation applies across randomized multi-output multi-target
// instances, and confirm the fallback path never loses an instance.

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/engine.h"

int main() {
  using namespace eco;

  std::printf("E5: interpolation applicability on multi-output instances "
              "(Sec. 4.3)\n");
  std::printf("%-10s %8s %8s %8s %8s %10s\n", "family", "#inst", "targets",
              "itp ok", "itp fail", "all fixed?");

  struct Row {
    benchgen::Family family;
    std::uint32_t size_param;
    std::uint32_t targets;
    const char* label;
  };
  const Row rows[] = {
      {benchgen::Family::Adder, 6, 2, "adder"},
      {benchgen::Family::Comparator, 6, 3, "comparator"},
      {benchgen::Family::Alu, 5, 3, "alu"},
      {benchgen::Family::Parity, 12, 2, "parity"},
      {benchgen::Family::Random, 250, 3, "random"},
  };

  int rc = 0;
  for (const Row& row : rows) {
    const int n_inst = 10;
    std::uint32_t ok = 0, fail = 0, fixed = 0;
    for (int i = 0; i < n_inst; ++i) {
      benchgen::UnitSpec spec{.name = "e5",
                              .family = row.family,
                              .size_param = row.size_param,
                              .num_targets = row.targets,
                              .seed = 1000 + static_cast<std::uint64_t>(i)};
      const EcoInstance inst = benchgen::generateUnit(spec);
      EcoOptions opt;
      opt.try_interpolation_first = true;  // exercise the failure path
      opt.use_cost_opt = false;            // isolate phase-1 behaviour
      const PatchResult r = EcoEngine(opt).run(inst);
      if (r.success) ++fixed;
      fail += r.itp_failures;
      // Per-target attempts = targets; successes = attempts - failures.
      ok += inst.numTargets() - r.itp_failures;
    }
    std::printf("%-10s %8d %8u %8u %8u %9s\n", row.label, n_inst,
                row.targets * n_inst, ok, fail,
                fixed == n_inst ? "yes" : "NO");
    if (fixed != n_inst) rc = 1;
  }
  std::printf("\nexpected shape: a nonzero interpolation-failure count on at\n"
              "least some multi-output families, yet every instance fixed —\n"
              "the on-set fallback keeps the algorithm complete.\n");
  return rc;
}
