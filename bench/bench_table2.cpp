// E1 — Table 2 reproduction: cost, patch size, and runtime of the
// winner-proxy baseline vs our full flow on the 20-unit synthetic contest
// suite, with ratio columns (winner / ours) and geometric means.
//
// Matches the paper's column layout:
//   ckt | #target | winner cost/size/time | ours cost/size/time | ratios
//
// Absolute values differ from the paper (synthetic benchmarks, our own
// substrate); the *shape* to check is: parity on easy units, large cost and
// size reductions on the difficult units (6, 10, 11, 19), geometric-mean
// ratios comfortably below 1 for cost and size.

#include <cmath>
#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/baseline.h"
#include "eco/engine.h"

int main() {
  using namespace eco;

  std::printf("E1 / Table 2: winner proxy vs cost-aware multi-fix flow\n");
  std::printf(
      "%-8s %7s | %10s %6s %8s | %10s %6s %8s | %6s %6s %6s\n", "ckt",
      "#target", "w.cost", "w.size", "w.time", "o.cost", "o.size", "o.time",
      "r.cost", "r.size", "r.time");

  double geo_cost = 0, geo_size = 0, geo_time = 0;
  int counted = 0;
  int failures = 0;

  for (const auto& spec : benchgen::contestSuite()) {
    const EcoInstance inst = benchgen::generateUnit(spec);
    const PatchResult winner = runWinnerProxy(inst);
    const PatchResult ours = EcoEngine().run(inst);
    if (!winner.success || !ours.success) {
      std::printf("%-8s %7u | FAILED (winner: %s / ours: %s)\n",
                  spec.name.c_str(), inst.numTargets(),
                  winner.success ? "ok" : winner.message.c_str(),
                  ours.success ? "ok" : ours.message.c_str());
      ++failures;
      continue;
    }
    // Ratio convention follows the paper: winner-to-ours... the paper lists
    // "ratios of the results of the contest winner to ours"; < 1 means the
    // winner was better, > 1 means ours is better. To keep the table
    // readable we print ours/winner (as in the paper's Table 2 numbers,
    // where 0.02 on unit 6 marks a 47x win for the proposed method).
    const auto safe = [](double num, double den) {
      if (den <= 0) return num <= 0 ? 1.0 : num;
      return num / den;
    };
    const double r_cost = safe(ours.cost, winner.cost);
    const double r_size = safe(ours.size, winner.size);
    const double r_time = safe(ours.seconds, winner.seconds);
    std::printf(
        "%-8s %7u | %10.1f %6u %7.2fs | %10.1f %6u %7.2fs | %6.3f %6.3f %6.2f\n",
        spec.name.c_str(), inst.numTargets(), winner.cost, winner.size,
        winner.seconds, ours.cost, ours.size, ours.seconds, r_cost, r_size,
        r_time);
    std::fflush(stdout);
    geo_cost += std::log(std::max(r_cost, 1e-6));
    geo_size += std::log(std::max(r_size, 1e-6));
    geo_time += std::log(std::max(r_time, 1e-6));
    ++counted;
  }
  if (counted > 0) {
    std::printf("%-8s %7s | %27s | %27s | %6.3f %6.3f %6.2f   (geo. mean)\n",
                "geomean", "", "", "", std::exp(geo_cost / counted),
                std::exp(geo_size / counted), std::exp(geo_time / counted));
  }
  std::printf("\n%d/%d units rectified and SAT-verified by both engines\n",
              counted, counted + failures);
  return failures == 0 ? 0 : 1;
}
