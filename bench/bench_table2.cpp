// E1 — Table 2 reproduction: cost, patch size, and runtime of the
// winner-proxy baseline vs our full flow on the 20-unit synthetic contest
// suite, with ratio columns (ours / baseline) and geometric means.
//
// Absolute values differ from the paper (synthetic benchmarks, our own
// substrate); the *shape* to check is: parity on easy units, large cost and
// size reductions on the difficult units (6, 10, 11, 19), geometric-mean
// ratios comfortably below 1 for cost and size.
//
// Besides the human-readable table (eco::formatComparisonTable), the bench
// writes BENCH_table2.json — per-unit run reports in the versioned
// "ecopatch-run-report" schema plus the suite summary — to seed the perf
// trajectory. Usage: bench_table2 [output.json] [--subset name1,name2,...]
// (default BENCH_table2.json; "-" disables the file). --subset restricts the
// run to the named units — the CI perf-regression gate pins a deterministic
// subset so its wall-time geomean is comparable across commits (see
// tools/bench_gate.py).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/benchgen.h"
#include "eco/baseline.h"
#include "eco/engine.h"
#include "eco/report.h"
#include "eco/report_json.h"
#include "obs/json.h"

int main(int argc, char** argv) {
  using namespace eco;

  std::string json_path = "BENCH_table2.json";
  std::vector<std::string> subset;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--subset") == 0 && i + 1 < argc) {
      std::string csv = argv[++i];
      std::size_t start = 0;
      while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string name =
            csv.substr(start, comma == std::string::npos ? comma : comma - start);
        if (!name.empty()) subset.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      json_path = argv[i];
    }
  }

  std::printf("E1 / Table 2: winner proxy vs cost-aware multi-fix flow\n");

  std::vector<ComparisonRow> rows;
  obs::JsonWriter units;
  units.beginArray();
  int failures = 0;
  for (const auto& spec : benchgen::contestSuite()) {
    if (!subset.empty() &&
        std::find(subset.begin(), subset.end(), spec.name) == subset.end()) {
      continue;
    }
    const EcoInstance inst = benchgen::generateUnit(spec);
    ComparisonRow row;
    row.name = spec.name;
    row.num_targets = inst.numTargets();
    row.baseline = runWinnerProxy(inst);
    row.ours = EcoEngine().run(inst);
    if (!row.baseline.success || !row.ours.success) ++failures;

    // Per-unit run report for `ours` (the trajectory series), with the
    // baseline's headline numbers attached for the ratio columns. Metrics
    // are process-global, so only the suite summary embeds a snapshot.
    RunReportOptions ropt;
    ropt.include_metrics = false;
    obs::json::Value unit_report;
    std::string parse_error;
    const std::string report = writeJsonReport(inst, row.ours, ropt);
    if (!obs::json::parse(report, &unit_report, &parse_error)) {
      std::fprintf(stderr, "bench_table2: bad run report for %s: %s\n",
                   spec.name.c_str(), parse_error.c_str());
      ++failures;
    }
    units.beginObject();
    units.key("name"); units.value(spec.name);
    units.key("baseline");
    units.beginObject();
    units.key("success"); units.value(row.baseline.success);
    units.key("cost"); units.value(row.baseline.cost);
    units.key("size"); units.value(static_cast<std::uint64_t>(row.baseline.size));
    units.key("seconds"); units.valueFixed(row.baseline.seconds, 6);
    units.endObject();
    // Raw splice: `report` is itself a validated JSON object.
    units.key("ours");
    units.rawValue(report);
    units.endObject();

    rows.push_back(std::move(row));
    std::fflush(stdout);
  }
  units.endArray();

  std::printf("%s", formatComparisonTable(rows).c_str());
  std::printf("\n%zu/%zu units rectified and SAT-verified by both engines\n",
              rows.size() - static_cast<std::size_t>(failures), rows.size());

  if (json_path != "-") {
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema"); w.value("ecopatch-bench-table2");
    w.key("schema_version"); w.value(std::int64_t{1});
    w.key("run_report_schema_version");
    w.value(static_cast<std::int64_t>(kRunReportSchemaVersion));
    w.key("units_total"); w.value(static_cast<std::uint64_t>(rows.size()));
    w.key("units_failed"); w.value(static_cast<std::uint64_t>(failures));
    w.key("units"); w.rawValue(units.take());
    w.endObject();
    std::ofstream out(json_path);
    if (out) {
      out << w.take();
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "bench_table2: cannot write '%s'\n",
                   json_path.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
