// E7 — substrate micro-benchmarks (google-benchmark): CDCL solver on random
// 3-SAT and pigeonhole, Tseitin encoding + interpolation queries,
// bit-parallel simulation throughput, and FRAIG sweeping.

#include <benchmark/benchmark.h>

#include "aig/aig.h"
#include "base/rng.h"
#include "cnf/cnf.h"
#include "fraig/fraig.h"
#include "itp/itp.h"
#include "sat/solver.h"
#include "sim/sim.h"

namespace {

using namespace eco;

void addRandom3Sat(sat::Solver& s, std::uint32_t vars, std::uint32_t clauses,
                   Rng& rng) {
  for (std::uint32_t v = 0; v < vars; ++v) s.newVar();
  for (std::uint32_t i = 0; i < clauses; ++i) {
    sat::SLit lits[3];
    for (auto& l : lits) {
      l = sat::SLit::make(static_cast<sat::Var>(rng.below(vars)),
                          rng.chance(1, 2));
    }
    s.addClause(std::span<const sat::SLit>(lits, 3));
  }
}

void BM_SolverRandom3Sat(benchmark::State& state) {
  const auto vars = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    sat::Solver s;
    addRandom3Sat(s, vars, vars * 4, rng);  // near the phase transition
    benchmark::DoNotOptimize(s.solve());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

void BM_SolverPigeonhole(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const int H = P - 1;
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> v(P, std::vector<sat::Var>(H));
    for (auto& row : v) {
      for (auto& var : row) var = s.newVar();
    }
    for (int p = 0; p < P; ++p) {
      std::vector<sat::SLit> c;
      for (int h = 0; h < H; ++h) c.push_back(sat::SLit::make(v[p][h], false));
      s.addClause(c);
    }
    for (int h = 0; h < H; ++h) {
      for (int p1 = 0; p1 < P; ++p1) {
        for (int p2 = p1 + 1; p2 < P; ++p2) {
          s.addClause({sat::SLit::make(v[p1][h], true),
                       sat::SLit::make(v[p2][h], true)});
        }
      }
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SolverPigeonhole)->Arg(6)->Arg(7)->Arg(8);

Aig randomCone(std::uint32_t pis, std::uint32_t ands, Rng& rng) {
  Aig aig;
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < pis; ++i) pool.push_back(aig.addPi(""));
  for (std::uint32_t i = 0; i < ands; ++i) {
    const Lit a = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit b = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    pool.push_back(aig.addAnd(a, b));
  }
  aig.addPo(pool.back(), "o");
  return aig;
}

void BM_TseitinEncode(benchmark::State& state) {
  Rng rng(7);
  const Aig aig = randomCone(16, static_cast<std::uint32_t>(state.range(0)), rng);
  for (auto _ : state) {
    sat::Solver s;
    cnf::SolverSink sink(s);
    cnf::CnfMap map;
    for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
      map[aig.piVar(i)] = sat::SLit::make(s.newVar(), false);
    }
    benchmark::DoNotOptimize(cnf::encodeCone(aig, aig.poDriver(0), map, sink));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TseitinEncode)->Arg(1000)->Arg(10000);

void BM_InterpolationQuery(benchmark::State& state) {
  // A = cone asserted 1, B = same cone (fresh copy) asserted 0; interpolant
  // over the PIs. Representative of SynthesizePatch.
  Rng rng(11);
  const Aig aig = randomCone(12, static_cast<std::uint32_t>(state.range(0)), rng);
  for (auto _ : state) {
    itp::ItpJob job;
    Aig result;
    cnf::CnfMap map_a, map_b;
    for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
      const sat::Var v = job.solver().newVar();
      map_a[aig.piVar(i)] = sat::SLit::make(v, false);
      map_b[aig.piVar(i)] = sat::SLit::make(v, false);
      job.markShared(v, result.addPi(""));
    }
    const sat::SLit a = cnf::encodeCone(aig, aig.poDriver(0), map_a, job.sinkA());
    job.addClauseA({a});
    const sat::SLit b = cnf::encodeCone(aig, aig.poDriver(0), map_b, job.sinkB());
    job.addClauseB({~b});
    if (job.solve() == sat::Status::Unsat) {
      benchmark::DoNotOptimize(job.buildInterpolant(result));
    }
  }
}
BENCHMARK(BM_InterpolationQuery)->Arg(200)->Arg(1000);

void BM_Simulation(benchmark::State& state) {
  Rng rng(23);
  const Aig aig = randomCone(32, static_cast<std::uint32_t>(state.range(0)), rng);
  sim::PatternSet patterns(aig.numPis(), 16);
  patterns.randomize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulateAll(aig, patterns));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 16 * 64);
}
BENCHMARK(BM_Simulation)->Arg(1000)->Arg(10000);

void BM_FraigSweep(benchmark::State& state) {
  Rng rng(31);
  // Two structurally different copies of the same functions: plenty of
  // cross-circuit equivalences, like the engine's FRAIG stage sees.
  Aig aig;
  std::vector<Lit> pool;
  for (int i = 0; i < 12; ++i) pool.push_back(aig.addPi(""));
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; ++i) {
    const Lit a = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit b = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
    const Lit v = aig.addAnd(a, b);
    pool.push_back(v);
    // Redundant twin: v2 == v, different structure.
    pool.push_back(aig.mkOr(aig.addAnd(v, a), aig.addAnd(v, !a)));
  }
  std::vector<Lit> roots(pool.end() - 8, pool.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fraig::computeEquivClasses(aig, roots));
  }
}
BENCHMARK(BM_FraigSweep)->Arg(200)->Arg(800);

}  // namespace

BENCHMARK_MAIN();
