// E8 — ablation of this implementation's own design choice (DESIGN.md):
// FRAIG compression of the working cones during Algorithm 1. Iterated
// on-set substitution grows XOR-dominated cones multiplicatively; the
// compression threshold bounds that growth. Sweep the threshold on the
// XOR-heavy unit17 analogue and a random-logic unit.

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/engine.h"

int main() {
  using namespace eco;

  std::printf("E8: Algorithm-1 cone-compression threshold ablation\n");
  std::printf("(threshold 0 compresses every iteration; 'off' disables)\n\n");
  const auto suite = benchgen::contestSuite();
  const char* selected[] = {"unit17", "unit14"};
  struct Setting {
    const char* label;
    std::uint32_t threshold;
  };
  // "off" is approximated by an effectively unreachable threshold.
  const Setting settings[] = {
      {"off", 0x7FFFFFFF}, {"10000", 10000}, {"3000", 3000}, {"500", 500}};

  std::printf("%-8s", "ckt");
  for (const Setting& s : settings) {
    std::printf(" | %-7s init/size/time", s.label);
  }
  std::printf("\n");

  int rc = 0;
  for (const char* name : selected) {
    const benchgen::UnitSpec* spec = nullptr;
    for (const auto& s : suite) {
      if (s.name == name) spec = &s;
    }
    if (!spec) continue;
    const EcoInstance inst = benchgen::generateUnit(*spec);
    std::printf("%-8s", name);
    for (const Setting& s : settings) {
      EcoOptions opt;
      opt.compress_threshold = s.threshold;
      opt.use_cost_opt = false;       // isolate phase 1/2 growth
      opt.minimize_patches = false;   // no post-minimization either
      const PatchResult r = EcoEngine(opt).run(inst);
      if (!r.success) {
        std::printf(" | FAILED                 ");
        rc = 1;
        continue;
      }
      std::printf(" | %7u %6u %6.2fs", r.initial_size, r.size, r.seconds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: with compression off, the initial patch of the\n"
              "XOR-heavy unit explodes (tens of thousands of gates) and runtime\n"
              "follows; moderate thresholds give small patches at low cost.\n");
  return rc;
}
