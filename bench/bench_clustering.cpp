// E2 — Figure 2: target clustering. Reproduces the paper's clustering
// example (t1/t2/t3 merge, t4 separate) and reports cluster statistics
// across the contest suite (groups per unit, targets per group), showing
// the computational scope reduction the stage provides.

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/clustering.h"
#include "eco/instance.h"

namespace {

eco::EcoInstance figure2Instance() {
  using namespace eco;
  EcoInstance inst;
  inst.name = "figure2";
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    const Lit d = g.addPi("d");
    g.addPo(g.addAnd(a, b), "o1");
    g.addPo(g.mkOr(g.addAnd(a, b), c), "o2");
    g.addPo(g.mkXor(c, d), "o3");
    g.addPo(g.addAnd(c, d), "o4");
  }
  {
    Aig& f = inst.faulty;
    f.addPi("a");
    const Lit b = f.addPi("b");
    f.addPi("c");
    const Lit d = f.addPi("d");
    const Lit t1 = f.addPi("t1");
    const Lit t2 = f.addPi("t2");
    const Lit t3 = f.addPi("t3");
    const Lit t4 = f.addPi("t4");
    inst.num_x = 4;
    f.addPo(f.addAnd(t1, t2), "o1");
    f.addPo(f.mkOr(t2, f.addAnd(t3, b)), "o2");
    f.addPo(f.mkXor(t3, d), "o3");
    f.addPo(t4, "o4");
  }
  return inst;
}

}  // namespace

int main() {
  using namespace eco;

  std::printf("E2 / Figure 2: clustering example\n");
  const EcoInstance fig2 = figure2Instance();
  const auto clusters = clusterTargets(fig2);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    std::printf("  group %zu: targets {", i);
    for (const std::uint32_t t : clusters[i].targets) {
      std::printf(" %s", fig2.targetName(t).c_str());
    }
    std::printf(" } -> outputs {");
    for (const std::uint32_t o : clusters[i].outputs) {
      std::printf(" %s", fig2.faulty.poName(o).c_str());
    }
    std::printf(" }\n");
  }
  const bool fig2_ok = clusters.size() == 2 && clusters[0].targets.size() == 3 &&
                       clusters[1].targets.size() == 1;
  std::printf("  expected {t1,t2,t3} + {t4}: %s\n\n", fig2_ok ? "OK" : "MISMATCH");

  std::printf("clustering across the contest suite:\n");
  std::printf("%-8s %8s %8s %14s %14s\n", "ckt", "#target", "#groups",
              "largest group", "outputs touched");
  for (const auto& spec : benchgen::contestSuite()) {
    const EcoInstance inst = benchgen::generateUnit(spec);
    const auto cs = clusterTargets(inst);
    std::size_t largest = 0, outputs = 0;
    for (const auto& c : cs) {
      largest = std::max(largest, c.targets.size());
      outputs += c.outputs.size();
    }
    std::printf("%-8s %8u %8zu %14zu %14zu\n", spec.name.c_str(),
                inst.numTargets(), cs.size(), largest, outputs);
  }
  return fig2_ok ? 0 : 1;
}
