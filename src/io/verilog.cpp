#include "io/verilog.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "base/check.h"

namespace eco::io {
namespace {

struct Token {
  std::string text;
  int line;
};

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '=' || c == '~') {
      tokens.push_back({std::string(1, c), line});
      ++i;
      continue;
    }
    // Identifier / keyword / constant (allow alnum _ $ . [ ] ').
    std::size_t j = i;
    while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                     text[j] == '_' || text[j] == '$' || text[j] == '.' ||
                     text[j] == '[' || text[j] == ']' || text[j] == '\'')) {
      ++j;
    }
    if (j == i) {
      throw std::runtime_error("verilog: unexpected character '" +
                               std::string(1, c) + "' at line " +
                               std::to_string(line));
    }
    tokens.push_back({text.substr(i, j - i), line});
    i = j;
  }
  return tokens;
}

struct GateInst {
  std::string type;
  std::vector<std::string> terminals;  // output first
  int line;
};

bool isGateType(const std::string& t) {
  static const std::unordered_set<std::string> kTypes = {
      "buf", "not", "and", "or", "nand", "nor", "xor", "xnor"};
  return kTypes.count(t) != 0;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("verilog: line " + std::to_string(line) + ": " + msg);
}

}  // namespace

Netlist parseVerilog(const std::string& text) {
  const std::vector<Token> tokens = tokenize(text);
  std::size_t pos = 0;
  const auto peek = [&]() -> const Token& {
    if (pos >= tokens.size()) {
      static const Token eof{"<eof>", -1};
      return eof;
    }
    return tokens[pos];
  };
  const auto next = [&]() -> const Token& {
    const Token& t = peek();
    if (t.line < 0) fail(0, "unexpected end of file");
    ++pos;
    return t;
  };
  const auto expect = [&](const std::string& want) {
    const Token& t = next();
    if (t.text != want) fail(t.line, "expected '" + want + "', got '" + t.text + "'");
  };

  Netlist result;
  expect("module");
  result.module_name = next().text;
  // Port list (names are repeated in input/output declarations).
  expect("(");
  while (peek().text != ")") {
    next();
    if (peek().text == ",") next();
  }
  expect(")");
  expect(";");

  std::vector<std::string> inputs, outputs, wires;
  std::vector<GateInst> gates;
  // assign lhs = rhs (rhs may be ~name or a constant)
  struct Assign {
    std::string lhs, rhs;
    bool invert;
    int line;
  };
  std::vector<Assign> assigns;

  for (;;) {
    const Token& t = next();
    if (t.text == "endmodule") break;
    if (t.text == "input" || t.text == "output" || t.text == "wire") {
      std::vector<std::string>& dst =
          t.text == "input" ? inputs : (t.text == "output" ? outputs : wires);
      for (;;) {
        dst.push_back(next().text);
        const Token& sep = next();
        if (sep.text == ";") break;
        if (sep.text != ",") fail(sep.line, "expected ',' or ';' in declaration");
      }
      continue;
    }
    if (t.text == "assign") {
      Assign a;
      a.line = t.line;
      a.lhs = next().text;
      expect("=");
      a.invert = false;
      if (peek().text == "~") {
        next();
        a.invert = true;
      }
      a.rhs = next().text;
      expect(";");
      assigns.push_back(a);
      continue;
    }
    if (isGateType(t.text)) {
      GateInst g;
      g.type = t.text;
      g.line = t.line;
      Token name_or_paren = next();  // optional instance name
      if (name_or_paren.text != "(") expect("(");
      for (;;) {
        g.terminals.push_back(next().text);
        const Token& sep = next();
        if (sep.text == ")") break;
        if (sep.text != ",") fail(sep.line, "expected ',' or ')' in terminal list");
      }
      expect(";");
      const std::size_t min_terms = (g.type == "buf" || g.type == "not") ? 2 : 3;
      if (g.terminals.size() < min_terms) fail(g.line, "too few gate terminals");
      gates.push_back(std::move(g));
      continue;
    }
    fail(t.line, "unexpected token '" + t.text + "'");
  }

  // Map each driven signal to its driver.
  struct Driver {
    int gate = -1;    // index into gates
    int assign = -1;  // index into assigns
  };
  std::unordered_map<std::string, Driver> driver_of;
  const std::unordered_set<std::string> input_set(inputs.begin(), inputs.end());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const std::string& out = gates[i].terminals[0];
    if (driver_of.count(out) != 0 || input_set.count(out) != 0) {
      fail(gates[i].line, "signal '" + out + "' multiply driven");
    }
    driver_of[out].gate = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < assigns.size(); ++i) {
    if (driver_of.count(assigns[i].lhs) != 0 ||
        input_set.count(assigns[i].lhs) != 0) {
      fail(assigns[i].line, "signal '" + assigns[i].lhs + "' multiply driven");
    }
    driver_of[assigns[i].lhs].assign = static_cast<int>(i);
  }

  // PIs: declared inputs, then floating wires (targets) in declaration order.
  result.inputs = inputs;
  Aig& aig = result.aig;
  std::unordered_map<std::string, Lit> sig;
  for (const std::string& in : inputs) {
    if (sig.count(in) != 0) fail(0, "duplicate input '" + in + "'");
    sig[in] = aig.addPi(in);
  }
  for (const std::string& w : wires) {
    if (driver_of.count(w) == 0 && sig.count(w) == 0) {
      result.targets.push_back(w);
      sig[w] = aig.addPi(w);
    }
  }

  // Resolve signals with an explicit-frame DFS; the frame stack is exactly
  // the current path, so the on-path set detects true combinational cycles
  // (a plain work-stack would misreport reconvergent fanins as cycles).
  struct Frame {
    std::string name;
    std::vector<std::string> fanins;
    bool expanded = false;
  };
  const auto resolve = [&](const std::string& root_name) -> Lit {
    if (auto it = sig.find(root_name); it != sig.end()) return it->second;
    std::vector<Frame> path;
    std::unordered_set<std::string> on_path;
    path.push_back(Frame{root_name, {}, false});
    on_path.insert(root_name);
    while (!path.empty()) {
      Frame& fr = path.back();
      if (sig.count(fr.name) != 0) {
        on_path.erase(fr.name);
        path.pop_back();
        continue;
      }
      if (fr.name == "1'b0" || fr.name == "1'b1") {
        sig[fr.name] = fr.name == "1'b1" ? kTrue : kFalse;
        continue;
      }
      const auto dit = driver_of.find(fr.name);
      if (dit == driver_of.end()) {
        throw std::runtime_error("verilog: undriven, undeclared signal '" +
                                 fr.name + "'");
      }
      if (!fr.expanded) {
        fr.expanded = true;
        if (dit->second.gate >= 0) {
          const GateInst& g = gates[dit->second.gate];
          fr.fanins.assign(g.terminals.begin() + 1, g.terminals.end());
        } else {
          fr.fanins.push_back(assigns[dit->second.assign].rhs);
        }
      }
      // Descend into the first unresolved fanin, if any.
      const std::string* pending = nullptr;
      for (const std::string& f : fr.fanins) {
        if (sig.count(f) == 0) {
          pending = &f;
          break;
        }
      }
      if (pending) {
        if (on_path.count(*pending) != 0) {
          throw std::runtime_error("verilog: combinational cycle through '" +
                                   *pending + "'");
        }
        const std::string next = *pending;  // copy: path may reallocate
        on_path.insert(next);
        path.push_back(Frame{next, {}, false});
        continue;
      }
      // All fanins resolved: build the gate function.
      Lit value;
      if (dit->second.gate >= 0) {
        const GateInst& g = gates[dit->second.gate];
        std::vector<Lit> ins;
        ins.reserve(fr.fanins.size());
        for (const std::string& f : fr.fanins) ins.push_back(sig.at(f));
        if (g.type == "buf") {
          value = ins[0];
        } else if (g.type == "not") {
          value = !ins[0];
        } else if (g.type == "and" || g.type == "nand") {
          value = aig.mkAndN(ins);
          if (g.type == "nand") value = !value;
        } else if (g.type == "or" || g.type == "nor") {
          value = aig.mkOrN(ins);
          if (g.type == "nor") value = !value;
        } else {  // xor / xnor
          value = kFalse;
          for (const Lit in : ins) value = aig.mkXor(value, in);
          if (g.type == "xnor") value = !value;
        }
      } else {
        const Assign& a = assigns[dit->second.assign];
        value = sig.at(a.rhs) ^ a.invert;
      }
      const std::string done = fr.name;
      sig[done] = value;
      aig.setSignalName(value, done);
      on_path.erase(done);
      path.pop_back();
    }
    return sig.at(root_name);
  };

  result.outputs = outputs;
  for (const std::string& out : outputs) {
    aig.addPo(resolve(out), out);
  }
  // Resolve remaining driven wires too, so every named signal of the faulty
  // circuit is available as a patch-base candidate even outside PO cones.
  for (const auto& [name, drv] : driver_of) {
    (void)drv;
    resolve(name);
  }
  return result;
}

std::string writeVerilog(const Aig& aig, const std::string& module_name) {
  return writeVerilogWithFloating(aig, module_name, {});
}

std::string writeVerilogWithFloating(
    const Aig& aig, const std::string& module_name,
    std::span<const std::uint32_t> floating_pis) {
  std::unordered_set<std::uint32_t> floating(floating_pis.begin(),
                                             floating_pis.end());
  std::ostringstream os;
  const auto piName = [&](std::uint32_t i) {
    const std::string& n = aig.piName(i);
    return n.empty() ? "pi" + std::to_string(i) : n;
  };
  const auto poName = [&](std::uint32_t i) {
    const std::string& n = aig.poName(i);
    return n.empty() ? "po" + std::to_string(i) : n;
  };

  os << "module " << module_name << " (";
  bool first = true;
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    if (floating.count(i) != 0) continue;
    os << (first ? " " : ", ") << piName(i);
    first = false;
  }
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) {
    os << (first ? " " : ", ") << poName(i);
    first = false;
  }
  os << " );\n";
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    if (floating.count(i) != 0) continue;
    os << "input " << piName(i) << ";\n";
  }
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) {
    os << "output " << poName(i) << ";\n";
  }
  // Floating pseudo-PIs: declared, never driven (rectification targets).
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    if (floating.count(i) != 0) os << "wire " << piName(i) << ";\n";
  }

  // Emit logic reachable from the POs *and* from every named signal — named
  // dangling logic (spare cells, disconnected cones) is part of the netlist
  // and its names carry the weight-file entries. Inverters are created on
  // demand. Generated wire names must not collide with any existing name.
  std::unordered_set<std::string> used_names;
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) used_names.insert(piName(i));
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) used_names.insert(poName(i));
  for (const auto& [name, lit] : aig.namedSignals()) {
    (void)lit;
    used_names.insert(name);
  }
  const auto freshName = [&](std::uint32_t id) {
    std::string name = "n" + std::to_string(id);
    while (used_names.count(name) != 0) name += "_";
    used_names.insert(name);
    return name;
  };
  std::vector<std::string> node_name(aig.numNodes());
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) node_name[aig.piVar(i)] = piName(i);
  // Non-complemented signal names become the node's wire name directly;
  // complemented ones are emitted as explicit inverter wires below.
  std::vector<const std::string*> preferred_name(aig.numNodes(), nullptr);
  std::vector<const std::string*> complement_name(aig.numNodes(), nullptr);
  {
    std::unordered_set<std::string> port_names;
    for (std::uint32_t i = 0; i < aig.numPis(); ++i) port_names.insert(piName(i));
    for (std::uint32_t i = 0; i < aig.numPos(); ++i) port_names.insert(poName(i));
    for (const auto& [name, lit] : aig.namedSignals()) {
      if (aig.isPi(lit.var()) || lit.var() == 0) continue;
      if (port_names.count(name) != 0) continue;  // would shadow a port
      auto& slot = lit.complemented() ? complement_name[lit.var()]
                                      : preferred_name[lit.var()];
      if (!slot) slot = &name;
    }
  }
  std::vector<std::string> inv_name(aig.numNodes());
  std::ostringstream body;
  std::uint32_t next_gate = 0;
  std::vector<std::string> wires;

  const auto litName = [&](Lit l) -> std::string {
    if (l == kFalse) return "1'b0";
    if (l == kTrue) return "1'b1";
    if (!l.complemented()) return node_name[l.var()];
    if (inv_name[l.var()].empty()) {
      inv_name[l.var()] = freshName(aig.numNodes() + l.var());
      wires.push_back(inv_name[l.var()]);
      body << "not g" << next_gate++ << " (" << inv_name[l.var()] << ", "
           << node_name[l.var()] << ");\n";
    }
    return inv_name[l.var()];
  };

  // Topological emission over the PO cones and the named-signal cones.
  std::vector<Lit> roots;
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) roots.push_back(aig.poDriver(i));
  for (const auto& [name, lit] : aig.namedSignals()) {
    (void)name;
    roots.push_back(lit);
  }
  // collectCone-style inline traversal to honor gate ordering.
  std::vector<bool> seen(aig.numNodes(), false);
  seen[0] = true;
  std::vector<std::uint32_t> stack;
  for (const Lit r : roots) stack.push_back(r.var());
  while (!stack.empty()) {
    const std::uint32_t var = stack.back();
    if (seen[var]) {
      stack.pop_back();
      continue;
    }
    if (aig.isPi(var)) {
      seen[var] = true;
      stack.pop_back();
      continue;
    }
    const std::uint32_t f0 = aig.fanin0(var).var();
    const std::uint32_t f1 = aig.fanin1(var).var();
    if (!seen[f0]) {
      stack.push_back(f0);
      continue;
    }
    if (!seen[f1]) {
      stack.push_back(f1);
      continue;
    }
    seen[var] = true;
    stack.pop_back();
    node_name[var] = preferred_name[var] ? *preferred_name[var] : freshName(var);
    wires.push_back(node_name[var]);
    const std::string a = litName(aig.fanin0(var));
    const std::string b = litName(aig.fanin1(var));
    body << "and g" << next_gate++ << " (" << node_name[var] << ", " << a << ", "
         << b << ");\n";
    if (complement_name[var] && inv_name[var].empty()) {
      // A name bound to the complemented literal: emit it as an inverter
      // wire so the name exists in the netlist.
      inv_name[var] = *complement_name[var];
      wires.push_back(inv_name[var]);
      body << "not g" << next_gate++ << " (" << inv_name[var] << ", "
           << node_name[var] << ");\n";
    }
  }
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) {
    const Lit d = aig.poDriver(i);
    if (d == kFalse || d == kTrue) {
      body << "buf g" << next_gate++ << " (" << poName(i) << ", "
           << (d == kTrue ? "1'b1" : "1'b0") << ");\n";
    } else if (!d.complemented()) {
      body << "buf g" << next_gate++ << " (" << poName(i) << ", "
           << node_name[d.var()] << ");\n";
    } else {
      body << "not g" << next_gate++ << " (" << poName(i) << ", "
           << node_name[d.var()] << ");\n";
    }
  }

  for (const std::string& w : wires) os << "wire " << w << ";\n";
  os << body.str();
  os << "endmodule\n";
  return os.str();
}

std::unordered_map<std::string, double> parseWeights(const std::string& text) {
  std::unordered_map<std::string, double> weights;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string name;
    if (!(ls >> name)) continue;  // blank
    double w = 0;
    if (!(ls >> w) || w < 0 || !std::isfinite(w)) {
      throw std::runtime_error("weights: bad entry at line " +
                               std::to_string(line_no));
    }
    std::string trailing;
    if (ls >> trailing) {
      throw std::runtime_error("weights: trailing garbage at line " +
                               std::to_string(line_no));
    }
    weights[name] = w;
  }
  return weights;
}

std::string writeWeights(const std::unordered_map<std::string, double>& weights) {
  // Sorted output for determinism.
  std::vector<std::pair<std::string, double>> items(weights.begin(), weights.end());
  std::sort(items.begin(), items.end());
  std::ostringstream os;
  for (const auto& [name, w] : items) os << name << " " << w << "\n";
  return os.str();
}

}  // namespace eco::io
