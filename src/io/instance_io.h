#pragma once
// Whole-instance I/O in the contest layout: faulty netlist (targets as
// floating wires), golden netlist, weight file.

#include <string>

#include "eco/instance.h"

namespace eco::io {

struct InstanceFiles {
  std::string faulty_v;   ///< F.v — targets are undriven wires
  std::string golden_v;   ///< G.v
  std::string weights;    ///< weight.txt
};

/// Builds an EcoInstance from the three contest files. Throws
/// std::runtime_error on malformed input or mismatched interfaces
/// (different X inputs or output lists).
EcoInstance loadInstance(const std::string& faulty_v, const std::string& golden_v,
                         const std::string& weights,
                         const std::string& name = "instance");

/// Serializes an instance into the three contest files.
InstanceFiles saveInstance(const EcoInstance& instance);

}  // namespace eco::io
