#pragma once
// BLIF (Berkeley Logic Interchange Format) I/O, combinational subset.
//
// Supported: .model / .inputs / .outputs / .names (SOP covers with both
// on-set and off-set output polarity, don't-care '-' input column), line
// continuation '\', comments '#', .end. Latches (.latch) and subcircuits
// (.subckt) are rejected — the ECO problem is combinational and flat.

#include <string>

#include "aig/aig.h"

namespace eco::io {

/// Parses a flat combinational BLIF model into an AIG. Throws
/// std::runtime_error with a line-annotated message on malformed input.
Aig parseBlif(const std::string& text);

/// Serializes an AIG as BLIF using 2-input .names for every AND node.
std::string writeBlif(const Aig& aig, const std::string& model_name);

}  // namespace eco::io
