#pragma once
// AIGER format I/O (combinational subset, formats "aag" ASCII and "aig"
// binary, per the AIGER 1.9 specification).
//
// AIGER is the lingua franca of AIG-based tools (ABC, model checkers, SAT
// sweeping utilities); supporting it lets instances move between this
// library and the wider ecosystem. Latches are rejected — the ECO problem
// is combinational.

#include <string>

#include "aig/aig.h"

namespace eco::io {

/// Parses an AIGER file (auto-detects "aag" vs "aig" from the header).
/// Symbol-table input/output names are applied when present. Throws
/// std::runtime_error on malformed input or sequential designs.
Aig parseAiger(const std::string& data);

/// Serializes to ASCII AIGER ("aag"). Node indices are reassigned densely.
std::string writeAigerAscii(const Aig& aig);

/// Serializes to binary AIGER ("aig").
std::string writeAigerBinary(const Aig& aig);

}  // namespace eco::io
