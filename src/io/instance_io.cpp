#include "io/instance_io.h"

#include <stdexcept>

#include "io/verilog.h"

namespace eco::io {

EcoInstance loadInstance(const std::string& faulty_v, const std::string& golden_v,
                         const std::string& weights, const std::string& name) {
  Netlist faulty = parseVerilog(faulty_v);
  Netlist golden = parseVerilog(golden_v);
  if (!golden.targets.empty()) {
    throw std::runtime_error("golden netlist has undriven wires");
  }
  if (faulty.inputs.size() != golden.inputs.size()) {
    throw std::runtime_error("faulty and golden input lists differ");
  }
  for (std::size_t i = 0; i < faulty.inputs.size(); ++i) {
    if (faulty.inputs[i] != golden.inputs[i]) {
      throw std::runtime_error("input name mismatch at position " +
                               std::to_string(i) + ": '" + faulty.inputs[i] +
                               "' vs '" + golden.inputs[i] + "'");
    }
  }
  if (faulty.outputs.size() != golden.outputs.size()) {
    throw std::runtime_error("faulty and golden output lists differ");
  }
  if (faulty.targets.empty()) {
    throw std::runtime_error("faulty netlist has no floating targets");
  }

  EcoInstance inst;
  inst.name = name;
  inst.num_x = static_cast<std::uint32_t>(faulty.inputs.size());
  inst.faulty = std::move(faulty.aig);
  inst.golden = std::move(golden.aig);
  inst.weights = parseWeights(weights);
  return inst;
}

InstanceFiles saveInstance(const EcoInstance& instance) {
  InstanceFiles files;
  std::vector<std::uint32_t> floating;
  for (std::uint32_t k = 0; k < instance.numTargets(); ++k) {
    floating.push_back(instance.targetPi(k));
  }
  files.faulty_v =
      writeVerilogWithFloating(instance.faulty, "top", floating);
  files.golden_v = writeVerilog(instance.golden, "top");
  files.weights = writeWeights(instance.weights);
  return files;
}

}  // namespace eco::io
