#pragma once
// Gate-level structural Verilog I/O in the ICCAD 2017 contest style.
//
// Supported subset: one module; `input`/`output`/`wire` declarations;
// primitive gate instances `buf not and or nand nor xor xnor` (first
// terminal is the output); `assign lhs = rhs;` where rhs is an identifier,
// `~identifier`, `1'b0` or `1'b1`. Declared wires that are never driven are
// the ECO *target* pseudo-PIs (the contest's floating rectification points).
//
// The weight file gives one `<signal-name> <weight>` pair per line — the
// cost of using that faulty-circuit signal as a patch base.

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.h"

namespace eco::io {

struct Netlist {
  Aig aig;  ///< PIs = module inputs followed by floating wires (targets)
  std::string module_name;
  std::vector<std::string> inputs;   ///< declared module inputs, in order
  std::vector<std::string> outputs;  ///< declared module outputs, in order
  std::vector<std::string> targets;  ///< floating wires, in declaration order
};

/// Parses the supported Verilog subset. Throws std::runtime_error with a
/// line-annotated message on malformed input.
Netlist parseVerilog(const std::string& text);

/// Serializes an AIG as a structural Verilog module using and/not/buf
/// primitives. PI/PO names are taken from the AIG (auto-generated when
/// empty).
std::string writeVerilog(const Aig& aig, const std::string& module_name);

/// Like writeVerilog, but the PIs whose index is in `floating_pis` are
/// emitted as *undriven wires* instead of module inputs — the contest's
/// encoding of rectification targets. Parsing the result recovers them in
/// `Netlist::targets`.
std::string writeVerilogWithFloating(const Aig& aig,
                                     const std::string& module_name,
                                     std::span<const std::uint32_t> floating_pis);

/// Parses a weight file: `<name> <non-negative weight>` per line; `#`
/// comments and blank lines are ignored.
std::unordered_map<std::string, double> parseWeights(const std::string& text);

std::string writeWeights(const std::unordered_map<std::string, double>& weights);

}  // namespace eco::io
