#include "io/aiger.h"

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "base/check.h"

namespace eco::io {
namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("aiger: " + msg);
}

struct Layout {
  std::vector<std::uint32_t> index_of_var;  ///< AIG var -> dense AIGER var
  std::vector<std::uint32_t> and_vars;      ///< AIG AND vars, ascending
};

Layout layoutOf(const Aig& aig) {
  Layout lay;
  lay.index_of_var.assign(aig.numNodes(), 0);
  std::uint32_t next = 1;
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    lay.index_of_var[aig.piVar(i)] = next++;
  }
  for (std::uint32_t v = 1; v < aig.numNodes(); ++v) {
    if (aig.isAnd(v)) {
      lay.index_of_var[v] = next++;
      lay.and_vars.push_back(v);
    }
  }
  return lay;
}

std::uint32_t aigerLit(const Layout& lay, Lit l) {
  return 2 * lay.index_of_var[l.var()] + (l.complemented() ? 1 : 0);
}

void writeSymbols(const Aig& aig, std::ostringstream& os) {
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    if (!aig.piName(i).empty()) os << "i" << i << " " << aig.piName(i) << "\n";
  }
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) {
    if (!aig.poName(i).empty()) os << "o" << i << " " << aig.poName(i) << "\n";
  }
}

void pushVarint(std::string& out, std::uint32_t x) {
  while (x & ~0x7Fu) {
    out.push_back(static_cast<char>(0x80 | (x & 0x7F)));
    x >>= 7;
  }
  out.push_back(static_cast<char>(x));
}

std::uint32_t readVarint(const std::string& data, std::size_t& pos) {
  std::uint32_t x = 0;
  int shift = 0;
  for (;;) {
    if (pos >= data.size()) fail("truncated binary and-gate section");
    const auto byte = static_cast<unsigned char>(data[pos++]);
    x |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 28) fail("varint overflow");
  }
  return x;
}

}  // namespace

std::string writeAigerAscii(const Aig& aig) {
  const Layout lay = layoutOf(aig);
  const std::uint32_t M = aig.numPis() + static_cast<std::uint32_t>(lay.and_vars.size());
  std::ostringstream os;
  os << "aag " << M << " " << aig.numPis() << " 0 " << aig.numPos() << " "
     << lay.and_vars.size() << "\n";
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    os << 2 * (i + 1) << "\n";
  }
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) {
    os << aigerLit(lay, aig.poDriver(i)) << "\n";
  }
  for (const std::uint32_t v : lay.and_vars) {
    os << 2 * lay.index_of_var[v] << " " << aigerLit(lay, aig.fanin0(v)) << " "
       << aigerLit(lay, aig.fanin1(v)) << "\n";
  }
  writeSymbols(aig, os);
  return os.str();
}

std::string writeAigerBinary(const Aig& aig) {
  const Layout lay = layoutOf(aig);
  const std::uint32_t M = aig.numPis() + static_cast<std::uint32_t>(lay.and_vars.size());
  std::ostringstream head;
  head << "aig " << M << " " << aig.numPis() << " 0 " << aig.numPos() << " "
       << lay.and_vars.size() << "\n";
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) {
    head << aigerLit(lay, aig.poDriver(i)) << "\n";
  }
  std::string out = head.str();
  for (const std::uint32_t v : lay.and_vars) {
    const std::uint32_t lhs = 2 * lay.index_of_var[v];
    std::uint32_t rhs0 = aigerLit(lay, aig.fanin0(v));
    std::uint32_t rhs1 = aigerLit(lay, aig.fanin1(v));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);
    ECO_CHECK_MSG(lhs > rhs0, "AND ordering violated in binary AIGER");
    pushVarint(out, lhs - rhs0);
    pushVarint(out, rhs0 - rhs1);
  }
  std::ostringstream sym;
  writeSymbols(aig, sym);
  out += sym.str();
  return out;
}

Aig parseAiger(const std::string& data) {
  std::size_t pos = 0;
  const auto readLine = [&]() -> std::string {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) fail("unexpected end of file");
    std::string line = data.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  std::string header = readLine();
  std::istringstream hs(header);
  std::string magic;
  std::uint32_t M = 0, I = 0, L = 0, O = 0, A = 0;
  if (!(hs >> magic >> M >> I >> L >> O >> A)) fail("malformed header");
  const bool binary = magic == "aig";
  if (!binary && magic != "aag") fail("unknown magic '" + magic + "'");
  if (L != 0) fail("sequential designs (latches) are not supported");
  if (M < I + A) fail("inconsistent header counts");

  Aig aig;
  // aiger var -> our literal. Var 0 is constant FALSE in both encodings.
  std::vector<Lit> lit_of(M + 1, Lit());
  lit_of[0] = kFalse;
  const auto litOf = [&](std::uint32_t l) -> Lit {
    if (l / 2 > M) fail("literal out of range");
    const Lit base = lit_of[l / 2];
    if (!base.valid()) fail("literal " + std::to_string(l) + " used before defined");
    return base ^ ((l & 1) != 0);
  };

  std::vector<std::uint32_t> input_lits(I), output_lits(O);
  if (binary) {
    for (std::uint32_t i = 0; i < I; ++i) input_lits[i] = 2 * (i + 1);
  } else {
    for (std::uint32_t i = 0; i < I; ++i) {
      input_lits[i] = static_cast<std::uint32_t>(std::stoul(readLine()));
      if (input_lits[i] != 2 * (i + 1)) fail("non-canonical input numbering");
    }
  }
  for (std::uint32_t i = 0; i < I; ++i) {
    lit_of[input_lits[i] / 2] = aig.addPi();
  }
  for (std::uint32_t i = 0; i < O; ++i) {
    output_lits[i] = static_cast<std::uint32_t>(std::stoul(readLine()));
  }

  if (binary) {
    for (std::uint32_t a = 0; a < A; ++a) {
      const std::uint32_t lhs = 2 * (I + L + a + 1);
      const std::uint32_t delta0 = readVarint(data, pos);
      const std::uint32_t delta1 = readVarint(data, pos);
      if (delta0 > lhs) fail("invalid delta");
      const std::uint32_t rhs0 = lhs - delta0;
      if (delta1 > rhs0) fail("invalid delta");
      const std::uint32_t rhs1 = rhs0 - delta1;
      lit_of[lhs / 2] = aig.addAnd(litOf(rhs0), litOf(rhs1));
    }
  } else {
    // ASCII AND definitions may reference later definitions only in
    // non-standard files; require the canonical ascending order.
    for (std::uint32_t a = 0; a < A; ++a) {
      std::istringstream ls(readLine());
      std::uint32_t lhs = 0, rhs0 = 0, rhs1 = 0;
      if (!(ls >> lhs >> rhs0 >> rhs1)) fail("malformed and line");
      if ((lhs & 1) != 0 || lhs / 2 > M) fail("bad and lhs");
      if (lit_of[lhs / 2].valid()) fail("redefinition of " + std::to_string(lhs));
      lit_of[lhs / 2] = aig.addAnd(litOf(rhs0), litOf(rhs1));
    }
  }

  for (std::uint32_t i = 0; i < O; ++i) {
    aig.addPo(litOf(output_lits[i]));
  }

  // Symbol table (and comments, ignored).
  std::vector<std::string> pi_names(I), po_names(O);
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    const std::string line =
        data.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? data.size() : nl + 1;
    if (line.empty()) continue;
    if (line[0] == 'c') break;  // comment section
    if (line[0] != 'i' && line[0] != 'o') fail("bad symbol line '" + line + "'");
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) fail("bad symbol line '" + line + "'");
    const auto idx = static_cast<std::uint32_t>(std::stoul(line.substr(1, sp - 1)));
    const std::string name = line.substr(sp + 1);
    if (line[0] == 'i') {
      if (idx >= I) fail("input symbol out of range");
      pi_names[idx] = name;
    } else {
      if (idx >= O) fail("output symbol out of range");
      po_names[idx] = name;
    }
  }
  // Rebuild with names (names are fixed at PI creation).
  Aig named;
  {
    std::unordered_map<std::uint32_t, Lit> map;
    map[0] = kFalse;
    for (std::uint32_t i = 0; i < I; ++i) {
      map[aig.piVar(i)] = named.addPi(pi_names[i]);
    }
    for (std::uint32_t v = 1; v < aig.numNodes(); ++v) {
      if (!aig.isAnd(v)) continue;
      const Lit f0 = aig.fanin0(v);
      const Lit f1 = aig.fanin1(v);
      map[v] = named.addAnd(map.at(f0.var()) ^ f0.complemented(),
                            map.at(f1.var()) ^ f1.complemented());
    }
    for (std::uint32_t j = 0; j < O; ++j) {
      const Lit d = aig.poDriver(j);
      named.addPo(map.at(d.var()) ^ d.complemented(), po_names[j]);
    }
  }
  return named;
}

}  // namespace eco::io
