#include "io/blif.h"

#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aig/aig_ops.h"
#include "base/check.h"

namespace eco::io {
namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("blif: line " + std::to_string(line) + ": " + msg);
}

struct Cover {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> rows;  ///< input cube part only
  bool on_set = true;             ///< polarity of the output column
  bool polarity_known = false;
  int line = 0;
};

std::vector<std::string> splitTokens(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace

Aig parseBlif(const std::string& text) {
  // Pass 1: logical lines (continuations joined, comments stripped).
  std::vector<std::pair<std::string, int>> lines;
  {
    std::istringstream is(text);
    std::string raw;
    int line_no = 0;
    std::string pending;
    int pending_line = 0;
    while (std::getline(is, raw)) {
      ++line_no;
      if (const std::size_t hash = raw.find('#'); hash != std::string::npos) {
        raw = raw.substr(0, hash);
      }
      const bool cont = !raw.empty() && raw.back() == '\\';
      if (cont) raw.pop_back();
      if (pending.empty()) pending_line = line_no;
      pending += raw;
      if (cont) {
        pending += " ";
        continue;
      }
      if (!splitTokens(pending).empty()) lines.emplace_back(pending, pending_line);
      pending.clear();
    }
    if (!pending.empty() && !splitTokens(pending).empty()) {
      lines.emplace_back(pending, pending_line);
    }
  }

  std::vector<std::string> inputs, outputs;
  std::vector<Cover> covers;
  Cover* current = nullptr;
  bool saw_model = false;

  for (const auto& [line, line_no] : lines) {
    const std::vector<std::string> tok = splitTokens(line);
    if (tok[0][0] == '.') {
      current = nullptr;
      if (tok[0] == ".model") {
        saw_model = true;
      } else if (tok[0] == ".inputs") {
        inputs.insert(inputs.end(), tok.begin() + 1, tok.end());
      } else if (tok[0] == ".outputs") {
        outputs.insert(outputs.end(), tok.begin() + 1, tok.end());
      } else if (tok[0] == ".names") {
        if (tok.size() < 2) fail(line_no, ".names needs at least an output");
        Cover c;
        c.inputs.assign(tok.begin() + 1, tok.end() - 1);
        c.output = tok.back();
        c.line = line_no;
        covers.push_back(std::move(c));
        current = &covers.back();
      } else if (tok[0] == ".end") {
        break;
      } else if (tok[0] == ".latch" || tok[0] == ".subckt" || tok[0] == ".gate") {
        fail(line_no, tok[0] + " is not supported (combinational flat models only)");
      } else {
        // Unknown dot-directives are skipped (e.g. .default_input_arrival).
      }
      continue;
    }
    // Cover row.
    if (!current) fail(line_no, "cover row outside a .names block");
    if (current->inputs.empty()) {
      // Constant: single column row "1" or "0".
      if (tok.size() != 1 || (tok[0] != "0" && tok[0] != "1")) {
        fail(line_no, "bad constant row");
      }
      const bool on = tok[0] == "1";
      if (current->polarity_known && current->on_set != on) {
        fail(line_no, "mixed output polarities in one cover");
      }
      current->on_set = on;
      current->polarity_known = true;
      current->rows.push_back("");
      continue;
    }
    if (tok.size() != 2) fail(line_no, "bad cover row");
    const std::string& cube = tok[0];
    if (cube.size() != current->inputs.size()) {
      fail(line_no, "cube width does not match .names inputs");
    }
    for (const char ch : cube) {
      if (ch != '0' && ch != '1' && ch != '-') fail(line_no, "bad cube character");
    }
    if (tok[1] != "0" && tok[1] != "1") fail(line_no, "bad output value");
    const bool on = tok[1] == "1";
    if (current->polarity_known && current->on_set != on) {
      fail(line_no, "mixed output polarities in one cover");
    }
    current->on_set = on;
    current->polarity_known = true;
    current->rows.push_back(cube);
  }
  if (!saw_model) fail(1, "missing .model");

  // Build the AIG: resolve covers by name with cycle detection.
  Aig aig;
  std::unordered_map<std::string, Lit> sig;
  for (const std::string& in : inputs) {
    if (sig.count(in) != 0) fail(1, "duplicate input '" + in + "'");
    sig[in] = aig.addPi(in);
  }
  std::unordered_map<std::string, const Cover*> cover_of;
  for (const Cover& c : covers) {
    if (cover_of.count(c.output) != 0 || sig.count(c.output) != 0) {
      fail(c.line, "signal '" + c.output + "' multiply driven");
    }
    cover_of[c.output] = &c;
  }

  const auto resolve = [&](const std::string& root) -> Lit {
    std::vector<std::string> path{root};
    std::unordered_set<std::string> on_path{root};
    while (!path.empty()) {
      const std::string name = path.back();
      if (sig.count(name) != 0) {
        on_path.erase(name);
        path.pop_back();
        continue;
      }
      const auto it = cover_of.find(name);
      if (it == cover_of.end()) {
        throw std::runtime_error("blif: undriven signal '" + name + "'");
      }
      const Cover& c = *it->second;
      const std::string* pending = nullptr;
      for (const std::string& in : c.inputs) {
        if (sig.count(in) == 0) {
          pending = &in;
          break;
        }
      }
      if (pending) {
        if (on_path.count(*pending) != 0) {
          throw std::runtime_error("blif: combinational cycle through '" +
                                   *pending + "'");
        }
        on_path.insert(*pending);
        path.push_back(*pending);
        continue;
      }
      // SOP -> AIG.
      Lit sum = kFalse;
      for (const std::string& cube : c.rows) {
        Lit prod = kTrue;
        for (std::size_t i = 0; i < cube.size(); ++i) {
          if (cube[i] == '-') continue;
          prod = aig.addAnd(prod, sig.at(c.inputs[i]) ^ (cube[i] == '0'));
        }
        sum = aig.mkOr(sum, prod);
      }
      // Empty cover (no rows) is constant 0 by BLIF convention.
      Lit value = sum;
      if (c.polarity_known && !c.on_set) value = !sum;
      sig[name] = value;
      aig.setSignalName(value, name);
      on_path.erase(name);
      path.pop_back();
    }
    return sig.at(root);
  };

  for (const std::string& out : outputs) {
    aig.addPo(resolve(out), out);
  }
  return aig;
}

std::string writeBlif(const Aig& aig, const std::string& model_name) {
  std::ostringstream os;
  const auto piName = [&](std::uint32_t i) {
    const std::string& n = aig.piName(i);
    return n.empty() ? "pi" + std::to_string(i) : n;
  };
  const auto poName = [&](std::uint32_t i) {
    const std::string& n = aig.poName(i);
    return n.empty() ? "po" + std::to_string(i) : n;
  };
  std::unordered_set<std::string> used;
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) used.insert(piName(i));
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) used.insert(poName(i));
  const auto freshName = [&](std::uint32_t id) {
    std::string name = "n" + std::to_string(id);
    while (used.count(name) != 0) name += "_";
    used.insert(name);
    return name;
  };

  os << ".model " << model_name << "\n.inputs";
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) os << " " << piName(i);
  os << "\n.outputs";
  for (std::uint32_t i = 0; i < aig.numPos(); ++i) os << " " << poName(i);
  os << "\n";

  // Emit live AND nodes as 2-input covers; complemented fanins fold into
  // the cube columns, so no explicit inverters are needed.
  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < aig.numPos(); ++j) roots.push_back(aig.poDriver(j));
  std::vector<std::string> node_name(aig.numNodes());
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) node_name[aig.piVar(i)] = piName(i);
  for (const std::uint32_t var : collectCone(aig, roots)) {
    if (!aig.isAnd(var)) continue;
    node_name[var] = freshName(var);
    const Lit f0 = aig.fanin0(var);
    const Lit f1 = aig.fanin1(var);
    os << ".names " << node_name[f0.var()] << " " << node_name[f1.var()] << " "
       << node_name[var] << "\n";
    os << (f0.complemented() ? "0" : "1") << (f1.complemented() ? "0" : "1")
       << " 1\n";
  }
  for (std::uint32_t j = 0; j < aig.numPos(); ++j) {
    const Lit d = aig.poDriver(j);
    os << ".names ";
    if (d == kFalse || d == kTrue) {
      os << poName(j) << "\n";
      if (d == kTrue) os << "1\n";  // constant-0 cover is empty
    } else {
      os << node_name[d.var()] << " " << poName(j) << "\n"
         << (d.complemented() ? "0" : "1") << " 1\n";
    }
  }
  os << ".end\n";
  return os.str();
}

}  // namespace eco::io
