#pragma once
// Golden-circuit families for the synthetic contest suite.
//
// Each builder returns a self-contained AIG with named PIs ("x0", "x1", …)
// and named POs. Families are chosen to span the structure of the ICCAD'17
// units: arithmetic carry chains, wide comparators, control-style MUX
// trees, ALU slices with shared operand logic, XOR-heavy parity cones, and
// unstructured random logic.

#include <cstdint>

#include "aig/aig.h"
#include "base/rng.h"

namespace eco::benchgen {

/// Ripple-carry adder: 2*bits inputs, bits+1 outputs (sum, carry-out).
Aig makeRippleAdder(std::uint32_t bits);

/// Magnitude comparator: 2*bits inputs, outputs lt / eq / gt.
Aig makeComparator(std::uint32_t bits);

/// `width`-bit 2^sels : 1 multiplexer tree; inputs are the select lines
/// followed by the data words, outputs the selected word.
Aig makeMuxTree(std::uint32_t sels, std::uint32_t width);

/// Small ALU: operands a/b (`bits` wide), 2 op-select bits; op 0 = add,
/// 1 = and, 2 = or, 3 = xor. Outputs `bits` result bits.
Aig makeAlu(std::uint32_t bits);

/// Sliced parity: `bits` inputs, one XOR-parity output per `slice`-bit
/// group plus a global parity output.
Aig makeParity(std::uint32_t bits, std::uint32_t slice);

/// Array multiplier: 2*bits inputs, 2*bits product outputs. Quadratic in
/// `bits` — the hardest family for SAT-based reasoning.
Aig makeMultiplier(std::uint32_t bits);

/// Priority encoder with valid flag: `n` request inputs, ceil(log2 n) index
/// outputs (highest-index active request wins) plus `valid`.
Aig makePriorityEncoder(std::uint32_t n);

/// Random AIG: `pis` inputs, about `ands` AND nodes, `pos` outputs rooted
/// at deep nodes.
Aig makeRandomAig(std::uint32_t pis, std::uint32_t ands, std::uint32_t pos,
                  Rng& rng);

}  // namespace eco::benchgen
