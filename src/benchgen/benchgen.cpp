#include "benchgen/benchgen.h"

#include <algorithm>
#include <unordered_set>

#include "aig/aig_ops.h"
#include "base/check.h"
#include "base/rng.h"
#include "benchgen/families.h"
#include "sim/sim.h"

namespace eco::benchgen {
namespace {

/// True iff cutting node `v` of `g` is observable: replacing it by a free
/// input and toggling that input changes some PO under random patterns.
/// Cheap stuck-at-style fault simulation; random AND-dominated logic masks
/// heavily, so an explicit check is needed to avoid don't-care targets.
bool cutObservable(const Aig& g, std::uint32_t v, Rng& rng) {
  Aig probe;
  VarMap map;
  for (std::uint32_t i = 0; i < g.numPis(); ++i) map[g.piVar(i)] = probe.addPi();
  const Lit t = probe.addPi();
  map[v] = t;
  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < g.numPos(); ++j) roots.push_back(g.poDriver(j));
  const std::vector<Lit> mapped = copyCones(g, roots, map, probe);

  sim::PatternSet base(probe.numPis(), 4);
  base.randomize(rng);
  sim::PatternSet p0 = base, p1 = base;
  const std::uint32_t t_index = probe.numPis() - 1;
  for (std::uint32_t w = 0; w < 4; ++w) {
    p0.of(t_index)[w] = 0;
    p1.of(t_index)[w] = ~std::uint64_t{0};
  }
  const sim::PatternSet v0 = sim::simulateAll(probe, p0);
  const sim::PatternSet v1 = sim::simulateAll(probe, p1);
  // Care mask: patterns where the cut value is observable at some PO.
  std::uint64_t care[4] = {0, 0, 0, 0};
  for (const Lit r : mapped) {
    for (std::uint32_t w = 0; w < 4; ++w) {
      care[w] |= v0.of(r.var())[w] ^ v1.of(r.var())[w];
    }
  }
  // Require the *needed* patch value (the golden node function) to take
  // both polarities inside the care set, so a constant patch cannot work
  // and the instance exercises real synthesis.
  sim::PatternSet gx(g.numPis(), 4);
  for (std::uint32_t i = 0; i < g.numPis(); ++i) {
    for (std::uint32_t w = 0; w < 4; ++w) gx.of(i)[w] = base.of(i)[w];
  }
  const sim::PatternSet gv = sim::simulateAll(g, gx);
  const auto vv = gv.of(v);
  bool need1 = false, need0 = false;
  for (std::uint32_t w = 0; w < 4; ++w) {
    if ((care[w] & vv[w]) != 0) need1 = true;
    if ((care[w] & ~vv[w]) != 0) need0 = true;
  }
  return need1 && need0;
}

/// Picks `n` distinct AND nodes as rectification points, respecting the
/// depth band of the spec. Only nodes inside the PO cones are eligible —
/// cutting dead logic would yield trivial don't-care patches.
std::vector<std::uint32_t> pickTargets(const Aig& golden, const UnitSpec& spec,
                                       Rng& rng) {
  const std::vector<std::uint32_t> d = levels(golden);
  std::uint32_t max_depth = 0;
  for (const std::uint32_t v : d) max_depth = std::max(max_depth, v);
  const auto min_depth =
      static_cast<std::uint32_t>(spec.target_depth_frac * max_depth);

  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < golden.numPos(); ++j) {
    roots.push_back(golden.poDriver(j));
  }
  const std::vector<std::uint32_t> cone = collectCone(golden, roots);
  std::vector<bool> live(golden.numNodes(), false);
  for (const std::uint32_t v : cone) live[v] = true;

  // Require a balanced function: cutting a near-constant node yields a
  // trivial constant patch, which tests nothing.
  sim::PatternSet patterns(golden.numPis(), 4);
  patterns.randomize(rng);
  const sim::PatternSet values = sim::simulateAll(golden, patterns);
  const auto balanced = [&](std::uint32_t v) {
    std::uint32_t ones = 0;
    for (const std::uint64_t w : values.of(v)) {
      ones += static_cast<std::uint32_t>(__builtin_popcountll(w));
    }
    const std::uint32_t total = 64 * values.wordsPerSignal();
    return ones >= total / 8 && ones <= total - total / 8;
  };

  std::vector<std::uint32_t> eligible;
  for (std::uint32_t v = 1; v < golden.numNodes(); ++v) {
    if (golden.isAnd(v) && live[v] && d[v] >= min_depth && balanced(v)) {
      eligible.push_back(v);
    }
  }
  if (eligible.size() < spec.num_targets) {
    // Relax the depth and balance bands rather than fail.
    eligible.clear();
    for (std::uint32_t v = 1; v < golden.numNodes(); ++v) {
      if (golden.isAnd(v) && live[v]) eligible.push_back(v);
    }
  }
  ECO_CHECK_MSG(eligible.size() >= spec.num_targets,
                "unit spec asks for more targets than eligible nodes");
  // Shuffle, then greedily take structurally independent nodes: a node in
  // another pick's fanin cone would lose its only path to the outputs when
  // that pick is cut, leaving a pure don't-care target.
  for (std::size_t i = 0; i + 1 < eligible.size(); ++i) {
    const std::uint64_t j = i + rng.below(eligible.size() - i);
    std::swap(eligible[i], eligible[j]);
  }
  std::vector<std::uint32_t> picked;
  std::vector<bool> in_picked_cone(golden.numNodes(), false);
  for (const std::uint32_t v : eligible) {
    if (picked.size() >= spec.num_targets) break;
    if (in_picked_cone[v]) continue;
    const std::vector<Lit> root{Lit::fromVar(v, false)};
    const std::vector<std::uint32_t> cone = collectCone(golden, root);
    bool clash = false;
    for (const std::uint32_t u : cone) {
      for (const std::uint32_t p : picked) {
        if (u == p) clash = true;
      }
    }
    if (clash) continue;
    if (!cutObservable(golden, v, rng)) continue;
    picked.push_back(v);
    for (const std::uint32_t u : cone) in_picked_cone[u] = true;
    in_picked_cone[v] = true;
  }
  // If independence is impossible (tiny circuits), fill with any remaining
  // eligible nodes.
  for (const std::uint32_t v : eligible) {
    if (picked.size() >= spec.num_targets) break;
    if (std::find(picked.begin(), picked.end(), v) == picked.end()) {
      picked.push_back(v);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace

Aig buildGolden(const UnitSpec& spec) {
  Rng rng(spec.seed * 0x9E3779B97F4A7C15ULL + 17);
  switch (spec.family) {
    case Family::Adder:
      return makeRippleAdder(spec.size_param);
    case Family::Comparator:
      return makeComparator(spec.size_param);
    case Family::MuxTree:
      return makeMuxTree(spec.size_param, 3);
    case Family::Alu:
      return makeAlu(spec.size_param);
    case Family::Parity:
      return makeParity(spec.size_param, 4);
    case Family::Random:
      return makeRandomAig(8 + spec.size_param / 64, spec.size_param, 4, rng);
    case Family::Multiplier:
      return makeMultiplier(spec.size_param);
    case Family::PriorityEnc:
      return makePriorityEncoder(spec.size_param);
  }
  ECO_CHECK(false);
  return Aig();
}

namespace {

/// Builds the faulty circuit: golden copied with target nodes cut to
/// floating pseudo-PIs and occasional redundant re-synthesis.
Aig buildFaulty(const Aig& g, const UnitSpec& spec,
                const std::vector<std::uint32_t>& target_nodes, Rng& rng) {
  const std::unordered_set<std::uint32_t> target_set(target_nodes.begin(),
                                                     target_nodes.end());
  Aig f;
  VarMap map;
  for (std::uint32_t i = 0; i < g.numPis(); ++i) {
    map[g.piVar(i)] = f.addPi(g.piName(i));
  }
  std::vector<Lit> t_pis;
  for (std::uint32_t k = 0; k < target_nodes.size(); ++k) {
    t_pis.push_back(f.addPi("t" + std::to_string(k)));
  }

  // Copy golden structure node by node (topological order), cutting target
  // nodes and occasionally re-synthesizing with redundant structure so the
  // two circuits are not graph-identical.
  std::vector<Lit> pool;  // candidate "other" signals for redundancy wraps
  for (std::uint32_t i = 0; i < f.numPis(); ++i) pool.push_back(f.piLit(i));
  std::uint32_t t_index = 0;
  for (std::uint32_t v = 1; v < g.numNodes(); ++v) {
    if (!g.isAnd(v)) continue;
    if (target_set.count(v) != 0) {
      map[v] = t_pis[t_index++];
      continue;
    }
    const Lit f0 = g.fanin0(v);
    const Lit f1 = g.fanin1(v);
    const Lit a = map.at(f0.var()) ^ f0.complemented();
    const Lit b = map.at(f1.var()) ^ f1.complemented();
    Lit n = f.addAnd(a, b);
    if (rng.chance(spec.restructure_pct, 100) && !pool.empty()) {
      // Functionally redundant re-synthesis: n == n | (n & other)
      // or n == n & (n | other). Gives FRAIG real work to prove.
      const Lit other = pool[rng.below(pool.size())] ^ rng.chance(1, 2);
      n = rng.chance(1, 2) ? f.mkOr(n, f.addAnd(n, other))
                           : f.addAnd(n, f.mkOr(n, other));
    }
    map[v] = n;
    if (n != kFalse && n != kTrue && !f.isPi(n.var())) pool.push_back(n);
  }
  for (std::uint32_t j = 0; j < g.numPos(); ++j) {
    const Lit d = g.poDriver(j);
    f.addPo(map.at(d.var()) ^ d.complemented(), g.poName(j));
  }
  return f;
}

/// True iff flipping each target changes some PO under at least one of the
/// random patterns — i.e. no target is a pure don't-care.
bool allTargetsObservable(const Aig& f, std::uint32_t num_x, Rng& rng) {
  const std::uint32_t alpha = f.numPis() - num_x;
  sim::PatternSet base(f.numPis(), 4);
  base.randomize(rng);
  for (std::uint32_t k = 0; k < alpha; ++k) {
    sim::PatternSet p0 = base, p1 = base;
    for (std::uint32_t w = 0; w < 4; ++w) {
      p0.of(num_x + k)[w] = 0;
      p1.of(num_x + k)[w] = ~std::uint64_t{0};
    }
    const sim::PatternSet v0 = sim::simulateAll(f, p0);
    const sim::PatternSet v1 = sim::simulateAll(f, p1);
    bool observable = false;
    for (std::uint32_t j = 0; j < f.numPos() && !observable; ++j) {
      const Lit d = f.poDriver(j);
      for (std::uint32_t w = 0; w < 4; ++w) {
        if (v0.of(d.var())[w] != v1.of(d.var())[w]) {
          observable = true;
          break;
        }
      }
    }
    if (!observable) return false;
  }
  return true;
}

}  // namespace

EcoInstance generateUnit(const UnitSpec& spec) {
  EcoInstance inst;
  inst.name = spec.name;
  Rng rng(spec.seed);
  inst.golden = buildGolden(spec);
  const Aig& g = inst.golden;
  inst.num_x = g.numPis();

  // Retry target placement until every target is observable under random
  // simulation (heavily masked cuts make trivially constant patches).
  for (int attempt = 0; attempt < 12; ++attempt) {
    const std::vector<std::uint32_t> target_nodes = pickTargets(g, spec, rng);
    inst.faulty = buildFaulty(g, spec, target_nodes, rng);
    if (allTargetsObservable(inst.faulty, inst.num_x, rng)) break;
  }
  Aig& f = inst.faulty;

  // Name every internal AND node of the faulty circuit; these names carry
  // the weights and are the patch-base namespace.
  for (std::uint32_t v = 1; v < f.numNodes(); ++v) {
    if (f.isAnd(v)) {
      f.setSignalName(Lit::fromVar(v, false), "w" + std::to_string(v));
    }
  }

  // Weight profile.
  for (std::uint32_t i = 0; i < f.numPis(); ++i) {
    inst.weights[f.piName(i)] =
        spec.pi_weight + rng.below(static_cast<std::uint64_t>(
                             std::max(1.0, spec.weight_jitter * 4)));
  }
  for (const auto& [name, lit] : f.namedSignals()) {
    (void)lit;
    inst.weights[name] =
        spec.internal_weight +
        rng.below(static_cast<std::uint64_t>(std::max(1.0, spec.weight_jitter)));
  }
  inst.default_weight = spec.internal_weight;
  return inst;
}

std::vector<UnitSpec> contestSuite() {
  std::vector<UnitSpec> units;
  const auto add = [&](UnitSpec u) { units.push_back(std::move(u)); };

  add({.name = "unit01", .family = Family::Adder, .size_param = 4,
       .num_targets = 1, .seed = 101});
  add({.name = "unit02", .family = Family::Comparator, .size_param = 6,
       .num_targets = 1, .seed = 102});
  add({.name = "unit03", .family = Family::MuxTree, .size_param = 3,
       .num_targets = 1, .seed = 103, .pi_weight = 8});
  add({.name = "unit04", .family = Family::Alu, .size_param = 4,
       .num_targets = 1, .seed = 104});
  add({.name = "unit05", .family = Family::Adder, .size_param = 12,
       .num_targets = 2, .seed = 105, .target_depth_frac = 0.3});
  add({.name = "unit06", .family = Family::Alu, .size_param = 8,
       .num_targets = 2, .seed = 106, .target_depth_frac = 0.6,
       .pi_weight = 40, .internal_weight = 1});  // difficult
  add({.name = "unit07", .family = Family::Parity, .size_param = 16,
       .num_targets = 1, .seed = 107, .pi_weight = 12});
  add({.name = "unit08", .family = Family::Random, .size_param = 300,
       .num_targets = 1, .seed = 108});
  add({.name = "unit09", .family = Family::Comparator, .size_param = 10,
       .num_targets = 4, .seed = 109});
  add({.name = "unit10", .family = Family::Random, .size_param = 800,
       .num_targets = 2, .seed = 110, .target_depth_frac = 0.5,
       .pi_weight = 16});  // difficult
  add({.name = "unit11", .family = Family::Alu, .size_param = 10,
       .num_targets = 8, .seed = 111, .target_depth_frac = 0.4,
       .pi_weight = 24});  // difficult
  add({.name = "unit12", .family = Family::MuxTree, .size_param = 4,
       .num_targets = 1, .seed = 112});
  add({.name = "unit13", .family = Family::Adder, .size_param = 16,
       .num_targets = 1, .seed = 113, .pi_weight = 120,
       .internal_weight = 30, .weight_jitter = 8});
  add({.name = "unit14", .family = Family::Random, .size_param = 500,
       .num_targets = 12, .seed = 114});
  add({.name = "unit15", .family = Family::Comparator, .size_param = 8,
       .num_targets = 1, .seed = 115, .target_depth_frac = 0.5,
       .pi_weight = 10});
  add({.name = "unit16", .family = Family::PriorityEnc, .size_param = 12,
       .num_targets = 2, .seed = 116, .pi_weight = 14});
  add({.name = "unit17", .family = Family::Parity, .size_param = 24,
       .num_targets = 8, .seed = 117});
  add({.name = "unit18", .family = Family::Multiplier, .size_param = 4,
       .num_targets = 1, .seed = 118, .target_depth_frac = 0.4});
  add({.name = "unit19", .family = Family::Random, .size_param = 1200,
       .num_targets = 4, .seed = 119, .target_depth_frac = 0.6,
       .pi_weight = 60, .internal_weight = 2});  // most difficult
  add({.name = "unit20", .family = Family::Alu, .size_param = 6,
       .num_targets = 4, .seed = 120});
  return units;
}

}  // namespace eco::benchgen
