#pragma once
// Seeded fault injection for the fuzzing harness (src/qa).
//
// generateUnit always produces instances that are rectifiable by
// construction — good for regression suites, useless for probing the
// engine's unrectifiability reasoning or its agreement across
// configurations. This layer draws a random generation spec from a single
// seed and mutates the clean instance with one of several fault modes:
//
//   CleanCut        — the plain generateUnit cut (rectifiable)
//   GateFlip        — additionally complements one AND fanin edge of the
//                     faulty circuit; rectifiability becomes unknown
//   WrongPolarity   — every fanout of each target pseudo-PI reads it
//                     complemented (rectifiable: patches invert)
//   DeadTarget      — one extra floating pseudo-PI reaching no output
//                     (rectifiable: its patch is arbitrary)
//   MultiClusterTile— a disjoint tiling of independent sub-units sharing
//                     nothing; exercises clustering and the parallel
//                     per-cluster paths (rectifiable)
//
// Everything is deterministic in the seed, which is what makes shrinking
// (src/qa/shrink) and corpus replay possible.

#include <cstdint>
#include <string>

#include "benchgen/benchgen.h"
#include "eco/instance.h"

namespace eco::benchgen {

enum class FaultMode : std::uint8_t {
  CleanCut = 0,
  GateFlip,
  WrongPolarity,
  DeadTarget,
  MultiClusterTile,
};

const char* faultModeName(FaultMode mode);

/// Generation parameters of one fuzz instance. The shrinker mutates these
/// fields, so keep them individually reducible.
struct FuzzSpec {
  std::uint64_t seed = 1;
  FaultMode mode = FaultMode::CleanCut;
  Family family = Family::Adder;
  std::uint32_t size_param = 4;
  std::uint32_t num_targets = 1;
  std::uint32_t num_tiles = 1;  ///< > 1 only meaningful for MultiClusterTile
  std::uint32_t restructure_pct = 10;
  double target_depth_frac = 0.0;
};

/// One-line human-readable description (for logs and reproducer metadata).
std::string describeSpec(const FuzzSpec& spec);

/// Draws a spec from the fuzz distribution: small units across all
/// families, 1–4 targets, all fault modes. Deterministic in `seed`.
FuzzSpec randomFuzzSpec(std::uint64_t seed);

struct FuzzInstance {
  FuzzSpec spec;
  EcoInstance instance;
  /// True when the construction guarantees a patch exists; false means
  /// rectifiability is unknown and only cross-configuration agreement and
  /// witness validity can be checked.
  bool known_rectifiable = true;
};

/// Generates the instance of a spec (deterministic).
FuzzInstance generateFuzzInstance(const FuzzSpec& spec);

/// Cofactors X input `x_index` of both circuits to `value` and drops the
/// input. Preserves rectifiability (any patch restricts), PO counts, and
/// signal names of surviving nodes. The shrinker's "drop PIs" move.
EcoInstance cofactorPi(const EcoInstance& instance, std::uint32_t x_index,
                       bool value);

}  // namespace eco::benchgen
