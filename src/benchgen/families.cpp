#include "benchgen/families.h"

#include <algorithm>
#include <string>
#include <vector>

#include "base/check.h"
#include "sim/sim.h"

namespace eco::benchgen {
namespace {

std::vector<Lit> addInputs(Aig& aig, std::uint32_t n, std::uint32_t& counter) {
  std::vector<Lit> pis;
  pis.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    pis.push_back(aig.addPi("x" + std::to_string(counter++)));
  }
  return pis;
}

}  // namespace

Aig makeRippleAdder(std::uint32_t bits) {
  ECO_CHECK(bits >= 1);
  Aig aig;
  std::uint32_t c = 0;
  const std::vector<Lit> a = addInputs(aig, bits, c);
  const std::vector<Lit> b = addInputs(aig, bits, c);
  Lit carry = kFalse;
  for (std::uint32_t i = 0; i < bits; ++i) {
    const Lit s = aig.mkXor(aig.mkXor(a[i], b[i]), carry);
    const Lit g = aig.addAnd(a[i], b[i]);
    const Lit p = aig.addAnd(aig.mkXor(a[i], b[i]), carry);
    carry = aig.mkOr(g, p);
    aig.addPo(s, "sum" + std::to_string(i));
  }
  aig.addPo(carry, "cout");
  return aig;
}

Aig makeComparator(std::uint32_t bits) {
  ECO_CHECK(bits >= 1);
  Aig aig;
  std::uint32_t c = 0;
  const std::vector<Lit> a = addInputs(aig, bits, c);
  const std::vector<Lit> b = addInputs(aig, bits, c);
  // MSB-first magnitude comparison.
  Lit lt = kFalse;
  Lit eq = kTrue;
  for (std::uint32_t i = bits; i-- > 0;) {
    const Lit bit_lt = aig.addAnd(!a[i], b[i]);
    const Lit bit_eq = aig.mkEquiv(a[i], b[i]);
    lt = aig.mkOr(lt, aig.addAnd(eq, bit_lt));
    eq = aig.addAnd(eq, bit_eq);
  }
  aig.addPo(lt, "lt");
  aig.addPo(eq, "eq");
  aig.addPo(!aig.mkOr(lt, eq), "gt");
  return aig;
}

Aig makeMuxTree(std::uint32_t sels, std::uint32_t width) {
  ECO_CHECK(sels >= 1 && sels <= 8 && width >= 1);
  Aig aig;
  std::uint32_t c = 0;
  const std::vector<Lit> sel = addInputs(aig, sels, c);
  const std::uint32_t words = 1u << sels;
  std::vector<std::vector<Lit>> data(words);
  for (std::uint32_t wd = 0; wd < words; ++wd) data[wd] = addInputs(aig, width, c);

  for (std::uint32_t bit = 0; bit < width; ++bit) {
    std::vector<Lit> level;
    for (std::uint32_t wd = 0; wd < words; ++wd) level.push_back(data[wd][bit]);
    for (std::uint32_t s = 0; s < sels; ++s) {
      std::vector<Lit> nxt;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        nxt.push_back(aig.mkMux(sel[s], level[i + 1], level[i]));
      }
      level = std::move(nxt);
    }
    aig.addPo(level[0], "y" + std::to_string(bit));
  }
  return aig;
}

Aig makeAlu(std::uint32_t bits) {
  ECO_CHECK(bits >= 1);
  Aig aig;
  std::uint32_t c = 0;
  const std::vector<Lit> a = addInputs(aig, bits, c);
  const std::vector<Lit> b = addInputs(aig, bits, c);
  const std::vector<Lit> op = addInputs(aig, 2, c);

  Lit carry = kFalse;
  for (std::uint32_t i = 0; i < bits; ++i) {
    const Lit sum = aig.mkXor(aig.mkXor(a[i], b[i]), carry);
    carry = aig.mkOr(aig.addAnd(a[i], b[i]),
                     aig.addAnd(aig.mkXor(a[i], b[i]), carry));
    const Lit and_bit = aig.addAnd(a[i], b[i]);
    const Lit or_bit = aig.mkOr(a[i], b[i]);
    const Lit xor_bit = aig.mkXor(a[i], b[i]);
    const Lit lo = aig.mkMux(op[0], and_bit, sum);      // op1=0: add/and
    const Lit hi = aig.mkMux(op[0], xor_bit, or_bit);   // op1=1: or/xor
    aig.addPo(aig.mkMux(op[1], hi, lo), "r" + std::to_string(i));
  }
  return aig;
}

Aig makeParity(std::uint32_t bits, std::uint32_t slice) {
  ECO_CHECK(bits >= 2 && slice >= 2);
  Aig aig;
  std::uint32_t c = 0;
  const std::vector<Lit> x = addInputs(aig, bits, c);
  Lit total = kFalse;
  std::uint32_t group = 0;
  for (std::uint32_t i = 0; i < bits; i += slice) {
    Lit p = kFalse;
    for (std::uint32_t j = i; j < std::min(bits, i + slice); ++j) {
      p = aig.mkXor(p, x[j]);
    }
    aig.addPo(p, "p" + std::to_string(group++));
    total = aig.mkXor(total, p);
  }
  aig.addPo(total, "ptotal");
  return aig;
}

Aig makeMultiplier(std::uint32_t bits) {
  ECO_CHECK(bits >= 1);
  Aig aig;
  std::uint32_t c = 0;
  const std::vector<Lit> a = addInputs(aig, bits, c);
  const std::vector<Lit> b = addInputs(aig, bits, c);
  // Shift-and-add array of partial products.
  std::vector<Lit> acc(2 * bits, kFalse);
  for (std::uint32_t i = 0; i < bits; ++i) {
    // Row i: (a & b[i]) << i added into the accumulator.
    Lit carry = kFalse;
    for (std::uint32_t j = 0; j < bits; ++j) {
      const Lit pp = aig.addAnd(a[j], b[i]);
      const Lit x = acc[i + j];
      const Lit sum = aig.mkXor(aig.mkXor(x, pp), carry);
      carry = aig.mkOr(aig.addAnd(x, pp),
                       aig.addAnd(aig.mkXor(x, pp), carry));
      acc[i + j] = sum;
    }
    // Ripple the final carry upward.
    for (std::uint32_t j = i + bits; j < 2 * bits && carry != kFalse; ++j) {
      const Lit x = acc[j];
      acc[j] = aig.mkXor(x, carry);
      carry = aig.addAnd(x, carry);
    }
  }
  for (std::uint32_t j = 0; j < 2 * bits; ++j) {
    aig.addPo(acc[j], "p" + std::to_string(j));
  }
  return aig;
}

Aig makePriorityEncoder(std::uint32_t n) {
  ECO_CHECK(n >= 2);
  Aig aig;
  std::uint32_t c = 0;
  const std::vector<Lit> req = addInputs(aig, n, c);
  std::uint32_t idx_bits = 0;
  while ((1u << idx_bits) < n) ++idx_bits;

  // grant[i]: request i active and no higher request active.
  Lit any_higher = kFalse;
  std::vector<Lit> grant(n);
  for (std::uint32_t i = n; i-- > 0;) {
    // Iterate from the highest priority (index n-1) downwards.
    const std::uint32_t hi = i;
    grant[hi] = aig.addAnd(req[hi], !any_higher);
    any_higher = aig.mkOr(any_higher, req[hi]);
  }
  for (std::uint32_t b = 0; b < idx_bits; ++b) {
    Lit bit = kFalse;
    for (std::uint32_t i = 0; i < n; ++i) {
      if ((i >> b) & 1) bit = aig.mkOr(bit, grant[i]);
    }
    aig.addPo(bit, "idx" + std::to_string(b));
  }
  aig.addPo(any_higher, "valid");
  return aig;
}

Aig makeRandomAig(std::uint32_t pis, std::uint32_t ands, std::uint32_t pos,
                  Rng& rng) {
  ECO_CHECK(pis >= 2 && pos >= 1);
  Aig aig;
  std::uint32_t c = 0;
  addInputs(aig, pis, c);
  std::vector<Lit> pool;
  for (std::uint32_t i = 0; i < pis; ++i) pool.push_back(aig.piLit(i));

  for (std::uint32_t i = 0; i < ands; ++i) {
    // Bias toward recent nodes so depth grows.
    const auto pick = [&]() -> Lit {
      const std::uint64_t n = pool.size();
      const std::uint64_t idx =
          rng.chance(1, 2) ? n - 1 - rng.below(std::min<std::uint64_t>(n, 16))
                           : rng.below(n);
      return pool[idx] ^ rng.chance(1, 2);
    };
    const Lit v = aig.addAnd(pick(), pick());
    if (v != kFalse && v != kTrue) pool.push_back(v);
  }
  // Root the outputs at deep nodes with balanced functions; near-constant
  // roots would make the whole instance trivially patchable.
  sim::PatternSet patterns(pis, 4);
  patterns.randomize(rng);
  const sim::PatternSet values = sim::simulateAll(aig, patterns);
  const auto balance = [&](Lit l) {
    std::uint32_t ones = 0;
    for (const std::uint64_t w : values.of(l.var())) {
      ones += static_cast<std::uint32_t>(__builtin_popcountll(w));
    }
    const std::uint32_t total = 64 * values.wordsPerSignal();
    return std::min(ones, total - ones);
  };
  std::vector<Lit> ranked(pool.begin() + pis, pool.end());
  std::sort(ranked.begin(), ranked.end(), [&](Lit a, Lit b) {
    const auto ba = balance(a), bb = balance(b);
    // Prefer balanced then deep (higher var index = later = deeper-ish).
    return ba != bb ? ba > bb : a.var() > b.var();
  });
  for (std::uint32_t j = 0; j < pos && j < ranked.size(); ++j) {
    aig.addPo(ranked[j] ^ rng.chance(1, 2), "o" + std::to_string(j));
  }
  return aig;
}

}  // namespace eco::benchgen
