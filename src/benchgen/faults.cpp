#include "benchgen/faults.h"

#include <algorithm>

#include "aig/aig_ops.h"
#include "base/check.h"
#include "base/rng.h"

namespace eco::benchgen {
namespace {

/// Node-by-node copy of `src` into `dst`. PI k must already exist in `dst`
/// and is seeded to `pi_map[k]` (complemented seeds implement polarity
/// faults). When `flip_node` names an AND node of `src`, its fanin0 edge is
/// copied complemented. PO drivers and named internal signals are
/// re-registered (names of nodes that constant-fold away are dropped);
/// `prefix` is prepended to PO and internal-signal names for tiling.
void copyWithEdits(const Aig& src, Aig& dst, std::span<const Lit> pi_map,
                   std::uint32_t flip_node, const std::string& prefix) {
  VarMap map;
  map[0] = kFalse;  // constant-driven POs in tiny/shrunk units
  for (std::uint32_t i = 0; i < src.numPis(); ++i) map[src.piVar(i)] = pi_map[i];
  for (std::uint32_t v = 1; v < src.numNodes(); ++v) {
    if (!src.isAnd(v)) continue;
    const Lit f0 = src.fanin0(v);
    const Lit f1 = src.fanin1(v);
    Lit a = map.at(f0.var()) ^ f0.complemented();
    const Lit b = map.at(f1.var()) ^ f1.complemented();
    if (v == flip_node) a = !a;
    map[v] = dst.addAnd(a, b);
  }
  for (std::uint32_t j = 0; j < src.numPos(); ++j) {
    const Lit d = src.poDriver(j);
    dst.addPo(map.at(d.var()) ^ d.complemented(), prefix + src.poName(j));
  }
  for (const auto& [name, lit] : src.namedSignals()) {
    const auto it = map.find(lit.var());
    if (it == map.end()) continue;
    const Lit nl = it->second ^ lit.complemented();
    if (nl == kTrue || nl == kFalse || !dst.isAnd(nl.var())) continue;
    dst.setSignalName(nl, prefix + name);
  }
}

UnitSpec unitFromFuzz(const FuzzSpec& fs, std::uint64_t seed_salt,
                      const std::string& name) {
  UnitSpec u;
  u.name = name;
  u.family = fs.family;
  u.size_param = fs.size_param;
  u.num_targets = fs.num_targets;
  u.seed = fs.seed + seed_salt;
  u.target_depth_frac = fs.target_depth_frac;
  u.restructure_pct = fs.restructure_pct;
  // The shrinker drives size_param toward the family minimum; clamp the
  // target count to the eligible (live AND) nodes so generateUnit never
  // trips its more-targets-than-nodes invariant.
  std::vector<Lit> roots;
  const Aig golden = buildGolden(u);
  for (std::uint32_t j = 0; j < golden.numPos(); ++j) {
    roots.push_back(golden.poDriver(j));
  }
  std::uint32_t live_ands = 0;
  for (const std::uint32_t v : collectCone(golden, roots)) {
    if (golden.isAnd(v)) ++live_ands;
  }
  u.num_targets = std::min(u.num_targets, std::max(1u, live_ands));
  return u;
}

/// Rebuilds `inst.faulty` with per-target-PI polarity seeds and an optional
/// fanin flip, preserving names. X PIs keep identity.
void rewriteFaulty(EcoInstance& inst, bool complement_targets,
                   std::uint32_t flip_node) {
  const Aig src = std::move(inst.faulty);
  Aig dst;
  std::vector<Lit> pi_map;
  for (std::uint32_t i = 0; i < src.numPis(); ++i) {
    const Lit pi = dst.addPi(src.piName(i));
    pi_map.push_back(complement_targets && i >= inst.num_x ? !pi : pi);
  }
  copyWithEdits(src, dst, pi_map, flip_node, "");
  inst.faulty = std::move(dst);
}

/// Picks a live AND node of the faulty circuit (inside some PO cone) for a
/// fanin flip; returns 0 when there is none.
std::uint32_t pickFlipNode(const Aig& f, Rng& rng) {
  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < f.numPos(); ++j) roots.push_back(f.poDriver(j));
  std::vector<std::uint32_t> ands;
  for (const std::uint32_t v : collectCone(f, roots)) {
    if (f.isAnd(v)) ands.push_back(v);
  }
  if (ands.empty()) return 0;
  return ands[rng.below(ands.size())];
}

/// Disjoint tiling: concatenates `parts` into one instance with prefixed
/// namespaces. Faulty PI layout is all X inputs (tile order) followed by
/// all targets, as EcoInstance requires.
EcoInstance tileInstances(const std::vector<EcoInstance>& parts,
                          const std::string& name) {
  EcoInstance out;
  out.name = name;

  // Combined PI frames, X first then targets.
  std::vector<std::vector<Lit>> f_pi_map(parts.size());
  std::vector<std::vector<Lit>> g_pi_map(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const std::string prefix = "u" + std::to_string(p) + "_";
    f_pi_map[p].resize(parts[p].faulty.numPis());
    g_pi_map[p].resize(parts[p].golden.numPis());
    for (std::uint32_t i = 0; i < parts[p].num_x; ++i) {
      const std::string pi_name = prefix + parts[p].faulty.piName(i);
      f_pi_map[p][i] = out.faulty.addPi(pi_name);
      g_pi_map[p][i] = out.golden.addPi(pi_name);
    }
  }
  out.num_x = out.faulty.numPis();
  std::uint32_t t_global = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (std::uint32_t k = 0; k < parts[p].numTargets(); ++k) {
      f_pi_map[p][parts[p].targetPi(k)] =
          out.faulty.addPi("t" + std::to_string(t_global++));
    }
  }

  for (std::size_t p = 0; p < parts.size(); ++p) {
    const std::string prefix = "u" + std::to_string(p) + "_";
    copyWithEdits(parts[p].faulty, out.faulty, f_pi_map[p], 0, prefix);
    copyWithEdits(parts[p].golden, out.golden, g_pi_map[p], 0, prefix);
    for (const auto& [sig, w] : parts[p].weights) out.weights[prefix + sig] = w;
    out.default_weight = parts[p].default_weight;
  }
  return out;
}

}  // namespace

const char* faultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::CleanCut: return "clean-cut";
    case FaultMode::GateFlip: return "gate-flip";
    case FaultMode::WrongPolarity: return "wrong-polarity";
    case FaultMode::DeadTarget: return "dead-target";
    case FaultMode::MultiClusterTile: return "multi-cluster-tile";
  }
  return "?";
}

std::string describeSpec(const FuzzSpec& spec) {
  std::string s = "seed=" + std::to_string(spec.seed);
  s += " mode=" + std::string(faultModeName(spec.mode));
  s += " family=" + std::to_string(static_cast<int>(spec.family));
  s += " size=" + std::to_string(spec.size_param);
  s += " targets=" + std::to_string(spec.num_targets);
  if (spec.num_tiles > 1) s += " tiles=" + std::to_string(spec.num_tiles);
  s += " restructure=" + std::to_string(spec.restructure_pct);
  s += " depth=" + std::to_string(spec.target_depth_frac);
  return s;
}

FuzzSpec randomFuzzSpec(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x51CA7EULL);
  FuzzSpec spec;
  spec.seed = seed;

  struct FamilyRange {
    Family family;
    std::uint32_t lo, hi;
  };
  // Small units only: the harness runs thousands of instances per sweep.
  static constexpr FamilyRange kFamilies[] = {
      {Family::Adder, 2, 6},        {Family::Comparator, 2, 8},
      {Family::MuxTree, 2, 3},      {Family::Alu, 2, 4},
      {Family::Parity, 3, 10},      {Family::Random, 40, 160},
      {Family::Multiplier, 2, 3},   {Family::PriorityEnc, 3, 10},
  };
  const FamilyRange& fr = kFamilies[rng.below(std::size(kFamilies))];
  spec.family = fr.family;
  spec.size_param = static_cast<std::uint32_t>(rng.range(fr.lo, fr.hi));
  spec.num_targets = static_cast<std::uint32_t>(
      rng.range(1, spec.family == Family::Random ? 4 : 3));
  spec.restructure_pct = static_cast<std::uint32_t>(rng.below(31));
  const double depths[] = {0.0, 0.0, 0.3, 0.5};
  spec.target_depth_frac = depths[rng.below(std::size(depths))];

  const std::uint64_t roll = rng.below(100);
  if (roll < 30) {
    spec.mode = FaultMode::CleanCut;
  } else if (roll < 50) {
    spec.mode = FaultMode::GateFlip;
  } else if (roll < 70) {
    spec.mode = FaultMode::WrongPolarity;
  } else if (roll < 80) {
    spec.mode = FaultMode::DeadTarget;
  } else {
    spec.mode = FaultMode::MultiClusterTile;
    spec.num_tiles = static_cast<std::uint32_t>(rng.range(2, 3));
  }
  return spec;
}

FuzzInstance generateFuzzInstance(const FuzzSpec& spec) {
  FuzzInstance out;
  out.spec = spec;
  Rng rng(spec.seed ^ 0xF00DF00DULL);
  const std::string name =
      "fuzz-" + std::to_string(spec.seed) + "-" + faultModeName(spec.mode);

  if (spec.mode == FaultMode::MultiClusterTile) {
    std::vector<EcoInstance> parts;
    const std::uint32_t tiles = std::max(1u, spec.num_tiles);
    for (std::uint32_t p = 0; p < tiles; ++p) {
      FuzzSpec part = spec;
      // Vary the tiles so clusters differ in family and difficulty.
      if (p > 0) {
        const FuzzSpec var = randomFuzzSpec(spec.seed * 1000003ULL + p);
        part.family = var.family;
        part.size_param = var.size_param;
        part.num_targets = var.num_targets;
      }
      parts.push_back(
          generateUnit(unitFromFuzz(part, p * 77ULL, "tile" + std::to_string(p))));
    }
    out.instance = tileInstances(parts, name);
    out.known_rectifiable = true;
    return out;
  }

  out.instance = generateUnit(unitFromFuzz(spec, 0, name));
  out.instance.name = name;
  switch (spec.mode) {
    case FaultMode::CleanCut:
    case FaultMode::MultiClusterTile:
      break;
    case FaultMode::WrongPolarity:
      rewriteFaulty(out.instance, /*complement_targets=*/true, /*flip_node=*/0);
      break;
    case FaultMode::GateFlip: {
      const std::uint32_t node = pickFlipNode(out.instance.faulty, rng);
      if (node != 0) {
        rewriteFaulty(out.instance, /*complement_targets=*/false, node);
        out.known_rectifiable = false;  // unknown, not necessarily irreparable
      }
      break;
    }
    case FaultMode::DeadTarget: {
      Aig& f = out.instance.faulty;
      f.addPi("t" + std::to_string(out.instance.numTargets()));
      break;
    }
  }
  ECO_CHECK(out.instance.numTargets() >= 1);
  return out;
}

EcoInstance cofactorPi(const EcoInstance& inst, std::uint32_t x_index,
                       bool value) {
  ECO_CHECK(x_index < inst.num_x);
  EcoInstance out;
  out.name = inst.name;
  out.num_x = inst.num_x - 1;
  out.weights = inst.weights;
  out.default_weight = inst.default_weight;
  const Lit constant = value ? kTrue : kFalse;

  std::vector<Lit> f_map;
  for (std::uint32_t i = 0; i < inst.faulty.numPis(); ++i) {
    f_map.push_back(i == x_index ? constant
                                 : out.faulty.addPi(inst.faulty.piName(i)));
  }
  copyWithEdits(inst.faulty, out.faulty, f_map, 0, "");

  std::vector<Lit> g_map;
  for (std::uint32_t i = 0; i < inst.golden.numPis(); ++i) {
    g_map.push_back(i == x_index ? constant
                                 : out.golden.addPi(inst.golden.piName(i)));
  }
  copyWithEdits(inst.golden, out.golden, g_map, 0, "");
  return out;
}

}  // namespace eco::benchgen
