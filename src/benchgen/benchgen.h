#pragma once
// Synthetic ECO benchmark generation (the contest-suite substitution; see
// DESIGN.md "Substitutions").
//
// A unit is built from a golden circuit by (1) re-synthesizing parts of the
// copy with functionally redundant structure — so the FRAIG stage has real
// equivalences to prove rather than a graph-identical mirror — and
// (2) cutting the drivers of selected internal nodes, which become the
// floating target pseudo-PIs. Substituting each cut node's original
// function rectifies the unit, so every generated instance is rectifiable
// by construction. Weights follow a per-unit profile (expensive primary
// inputs and cheap local signals on the "difficult" units, mirroring why
// intermediate-signal patches win in the paper's Table 2).

#include <cstdint>
#include <string>
#include <vector>

#include "eco/instance.h"

namespace eco::benchgen {

enum class Family {
  Adder,
  Comparator,
  MuxTree,
  Alu,
  Parity,
  Random,
  Multiplier,
  PriorityEnc,
};

struct UnitSpec {
  std::string name;
  Family family = Family::Adder;
  std::uint32_t size_param = 4;   ///< bits / selects / AND budget
  std::uint32_t num_targets = 1;
  std::uint64_t seed = 1;
  /// Target placement: minimum structural depth fraction (0 = anywhere,
  /// 0.6 = deep nodes only — wide PI support, hard for PI-based patching).
  double target_depth_frac = 0.0;
  /// Probability (percent) of redundant re-synthesis per copied node.
  std::uint32_t restructure_pct = 10;
  double pi_weight = 4.0;        ///< base weight of X inputs
  double internal_weight = 1.0;  ///< base weight of internal signals
  double weight_jitter = 1.0;    ///< uniform jitter added to both
};

/// Builds the golden circuit of a spec (without faults).
Aig buildGolden(const UnitSpec& spec);

/// Generates the full instance: faulty circuit with floating targets,
/// golden circuit, and the weight file contents.
EcoInstance generateUnit(const UnitSpec& spec);

/// The 20-unit suite mirroring the difficulty spread of the paper's
/// Table 2 (units 6, 10, 11 and 19 are the "difficult" instances).
std::vector<UnitSpec> contestSuite();

}  // namespace eco::benchgen
