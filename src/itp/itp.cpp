#include "itp/itp.h"

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sat/proof_check.h"

namespace eco::itp {

// log_proof also auto-gates SAT preprocessing OFF (Solver::setPreprocessing
// is a no-op on a proof-logging solver): variable elimination rewrites the
// clause database without resolution steps, which would break the chain
// replay in buildInterpolant. Interpolation always solves the raw encoding.
ItpJob::ItpJob()
    : solver_(/*log_proof=*/true),
      sink_a_(*this, Partition::A),
      sink_b_(*this, Partition::B) {}

void ItpJob::markShared(sat::Var v, Lit aig_lit) {
  shared_[v] = aig_lit;
}

void ItpJob::addPartitionClause(std::span<const sat::SLit> lits, Partition part) {
  const sat::ClauseId id = solver_.addClause(lits);
  if (id == sat::kNoClause) return;  // dropped (satisfied/tautological)
  if (clause_partition_.size() <= id) clause_partition_.resize(id + 1, Partition::A);
  clause_partition_[id] = part;
  num_original_ = std::max(num_original_, id + 1);
}

sat::Status ItpJob::solve(std::int64_t conflict_budget) {
  obs::Span span("itp.solve");
  solver_.setConflictBudget(conflict_budget);
  const sat::Status status = solver_.solve();
  ECO_OBS_COUNT("itp.solve_calls", 1);
  if (status == sat::Status::Unsat) {
    ECO_OBS_COUNT("itp.unsat", 1);
  } else {
    // Sat (multi-output conflict, Sec. 4.3) or budgeted out: the caller
    // falls back to the on-set function.
    ECO_OBS_COUNT("itp.not_applicable", 1);
  }
  span.arg("conflicts", solver_.numConflicts());
  return status;
}

Lit ItpJob::buildInterpolant(Aig& result) const {
  obs::Span span("itp.build_interpolant");
  const std::uint32_t ands_before = result.numAnds();
  const sat::Proof& proof = solver_.proof();
  ECO_CHECK_MSG(proof.has_empty_clause, "buildInterpolant requires an UNSAT proof");

#ifndef NDEBUG
  // Debug builds certify every Unsat answer the interpolation path consumes:
  // a replayed proof that resolves correctly to the empty clause makes the
  // interpolant sound regardless of any defect in the CDCL search itself.
  {
    const sat::ProofCheckResult pc = sat::checkProof(solver_);
    ECO_CHECK_MSG(pc.ok, pc.error.c_str());
  }
#endif

  // Classify variables: "global" means occurring in a stored B clause.
  std::vector<bool> occurs_in_b(solver_.numVars(), false);
  for (sat::ClauseId id = 0; id < num_original_; ++id) {
    if (clause_partition_[id] != Partition::B) continue;
    for (const sat::SLit l : solver_.clauseLits(id)) occurs_in_b[l.var()] = true;
  }

  const std::size_t n_clauses = proof.chains.size();
  std::vector<Lit> itp(n_clauses, Lit());

  const auto leafItp = [&](sat::ClauseId id) -> Lit {
    if (clause_partition_[id] == Partition::B) return kTrue;
    // A clause: disjunction of its global literals, in result-AIG terms.
    Lit acc = kFalse;
    for (const sat::SLit l : solver_.clauseLits(id)) {
      if (!occurs_in_b[l.var()]) continue;
      const auto it = shared_.find(l.var());
      ECO_CHECK_MSG(it != shared_.end(),
                    "A/B-shared variable without an AIG mapping");
      acc = result.mkOr(acc, it->second ^ l.sign());
    }
    return acc;
  };

  const auto clauseItp = [&](sat::ClauseId id) -> Lit {
    ECO_CHECK(itp[id].valid());
    return itp[id];
  };

  const auto replayChain = [&](const sat::ProofChain& chain) -> Lit {
    Lit cur = clauseItp(chain.start);
    for (const auto& step : chain.steps) {
      const Lit other = clauseItp(step.clause);
      if (occurs_in_b[step.pivot]) {
        cur = result.addAnd(cur, other);
      } else {
        cur = result.mkOr(cur, other);
      }
    }
    return cur;
  };

  // Clause ids are created in derivation order; chains only reference
  // earlier ids, so a single forward pass suffices.
  for (sat::ClauseId id = 0; id < n_clauses; ++id) {
    if (proof.chains[id].start == sat::kNoClause) {
      itp[id] = leafItp(id);  // original clause
    } else {
      itp[id] = replayChain(proof.chains[id]);
    }
  }
  const Lit root = replayChain(proof.empty_clause);
  // Structural size of the interpolant before any downstream minimization
  // (Sec. 4.3 quality signal: how compact the cores make the patches).
  ECO_OBS_COUNT("itp.interpolants", 1);
  ECO_OBS_OBSERVE("itp.interpolant_ands", result.numAnds() - ands_before);
  ECO_OBS_OBSERVE("itp.proof_clauses", n_clauses);
  span.arg("ands", result.numAnds() - ands_before);
  return root;
}

}  // namespace eco::itp
