#pragma once
// Craig interpolation (Theorem 1 of the paper).
//
// An ItpJob is a one-shot partitioned SAT query: clauses are added to an
// A part and a B part, designated variables are marked shared with their
// literal in a result AIG, and — after an UNSAT answer — the resolution
// proof is replayed with McMillan's rules to produce an interpolant I with
//   A -> I      and      I /\ B unsatisfiable,
// whose support lies within the shared variables. This is the synthesis
// primitive behind SynthesizePatch (Sec. 4) and rebased patch functions
// (Sec. 6.1).

#include <span>
#include <unordered_map>
#include <vector>

#include "aig/aig.h"
#include "cnf/cnf.h"
#include "sat/solver.h"

namespace eco::itp {

class ItpJob {
 public:
  ItpJob();

  sat::Solver& solver() { return solver_; }

  /// Marks solver variable `v` shared between the partitions; `aig_lit` is
  /// the literal the interpolant uses for it in the result AIG.
  void markShared(sat::Var v, Lit aig_lit);

  /// Clause sinks for the two partitions (for cnf::encodeCone).
  cnf::ClauseSink& sinkA() { return sink_a_; }
  cnf::ClauseSink& sinkB() { return sink_b_; }

  void addClauseA(std::span<const sat::SLit> lits) { sink_a_.addClause(lits); }
  void addClauseB(std::span<const sat::SLit> lits) { sink_b_.addClause(lits); }
  void addClauseA(std::initializer_list<sat::SLit> l) {
    sink_a_.addClause(std::span<const sat::SLit>(l.begin(), l.size()));
  }
  void addClauseB(std::initializer_list<sat::SLit> l) {
    sink_b_.addClause(std::span<const sat::SLit>(l.begin(), l.size()));
  }

  /// Solves A /\ B (assumption-free; optional conflict budget).
  sat::Status solve(std::int64_t conflict_budget = -1);

  /// After solve() == Unsat: replays the proof into `result`, returning the
  /// interpolant literal. Checks that every A-clause literal surviving into
  /// the interpolant has a shared mapping.
  Lit buildInterpolant(Aig& result) const;

 private:
  enum class Partition : std::uint8_t { A = 0, B = 1 };

  class PartitionSink final : public cnf::ClauseSink {
   public:
    PartitionSink(ItpJob& job, Partition part) : job_(job), part_(part) {}
    sat::Var newVar() override { return job_.solver_.newVar(); }
    void addClause(std::span<const sat::SLit> lits) override {
      job_.addPartitionClause(lits, part_);
    }

   private:
    ItpJob& job_;
    Partition part_;
  };

  void addPartitionClause(std::span<const sat::SLit> lits, Partition part);

  sat::Solver solver_;
  PartitionSink sink_a_;
  PartitionSink sink_b_;
  /// Partition of each original clause id (learned ids are beyond).
  std::vector<Partition> clause_partition_;
  std::uint32_t num_original_ = 0;
  std::unordered_map<sat::Var, Lit> shared_;
  /// occurs_in_b_[v]: variable occurs in a stored B clause (McMillan's
  /// "global" classification).
  std::vector<bool> occurs_in_b_;
};

}  // namespace eco::itp
