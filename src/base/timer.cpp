#include "base/timer.h"

// Header-only today; this translation unit anchors the library target.
