#pragma once
// Deterministic pseudo-random number generator (xoshiro256**).
//
// All randomized components (simulation patterns, benchmark generation,
// decision-variable tie breaking) draw from this generator so that runs are
// reproducible from a single seed.

#include <cstdint>

namespace eco {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next();

  /// Uniform integer in [0, bound) for bound >= 1.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli draw with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform double in [0, 1).
  double real();

 private:
  std::uint64_t s_[4];
};

}  // namespace eco
