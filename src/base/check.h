#pragma once
// Lightweight invariant checking used throughout the library.
//
// ECO_CHECK is active in all build types: algorithmic invariants in a
// SAT/interpolation stack are cheap relative to solving and catching a
// violated invariant early beats debugging a wrong patch later.
//
// A failed check throws CheckError rather than aborting so that harnesses
// (the differential fuzzer, long batch runs) can contain an engine failure,
// report it, and keep going; anything uncaught still terminates with the
// diagnostic via the default terminate handler.

#include <stdexcept>
#include <string>

namespace eco {

class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Out of line (base/check.cpp) so the throw site can dump a flight
/// recorder postmortem while the failing stage's labels are still set —
/// by the time an enclosing catch runs, stack unwinding has already
/// restored them.
[[noreturn]] void checkFailed(const char* expr, const char* file, int line,
                              const char* msg);

}  // namespace eco

#define ECO_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) ::eco::checkFailed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define ECO_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) ::eco::checkFailed(#cond, __FILE__, __LINE__, msg); \
  } while (0)
