#pragma once
// Lightweight invariant checking used throughout the library.
//
// ECO_CHECK is active in all build types: algorithmic invariants in a
// SAT/interpolation stack are cheap relative to solving and catching a
// violated invariant early beats debugging a wrong patch later.

#include <cstdio>
#include <cstdlib>

namespace eco {

[[noreturn]] inline void checkFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ECO_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace eco

#define ECO_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) ::eco::checkFailed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define ECO_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) ::eco::checkFailed(#cond, __FILE__, __LINE__, msg); \
  } while (0)
