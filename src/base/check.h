#pragma once
// Lightweight invariant checking used throughout the library.
//
// ECO_CHECK is active in all build types: algorithmic invariants in a
// SAT/interpolation stack are cheap relative to solving and catching a
// violated invariant early beats debugging a wrong patch later.
//
// A failed check throws CheckError rather than aborting so that harnesses
// (the differential fuzzer, long batch runs) can contain an engine failure,
// report it, and keep going; anything uncaught still terminates with the
// diagnostic via the default terminate handler.

#include <stdexcept>
#include <string>

namespace eco {

class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void checkFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::string what = "ECO_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (msg[0]) {
    what += " — ";
    what += msg;
  }
  throw CheckError(what);
}

}  // namespace eco

#define ECO_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) ::eco::checkFailed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define ECO_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) ::eco::checkFailed(#cond, __FILE__, __LINE__, msg); \
  } while (0)
