#pragma once
// Wall-clock timer for reporting per-stage and per-instance runtimes.

#include <chrono>

namespace eco {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace eco
