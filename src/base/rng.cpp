#include "base/rng.h"

#include "base/check.h"

namespace eco {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 as recommended by the
  // generator's authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  ECO_CHECK(bound >= 1);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  ECO_CHECK(lo <= hi);
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  ECO_CHECK(den >= 1);
  return below(den) < num;
}

double Rng::real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace eco
