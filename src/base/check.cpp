#include "base/check.h"

#include "obs/flight_recorder.h"

namespace eco {

void checkFailed(const char* expr, const char* file, int line,
                 const char* msg) {
  std::string what = "ECO_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (msg[0]) {
    what += " — ";
    what += msg;
  }
  // No-op unless a postmortem path is configured (ecopatch_cli
  // --postmortem, eco_fuzz --postmortem), so EXPECT_THROW-style tests see
  // no side effects.
  obs::dumpPostmortem("check-error", what.c_str());
  throw CheckError(what);
}

}  // namespace eco
