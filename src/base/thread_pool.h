#pragma once
// Work-stealing thread pool for the parallel ECO stages.
//
// A fixed set of workers each owns a deque of tasks: a worker pops from the
// back of its own deque (LIFO, cache-friendly) and steals from the front of
// a sibling's deque (FIFO, oldest first) when its own runs dry. submit()
// distributes round-robin across the worker deques and returns a
// std::future, so exceptions thrown by a task propagate to whoever waits on
// its result. Destruction is a graceful shutdown: all tasks already
// submitted are drained before the workers join.
//
// Determinism contract: the pool never adds nondeterminism by itself —
// tasks run in an unspecified order on unspecified workers, so any caller
// needing reproducible results must make its tasks independent and merge
// their results in a caller-chosen order (see parallelFor and the FRAIG /
// per-cluster merge barriers in DESIGN.md).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace eco {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means one per hardware thread.
  /// Requests are clamped to an internal ceiling (256) so a bogus count
  /// cannot exhaust OS thread resources.
  explicit ThreadPool(unsigned num_threads = 0);

  /// Drains every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(workers_.size()); }

  /// std::thread::hardware_concurrency() clamped to at least 1.
  static unsigned defaultThreads();

  /// Schedules `f` and returns a future for its result. A task that throws
  /// stores the exception in the future (rethrown on .get()).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    std::packaged_task<R()> task(std::forward<F>(f));
    std::future<R> future = task.get_future();
    enqueue(Task(std::move(task)));
    return future;
  }

  /// Runs body(0..n-1) across the workers and the calling thread, blocking
  /// until all indices finish. Indices are claimed dynamically (an atomic
  /// cursor), so long and short items balance. The first exception thrown
  /// by any index is rethrown here after every worker has stopped. With
  /// fewer than two workers the loop runs inline on the caller — the exact
  /// sequential path.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  /// Type-erased move-only callable (std::function requires copyable).
  class Task {
   public:
    Task() = default;
    template <typename F>
    explicit Task(F f) : impl_(std::make_unique<Model<F>>(std::move(f))) {}
    void operator()() { impl_->call(); }
    explicit operator bool() const { return impl_ != nullptr; }

   private:
    struct Concept {
      virtual ~Concept() = default;
      virtual void call() = 0;
    };
    template <typename F>
    struct Model final : Concept {
      explicit Model(F f) : fn(std::move(f)) {}
      void call() override { fn(); }
      F fn;
    };
    std::unique_ptr<Concept> impl_;
  };

  /// One worker's task deque with its own lock (keeps steals cheap).
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void enqueue(Task task);
  void workerMain(unsigned index);
  /// Pops the back of queue `index`; empty Task when the deque is empty.
  Task popLocal(unsigned index);
  /// Steals the front of some other queue, scanning from `index + 1`.
  Task stealFrom(unsigned index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake signalling; `queued_` mirrors the total tasks sitting in the
  // deques and is only touched under `sleep_mutex_` so wakeups are not lost.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::size_t queued_ = 0;
  bool stop_ = false;

  std::size_t next_queue_ = 0;  ///< round-robin submit cursor
};

}  // namespace eco
