#include "base/thread_pool.h"

#include <atomic>
#include <exception>
#include <string>

#include "base/check.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace eco {

unsigned ThreadPool::defaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  // Clamp to a sane ceiling: a bogus request (e.g. a negative CLI value
  // cast through unsigned) must not try to spawn billions of OS threads —
  // and a std::thread constructor failing mid-loop would terminate the
  // process via the joinable-thread destructors.
  constexpr unsigned kMaxWorkers = 256;
  unsigned n = num_threads == 0 ? defaultThreads() : num_threads;
  if (n > kMaxWorkers) n = kMaxWorkers;
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(Task task) {
  ECO_CHECK_MSG(!workers_.empty(), "submit on a dead pool");
  std::size_t index;
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ECO_CHECK_MSG(!stop_, "submit during shutdown");
    index = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++queued_;
  }
  sleep_cv_.notify_one();
}

ThreadPool::Task ThreadPool::popLocal(unsigned index) {
  WorkerQueue& q = *queues_[index];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return Task();
  Task t = std::move(q.tasks.back());
  q.tasks.pop_back();
  return t;
}

ThreadPool::Task ThreadPool::stealFrom(unsigned index) {
  const unsigned n = static_cast<unsigned>(queues_.size());
  for (unsigned k = 1; k < n; ++k) {
    WorkerQueue& q = *queues_[(index + k) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    Task t = std::move(q.tasks.front());
    q.tasks.pop_front();
    return t;
  }
  return Task();
}

void ThreadPool::workerMain(unsigned index) {
  // Label the worker in trace exports; events recorded by tasks running
  // here land in this thread's obs buffer and show up as their own trace
  // row (the per-thread view of the parallel pipeline). The CPU-clock
  // registration lets resource snapshots attribute CPU per worker for as
  // long as the pool lives.
  const std::string worker_name = "pool-" + std::to_string(index);
  obs::setThreadName(worker_name);
  obs::ThreadCpuRegistration cpu_clock(worker_name);
  for (;;) {
    Task task = popLocal(index);
    if (!task) task = stealFrom(index);
    if (task) {
      {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        --queued_;
      }
      task();  // packaged_task captures any exception into its future
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;  // graceful: drained before exit
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (numWorkers() < 2 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct ForState {
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForState>();
  const auto drive = [state, n, &body] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mutex);
        if (!state->error) state->error = std::current_exception();
      }
    }
  };

  const std::size_t helpers = std::min<std::size_t>(numWorkers(), n) - 1;
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h) futures.push_back(submit(drive));
  drive();  // the caller participates instead of blocking idle
  for (std::future<void>& f : futures) f.get();
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace eco
