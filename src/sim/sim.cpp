#include "sim/sim.h"

#include "base/check.h"

namespace eco::sim {

void PatternSet::randomize(Rng& rng) {
  for (auto& w : data_) w = rng.next();
}

void PatternSet::setBit(std::uint32_t signal, std::uint32_t bit, bool value) {
  ECO_CHECK(bit / 64 < words_);
  std::uint64_t& w = of(signal)[bit / 64];
  const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
  if (value) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

PatternSet simulateAll(const Aig& aig, const PatternSet& pi_patterns) {
  const std::uint32_t W = pi_patterns.wordsPerSignal();
  PatternSet values(aig.numNodes(), W);
  for (std::uint32_t var = 1; var < aig.numNodes(); ++var) {
    auto out = values.of(var);
    if (aig.isPi(var)) {
      const auto in = pi_patterns.of(aig.piIndex(var));
      for (std::uint32_t w = 0; w < W; ++w) out[w] = in[w];
      continue;
    }
    const Lit f0 = aig.fanin0(var);
    const Lit f1 = aig.fanin1(var);
    const auto a = values.of(f0.var());
    const auto b = values.of(f1.var());
    const std::uint64_t ma = f0.complemented() ? ~std::uint64_t{0} : 0;
    const std::uint64_t mb = f1.complemented() ? ~std::uint64_t{0} : 0;
    for (std::uint32_t w = 0; w < W; ++w) out[w] = (a[w] ^ ma) & (b[w] ^ mb);
  }
  return values;
}

void litValues(const PatternSet& node_values, Lit l, std::span<std::uint64_t> out) {
  const auto v = node_values.of(l.var());
  const std::uint64_t m = l.complemented() ? ~std::uint64_t{0} : 0;
  for (std::size_t w = 0; w < out.size(); ++w) out[w] = v[w] ^ m;
}

}  // namespace eco::sim
