#pragma once
// Bit-parallel circuit simulation.
//
// Signals are simulated 64 patterns at a time. Used for FRAIG candidate
// equivalence detection, counterexample-guided class refinement, and as a
// fast sanity oracle in tests.

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.h"
#include "base/rng.h"

namespace eco::sim {

/// Word-parallel pattern set: `words` 64-bit words per signal.
class PatternSet {
 public:
  PatternSet(std::uint32_t num_signals, std::uint32_t words)
      : words_(words), data_(static_cast<std::size_t>(num_signals) * words, 0) {}

  std::uint32_t wordsPerSignal() const { return words_; }
  std::span<std::uint64_t> of(std::uint32_t signal) {
    return {data_.data() + static_cast<std::size_t>(signal) * words_, words_};
  }
  std::span<const std::uint64_t> of(std::uint32_t signal) const {
    return {data_.data() + static_cast<std::size_t>(signal) * words_, words_};
  }

  void randomize(Rng& rng);

  /// Sets pattern bit `bit` of `signal`.
  void setBit(std::uint32_t signal, std::uint32_t bit, bool value);

 private:
  std::uint32_t words_;
  std::vector<std::uint64_t> data_;
};

/// Simulates all nodes of `aig` under PI patterns `pi_patterns` (one row per
/// PI, in PI order). Returns per-node values (row per AIG variable,
/// constant node = all zero).
PatternSet simulateAll(const Aig& aig, const PatternSet& pi_patterns);

/// Value words of a literal given node values.
void litValues(const PatternSet& node_values, Lit l, std::span<std::uint64_t> out);

}  // namespace eco::sim
