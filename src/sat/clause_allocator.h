#pragma once
// Contiguous arena allocation for clauses.
//
// Clauses live in one flat vector of 32-bit words and are addressed by
// ClauseRef, a word offset into that arena. Compared to the previous
// heap-per-clause scheme this removes a pointer chase per clause access
// during propagation, keeps clauses of one solve densely packed in cache,
// and makes the whole database relocatable: after learned-clause deletion
// the solver compacts the arena by copying live clauses into a fresh
// allocator, leaving MiniSat-style forwarding references behind so watch
// lists and reason references can be rebound in one pass.
//
// Layout of one clause (all 32-bit words):
//   [0] header: size << 4 | flags (learned, deleted, reloced)
//   [1] stable ClauseId (proof/observability identity) — overwritten with
//       the forwarding ClauseRef once the clause has been relocated
//   [2] activity (float bit pattern; learned-clause deletion tiebreak)
//   [3] LBD — literal-block distance at learning time, dynamically
//       shrunk when conflict analysis sees a better value (glue clauses,
//       LBD <= 2, are exempt from database reduction)
//   [4..4+size) literals
//
// ClauseRefs are stable across arena growth (offsets, not pointers) but a
// Clause& is invalidated by any alloc() — never hold one across an
// allocation. Relocation (garbageCollect) changes refs but never the
// stable ClauseId, so resolution-proof chains and the itp replay, which
// speak ClauseId, survive compaction untouched.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "base/check.h"
#include "sat/types.h"

namespace eco::sat {

/// Word offset of a clause in the arena.
using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kNoRef = 0xFFFFFFFFu;

/// View of one clause inside the arena. Not an owning object: obtained via
/// ClauseAllocator::at() and invalidated by the next alloc().
class Clause {
 public:
  static constexpr std::uint32_t kHeaderWords = 4;

  std::uint32_t size() const { return words()[0] >> 4; }
  bool learned() const { return (words()[0] & kLearnedBit) != 0; }
  bool deleted() const { return (words()[0] & kDeletedBit) != 0; }
  bool reloced() const { return (words()[0] & kRelocedBit) != 0; }

  std::uint32_t id() const { return words()[1]; }

  float activity() const {
    float f;
    std::memcpy(&f, &words()[2], sizeof(f));
    return f;
  }
  void setActivity(float a) { std::memcpy(&words()[2], &a, sizeof(a)); }

  std::uint32_t lbd() const { return words()[3]; }
  void setLbd(std::uint32_t lbd) { words()[3] = lbd; }

  SLit& operator[](std::uint32_t i) { return litPtr()[i]; }
  SLit operator[](std::uint32_t i) const { return litPtr()[i]; }
  std::span<const SLit> lits() const { return {litPtr(), size()}; }
  std::span<SLit> lits() { return {litPtr(), size()}; }

  void markDeleted() { words()[0] |= kDeletedBit; }

  /// Drops literals beyond `new_size` (preprocessing strengthening). The
  /// allocator's wasted-word accounting is the caller's responsibility.
  void shrink(std::uint32_t new_size) {
    ECO_CHECK(new_size <= size());
    words()[0] = (new_size << 4) | (words()[0] & 0xF);
  }

  /// Marks this clause as moved to `to` (forwarding stored in the id slot;
  /// the relocated copy keeps the stable id).
  void setRelocation(ClauseRef to) {
    words()[0] |= kRelocedBit;
    words()[1] = to;
  }
  ClauseRef relocation() const {
    ECO_CHECK(reloced());
    return words()[1];
  }

 private:
  friend class ClauseAllocator;
  static constexpr std::uint32_t kLearnedBit = 1u;
  static constexpr std::uint32_t kDeletedBit = 2u;
  static constexpr std::uint32_t kRelocedBit = 4u;

  // A Clause is a view over arena words; instances are never constructed.
  Clause() = delete;

  std::uint32_t* words() { return reinterpret_cast<std::uint32_t*>(this); }
  const std::uint32_t* words() const {
    return reinterpret_cast<const std::uint32_t*>(this);
  }
  SLit* litPtr() { return reinterpret_cast<SLit*>(words() + kHeaderWords); }
  const SLit* litPtr() const {
    return reinterpret_cast<const SLit*>(words() + kHeaderWords);
  }
};

class ClauseAllocator {
 public:
  ClauseAllocator() = default;

  void reserveWords(std::size_t words) { mem_.reserve(words); }

  /// Allocates a clause with stable identity `id`; returns its ref.
  ClauseRef alloc(std::span<const SLit> lits, bool learned, std::uint32_t id) {
    const auto ref = static_cast<ClauseRef>(mem_.size());
    mem_.push_back((static_cast<std::uint32_t>(lits.size()) << 4) |
                   (learned ? Clause::kLearnedBit : 0u));
    mem_.push_back(id);
    mem_.push_back(0);  // activity = 0.0f
    mem_.push_back(0);  // lbd
    for (const SLit l : lits) mem_.push_back(l.index());
    return ref;
  }

  Clause& at(ClauseRef ref) {
    ECO_CHECK(ref < mem_.size());
    return *reinterpret_cast<Clause*>(mem_.data() + ref);
  }
  const Clause& at(ClauseRef ref) const {
    ECO_CHECK(ref < mem_.size());
    return *reinterpret_cast<const Clause*>(mem_.data() + ref);
  }

  /// Marks the clause's words as dead for the wasted-space accounting that
  /// drives garbage collection. The words stay in place (and readable)
  /// until the next garbageCollect().
  void free(ClauseRef ref) {
    Clause& c = at(ref);
    ECO_CHECK(!c.deleted());
    c.markDeleted();
    wasted_ += Clause::kHeaderWords + c.size();
  }

  /// Accounts `words` literal words dropped by in-place shrinking.
  void accountShrink(std::uint32_t words) { wasted_ += words; }

  /// Moves the clause behind `ref` into `to` (or follows the forwarding
  /// ref if it has already been moved) and rebinds `ref`.
  void relocate(ClauseRef& ref, ClauseAllocator& to) {
    Clause& c = at(ref);
    if (c.reloced()) {
      ref = c.relocation();
      return;
    }
    ECO_CHECK_MSG(!c.deleted(), "relocating a deleted clause");
    const ClauseRef nr = to.alloc(c.lits(), c.learned(), c.id());
    to.at(nr).setActivity(c.activity());
    to.at(nr).setLbd(c.lbd());
    c.setRelocation(nr);
    ref = nr;
  }

  std::size_t sizeWords() const { return mem_.size(); }
  std::size_t wastedWords() const { return wasted_; }

 private:
  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
};

}  // namespace eco::sat
