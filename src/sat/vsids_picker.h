#pragma once
// VSIDS decision picker with phase saving.
//
// Owns the per-variable activity scores, the exponential bump/decay
// scheme, the saved-phase table, and the activity-ordered decision heap
// (IndexedMinHeap instantiated so the hottest variable sits at the root).
// The solver feeds it bump() during conflict analysis, decay() once per
// conflict, insert() on backtracking, and asks pick() for the next
// decision variable.
//
// Overflow safety: both the per-variable activities *and* the bump
// increment are rescaled once they cross kRescaleLimit. The increment
// check matters for long-lived incremental solvers — `inc_` grows by
// 1/decay on every conflict regardless of bumps, so an instance that is
// kept across thousands of solve() calls (FRAIG chunks, fuzz sweeps)
// would otherwise drive it to infinity and wipe out the heuristic ordering
// even though every individual activity stayed in range.

#include <cstdint>
#include <string>
#include <vector>

#include "base/check.h"
#include "sat/min_heap.h"
#include "sat/types.h"

namespace eco::sat {

class VsidsPicker {
 public:
  VsidsPicker() : heap_(ActivityOrder{&activity_}) {}

  // The heap's comparator points into activity_; a default copy would keep
  // pointing at the donor's vector.
  VsidsPicker(const VsidsPicker&) = delete;
  VsidsPicker& operator=(const VsidsPicker&) = delete;

  /// Registers the next variable (ids are dense, starting at 0) and makes
  /// it available for decisions.
  void addVar() {
    const Var v = static_cast<Var>(activity_.size());
    activity_.push_back(0.0);
    polarity_.push_back(true);  // default phase: false (MiniSat convention)
    decidable_.push_back(true);
    heap_.insert(v);
  }

  std::size_t numVars() const { return activity_.size(); }

  void bump(Var v) {
    if ((activity_[v] += inc_) > kRescaleLimit) rescale();
    heap_.update(v);
  }

  /// Per-conflict decay (activities effectively shrink by `decay`); guards
  /// the increment itself against overflow.
  void decay() {
    inc_ /= kDecay;
    if (inc_ > kRescaleLimit) rescale();
  }

  /// Returns the variable to the decision heap (on backtracking).
  void insert(Var v) {
    if (!heap_.contains(v) && decidable_[v]) heap_.insert(v);
  }

  /// Excludes a variable from decisions (preprocessing elimination).
  void setDecidable(Var v, bool on) {
    decidable_[v] = on;
    if (on) insert(v);
  }

  void savePhase(Var v, bool sign) { polarity_[v] = sign; }
  bool savedPhase(Var v) const { return polarity_[v]; }

  /// Pops the most active variable for which `is_free(v)` holds; returns
  /// kNoVar when the heap runs dry.
  template <typename IsFree>
  Var pick(IsFree&& is_free) {
    while (!heap_.empty()) {
      const Var v = heap_.pop();
      if (decidable_[v] && is_free(v)) return v;
    }
    return kNoVar;
  }

  double activity(Var v) const { return activity_[v]; }
  /// Current bump increment — exposed so the overflow-rescale regression
  /// test can observe the guard.
  double activityInc() const { return inc_; }

  // Invariant-audit surface (src/check/sat_audit.cpp): heap membership,
  // decidability, and a structural self-check of the decision heap.
  bool heapContains(Var v) const { return heap_.contains(v); }
  std::size_t heapSize() const { return heap_.size(); }
  bool decidable(Var v) const { return decidable_[v]; }
  /// Heap property + position-map agreement; false fills `why`.
  bool auditHeap(std::string* why) const { return heap_.audit(why); }

  static constexpr Var kNoVar = 0xFFFFFFFFu;

 private:
  // Corruption backdoor for the auditor's negative tests (test_check.cpp).
  friend struct PickerAudit;
  struct ActivityOrder {
    const std::vector<double>* activity;
    // Higher activity = earlier in the min-heap order, so the root of the
    // min-heap is the hottest variable.
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      return (*activity)[a] > (*activity)[b];
    }
  };

  static constexpr double kDecay = 0.95;
  static constexpr double kRescaleLimit = 1e100;

  void rescale() {
    for (double& a : activity_) a *= 1e-100;
    inc_ *= 1e-100;
    // Uniform scaling preserves the ordering; the heap stays valid.
  }

  std::vector<double> activity_;
  std::vector<bool> polarity_;  ///< saved phases (true = last value was false)
  std::vector<bool> decidable_;
  IndexedMinHeap<ActivityOrder> heap_;
  double inc_ = 1.0;
};

}  // namespace eco::sat
