#pragma once
// Standalone resolution-proof checker.
//
// Replays every logged ProofChain by literal-set resolution and certifies
// that each chain derives exactly its stored learned clause, and that the
// final chain derives the empty clause. This is the trust anchor of the QA
// subsystem: an Unsat answer whose proof checks is correct regardless of
// any bug in the CDCL search, and the interpolation path (src/itp) replays
// exactly these chains, so a checked proof also bounds what interpolant
// construction can consume. Debug builds run the checker on every proof
// ItpJob::buildInterpolant replays.
//
// Checked per chain:
//   - `start` and every step's antecedent reference an existing clause,
//     and (for learned-clause chains) only clauses derived earlier;
//   - every step is a proper resolution: the pivot occurs with opposite
//     polarities in the running clause and the antecedent;
//   - no intermediate resolvent is tautological (trivial resolution);
//   - the final literal set equals the stored clause (empty for the
//     refutation chain).

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "sat/proof.h"
#include "sat/solver.h"
#include "sat/types.h"

namespace eco::sat {

struct ProofCheckResult {
  bool ok = true;
  std::string error;  ///< first violation, empty when ok
  std::uint64_t chains_checked = 0;
  std::uint64_t steps_checked = 0;

  explicit operator bool() const { return ok; }
};

/// Clause-literal accessor: literals of clause `id`. Lets tests check
/// deliberately corrupted proofs against unmodified clause stores.
using ClauseLitsFn = std::function<std::span<const SLit>(ClauseId)>;

/// Checks `proof` against a clause store of `proof.chains.size()` clauses
/// whose literals are given by `lits`. Requires has_empty_clause.
ProofCheckResult checkProof(const Proof& proof, const ClauseLitsFn& lits);

/// Checks the proof of a solver after an assumption-free Unsat answer with
/// proof logging enabled.
ProofCheckResult checkProof(const Solver& solver);

}  // namespace eco::sat
