#include "sat/sat_preprocessor.h"

#include <algorithm>

#include "base/check.h"
#include "sat/solver.h"

namespace eco::sat {

// --- SatRemapper -------------------------------------------------------------

void SatRemapper::recordClause(SLit v_lit, std::span<const SLit> lits) {
  // [distinguished-lit, other-lits..., size] — parsed backwards.
  stream_.push_back(v_lit.index());
  for (const SLit l : lits) {
    if (l != v_lit) stream_.push_back(l.index());
  }
  stream_.push_back(static_cast<std::uint32_t>(lits.size()));
}

void SatRemapper::recordUnit(SLit l) {
  stream_.push_back(l.index());
  stream_.push_back(1);
}

void SatRemapper::extendModel(std::vector<LBool>& model) const {
  // Backwards: the variable eliminated last is reconstructed first. Each
  // group starts with its default-polarity unit (recorded last within the
  // group), then the clauses of the recorded side override the default when
  // one of them would be falsified.
  for (std::size_t i = stream_.size(); i > 0;) {
    const std::uint32_t n = stream_[i - 1];
    const std::size_t begin = i - 1 - n;
    // The distinguished literal (at `begin`) is excluded from the check:
    // when no *other* literal satisfies the record, it is set true.
    bool satisfied = false;
    for (std::size_t j = begin + 1; j < i - 1; ++j) {
      const SLit l = SLit::fromIndex(stream_[j]);
      if ((model[l.var()] ^ l.sign()) != LBool::False) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      const SLit d = SLit::fromIndex(stream_[begin]);
      model[d.var()] = lboolOf(!d.sign());
    }
    i = begin;
  }
}

// --- Preprocessor ------------------------------------------------------------

PreprocessStats Preprocessor::run(Solver& s) {
  ECO_CHECK_MSG(s.decisionLevel() == 0, "preprocessing requires the root level");
  ECO_CHECK_MSG(!s.log_proof_, "preprocessing is unsound under proof logging");
  PreprocessStats st;
  if (!s.ok_) return st;

  // Work over occurrence lists; watches are rebuilt from scratch at the end.
  for (auto& ws : s.watches_) ws.clear();
  // Root-level reasons are never consulted again without proof logging, and
  // pass 0 may free a satisfied unit clause some reason still points at —
  // which would trip garbageCollect's relocation of reason refs. Drop them.
  for (const SLit l : s.trail_) s.reason_[l.var()] = kNoRef;

  const auto n_lit_indices = static_cast<std::size_t>(2) * s.numVars();
  std::vector<std::vector<ClauseId>> occ(n_lit_indices);

  const auto liveRef = [&](ClauseId id) -> ClauseRef {
    const ClauseRef ref = s.clause_refs_[id];
    if (ref == kNoRef || s.ca_.at(ref).deleted()) return kNoRef;
    return ref;
  };

  const auto freeClause = [&](ClauseId id) {
    const ClauseRef ref = s.clause_refs_[id];
    Clause& c = s.ca_.at(ref);
    if (c.learned() && c.size() > 1 && s.num_learned_ > 0) --s.num_learned_;
    s.ca_.free(ref);
    ++st.removed_clauses;
    // Stale occurrence entries are skipped via liveRef at the consumer.
  };

  // Strips `l` from the (live, detached) clause `id`. Returns false on a
  // root conflict (clause shrank to nothing).
  const auto strengthen = [&](ClauseId id, SLit l) -> bool {
    Clause& c = s.ca_.at(s.clause_refs_[id]);
    auto lits = c.lits();
    for (std::uint32_t k = 0; k < c.size(); ++k) {
      if (lits[k] == l) {
        std::swap(lits[k], lits[c.size() - 1]);
        c.shrink(c.size() - 1);
        s.ca_.accountShrink(1);
        ++st.strengthened_lits;
        break;
      }
    }
    if (c.size() == 0) return false;
    if (c.size() == 1) {
      const SLit u = c[0];
      if (s.value(u) == LBool::False) return false;
      if (s.value(u) == LBool::Undef) {
        s.enqueue(u, kNoRef);
        ++st.propagated_units;
      }
      freeClause(id);  // now satisfied by the root assignment
    }
    return true;
  };

  // BCP to fixpoint over the occurrence lists. New root assignments remove
  // satisfied clauses and strengthen the rest.
  std::size_t proc = 0;
  const auto bcp = [&]() -> bool {
    while (proc < s.trail_.size()) {
      const SLit p = s.trail_[proc++];
      for (const ClauseId id : occ[p.index()]) {
        if (liveRef(id) != kNoRef) freeClause(id);
      }
      occ[p.index()].clear();
      for (const ClauseId id : occ[(~p).index()]) {
        if (liveRef(id) == kNoRef) continue;
        if (!strengthen(id, ~p)) return false;
      }
      occ[(~p).index()].clear();
    }
    return true;
  };

  // Pass 0: normalize every live clause against the existing root
  // assignment and build the occurrence lists.
  proc = s.trail_.size();  // pre-existing assignments are handled right here
  for (ClauseId id = 0; id < s.clause_refs_.size(); ++id) {
    if (liveRef(id) == kNoRef) continue;
    Clause& c = s.ca_.at(s.clause_refs_[id]);
    auto lits = c.lits();
    bool satisfied = false;
    std::uint32_t w = 0;
    for (std::uint32_t k = 0; k < c.size(); ++k) {
      const LBool v = s.value(lits[k]);
      if (v == LBool::True) {
        satisfied = true;
        break;
      }
      if (v == LBool::False) {
        ++st.strengthened_lits;
        continue;
      }
      lits[w++] = lits[k];
    }
    if (satisfied) {
      freeClause(id);
      continue;
    }
    s.ca_.accountShrink(c.size() - w);
    c.shrink(w);
    if (w == 0) {
      s.ok_ = false;
      return s.pre_stats_ = st, st;
    }
    if (w == 1) {
      s.enqueue(c[0], kNoRef);
      ++st.propagated_units;
      freeClause(id);
      continue;
    }
    for (const SLit l : c.lits()) occ[l.index()].push_back(id);
  }
  if (!bcp()) {
    s.ok_ = false;
    return s.pre_stats_ = st, st;
  }

  // Compacts an occurrence list in place, dropping dead entries.
  const auto liveOcc = [&](std::vector<ClauseId>& list) -> std::vector<ClauseId>& {
    std::size_t w = 0;
    for (const ClauseId id : list) {
      if (liveRef(id) != kNoRef) list[w++] = id;
    }
    list.resize(w);
    return list;
  };

  std::vector<std::uint8_t> mark(n_lit_indices, 0);
  std::vector<std::vector<SLit>> resolvents;

  // Elimination rounds: pure literals and bounded variable elimination.
  for (std::uint32_t round = 0; round < limits_.max_rounds; ++round) {
    bool changed = false;
    for (Var v = 0; v < s.numVars(); ++v) {
      if (s.frozen_[v] || s.eliminated_[v]) continue;
      if (s.value(v) != LBool::Undef) continue;
      const SLit pos_lit = SLit::make(v, false);
      const SLit neg_lit = SLit::make(v, true);
      auto& pos = liveOcc(occ[pos_lit.index()]);
      auto& neg = liveOcc(occ[neg_lit.index()]);
      if (pos.empty() && neg.empty()) continue;  // unconstrained, search decides
      const std::size_t total = pos.size() + neg.size();
      const bool pure = pos.empty() || neg.empty();

      resolvents.clear();
      if (!pure) {
        if (total > limits_.max_occurrences) continue;
        bool veto = false;
        for (const ClauseId pid : pos) {
          const auto p_lits = s.ca_.at(s.clause_refs_[pid]).lits();
          for (const SLit l : p_lits) mark[l.index()] = 1;
          for (const ClauseId nid : neg) {
            const auto n_lits = s.ca_.at(s.clause_refs_[nid]).lits();
            bool taut = false;
            for (const SLit l : n_lits) {
              if (l.var() != v && mark[(~l).index()]) {
                taut = true;
                break;
              }
            }
            if (!taut) {
              std::vector<SLit> r;
              for (const SLit l : p_lits) {
                if (l.var() != v) r.push_back(l);
              }
              for (const SLit l : n_lits) {
                if (l.var() != v && !mark[l.index()]) r.push_back(l);
              }
              if (r.size() > limits_.max_resolvent_len ||
                  resolvents.size() >=
                      total + static_cast<std::size_t>(std::max(limits_.grow,
                                                                std::int32_t{0}))) {
                veto = true;
                break;
              }
              resolvents.push_back(std::move(r));
            }
          }
          for (const SLit l : p_lits) mark[l.index()] = 0;
          if (veto) break;
        }
        if (veto) continue;
      }

      // Eliminate v: record the smaller polarity side for model
      // reconstruction (the default-polarity unit satisfies the other side),
      // drop all of v's clauses, add the resolvents.
      const bool record_neg = pos.size() > neg.size();
      const auto& rec_side = record_neg ? neg : pos;
      const SLit rec_lit = record_neg ? neg_lit : pos_lit;
      for (const ClauseId id : rec_side) {
        s.remapper_.recordClause(rec_lit, s.ca_.at(s.clause_refs_[id]).lits());
      }
      s.remapper_.recordUnit(~rec_lit);
      for (const ClauseId id : pos) freeClause(id);
      for (const ClauseId id : neg) freeClause(id);
      occ[pos_lit.index()].clear();
      occ[neg_lit.index()].clear();
      s.eliminated_[v] = true;
      s.picker_.setDecidable(v, false);
      ++st.eliminated_vars;
      if (pure) ++st.pure_literals;
      changed = true;

      for (const auto& r : resolvents) {
        ECO_CHECK(!r.empty());
        if (r.size() == 1) {
          if (s.value(r[0]) == LBool::False) {
            s.ok_ = false;
            return s.pre_stats_ = st, st;
          }
          if (s.value(r[0]) == LBool::Undef) {
            s.enqueue(r[0], kNoRef);
            ++st.propagated_units;
          }
          continue;
        }
        const ClauseRef ref = s.allocClause(r, /*learned=*/false);
        const ClauseId id = s.ca_.at(ref).id();
        for (const SLit l : r) occ[l.index()].push_back(id);
        ++st.added_resolvents;
      }
      if (!bcp()) {
        s.ok_ = false;
        return s.pre_stats_ = st, st;
      }
    }
    if (!changed) break;
  }

  // Rebuild the watch lists over the surviving clauses.
  for (ClauseId id = 0; id < s.clause_refs_.size(); ++id) {
    if (liveRef(id) == kNoRef) continue;
    const Clause& c = s.ca_.at(s.clause_refs_[id]);
    ECO_CHECK(c.size() >= 2);
    s.attachClause(s.clause_refs_[id]);
  }
  s.qhead_ = static_cast<std::uint32_t>(s.trail_.size());

  // Elimination typically kills a large fraction of the arena; compact now
  // so search starts on a dense database.
  if (s.ca_.wastedWords() > 0) s.garbageCollect();

  s.pre_stats_ = st;
  return st;
}

}  // namespace eco::sat
