#pragma once
// Indexed binary min-heap over dense integer keys.
//
// The heap stores keys 0..N-1 with an inverse position map, so membership
// tests, removal of the root, and order restoration after an external
// priority change are all O(1)/O(log n) without searching. The ordering is
// supplied by a strict-weak-order functor `Less`; the root is the minimum
// under that order. The VSIDS picker instantiates it with "higher activity
// orders first", which turns this min-heap into the classic max-activity
// decision heap while keeping the container itself policy-free.
//
// `Less` is held by value; it typically carries a pointer to the external
// key array (e.g. the activity vector), which must outlive the heap.

#include <cstdint>
#include <string>
#include <vector>

#include "base/check.h"

namespace eco::sat {

template <typename Less>
class IndexedMinHeap {
 public:
  explicit IndexedMinHeap(Less less) : less_(less) {}

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(std::uint32_t key) const {
    return key < pos_.size() && pos_[key] != kAbsent;
  }

  /// Grows the key universe to at least `key + 1` (new keys start absent).
  void reserveKey(std::uint32_t key) {
    if (key >= pos_.size()) pos_.resize(key + 1, kAbsent);
  }

  void insert(std::uint32_t key) {
    reserveKey(key);
    ECO_CHECK(pos_[key] == kAbsent);
    pos_[key] = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(key);
    up(pos_[key]);
  }

  std::uint32_t top() const {
    ECO_CHECK(!heap_.empty());
    return heap_[0];
  }

  /// Removes and returns the minimum element.
  std::uint32_t pop() {
    const std::uint32_t root = top();
    pos_[root] = kAbsent;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      pos_[heap_[0]] = 0;
      down(0);
    }
    return root;
  }

  /// Restores heap order after the key's external priority changed in
  /// either direction. No-op if the key is absent.
  void update(std::uint32_t key) {
    if (!contains(key)) return;
    const std::uint32_t i = pos_[key];
    up(i);
    down(pos_[key]);
  }

  /// Structural self-check for the invariant auditor: the heap property
  /// holds at every slot and the position map is the exact inverse of the
  /// slot array. Returns false and fills `why` on the first violation.
  bool audit(std::string* why) const {
    for (std::uint32_t i = 0; i < heap_.size(); ++i) {
      const std::uint32_t key = heap_[i];
      if (key >= pos_.size() || pos_[key] != i) {
        if (why != nullptr) {
          *why = "position map disagrees with slot " + std::to_string(i) +
                 " (key " + std::to_string(key) + ")";
        }
        return false;
      }
      if (i > 0 && less_(key, heap_[(i - 1) >> 1])) {
        if (why != nullptr) {
          *why = "heap property violated at slot " + std::to_string(i) +
                 " (key " + std::to_string(key) + " orders before its parent)";
        }
        return false;
      }
    }
    std::uint32_t present = 0;
    for (const std::uint32_t p : pos_) {
      if (p != kAbsent) ++present;
    }
    if (present != heap_.size()) {
      if (why != nullptr) {
        *why = "position map marks " + std::to_string(present) +
               " keys present but the heap holds " +
               std::to_string(heap_.size());
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;

  void up(std::uint32_t i) {
    const std::uint32_t key = heap_[i];
    while (i > 0) {
      const std::uint32_t parent = (i - 1) >> 1;
      if (!less_(key, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = key;
    pos_[key] = i;
  }

  void down(std::uint32_t i) {
    const std::uint32_t key = heap_[i];
    const auto n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && less_(heap_[child + 1], heap_[child])) ++child;
      if (!less_(heap_[child], key)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = key;
    pos_[key] = i;
  }

  std::vector<std::uint32_t> heap_;  ///< key at each heap slot
  std::vector<std::uint32_t> pos_;  ///< slot of each key, kAbsent if outside
  Less less_;
};

}  // namespace eco::sat
