#pragma once
// Resolution proof log.
//
// When proof logging is enabled, every learned clause records the trivial
// resolution chain that derives it: a starting clause and a sequence of
// (pivot variable, antecedent clause) steps, each step resolving the
// current intermediate clause with the antecedent on the pivot. The final
// refutation records the chain deriving the empty clause. The interpolant
// builder (src/itp) replays these chains with McMillan's rules.

#include <vector>

#include "sat/types.h"

namespace eco::sat {

struct ProofChain {
  ClauseId start = kNoClause;
  /// Each step resolves the running clause with `clause` on `pivot`.
  struct Step {
    Var pivot;
    ClauseId clause;
  };
  std::vector<Step> steps;
};

struct Proof {
  /// chains[id] is the derivation of clause `id`; empty (start == kNoClause)
  /// for original clauses.
  std::vector<ProofChain> chains;
  /// Derivation of the empty clause; valid only after an UNSAT answer.
  ProofChain empty_clause;
  bool has_empty_clause = false;
};

}  // namespace eco::sat
