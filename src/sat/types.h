#pragma once
// Core SAT solver value types: variables, literals, and the three-valued
// logic used for assignments and model values.

#include <cstdint>
#include <vector>

namespace eco::sat {

using Var = std::uint32_t;

/// Solver literal: (var << 1) | sign, sign meaning negation.
class SLit {
 public:
  constexpr SLit() : x_(kUndefValue) {}
  constexpr static SLit make(Var v, bool sign) {
    return SLit((v << 1) | (sign ? 1u : 0u));
  }
  /// Inverse of index(); used by serialized literal streams (remapper).
  constexpr static SLit fromIndex(std::uint32_t idx) { return SLit(idx); }
  constexpr Var var() const { return x_ >> 1; }
  constexpr bool sign() const { return (x_ & 1u) != 0; }
  constexpr std::uint32_t index() const { return x_; }
  constexpr bool defined() const { return x_ != kUndefValue; }
  constexpr SLit operator~() const { return SLit(x_ ^ 1u); }

  friend constexpr bool operator==(SLit a, SLit b) { return a.x_ == b.x_; }
  friend constexpr bool operator!=(SLit a, SLit b) { return a.x_ != b.x_; }
  friend constexpr bool operator<(SLit a, SLit b) { return a.x_ < b.x_; }

 private:
  constexpr explicit SLit(std::uint32_t x) : x_(x) {}
  static constexpr std::uint32_t kUndefValue = 0xFFFFFFFFu;
  std::uint32_t x_;
};

/// Three-valued logic.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lboolOf(bool b) { return b ? LBool::True : LBool::False; }
inline LBool operator^(LBool v, bool sign) {
  if (v == LBool::Undef) return v;
  return lboolOf((v == LBool::True) != sign);
}

using ClauseId = std::uint32_t;
inline constexpr ClauseId kNoClause = 0xFFFFFFFFu;

}  // namespace eco::sat
