#include "sat/proof_check.h"

#include <set>
#include <string>

namespace eco::sat {
namespace {

using LitSet = std::set<std::uint32_t>;  // literal indices

LitSet litSet(std::span<const SLit> lits) {
  LitSet out;
  for (const SLit l : lits) out.insert(l.index());
  return out;
}

/// Resolves `cur` with `other` on `pivot`. Fails when the pivot does not
/// occur with opposite polarities or the resolvent is tautological.
bool resolveStep(LitSet& cur, const LitSet& other, Var pivot, std::string& err) {
  const std::uint32_t pos = SLit::make(pivot, false).index();
  const std::uint32_t neg = SLit::make(pivot, true).index();
  const bool cur_pos = cur.count(pos) != 0;
  const bool cur_neg = cur.count(neg) != 0;
  const bool oth_pos = other.count(pos) != 0;
  const bool oth_neg = other.count(neg) != 0;
  if (!((cur_pos && oth_neg) || (cur_neg && oth_pos))) {
    err = "pivot " + std::to_string(pivot) +
          " does not occur with opposite polarities";
    return false;
  }
  cur.erase(pos);
  cur.erase(neg);
  for (const std::uint32_t l : other) {
    if (l != pos && l != neg) cur.insert(l);
  }
  for (const std::uint32_t l : cur) {
    if (cur.count(l ^ 1) != 0) {
      err = "tautological resolvent on pivot " + std::to_string(pivot);
      return false;
    }
  }
  return true;
}

}  // namespace

ProofCheckResult checkProof(const Proof& proof, const ClauseLitsFn& lits) {
  ProofCheckResult result;
  const auto fail = [&](std::string msg) -> ProofCheckResult& {
    result.ok = false;
    result.error = std::move(msg);
    return result;
  };
  if (!proof.has_empty_clause) {
    return fail("proof has no empty-clause derivation");
  }
  const ClauseId n_clauses = static_cast<ClauseId>(proof.chains.size());

  // `max_ref`: exclusive bound on referenced clause ids (for learned-clause
  // chains, only earlier clauses; the refutation may use any clause).
  const auto replayChain = [&](const ProofChain& chain, ClauseId max_ref,
                               const LitSet* expect, std::string& err) {
    if (chain.start >= max_ref) {
      err = "chain starts at out-of-range clause " + std::to_string(chain.start);
      return false;
    }
    LitSet cur = litSet(lits(chain.start));
    for (const auto& step : chain.steps) {
      if (step.clause >= max_ref) {
        err = "step references out-of-range clause " + std::to_string(step.clause);
        return false;
      }
      if (!resolveStep(cur, litSet(lits(step.clause)), step.pivot, err)) {
        return false;
      }
      ++result.steps_checked;
    }
    if (expect != nullptr) {
      if (cur != *expect) {
        err = "chain does not derive the stored clause";
        return false;
      }
    } else if (!cur.empty()) {
      err = "refutation chain does not derive the empty clause";
      return false;
    }
    return true;
  };

  std::string err;
  for (ClauseId id = 0; id < n_clauses; ++id) {
    const ProofChain& chain = proof.chains[id];
    if (chain.start == kNoClause) continue;  // original clause, nothing to check
    const LitSet expect = litSet(lits(id));
    if (!replayChain(chain, id, &expect, err)) {
      return fail("clause " + std::to_string(id) + ": " + err);
    }
    ++result.chains_checked;
  }
  if (!replayChain(proof.empty_clause, n_clauses, nullptr, err)) {
    return fail("empty clause: " + err);
  }
  ++result.chains_checked;
  return result;
}

ProofCheckResult checkProof(const Solver& solver) {
  return checkProof(solver.proof(),
                    [&solver](ClauseId id) { return solver.clauseLits(id); });
}

}  // namespace eco::sat
