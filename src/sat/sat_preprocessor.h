#pragma once
// CNF preprocessing: BCP to fixpoint, pure-literal elimination, and
// bounded variable elimination (BVE) with model reconstruction.
//
// The preprocessor runs once on a Solver's root-level clause database
// before its first search (Solver::setPreprocessing). It detaches all
// watches, works over occurrence lists, and re-attaches the simplified
// database:
//
//   1. BCP to fixpoint — satisfied clauses are removed, root-false
//      literals are stripped, and any unit produced along the way is
//      propagated through the occurrence lists until closure (or a root
//      conflict, which settles the instance).
//   2. Pure-literal elimination — a variable occurring with only one
//      polarity (among live clauses, frozen variables exempt) is
//      eliminated; its clauses are recorded for model reconstruction.
//   3. Bounded variable elimination — a variable is resolved away when the
//      set of non-tautological resolvents is no larger than the clauses it
//      replaces and no resolvent exceeds a length bound (classic
//      NiVER/SatELite-style bounds).
//
// Model reconstruction: eliminating v removes information a model reader
// needs, so the clauses of one polarity side (plus a default-polarity
// marker) are pushed onto the SatRemapper's record stream. After a Sat
// answer the solver replays the stream backwards — most recently
// eliminated variable first — setting each eliminated variable so that
// every recorded clause is satisfied. The scheme is MiniSat's elimclauses
// encoding: records are laid out [distinguished-lit, rest..., size] so the
// stream can be parsed in reverse.
//
// Proof logging: elimination rewrites the clause database without emitting
// resolution steps, so the solver refuses to preprocess when proofs are
// logged (interpolation queries auto-gate the pass off; see solver.h).

#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.h"

namespace eco::sat {

class Solver;

struct PreprocessStats {
  std::uint32_t eliminated_vars = 0;   ///< total (pure + BVE)
  std::uint32_t pure_literals = 0;     ///< eliminated as one-polarity vars
  std::uint32_t removed_clauses = 0;   ///< satisfied + replaced by resolvents
  std::uint32_t added_resolvents = 0;
  std::uint32_t strengthened_lits = 0;  ///< root-false literals stripped
  std::uint32_t propagated_units = 0;   ///< fixpoint BCP assignments
};

/// Replay log for reconstructing eliminated variables' model values.
class SatRemapper {
 public:
  /// Records one clause of the eliminated variable `v`; `v_lit` is v's
  /// literal as it occurs in `lits`.
  void recordClause(SLit v_lit, std::span<const SLit> lits);

  /// Records the default-polarity marker: extendModel sets `l` true unless
  /// a later-replayed record overrides it.
  void recordUnit(SLit l);

  /// Extends `model` with values for every recorded variable. Walks the
  /// stream backwards, so variables eliminated later are reconstructed
  /// first (their values may feed earlier variables' clauses).
  void extendModel(std::vector<LBool>& model) const;

  bool empty() const { return stream_.empty(); }
  void clear() { stream_.clear(); }

 private:
  /// Record layout: [distinguished-lit-index, other-lit-indices..., size].
  std::vector<std::uint32_t> stream_;
};

class Preprocessor {
 public:
  struct Limits {
    /// A variable is only considered for BVE when it occurs in at most
    /// this many live clauses.
    std::uint32_t max_occurrences = 16;
    /// Resolvents longer than this veto the elimination.
    std::uint32_t max_resolvent_len = 12;
    /// Elimination may grow the clause count by at most this much.
    std::int32_t grow = 0;
    /// Full elimination passes over the variable range.
    std::uint32_t max_rounds = 3;
  };

  Preprocessor() = default;
  explicit Preprocessor(Limits limits) : limits_(limits) {}

  /// Simplifies `solver`'s root-level database in place. Requires decision
  /// level 0 and no proof logging. Returns the accumulated statistics
  /// (also stored into the solver for its preprocessStats() accessor).
  PreprocessStats run(Solver& solver);

 private:
  Limits limits_;
};

}  // namespace eco::sat
