#include "sat/solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace eco::sat {

namespace {

std::atomic<SolverAuditHook> g_audit_hook{nullptr};

void runAuditHook(const Solver& solver, const char* site) {
  if (const SolverAuditHook hook = g_audit_hook.load(std::memory_order_acquire)) {
    hook(solver, site);
  }
}

}  // namespace

void setSolverAuditHook(SolverAuditHook hook) {
  g_audit_hook.store(hook, std::memory_order_release);
}

namespace {

constexpr double kClauseDecay = 0.999;
constexpr double kClauseRescaleLimit = 1e20;
/// Learned clauses with LBD at or below this are "glue" and never deleted.
constexpr std::uint32_t kGlueLbd = 2;
/// Growth of the learned-clause budget after each database reduction.
constexpr std::uint32_t kReduceDbInc = 300;

// Luby restart sequence (unit = 128 conflicts).
std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence that contains index i, then the index
  // within that subsequence.
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace

Solver::Solver(bool log_proof) : log_proof_(log_proof) {}

Var Solver::newVar() {
  const Var v = numVars();
  assigns_.push_back(LBool::Undef);
  model_.push_back(LBool::Undef);
  level_.push_back(0);
  reason_.push_back(kNoRef);
  trail_pos_.push_back(0);
  seen_.push_back(0);
  lbd_stamp_.push_back(0);
  frozen_.push_back(false);
  eliminated_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  picker_.addVar();
  return v;
}

void Solver::freezeVar(Var v) {
  ECO_CHECK(v < numVars());
  ECO_CHECK_MSG(!eliminated_[v], "cannot freeze an already-eliminated variable");
  frozen_[v] = true;
}

ClauseRef Solver::allocClause(std::span<const SLit> lits, bool learned) {
  const auto id = static_cast<ClauseId>(clause_refs_.size());
  const ClauseRef ref = ca_.alloc(lits, learned, id);
  clause_refs_.push_back(ref);
  clause_birth_.push_back(stats_conflicts_);
  if (log_proof_) proof_.chains.emplace_back();
  if (learned) ECO_OBS_COUNT("sat.learned_clauses", 1);
  return ref;
}

void Solver::attachClause(ClauseRef ref) {
  const Clause& c = ca_.at(ref);
  ECO_CHECK(c.size() >= 2);
  watches_[(~c[0]).index()].push_back(Watcher{ref, c[1]});
  watches_[(~c[1]).index()].push_back(Watcher{ref, c[0]});
}

void Solver::detachClause(ClauseRef ref) {
  const Clause& c = ca_.at(ref);
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~c[i]).index()];
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].ref == ref) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool Solver::locked(ClauseRef ref) const {
  const Clause& c = ca_.at(ref);
  return value(c[0]) == LBool::True && reason_[c[0].var()] == ref;
}

void Solver::removeClause(ClauseRef ref) {
  detachClause(ref);
  const Clause& c = ca_.at(ref);
  if (c.learned()) {
    ECO_OBS_COUNT("sat.learned_deleted", 1);
    ECO_OBS_OBSERVE("sat.learned_lifetime",
                    stats_conflicts_ - clause_birth_[c.id()]);
  }
  ca_.free(ref);
}

ClauseId Solver::addClause(std::span<const SLit> in_lits) {
  ECO_CHECK_MSG(decisionLevel() == 0, "clauses may only be added at the root level");
  if (!ok_) return kNoClause;

  // Normalize: sort, deduplicate, drop tautologies and satisfied clauses.
  std::vector<SLit> lits(in_lits.begin(), in_lits.end());
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i].var() == lits[i + 1].var()) return kNoClause;  // l and ~l
  }
  for (SLit l : lits) {
    ECO_CHECK(l.var() < numVars());
    ECO_CHECK_MSG(!eliminated_[l.var()],
                  "clause mentions a preprocessing-eliminated variable; "
                  "freeze such variables before the first solve");
    if (value(l) == LBool::True) return kNoClause;  // satisfied at root
  }
  // Root-false literals are *kept* (required for sound proof logging); put
  // free literals first so they take the watch positions.
  std::stable_partition(lits.begin(), lits.end(),
                        [&](SLit l) { return value(l) == LBool::Undef; });
  const std::size_t n_free =
      static_cast<std::size_t>(std::count_if(lits.begin(), lits.end(), [&](SLit l) {
        return value(l) == LBool::Undef;
      }));

  const ClauseRef ref = allocClause(lits, /*learned=*/false);
  const ClauseId id = ca_.at(ref).id();
  if (n_free == 0) {
    // Falsified at the root: the formula is unsatisfiable.
    if (log_proof_) deriveRootConflict(ref);
    ok_ = false;
    return id;
  }
  if (lits.size() >= 2) attachClause(ref);
  if (n_free == 1) {
    enqueue(lits[0], ref);
    if (const ClauseRef confl = propagate(); confl != kNoRef) {
      if (log_proof_) deriveRootConflict(confl);
      ok_ = false;
    }
  }
  return id;
}

void Solver::enqueue(SLit l, ClauseRef reason) {
  ECO_CHECK(value(l) == LBool::Undef);
  const Var v = l.var();
  assigns_[v] = lboolOf(!l.sign());
  level_[v] = decisionLevel();
  reason_[v] = reason;
  trail_pos_[v] = static_cast<std::uint32_t>(trail_.size());
  trail_.push_back(l);
}

ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const SLit p = trail_[qhead_++];
    ++stats_propagations_;
    auto& ws = watches_[p.index()];  // clauses watching ~p (now false)
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      // Blocker check: clause already satisfied.
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = ca_.at(w.ref);
      const SLit false_lit = ~p;
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      // c[1] == false_lit now.
      if (value(c[0]) == LBool::True) {
        ws[keep++] = Watcher{w.ref, c[0]};
        continue;
      }
      // Find a replacement watch.
      bool moved = false;
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(c[k]) != LBool::False) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).index()].push_back(Watcher{w.ref, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[keep++] = Watcher{w.ref, c[0]};
      if (value(c[0]) == LBool::False) {
        // Conflict: restore remaining watchers and report.
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = static_cast<std::uint32_t>(trail_.size());
        return w.ref;
      }
      enqueue(c[0], w.ref);
    }
    ws.resize(keep);
  }
  return kNoRef;
}

void Solver::cancelUntil(std::uint32_t target) {
  if (decisionLevel() <= target) return;
  for (std::size_t i = trail_.size(); i > trail_lim_[target];) {
    --i;
    const Var v = trail_[i].var();
    assigns_[v] = LBool::Undef;
    picker_.savePhase(v, trail_[i].sign());
    reason_[v] = kNoRef;
    picker_.insert(v);
  }
  trail_.resize(trail_lim_[target]);
  trail_lim_.resize(target);
  qhead_ = static_cast<std::uint32_t>(trail_.size());
}

void Solver::bumpClause(ClauseRef ref) {
  Clause& c = ca_.at(ref);
  if (!c.learned()) return;
  c.setActivity(c.activity() + static_cast<float>(clause_inc_));
  if (c.activity() > static_cast<float>(kClauseRescaleLimit)) {
    for (const ClauseRef r : clause_refs_) {
      if (r == kNoRef) continue;
      Clause& cl = ca_.at(r);
      if (cl.learned() && !cl.deleted()) cl.setActivity(cl.activity() * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

std::uint32_t Solver::computeLbd(std::span<const SLit> lits) {
  // Number of distinct decision levels among the (assigned) literals —
  // Audemard & Simon's literal-block distance.
  ++lbd_stamp_gen_;
  std::uint32_t lbd = 0;
  for (const SLit l : lits) {
    const std::uint32_t lvl = level_[l.var()];
    if (lbd_stamp_[lvl] != lbd_stamp_gen_) {
      lbd_stamp_[lvl] = lbd_stamp_gen_;
      ++lbd;
    }
  }
  return lbd;
}

// --- analysis ----------------------------------------------------------------

void Solver::analyze(ClauseRef confl, std::vector<SLit>& learnt,
                     std::uint32_t& bt_level, ProofChain& chain) {
  learnt.clear();
  learnt.push_back(SLit());  // slot for the asserting literal
  chain.start = ca_.at(confl).id();
  chain.steps.clear();
  std::vector<Var> level0_vars;  // root-level vars to resolve away at the end
  std::vector<Var> to_clear;

  std::uint32_t counter = 0;
  std::size_t trail_index = trail_.size();
  SLit p;  // undefined on the first round: take the whole conflict clause

  for (;;) {
    ECO_CHECK(confl != kNoRef);
    bumpClause(confl);
    {
      // Dynamic LBD tightening (Glucose): a learned antecedent involved in
      // a conflict gets its LBD refreshed when the current assignment gives
      // a better (smaller) value, improving its survival odds in reduceDb.
      Clause& c = ca_.at(confl);
      if (c.learned() && c.lbd() > kGlueLbd) {
        const std::uint32_t lbd = computeLbd(c.lits());
        if (lbd < c.lbd()) c.setLbd(lbd);
      }
    }
    for (const SLit q : ca_.at(confl).lits()) {
      // Skip the pivot: the reason clause contains the propagated literal p
      // itself (the running clause holds ~p).
      if (p.defined() && q == p) continue;
      const Var v = q.var();
      if (seen_[v]) continue;
      if (level_[v] == 0) {
        // Root-level literal: excluded from the learned clause; the proof
        // must resolve it away with root-level reasons.
        seen_[v] = 1;
        to_clear.push_back(v);
        if (log_proof_) level0_vars.push_back(v);
        continue;
      }
      seen_[v] = 1;
      to_clear.push_back(v);
      picker_.bump(v);
      if (level_[v] == decisionLevel()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Select the next literal (at the current level) to resolve on.
    while (!seen_[trail_[trail_index - 1].var()] ||
           level_[trail_[trail_index - 1].var()] != decisionLevel()) {
      --trail_index;
    }
    p = trail_[--trail_index];
    seen_[p.var()] = 0;
    --counter;
    if (counter == 0) break;
    confl = reason_[p.var()];
    if (log_proof_) chain.steps.push_back({p.var(), ca_.at(confl).id()});
  }
  learnt[0] = ~p;

  // Cheap self-subsumption minimization: drop a literal whose reason clause
  // is covered by the remaining clause (plus root-level literals).
  std::size_t w = 1;
  std::vector<std::pair<std::uint32_t, SLit>> removed;  // (trail pos, lit)
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (litRedundant(learnt[i])) {
      removed.push_back({trail_pos_[learnt[i].var()], learnt[i]});
    } else {
      learnt[w++] = learnt[i];
    }
  }
  learnt.resize(w);
  if (log_proof_ && !removed.empty()) {
    // Emit minimization steps in decreasing trail order so every pivot is
    // still present in the running clause during replay.
    std::sort(removed.begin(), removed.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [pos, lit] : removed) {
      (void)pos;
      const ClauseRef r = reason_[lit.var()];
      chain.steps.push_back({lit.var(), ca_.at(r).id()});
      for (const SLit q : ca_.at(r).lits()) {
        const Var v = q.var();
        if (level_[v] == 0 && !seen_[v]) {
          seen_[v] = 1;
          to_clear.push_back(v);
          level0_vars.push_back(v);
        }
      }
    }
  }

  // Resolve away accumulated root-level literals, walking the root trail
  // segment backwards so each reason only introduces earlier literals.
  if (log_proof_ && !level0_vars.empty()) {
    const std::size_t root_end = trail_lim_.empty() ? trail_.size() : trail_lim_[0];
    for (std::size_t i = root_end; i > 0;) {
      --i;
      const Var v = trail_[i].var();
      if (!seen_[v] || level_[v] != 0) continue;
      bool is_level0_target = false;
      for (const Var lv : level0_vars) {
        if (lv == v) { is_level0_target = true; break; }
      }
      if (!is_level0_target) continue;
      const ClauseRef r = reason_[v];
      ECO_CHECK_MSG(r != kNoRef, "root-level literal without a reason");
      chain.steps.push_back({v, ca_.at(r).id()});
      for (const SLit q : ca_.at(r).lits()) {
        const Var qv = q.var();
        if (qv == v) continue;
        if (!seen_[qv]) {
          seen_[qv] = 1;
          to_clear.push_back(qv);
          level0_vars.push_back(qv);
        }
      }
    }
  }

  for (const Var v : to_clear) seen_[v] = 0;

  // Backtrack level: second-highest level in the learned clause.
  bt_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].var()];
  }
}

bool Solver::litRedundant(SLit l) {
  const ClauseRef r = reason_[l.var()];
  if (r == kNoRef) return false;
  for (const SLit q : ca_.at(r).lits()) {
    if (q == ~l) continue;
    const Var v = q.var();
    if (level_[v] == 0) continue;
    if (!seen_[v]) return false;
  }
  return true;
}

void Solver::analyzeFinal(SLit p) {
  // p is a (propagated-to-false) assumption literal; compute which earlier
  // assumptions force ~p.
  conflict_core_.clear();
  conflict_core_.push_back(p);
  if (decisionLevel() == 0) return;
  std::vector<Var> to_clear;
  seen_[p.var()] = 1;
  to_clear.push_back(p.var());
  for (std::size_t i = trail_.size(); i > trail_lim_[0];) {
    --i;
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason_[v] == kNoRef) {
      // Decision => an assumption. Report the assumption literal as taken.
      if (trail_[i] != ~p) conflict_core_.push_back(trail_[i]);
    } else {
      for (const SLit q : ca_.at(reason_[v]).lits()) {
        if (q.var() == v) continue;
        if (level_[q.var()] > 0 && !seen_[q.var()]) {
          seen_[q.var()] = 1;
          to_clear.push_back(q.var());
        }
      }
    }
  }
  for (const Var v : to_clear) seen_[v] = 0;
}

void Solver::deriveRootConflict(ClauseRef confl) {
  ProofChain& chain = proof_.empty_clause;
  chain.start = ca_.at(confl).id();
  chain.steps.clear();
  std::vector<std::uint8_t>& seen = seen_;
  std::vector<Var> to_clear;
  for (const SLit q : ca_.at(confl).lits()) {
    ECO_CHECK(value(q) == LBool::False && level_[q.var()] == 0);
    if (!seen[q.var()]) {
      seen[q.var()] = 1;
      to_clear.push_back(q.var());
    }
  }
  for (std::size_t i = trail_.size(); i > 0;) {
    --i;
    const Var v = trail_[i].var();
    if (!seen[v]) continue;
    const ClauseRef r = reason_[v];
    ECO_CHECK_MSG(r != kNoRef, "root conflict literal without a reason");
    chain.steps.push_back({v, ca_.at(r).id()});
    for (const SLit q : ca_.at(r).lits()) {
      if (q.var() == v) continue;
      if (!seen[q.var()]) {
        seen[q.var()] = 1;
        to_clear.push_back(q.var());
      }
    }
  }
  for (const Var v : to_clear) seen[v] = 0;
  proof_.has_empty_clause = true;
}

// --- clause database reduction & arena compaction ----------------------------

void Solver::reduceDb() {
  // Delete the worst half of the deletable learned clauses. "Worst" is
  // highest LBD first, lowest activity as the tiebreak (Glucose ordering).
  // Glue clauses (LBD <= kGlueLbd), binary clauses, and clauses locked as
  // the reason of a current assignment are exempt.
  std::vector<ClauseRef> deletable;
  for (const ClauseRef ref : clause_refs_) {
    if (ref == kNoRef) continue;
    const Clause& c = ca_.at(ref);
    if (!c.learned() || c.deleted() || c.size() <= 2) continue;
    if (c.lbd() <= kGlueLbd) continue;
    if (locked(ref)) continue;
    deletable.push_back(ref);
  }
  std::sort(deletable.begin(), deletable.end(), [&](ClauseRef a, ClauseRef b) {
    const Clause& ca = ca_.at(a);
    const Clause& cb = ca_.at(b);
    if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
    return ca.activity() < cb.activity();
  });
  const std::size_t n_remove = deletable.size() / 2;
  for (std::size_t i = 0; i < n_remove; ++i) removeClause(deletable[i]);
  num_learned_ -= static_cast<std::uint32_t>(n_remove);
  reduce_db_limit_ += kReduceDbInc;
  ++stats_db_reductions_;
  ECO_OBS_COUNT("sat.db_reductions", 1);
  maybeGarbageCollect();
}

void Solver::maybeGarbageCollect() {
  // Compact once a fifth of the arena is dead words.
  if (ca_.wastedWords() * 5 >= ca_.sizeWords() && ca_.wastedWords() > 0) {
    garbageCollect();
  }
}

void Solver::garbageCollect() {
  ClauseAllocator to;
  to.reserveWords(ca_.sizeWords() - ca_.wastedWords());
  // Watch lists hold only attached (live) clauses.
  for (auto& ws : watches_) {
    for (Watcher& w : ws) ca_.relocate(w.ref, to);
  }
  // Reasons of assigned variables; reason clauses are locked, hence live.
  for (const SLit l : trail_) {
    ClauseRef& r = reason_[l.var()];
    if (r != kNoRef) ca_.relocate(r, to);
  }
  // The stable id -> ref table: dead clauses are dropped here, live ones
  // (including unattached unit/root clauses kept for proof logging) move.
  for (ClauseRef& ref : clause_refs_) {
    if (ref == kNoRef) continue;
    const Clause& c = ca_.at(ref);
    if (c.deleted() && !c.reloced()) {
      ref = kNoRef;
      continue;
    }
    ca_.relocate(ref, to);
  }
  ca_ = std::move(to);
  ++stats_gcs_;
  ECO_OBS_COUNT("sat.arena_gcs", 1);
  runAuditHook(*this, "gc");
}

// --- search --------------------------------------------------------------------

Status Solver::search() {
  std::uint64_t restart_conflicts = 0;
  std::uint64_t restart_limit = 128 * luby(0);
  std::uint64_t restart_round = 0;
  std::vector<SLit> learnt;

  for (;;) {
    const ClauseRef confl = propagate();
    if (confl != kNoRef) {
      ++stats_conflicts_;
      ++restart_conflicts;
      // Live progress for long queries (status API / postmortems): one
      // relaxed store every 1024 conflicts keeps the hot loop unaffected.
      if ((stats_conflicts_ & 1023) == 0) {
        ECO_OBS_GAUGE_SET("sat.query_conflicts_live",
                          static_cast<std::int64_t>(stats_conflicts_ -
                                                    solve_start_conflicts_));
      }
      if (decisionLevel() == 0) {
        if (log_proof_) deriveRootConflict(confl);
        ok_ = false;
        conflict_core_.clear();
        return Status::Unsat;
      }
      std::uint32_t bt_level = 0;
      ProofChain chain;
      analyze(confl, learnt, bt_level, chain);
      cancelUntil(bt_level);
      const std::uint32_t lbd = computeLbd(learnt);
      ECO_OBS_OBSERVE("sat.learned_lbd", lbd);
      if (learnt.size() == 1) {
        const ClauseRef ref = allocClause(learnt, /*learned=*/true);
        if (log_proof_) proof_.chains[ca_.at(ref).id()] = std::move(chain);
        cancelUntil(0);
        if (value(learnt[0]) == LBool::Undef) enqueue(learnt[0], ref);
      } else {
        const ClauseRef ref = allocClause(learnt, /*learned=*/true);
        Clause& c = ca_.at(ref);
        c.setLbd(lbd);
        if (log_proof_) proof_.chains[c.id()] = std::move(chain);
        attachClause(ref);
        bumpClause(ref);
        ++num_learned_;
        enqueue(learnt[0], ref);
      }
      picker_.decay();
      clause_inc_ /= kClauseDecay;
      if (clause_inc_ > kClauseRescaleLimit) {
        // The increment grows every conflict whether or not any learned
        // clause was bumped; rescale it (and the activities, to keep their
        // relative order against future bumps) before it reaches infinity.
        for (const ClauseRef r : clause_refs_) {
          if (r == kNoRef) continue;
          Clause& cl = ca_.at(r);
          if (cl.learned() && !cl.deleted()) {
            cl.setActivity(cl.activity() * 1e-20f);
          }
        }
        clause_inc_ *= 1e-20;
      }
      if (conflict_budget_ >= 0 &&
          stats_conflicts_ - solve_start_conflicts_ >=
              static_cast<std::uint64_t>(conflict_budget_)) {
        cancelUntil(0);
        return Status::Undef;
      }
      if (restart_conflicts >= restart_limit) {
        restart_conflicts = 0;
        restart_limit = 128 * luby(++restart_round);
        ++stats_restarts_;
        cancelUntil(0);
      }
      continue;
    }

    if (!log_proof_ && num_learned_ >= reduce_db_limit_) reduceDb();

    // Establish assumptions, then decide.
    SLit next;
    while (decisionLevel() < assumptions_.size()) {
      const SLit p = assumptions_[decisionLevel()];
      if (value(p) == LBool::True) {
        trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      } else if (value(p) == LBool::False) {
        analyzeFinal(p);
        return Status::Unsat;
      } else {
        next = p;
        break;
      }
    }
    if (!next.defined()) {
      const Var v = picker_.pick([&](Var u) { return value(u) == LBool::Undef; });
      if (v == VsidsPicker::kNoVar) {
        // All decidable variables assigned: a model. Eliminated variables
        // are reconstructed from the remapper in solve().
        model_ = assigns_;
        return Status::Sat;
      }
      ++stats_decisions_;
      next = SLit::make(v, picker_.savedPhase(v));
    }
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(next, kNoRef);
  }
}

Status Solver::solve(std::span<const SLit> assumptions) {
  ECO_CHECK_MSG(!log_proof_ || assumptions.empty(),
                "proof logging supports assumption-free solving only");
  conflict_core_.clear();
  if (preprocess_ && !preprocessed_ && ok_) {
    preprocessed_ = true;
    obs::Span pre_span("sat.preprocess");
    pre_stats_ = Preprocessor().run(*this);
    pre_span.arg("eliminated", pre_stats_.eliminated_vars);
    ECO_OBS_COUNT("sat.pre_runs", 1);
    ECO_OBS_COUNT("sat.pre_eliminated_vars", pre_stats_.eliminated_vars);
    ECO_OBS_COUNT("sat.pre_pure_literals", pre_stats_.pure_literals);
    ECO_OBS_COUNT("sat.pre_removed_clauses", pre_stats_.removed_clauses);
    ECO_OBS_COUNT("sat.pre_resolvents", pre_stats_.added_resolvents);
    ECO_OBS_COUNT("sat.pre_strengthened_lits", pre_stats_.strengthened_lits);
    ECO_OBS_COUNT("sat.pre_units", pre_stats_.propagated_units);
    if (ok_) runAuditHook(*this, "preprocess");
  }
  if (!ok_) return Status::Unsat;
  for (const SLit a : assumptions) {
    ECO_CHECK_MSG(!eliminated_[a.var()],
                  "assumption on an eliminated variable; freeze assumption "
                  "variables before the first solve");
  }
  obs::Span span("sat.solve");
  const std::uint64_t conflicts0 = stats_conflicts_;
  const std::uint64_t decisions0 = stats_decisions_;
  const std::uint64_t propagations0 = stats_propagations_;
  const std::uint64_t restarts0 = stats_restarts_;
  solve_start_conflicts_ = stats_conflicts_;
  // Live status: conflicts into the running query vs. its budget (0 = no
  // budget). Last-writer-wins across concurrent solvers, matching the
  // "what is happening right now" semantics of the status API.
  ECO_OBS_GAUGE_SET("sat.query_conflicts_live", 0);
  ECO_OBS_GAUGE_SET("sat.query_budget",
                    conflict_budget_ >= 0 ? conflict_budget_ : 0);
  assumptions_.assign(assumptions.begin(), assumptions.end());
  const Status result = search();
  cancelUntil(0);
  assumptions_.clear();
  if (result == Status::Sat && !remapper_.empty()) {
    remapper_.extendModel(model_);
  }

  // Per-query effort accounting (DESIGN.md "Observability"): counters sum
  // process-wide work, histograms keep the per-query distributions.
  const std::uint64_t d_conflicts = stats_conflicts_ - conflicts0;
  ECO_OBS_COUNT("sat.solve_calls", 1);
  ECO_OBS_COUNT("sat.conflicts", d_conflicts);
  ECO_OBS_COUNT("sat.decisions", stats_decisions_ - decisions0);
  ECO_OBS_COUNT("sat.propagations", stats_propagations_ - propagations0);
  ECO_OBS_COUNT("sat.restarts", stats_restarts_ - restarts0);
  ECO_OBS_OBSERVE("sat.query_conflicts", d_conflicts);
  ECO_OBS_OBSERVE("sat.query_decisions", stats_decisions_ - decisions0);
  ECO_OBS_OBSERVE("sat.query_propagations", stats_propagations_ - propagations0);
  switch (result) {
    case Status::Sat: ECO_OBS_COUNT("sat.result_sat", 1); break;
    case Status::Unsat: ECO_OBS_COUNT("sat.result_unsat", 1); break;
    case Status::Undef: ECO_OBS_COUNT("sat.result_undef", 1); break;
  }
  span.arg("conflicts", d_conflicts);
  return result;
}

}  // namespace eco::sat
