#include "sat/solver.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eco::sat {

namespace {

constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;

// Luby restart sequence (unit = 128 conflicts).
std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence that contains index i, then the index
  // within that subsequence.
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace

Solver::Solver(bool log_proof) : log_proof_(log_proof) {}

Var Solver::newVar() {
  const Var v = numVars();
  assigns_.push_back(LBool::Undef);
  model_.push_back(LBool::Undef);
  polarity_.push_back(true);  // default phase: false (MiniSat convention)
  level_.push_back(0);
  reason_.push_back(kNoClause);
  trail_pos_.push_back(0);
  activity_.push_back(0.0);
  heap_pos_.push_back(kNotInHeap);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heapInsert(v);
  return v;
}

ClauseId Solver::allocClause(std::span<const SLit> lits, bool learned) {
  Clause c;
  c.begin = static_cast<std::uint32_t>(lit_pool_.size());
  c.size = static_cast<std::uint32_t>(lits.size());
  c.learned = learned;
  lit_pool_.insert(lit_pool_.end(), lits.begin(), lits.end());
  const auto id = static_cast<ClauseId>(clauses_.size());
  clauses_.push_back(c);
  clause_birth_.push_back(stats_conflicts_);
  if (log_proof_) proof_.chains.emplace_back();
  if (learned) ECO_OBS_COUNT("sat.learned_clauses", 1);
  return id;
}

void Solver::attachClause(ClauseId id) {
  const Clause& c = clauses_[id];
  ECO_CHECK(c.size >= 2);
  const SLit* lits = lit_pool_.data() + c.begin;
  watches_[(~lits[0]).index()].push_back(Watcher{id, lits[1]});
  watches_[(~lits[1]).index()].push_back(Watcher{id, lits[0]});
}

void Solver::detachClause(ClauseId id) {
  const Clause& c = clauses_[id];
  const SLit* lits = lit_pool_.data() + c.begin;
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~lits[i]).index()];
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == id) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::removeClause(ClauseId id) {
  detachClause(id);
  clauses_[id].deleted = true;
  if (clauses_[id].learned) {
    ECO_OBS_COUNT("sat.learned_deleted", 1);
    ECO_OBS_OBSERVE("sat.learned_lifetime", stats_conflicts_ - clause_birth_[id]);
  }
}

ClauseId Solver::addClause(std::span<const SLit> in_lits) {
  ECO_CHECK_MSG(decisionLevel() == 0, "clauses may only be added at the root level");
  if (!ok_) return kNoClause;

  // Normalize: sort, deduplicate, drop tautologies and satisfied clauses.
  std::vector<SLit> lits(in_lits.begin(), in_lits.end());
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i].var() == lits[i + 1].var()) return kNoClause;  // l and ~l
  }
  for (SLit l : lits) {
    ECO_CHECK(l.var() < numVars());
    if (value(l) == LBool::True) return kNoClause;  // satisfied at root
  }
  // Root-false literals are *kept* (required for sound proof logging); put
  // free literals first so they take the watch positions.
  std::stable_partition(lits.begin(), lits.end(),
                        [&](SLit l) { return value(l) == LBool::Undef; });
  const std::size_t n_free =
      static_cast<std::size_t>(std::count_if(lits.begin(), lits.end(), [&](SLit l) {
        return value(l) == LBool::Undef;
      }));

  const ClauseId id = allocClause(lits, /*learned=*/false);
  if (n_free == 0) {
    // Falsified at the root: the formula is unsatisfiable.
    if (log_proof_) deriveRootConflict(id);
    ok_ = false;
    return id;
  }
  if (lits.size() >= 2) attachClause(id);
  if (n_free == 1) {
    enqueue(lits[0], id);
    if (const ClauseId confl = propagate(); confl != kNoClause) {
      if (log_proof_) deriveRootConflict(confl);
      ok_ = false;
    }
  }
  return id;
}

void Solver::enqueue(SLit l, ClauseId reason) {
  ECO_CHECK(value(l) == LBool::Undef);
  const Var v = l.var();
  assigns_[v] = lboolOf(!l.sign());
  level_[v] = decisionLevel();
  reason_[v] = reason;
  trail_pos_[v] = static_cast<std::uint32_t>(trail_.size());
  trail_.push_back(l);
}

ClauseId Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const SLit p = trail_[qhead_++];
    ++stats_propagations_;
    auto& ws = watches_[p.index()];  // clauses watching ~p (now false)
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      // Blocker check: clause already satisfied.
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      SLit* lits = lit_pool_.data() + c.begin;
      const SLit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      // lits[1] == false_lit now.
      if (value(lits[0]) == LBool::True) {
        ws[keep++] = Watcher{w.clause, lits[0]};
        continue;
      }
      // Find a replacement watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < c.size; ++k) {
        if (value(lits[k]) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).index()].push_back(Watcher{w.clause, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[keep++] = Watcher{w.clause, lits[0]};
      if (value(lits[0]) == LBool::False) {
        // Conflict: restore remaining watchers and report.
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = static_cast<std::uint32_t>(trail_.size());
        return w.clause;
      }
      enqueue(lits[0], w.clause);
    }
    ws.resize(keep);
  }
  return kNoClause;
}

void Solver::cancelUntil(std::uint32_t target) {
  if (decisionLevel() <= target) return;
  for (std::size_t i = trail_.size(); i > trail_lim_[target];) {
    --i;
    const Var v = trail_[i].var();
    assigns_[v] = LBool::Undef;
    polarity_[v] = trail_[i].sign();
    reason_[v] = kNoClause;
    if (!heapContains(v)) heapInsert(v);
  }
  trail_.resize(trail_lim_[target]);
  trail_lim_.resize(target);
  qhead_ = static_cast<std::uint32_t>(trail_.size());
}

void Solver::bumpVar(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kRescaleLimit) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heapContains(v)) heapDecrease(v);
}

void Solver::decayVarActivities() { var_inc_ /= kVarDecay; }

void Solver::bumpClause(ClauseId id) {
  Clause& c = clauses_[id];
  if (!c.learned) return;
  c.activity += static_cast<float>(clause_inc_);
  if (c.activity > 1e20f) {
    for (auto& cl : clauses_) {
      if (cl.learned) cl.activity *= 1e-20f;
    }
    clause_inc_ *= 1e-20;
  }
}

// --- analysis ----------------------------------------------------------------

void Solver::analyze(ClauseId confl, std::vector<SLit>& learnt,
                     std::uint32_t& bt_level, ProofChain& chain) {
  learnt.clear();
  learnt.push_back(SLit());  // slot for the asserting literal
  chain.start = confl;
  chain.steps.clear();
  level0_steps_.clear();
  std::vector<Var> level0_vars;  // root-level vars to resolve away at the end
  std::vector<Var> to_clear;

  std::uint32_t counter = 0;
  std::size_t trail_index = trail_.size();
  SLit p;  // undefined on the first round: take the whole conflict clause

  for (;;) {
    ECO_CHECK(confl != kNoClause);
    bumpClause(confl);
    for (const SLit q : clauseLits(confl)) {
      // Skip the pivot: the reason clause contains the propagated literal p
      // itself (the running clause holds ~p).
      if (p.defined() && q == p) continue;
      const Var v = q.var();
      if (seen_[v]) continue;
      if (level_[v] == 0) {
        // Root-level literal: excluded from the learned clause; the proof
        // must resolve it away with root-level reasons.
        seen_[v] = 1;
        to_clear.push_back(v);
        if (log_proof_) level0_vars.push_back(v);
        continue;
      }
      seen_[v] = 1;
      to_clear.push_back(v);
      bumpVar(v);
      if (level_[v] == decisionLevel()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Select the next literal (at the current level) to resolve on.
    while (!seen_[trail_[trail_index - 1].var()] ||
           level_[trail_[trail_index - 1].var()] != decisionLevel()) {
      --trail_index;
    }
    p = trail_[--trail_index];
    seen_[p.var()] = 0;
    --counter;
    if (counter == 0) break;
    confl = reason_[p.var()];
    if (log_proof_) chain.steps.push_back({p.var(), confl});
  }
  learnt[0] = ~p;

  // Cheap self-subsumption minimization: drop a literal whose reason clause
  // is covered by the remaining clause (plus root-level literals).
  std::vector<SLit> scratch;
  std::size_t w = 1;
  std::vector<std::pair<std::uint32_t, SLit>> removed;  // (trail pos, lit)
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (litRedundant(learnt[i], scratch)) {
      removed.push_back({trail_pos_[learnt[i].var()], learnt[i]});
    } else {
      learnt[w++] = learnt[i];
    }
  }
  learnt.resize(w);
  if (log_proof_ && !removed.empty()) {
    // Emit minimization steps in decreasing trail order so every pivot is
    // still present in the running clause during replay.
    std::sort(removed.begin(), removed.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [pos, lit] : removed) {
      (void)pos;
      const ClauseId r = reason_[lit.var()];
      chain.steps.push_back({lit.var(), r});
      for (const SLit q : clauseLits(r)) {
        const Var v = q.var();
        if (level_[v] == 0 && !seen_[v]) {
          seen_[v] = 1;
          to_clear.push_back(v);
          level0_vars.push_back(v);
        }
      }
    }
  }

  // Resolve away accumulated root-level literals, walking the root trail
  // segment backwards so each reason only introduces earlier literals.
  if (log_proof_ && !level0_vars.empty()) {
    const std::size_t root_end = trail_lim_.empty() ? trail_.size() : trail_lim_[0];
    for (std::size_t i = root_end; i > 0;) {
      --i;
      const Var v = trail_[i].var();
      if (!seen_[v] || level_[v] != 0) continue;
      bool is_level0_target = false;
      for (const Var lv : level0_vars) {
        if (lv == v) { is_level0_target = true; break; }
      }
      if (!is_level0_target) continue;
      const ClauseId r = reason_[v];
      ECO_CHECK_MSG(r != kNoClause, "root-level literal without a reason");
      chain.steps.push_back({v, r});
      for (const SLit q : clauseLits(r)) {
        const Var qv = q.var();
        if (qv == v) continue;
        if (!seen_[qv]) {
          seen_[qv] = 1;
          to_clear.push_back(qv);
          level0_vars.push_back(qv);
        }
      }
    }
  }

  for (const Var v : to_clear) seen_[v] = 0;

  // Backtrack level: second-highest level in the learned clause.
  bt_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].var()];
  }
}

bool Solver::litRedundant(SLit l, std::vector<SLit>& scratch) {
  (void)scratch;
  const ClauseId r = reason_[l.var()];
  if (r == kNoClause) return false;
  for (const SLit q : clauseLits(r)) {
    if (q == ~l) continue;
    const Var v = q.var();
    if (level_[v] == 0) continue;
    if (!seen_[v]) return false;
  }
  return true;
}

void Solver::analyzeFinal(SLit p) {
  // p is a (propagated-to-false) assumption literal; compute which earlier
  // assumptions force ~p.
  conflict_core_.clear();
  conflict_core_.push_back(p);
  if (decisionLevel() == 0) return;
  std::vector<Var> to_clear;
  seen_[p.var()] = 1;
  to_clear.push_back(p.var());
  for (std::size_t i = trail_.size(); i > trail_lim_[0];) {
    --i;
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason_[v] == kNoClause) {
      // Decision => an assumption. Report the assumption literal as taken.
      if (trail_[i] != ~p) conflict_core_.push_back(trail_[i]);
    } else {
      for (const SLit q : clauseLits(reason_[v])) {
        if (q.var() == v) continue;
        if (level_[q.var()] > 0 && !seen_[q.var()]) {
          seen_[q.var()] = 1;
          to_clear.push_back(q.var());
        }
      }
    }
  }
  for (const Var v : to_clear) seen_[v] = 0;
}

void Solver::deriveRootConflict(ClauseId confl) {
  ProofChain& chain = proof_.empty_clause;
  chain.start = confl;
  chain.steps.clear();
  std::vector<std::uint8_t>& seen = seen_;
  std::vector<Var> to_clear;
  for (const SLit q : clauseLits(confl)) {
    ECO_CHECK(value(q) == LBool::False && level_[q.var()] == 0);
    if (!seen[q.var()]) {
      seen[q.var()] = 1;
      to_clear.push_back(q.var());
    }
  }
  for (std::size_t i = trail_.size(); i > 0;) {
    --i;
    const Var v = trail_[i].var();
    if (!seen[v]) continue;
    const ClauseId r = reason_[v];
    ECO_CHECK_MSG(r != kNoClause, "root conflict literal without a reason");
    chain.steps.push_back({v, r});
    for (const SLit q : clauseLits(r)) {
      if (q.var() == v) continue;
      if (!seen[q.var()]) {
        seen[q.var()] = 1;
        to_clear.push_back(q.var());
      }
    }
  }
  for (const Var v : to_clear) seen[v] = 0;
  proof_.has_empty_clause = true;
}

// --- decision heap -------------------------------------------------------------

void Solver::heapInsert(Var v) {
  heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(v);
  heapPercolateUp(heap_pos_[v]);
}

Var Solver::heapPop() {
  const Var top = heap_[0];
  heap_pos_[top] = kNotInHeap;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heapPercolateDown(0);
  }
  return top;
}

void Solver::heapDecrease(Var v) { heapPercolateUp(heap_pos_[v]); }

void Solver::heapPercolateUp(std::uint32_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::uint32_t parent = (i - 1) >> 1;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heapPercolateDown(std::uint32_t i) {
  const Var v = heap_[i];
  const auto n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

Var Solver::pickBranchVar() {
  while (!heap_.empty()) {
    const Var v = heapPop();
    if (value(v) == LBool::Undef) return v;
  }
  return static_cast<Var>(kNotInHeap);
}

// --- clause database reduction ----------------------------------------------

void Solver::reduceDb() {
  // Keep roughly half of the learned clauses, preferring active ones.
  std::vector<ClauseId> learned;
  for (ClauseId id = 0; id < clauses_.size(); ++id) {
    const Clause& c = clauses_[id];
    if (!c.learned || c.deleted || c.size <= 2) continue;
    // Locked clauses (reason of a current assignment) must stay.
    const SLit first = lit_pool_[c.begin];
    if (value(first) == LBool::True && reason_[first.var()] == id) continue;
    learned.push_back(id);
  }
  std::sort(learned.begin(), learned.end(), [&](ClauseId a, ClauseId b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  const std::size_t n_remove = learned.size() / 2;
  for (std::size_t i = 0; i < n_remove; ++i) removeClause(learned[i]);
  num_learned_ -= static_cast<std::uint32_t>(n_remove);
}

// --- search --------------------------------------------------------------------

Status Solver::search() {
  std::uint64_t restart_conflicts = 0;
  std::uint64_t restart_limit = 128 * luby(0);
  std::uint64_t restart_round = 0;
  std::vector<SLit> learnt;

  for (;;) {
    const ClauseId confl = propagate();
    if (confl != kNoClause) {
      ++stats_conflicts_;
      ++restart_conflicts;
      if (decisionLevel() == 0) {
        if (log_proof_) deriveRootConflict(confl);
        ok_ = false;
        conflict_core_.clear();
        return Status::Unsat;
      }
      std::uint32_t bt_level = 0;
      ProofChain chain;
      analyze(confl, learnt, bt_level, chain);
      cancelUntil(bt_level);
      if (learnt.size() == 1) {
        const ClauseId id = allocClause(learnt, /*learned=*/true);
        if (log_proof_) proof_.chains[id] = std::move(chain);
        cancelUntil(0);
        if (value(learnt[0]) == LBool::Undef) enqueue(learnt[0], id);
      } else {
        const ClauseId id = allocClause(learnt, /*learned=*/true);
        if (log_proof_) proof_.chains[id] = std::move(chain);
        attachClause(id);
        bumpClause(id);
        ++num_learned_;
        enqueue(learnt[0], id);
      }
      decayVarActivities();
      clause_inc_ /= kClauseDecay;
      if (conflict_budget_ >= 0 &&
          stats_conflicts_ - solve_start_conflicts_ >=
              static_cast<std::uint64_t>(conflict_budget_)) {
        cancelUntil(0);
        return Status::Undef;
      }
      if (restart_conflicts >= restart_limit) {
        restart_conflicts = 0;
        restart_limit = 128 * luby(++restart_round);
        ++stats_restarts_;
        cancelUntil(0);
      }
      continue;
    }

    if (!log_proof_ && num_learned_ >= max_learned_) {
      reduceDb();
      max_learned_ += max_learned_ / 10;
    }

    // Establish assumptions, then decide.
    SLit next;
    while (decisionLevel() < assumptions_.size()) {
      const SLit p = assumptions_[decisionLevel()];
      if (value(p) == LBool::True) {
        trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      } else if (value(p) == LBool::False) {
        analyzeFinal(p);
        return Status::Unsat;
      } else {
        next = p;
        break;
      }
    }
    if (!next.defined()) {
      const Var v = pickBranchVar();
      if (v == static_cast<Var>(kNotInHeap)) {
        // All variables assigned: a model.
        model_ = assigns_;
        return Status::Sat;
      }
      ++stats_decisions_;
      next = SLit::make(v, polarity_[v]);
    }
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(next, kNoClause);
  }
}

Status Solver::solve(std::span<const SLit> assumptions) {
  ECO_CHECK_MSG(!log_proof_ || assumptions.empty(),
                "proof logging supports assumption-free solving only");
  conflict_core_.clear();
  if (!ok_) return Status::Unsat;
  obs::Span span("sat.solve");
  const std::uint64_t conflicts0 = stats_conflicts_;
  const std::uint64_t decisions0 = stats_decisions_;
  const std::uint64_t propagations0 = stats_propagations_;
  const std::uint64_t restarts0 = stats_restarts_;
  solve_start_conflicts_ = stats_conflicts_;
  assumptions_.assign(assumptions.begin(), assumptions.end());
  const Status result = search();
  cancelUntil(0);
  assumptions_.clear();

  // Per-query effort accounting (DESIGN.md "Observability"): counters sum
  // process-wide work, histograms keep the per-query distributions.
  const std::uint64_t d_conflicts = stats_conflicts_ - conflicts0;
  ECO_OBS_COUNT("sat.solve_calls", 1);
  ECO_OBS_COUNT("sat.conflicts", d_conflicts);
  ECO_OBS_COUNT("sat.decisions", stats_decisions_ - decisions0);
  ECO_OBS_COUNT("sat.propagations", stats_propagations_ - propagations0);
  ECO_OBS_COUNT("sat.restarts", stats_restarts_ - restarts0);
  ECO_OBS_OBSERVE("sat.query_conflicts", d_conflicts);
  ECO_OBS_OBSERVE("sat.query_decisions", stats_decisions_ - decisions0);
  ECO_OBS_OBSERVE("sat.query_propagations", stats_propagations_ - propagations0);
  switch (result) {
    case Status::Sat: ECO_OBS_COUNT("sat.result_sat", 1); break;
    case Status::Unsat: ECO_OBS_COUNT("sat.result_unsat", 1); break;
    case Status::Undef: ECO_OBS_COUNT("sat.result_undef", 1); break;
  }
  span.arg("conflicts", d_conflicts);
  return result;
}

}  // namespace eco::sat
