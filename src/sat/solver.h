#pragma once
// CDCL SAT solver in the MiniSat lineage.
//
// Features: two-literal watching, VSIDS decision heuristic with phase
// saving, Luby restarts, first-UIP clause learning with cheap
// self-subsumption minimization, activity-based learned-clause deletion,
// incremental solving under unit assumptions with final-conflict
// (unsat-core) extraction, and optional resolution proof logging for
// Craig interpolation.
//
// Proof logging keeps every clause alive (no database reduction) and is
// restricted to assumption-free solving; interpolation queries in this
// library are always fresh, assumption-free solves.
//
// Thread safety: a Solver instance is confined to one thread at a time
// (no internal synchronization), but the class holds no static mutable
// state — all heuristic state (VSIDS activities, phase saving, restart
// schedule, clause database) lives in the instance — so any number of
// Solver instances may run concurrently on different threads. The parallel
// FRAIG sweep relies on this: it decides each candidate pair on its own
// Solver over a thread-local CNF encoding. The same instance-confinement
// guarantee holds for cnf::SolverSink/encodeCone and Rng.

#include <cstdint>
#include <span>
#include <vector>

#include "sat/proof.h"
#include "sat/types.h"

namespace eco::sat {

enum class Status { Sat, Unsat, Undef };

class Solver {
 public:
  explicit Solver(bool log_proof = false);

  // --- problem construction ----------------------------------------------

  Var newVar();
  std::uint32_t numVars() const { return static_cast<std::uint32_t>(assigns_.size()); }

  /// Adds a clause. Returns its id, or kNoClause if the clause was dropped
  /// as satisfied/tautological. Marks the solver unsatisfiable if the
  /// clause is empty or falsified at the root level.
  ClauseId addClause(std::span<const SLit> lits);
  ClauseId addClause(std::initializer_list<SLit> lits) {
    return addClause(std::span<const SLit>(lits.begin(), lits.size()));
  }

  // --- solving -------------------------------------------------------------

  Status solve(std::span<const SLit> assumptions = {});
  Status solve(std::initializer_list<SLit> assumptions) {
    return solve(std::span<const SLit>(assumptions.begin(), assumptions.size()));
  }

  /// Conflict budget for each subsequent solve() call (relative to the
  /// call's start); negative means unlimited. An exceeded budget makes
  /// solve() return Undef.
  void setConflictBudget(std::int64_t conflicts) { conflict_budget_ = conflicts; }

  // --- results --------------------------------------------------------------

  /// Model value after a Sat answer.
  LBool modelValue(SLit l) const { return model_[l.var()] ^ l.sign(); }
  LBool modelValue(Var v) const { return model_[v]; }

  /// After an Unsat answer under assumptions: the subset of assumptions
  /// (as passed in) that was used to derive the conflict.
  const std::vector<SLit>& failedAssumptions() const { return conflict_core_; }

  /// Resolution proof (only meaningful when constructed with log_proof and
  /// after an assumption-free Unsat answer).
  const Proof& proof() const { return proof_; }

  /// Literals of a clause by id (for proof replay).
  std::span<const SLit> clauseLits(ClauseId id) const {
    const Clause& c = clauses_[id];
    return std::span<const SLit>(lit_pool_.data() + c.begin, c.size);
  }

  // --- statistics ------------------------------------------------------------

  std::uint64_t numConflicts() const { return stats_conflicts_; }
  std::uint64_t numDecisions() const { return stats_decisions_; }
  std::uint64_t numPropagations() const { return stats_propagations_; }
  std::uint64_t numRestarts() const { return stats_restarts_; }

 private:
  struct Clause {
    std::uint32_t begin = 0;  ///< offset into lit_pool_
    std::uint32_t size = 0;
    float activity = 0;
    bool learned = false;
    bool deleted = false;
  };

  struct Watcher {
    ClauseId clause;
    SLit blocker;
  };

  // assignment & trail
  LBool value(SLit l) const { return assigns_[l.var()] ^ l.sign(); }
  LBool value(Var v) const { return assigns_[v]; }
  std::uint32_t decisionLevel() const {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }
  void enqueue(SLit l, ClauseId reason);
  ClauseId propagate();
  void cancelUntil(std::uint32_t level);

  // clause management
  ClauseId allocClause(std::span<const SLit> lits, bool learned);
  void attachClause(ClauseId id);
  void detachClause(ClauseId id);
  void removeClause(ClauseId id);
  void reduceDb();
  void bumpClause(ClauseId id);

  // conflict analysis
  void analyze(ClauseId confl, std::vector<SLit>& learnt, std::uint32_t& bt_level,
               ProofChain& chain);
  bool litRedundant(SLit l, std::vector<SLit>& scratch);
  void analyzeFinal(SLit p);
  /// Resolves away all remaining (root-level) literals of `confl`,
  /// producing the empty-clause chain.
  void deriveRootConflict(ClauseId confl);

  // decisions
  void bumpVar(Var v);
  void decayVarActivities();
  Var pickBranchVar();
  void heapInsert(Var v);
  Var heapPop();
  void heapDecrease(Var v);
  void heapPercolateUp(std::uint32_t i);
  void heapPercolateDown(std::uint32_t i);
  bool heapContains(Var v) const { return heap_pos_[v] != kNotInHeap; }

  Status search();

  // data
  std::vector<SLit> lit_pool_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  ///< indexed by literal index

  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<bool> polarity_;  ///< saved phases (true = last value was false)
  std::vector<std::uint32_t> level_;
  std::vector<ClauseId> reason_;
  std::vector<std::uint32_t> trail_pos_;
  std::vector<SLit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::uint32_t qhead_ = 0;

  // VSIDS heap
  std::vector<double> activity_;
  std::vector<Var> heap_;
  std::vector<std::uint32_t> heap_pos_;
  static constexpr std::uint32_t kNotInHeap = 0xFFFFFFFFu;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;

  // assumptions & core
  std::vector<SLit> assumptions_;
  std::vector<SLit> conflict_core_;

  // proof
  bool log_proof_ = false;
  Proof proof_;

  // scratch for analyze
  std::vector<std::uint8_t> seen_;
  std::vector<ProofChain::Step> level0_steps_;

  /// Conflict count at each clause's allocation; learned-clause lifetime
  /// (deletion conflicts minus birth conflicts) feeds the
  /// sat.learned_lifetime histogram when the clause is reduced away.
  std::vector<std::uint64_t> clause_birth_;

  bool ok_ = true;
  std::int64_t conflict_budget_ = -1;
  std::uint64_t solve_start_conflicts_ = 0;
  std::uint64_t stats_conflicts_ = 0;
  std::uint64_t stats_decisions_ = 0;
  std::uint64_t stats_propagations_ = 0;
  std::uint64_t stats_restarts_ = 0;
  std::uint64_t learned_since_reduce_ = 0;
  std::uint32_t num_learned_ = 0;
  std::uint32_t max_learned_ = 8192;
};

}  // namespace eco::sat
