#pragma once
// CDCL SAT solver — modern clause-management core in the MiniSat/Glucose
// lineage.
//
// Features: contiguous arena clause allocation with 32-bit clause refs and
// compacting garbage collection (clause_allocator.h), two-literal watching
// with blockers, heap-based VSIDS with phase saving (vsids_picker.h /
// min_heap.h), Luby restarts, first-UIP clause learning with cheap
// self-subsumption minimization, LBD-scored learned-clause database
// management (glue-clause protection, periodic reduction by LBD then
// activity — Audemard & Simon's literal-block distance), optional
// bounded-variable-elimination preprocessing with model reconstruction
// (sat_preprocessor.h), incremental solving under unit assumptions with
// final-conflict (unsat-core) extraction, and optional resolution proof
// logging for Craig interpolation.
//
// Identity vs location: a clause's *location* is a ClauseRef (arena word
// offset) that changes when the database is compacted; its *identity* is a
// stable ClauseId assigned at allocation, which is what the public API
// (addClause return values, clauseLits) and the resolution proof speak.
// Garbage collection rebinds every internal ref (watch lists, reasons,
// id->ref table) but never renumbers ids, so proof chains and the itp
// replay are oblivious to relocation.
//
// Proof logging keeps every clause alive (no database reduction) and is
// restricted to assumption-free solving; interpolation queries in this
// library are always fresh, assumption-free solves. Preprocessing is
// automatically gated OFF when proof logging is enabled: variable
// elimination rewrites the clause database without emitting resolution
// steps, which would break the unsat-core/interpolant replay. Interpolation
// queries therefore always solve the unpreprocessed formula.
//
// Thread safety: a Solver instance is confined to one thread at a time
// (no internal synchronization), but the class holds no static mutable
// state — all heuristic state (VSIDS activities, phase saving, restart
// schedule, clause database) lives in the instance — so any number of
// Solver instances may run concurrently on different threads. The parallel
// FRAIG sweep relies on this: it decides each candidate pair on its own
// Solver over a thread-local CNF encoding. The same instance-confinement
// guarantee holds for cnf::SolverSink/encodeCone and Rng.

#include <cstdint>
#include <span>
#include <vector>

#include "sat/clause_allocator.h"
#include "sat/proof.h"
#include "sat/sat_preprocessor.h"
#include "sat/types.h"
#include "sat/vsids_picker.h"

namespace eco::sat {

enum class Status { Sat, Unsat, Undef };

class Solver;

/// Process-global audit hook (installed by check::setGlobalLevel at the
/// paranoid level): invoked with the solver and a site tag ("gc",
/// "preprocess") after every arena compaction and preprocessing run.
/// nullptr removes the hook. The solver pays one relaxed atomic load per
/// site when no hook is installed.
using SolverAuditHook = void (*)(const Solver&, const char* site);
void setSolverAuditHook(SolverAuditHook hook);

class Solver {
 public:
  explicit Solver(bool log_proof = false);

  // --- problem construction ----------------------------------------------

  Var newVar();
  std::uint32_t numVars() const { return static_cast<std::uint32_t>(assigns_.size()); }

  /// Adds a clause. Returns its id, or kNoClause if the clause was dropped
  /// as satisfied/tautological. Marks the solver unsatisfiable if the
  /// clause is empty or falsified at the root level.
  ClauseId addClause(std::span<const SLit> lits);
  ClauseId addClause(std::initializer_list<SLit> lits) {
    return addClause(std::span<const SLit>(lits.begin(), lits.size()));
  }

  // --- preprocessing -------------------------------------------------------

  /// Enables the preprocessing pass (BCP to fixpoint, pure-literal and
  /// bounded variable elimination with model reconstruction). It runs once,
  /// lazily, at the first solve() call. Forced off (silently) when the
  /// solver logs proofs — see the header comment. Variables that later
  /// clauses or assumptions will mention, and variables whose model value
  /// must be read back without reconstruction, should be frozen first.
  void setPreprocessing(bool on) { preprocess_ = on && !log_proof_; }
  bool preprocessingEnabled() const { return preprocess_; }

  /// Protects a variable from elimination (use for assumption variables
  /// and variables occurring in clauses added after the first solve).
  void freezeVar(Var v);

  bool isEliminated(Var v) const { return eliminated_[v]; }
  const PreprocessStats& preprocessStats() const { return pre_stats_; }

  // --- solving -------------------------------------------------------------

  Status solve(std::span<const SLit> assumptions = {});
  Status solve(std::initializer_list<SLit> assumptions) {
    return solve(std::span<const SLit>(assumptions.begin(), assumptions.size()));
  }

  /// Conflict budget for each subsequent solve() call (relative to the
  /// call's start); negative means unlimited. An exceeded budget makes
  /// solve() return Undef.
  void setConflictBudget(std::int64_t conflicts) { conflict_budget_ = conflicts; }

  // --- results --------------------------------------------------------------

  /// Model value after a Sat answer. Defined for every variable, including
  /// preprocessing-eliminated ones (reconstructed via the remapper).
  LBool modelValue(SLit l) const { return model_[l.var()] ^ l.sign(); }
  LBool modelValue(Var v) const { return model_[v]; }

  /// After an Unsat answer under assumptions: the subset of assumptions
  /// (as passed in) that was used to derive the conflict.
  const std::vector<SLit>& failedAssumptions() const { return conflict_core_; }

  /// Resolution proof (only meaningful when constructed with log_proof and
  /// after an assumption-free Unsat answer).
  const Proof& proof() const { return proof_; }

  /// Literals of a clause by stable id (for proof replay). Valid for every
  /// live clause; ids survive arena compaction.
  std::span<const SLit> clauseLits(ClauseId id) const {
    ECO_CHECK(id < clause_refs_.size() && clause_refs_[id] != kNoRef);
    return ca_.at(clause_refs_[id]).lits();
  }

  // --- maintenance -----------------------------------------------------------

  /// Compacts the clause arena, rebinding every watch/reason reference.
  /// Stable ClauseIds (and therefore proofs) are unaffected. Runs
  /// automatically when enough of the arena is dead; public so tests and
  /// long-lived embedders can force a compaction point.
  void garbageCollect();

  // --- statistics ------------------------------------------------------------

  std::uint64_t numConflicts() const { return stats_conflicts_; }
  std::uint64_t numDecisions() const { return stats_decisions_; }
  std::uint64_t numPropagations() const { return stats_propagations_; }
  std::uint64_t numRestarts() const { return stats_restarts_; }
  std::uint64_t numDbReductions() const { return stats_db_reductions_; }
  std::uint64_t numGcs() const { return stats_gcs_; }

  /// VSIDS internals, exposed for the activity-overflow regression test.
  const VsidsPicker& picker() const { return picker_; }

 private:
  friend class Preprocessor;
  // Invariant-audit backdoor (src/check/sat_audit.h): const views of the
  // internal state for the auditor, mutable ones for its corruption tests.
  friend struct SolverAudit;

  struct Watcher {
    ClauseRef ref;
    SLit blocker;
  };

  // assignment & trail
  LBool value(SLit l) const { return assigns_[l.var()] ^ l.sign(); }
  LBool value(Var v) const { return assigns_[v]; }
  std::uint32_t decisionLevel() const {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }
  void enqueue(SLit l, ClauseRef reason);
  ClauseRef propagate();
  void cancelUntil(std::uint32_t level);

  // clause management
  ClauseRef allocClause(std::span<const SLit> lits, bool learned);
  void attachClause(ClauseRef ref);
  void detachClause(ClauseRef ref);
  void removeClause(ClauseRef ref);
  bool locked(ClauseRef ref) const;
  void reduceDb();
  void maybeGarbageCollect();
  void bumpClause(ClauseRef ref);
  std::uint32_t computeLbd(std::span<const SLit> lits);

  // conflict analysis
  void analyze(ClauseRef confl, std::vector<SLit>& learnt, std::uint32_t& bt_level,
               ProofChain& chain);
  bool litRedundant(SLit l);
  void analyzeFinal(SLit p);
  /// Resolves away all remaining (root-level) literals of `confl`,
  /// producing the empty-clause chain.
  void deriveRootConflict(ClauseRef confl);

  Status search();

  // data
  ClauseAllocator ca_;
  std::vector<ClauseRef> clause_refs_;  ///< stable ClauseId -> arena ref
  std::vector<std::vector<Watcher>> watches_;  ///< indexed by literal index

  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<std::uint32_t> level_;
  std::vector<ClauseRef> reason_;
  std::vector<std::uint32_t> trail_pos_;
  std::vector<SLit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::uint32_t qhead_ = 0;

  // decisions
  VsidsPicker picker_;
  double clause_inc_ = 1.0;

  // preprocessing
  bool preprocess_ = false;
  bool preprocessed_ = false;
  std::vector<bool> frozen_;
  std::vector<bool> eliminated_;
  SatRemapper remapper_;
  PreprocessStats pre_stats_;

  // assumptions & core
  std::vector<SLit> assumptions_;
  std::vector<SLit> conflict_core_;

  // proof
  bool log_proof_ = false;
  Proof proof_;

  // scratch for analyze
  std::vector<std::uint8_t> seen_;
  std::vector<std::uint64_t> lbd_stamp_;  ///< per-level stamp for computeLbd
  std::uint64_t lbd_stamp_gen_ = 0;

  /// Conflict count at each clause's allocation (indexed by stable id);
  /// learned-clause lifetime (deletion conflicts minus birth conflicts)
  /// feeds the sat.learned_lifetime histogram when the clause is reduced
  /// away.
  std::vector<std::uint64_t> clause_birth_;

  bool ok_ = true;
  std::int64_t conflict_budget_ = -1;
  std::uint64_t solve_start_conflicts_ = 0;
  std::uint64_t stats_conflicts_ = 0;
  std::uint64_t stats_decisions_ = 0;
  std::uint64_t stats_propagations_ = 0;
  std::uint64_t stats_restarts_ = 0;
  std::uint64_t stats_db_reductions_ = 0;
  std::uint64_t stats_gcs_ = 0;
  std::uint32_t num_learned_ = 0;  ///< live learned clauses (size > 1)
  /// Learned-clause count that triggers the next database reduction; grows
  /// by kReduceDbInc after every reduction (Glucose-style schedule).
  std::uint32_t reduce_db_limit_ = 2000;
};

}  // namespace eco::sat
