#include "techmap/library.h"

#include <algorithm>

#include "base/check.h"

namespace eco::techmap {
namespace {

TruthTable evalOverLeaves(const Cell& cell, const std::uint8_t perm[4],
                          std::uint8_t input_inverted) {
  const std::uint32_t k = cell.num_inputs;
  TruthTable out = 0;
  for (std::uint32_t m = 0; m < (1u << k); ++m) {
    std::uint32_t cell_idx = 0;
    for (std::uint32_t i = 0; i < k; ++i) {
      bool v = (m >> perm[i]) & 1;           // leaf value feeding input i
      if ((input_inverted >> i) & 1) v = !v;  // through an inverter
      if (v) cell_idx |= 1u << i;
    }
    if ((cell.function >> cell_idx) & 1) out |= static_cast<TruthTable>(1u << m);
  }
  return out;
}

std::uint32_t keyOf(std::uint32_t k, TruthTable tt) {
  return (k << 16) | tt;
}

}  // namespace

CellLibrary::CellLibrary(std::string name, std::vector<Cell> cells)
    : name_(std::move(name)), cells_(std::move(cells)) {
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (c.num_inputs == 1 && c.function == 0b01) inverter_cell_ = i;
    if (c.num_inputs == 0 && c.function == 0b0) tie0_cell_ = i;
    if (c.num_inputs == 0 && c.function == 0b1) tie1_cell_ = i;
  }
  inverter_area_ = cells_[inverter_cell_].area;
  expandMatches();
}

void CellLibrary::expandMatches() {
  const auto invCount = [](const Match& m) {
    return __builtin_popcount(m.input_inverted) + (m.output_inverted ? 1 : 0);
  };
  const auto consider = [&](std::uint32_t k, TruthTable tt, const Match& m) {
    const std::uint32_t key = keyOf(k, tt);
    const auto it = match_of_.find(key);
    // Prefer smaller area; on ties prefer the realization with fewer
    // inverters (fewer gate instances).
    if (it == match_of_.end() || m.total_area < it->second.total_area ||
        (m.total_area == it->second.total_area &&
         invCount(m) < invCount(it->second))) {
      match_of_[key] = m;
    }
  };
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& c = cells_[ci];
    const std::uint32_t k = c.num_inputs;
    if (k == 0 || k > 4) continue;
    std::uint8_t perm[4] = {0, 1, 2, 3};
    std::vector<std::uint8_t> p(perm, perm + k);
    std::sort(p.begin(), p.end());
    do {
      for (std::uint8_t inv = 0; inv < (1u << k); ++inv) {
        std::uint8_t pp[4] = {0, 1, 2, 3};
        for (std::uint32_t i = 0; i < k; ++i) pp[i] = p[i];
        const TruthTable tt = evalOverLeaves(c, pp, inv);
        Match m;
        m.cell = ci;
        for (std::uint32_t i = 0; i < 4; ++i) m.perm[i] = pp[i];
        m.input_inverted = inv;
        m.output_inverted = false;
        m.total_area =
            c.area + inverter_area_ * static_cast<double>(__builtin_popcount(inv));
        consider(k, tt, m);
        Match mo = m;
        mo.output_inverted = true;
        mo.total_area += inverter_area_;
        consider(k, static_cast<TruthTable>(~tt & ttMask(k)), mo);
      }
    } while (std::next_permutation(p.begin(), p.end()));
  }
}

std::optional<Match> CellLibrary::matchFunction(std::uint32_t k,
                                                TruthTable tt) const {
  const auto it = match_of_.find(keyOf(k, tt));
  if (it == match_of_.end()) return std::nullopt;
  return it->second;
}

CellLibrary CellLibrary::standard() {
  std::vector<Cell> cells;
  const auto add = [&](const char* name, std::uint32_t k, TruthTable f,
                       double area) {
    cells.push_back(Cell{name, k, static_cast<TruthTable>(f & ttMask(k)), area});
  };
  const TruthTable a = ttVar(0), b = ttVar(1), c = ttVar(2), d = ttVar(3);
  add("TIE0", 0, 0b0, 0.5);
  add("TIE1", 0, 0b1, 0.5);
  add("INV", 1, 0b01, 1);
  add("BUF", 1, 0b10, 1.5);
  add("NAND2", 2, ~(a & b), 2);
  add("NOR2", 2, ~(a | b), 2);
  add("AND2", 2, a & b, 3);
  add("OR2", 2, a | b, 3);
  add("XOR2", 2, a ^ b, 5);
  add("XNOR2", 2, ~(a ^ b), 5);
  add("NAND3", 3, ~(a & b & c), 3);
  add("NOR3", 3, ~(a | b | c), 3);
  add("AND3", 3, a & b & c, 4);
  add("OR3", 3, a | b | c, 4);
  add("AOI21", 3, ~((a & b) | c), 3);
  add("OAI21", 3, ~((a | b) & c), 3);
  add("MUX21", 3, (c & a) | (~c & b), 6);  // c ? a : b
  add("MAJ3", 3, (a & b) | (a & c) | (b & c), 7);
  add("XOR3", 3, a ^ b ^ c, 9);
  add("NAND4", 4, ~(a & b & c & d), 4);
  add("NOR4", 4, ~(a | b | c | d), 4);
  add("AND4", 4, a & b & c & d, 5);
  add("OR4", 4, a | b | c | d, 5);
  add("AOI22", 4, ~((a & b) | (c & d)), 4);
  add("OAI22", 4, ~((a | b) & (c | d)), 4);
  return CellLibrary("generic", std::move(cells));
}

CellLibrary CellLibrary::nand2Only() {
  std::vector<Cell> cells;
  const TruthTable a = ttVar(0), b = ttVar(1);
  cells.push_back(Cell{"TIE0", 0, 0b0, 0.5});
  cells.push_back(Cell{"TIE1", 0, 0b1, 0.5});
  cells.push_back(Cell{"INV", 1, 0b01, 1});
  cells.push_back(
      Cell{"NAND2", 2, static_cast<TruthTable>(~(a & b) & ttMask(2)), 2});
  return CellLibrary("nand2", std::move(cells));
}

}  // namespace eco::techmap
