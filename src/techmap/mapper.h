#pragma once
// Cut-based technology mapping of an AIG onto a standard-cell library.
//
// Classic flow: enumerate k-feasible cuts (k = 4) bottom-up, compute each
// cut's local function, NP-match it against the library, and run a
// dynamic program minimizing estimated area; the chosen cover is then
// extracted into a gate-level netlist with explicit inverters. The mapped
// netlist can be converted back to an AIG for equivalence checking and
// serialized as structural Verilog with cell instances.
//
// Purpose in this repo: the contest's "resource-aware" objective counts
// real gates; mapping the patch gives a technology-accurate size/area
// metric (bench_techmap) beyond the raw AND-node count.

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.h"
#include "techmap/library.h"

namespace eco::techmap {

struct MappedGate {
  std::uint32_t cell = 0;             ///< index into the library
  std::vector<std::uint32_t> inputs;  ///< net ids, cell input order
  std::uint32_t output = 0;           ///< net id this gate defines
};

struct MappedNetlist {
  /// Owned copy: the netlist stays self-contained regardless of the
  /// lifetime of the library passed to mapAig.
  CellLibrary library;
  std::uint32_t num_inputs = 0;  ///< nets 0..num_inputs-1 are the PIs
  std::vector<std::string> input_names;
  std::vector<MappedGate> gates;  ///< topologically ordered
  std::vector<std::uint32_t> outputs;  ///< net ids
  std::vector<std::string> output_names;

  std::uint32_t cellCount() const {
    return static_cast<std::uint32_t>(gates.size());
  }
  double area() const;

  /// Rebuilds the mapped logic as an AIG (for equivalence checking).
  Aig toAig() const;
};

struct MapOptions {
  std::uint32_t cut_size = 4;      ///< k (2..4)
  std::uint32_t cuts_per_node = 8; ///< enumeration cap
};

/// Maps `aig` onto `library`. Every AIG is mappable: the standard library
/// covers all 1- and 2-input functions and the trivial 2-cut of an AND
/// node always exists.
MappedNetlist mapAig(const Aig& aig, const CellLibrary& library,
                     const MapOptions& options = {});

/// Structural Verilog with positional cell instances
/// (`NAND2 g3 (y, a, b);`) — an output-only exchange format.
std::string writeMappedVerilog(const MappedNetlist& netlist,
                               const std::string& module_name);

}  // namespace eco::techmap
