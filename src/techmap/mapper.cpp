#include "techmap/mapper.h"

#include <algorithm>
#include <array>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "aig/aig_ops.h"
#include "base/check.h"

namespace eco::techmap {
namespace {

using Cut = std::vector<std::uint32_t>;  ///< sorted leaf variables

/// Merges two cuts; returns empty when the union exceeds k.
Cut mergeCuts(const Cut& a, const Cut& b, std::uint32_t k) {
  Cut out;
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    std::uint32_t next;
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      next = a[i];
      if (j < b.size() && b[j] == next) ++j;
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    out.push_back(next);
    if (out.size() > k) return {};
  }
  return out;
}

/// Truth table of `root_var`'s cone over the cut leaves.
TruthTable cutFunction(const Aig& aig, std::uint32_t root_var, const Cut& cut) {
  std::unordered_map<std::uint32_t, TruthTable> tt;
  tt[0] = 0;
  for (std::size_t i = 0; i < cut.size(); ++i) tt[cut[i]] = ttVar(i);
  const TruthTable mask = ttMask(static_cast<std::uint32_t>(cut.size()));

  std::vector<std::uint32_t> stack{root_var};
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    if (tt.count(v) != 0) {
      stack.pop_back();
      continue;
    }
    ECO_CHECK_MSG(aig.isAnd(v), "cut function cone escaped the cut");
    const Lit f0 = aig.fanin0(v);
    const Lit f1 = aig.fanin1(v);
    const bool need0 = tt.count(f0.var()) == 0;
    const bool need1 = tt.count(f1.var()) == 0;
    if (need0) stack.push_back(f0.var());
    if (need1) stack.push_back(f1.var());
    if (need0 || need1) continue;
    stack.pop_back();
    TruthTable a = tt.at(f0.var());
    if (f0.complemented()) a = static_cast<TruthTable>(~a);
    TruthTable b = tt.at(f1.var());
    if (f1.complemented()) b = static_cast<TruthTable>(~b);
    tt[v] = static_cast<TruthTable>(a & b & mask);
  }
  return static_cast<TruthTable>(tt.at(root_var) & mask);
}

struct NodeChoice {
  Cut cut;
  Match match;
  double area_est = std::numeric_limits<double>::infinity();
  /// Realize as an inverter on the node's other phase instead of a cell.
  bool from_other_phase = false;
};

}  // namespace

double MappedNetlist::area() const {
  double total = 0;
  for (const MappedGate& g : gates) total += library.cell(g.cell).area;
  return total;
}

Aig MappedNetlist::toAig() const {
  Aig aig;
  std::vector<Lit> net(num_inputs + gates.size() + 2, Lit());
  for (std::uint32_t i = 0; i < num_inputs; ++i) {
    net[i] = aig.addPi(i < input_names.size() ? input_names[i] : "");
  }
  for (const MappedGate& g : gates) {
    const Cell& c = library.cell(g.cell);
    // OR of minterms of the cell truth table.
    Lit out = kFalse;
    if (c.num_inputs == 0) {
      out = (c.function & 1) ? kTrue : kFalse;
    } else {
      for (std::uint32_t m = 0; m < (1u << c.num_inputs); ++m) {
        if (((c.function >> m) & 1) == 0) continue;
        Lit minterm = kTrue;
        for (std::uint32_t i = 0; i < c.num_inputs; ++i) {
          const Lit in = net[g.inputs[i]];
          ECO_CHECK_MSG(in.valid(), "mapped gate uses an undefined net");
          minterm = aig.addAnd(minterm, in ^ (((m >> i) & 1) == 0));
        }
        out = aig.mkOr(out, minterm);
      }
    }
    if (g.output >= net.size()) net.resize(g.output + 1, Lit());
    net[g.output] = out;
  }
  for (std::size_t j = 0; j < outputs.size(); ++j) {
    const Lit d = net[outputs[j]];
    ECO_CHECK_MSG(d.valid(), "mapped output net undefined");
    aig.addPo(d, j < output_names.size() ? output_names[j] : "");
  }
  return aig;
}

MappedNetlist mapAig(const Aig& aig, const CellLibrary& library,
                     const MapOptions& options) {
  const std::uint32_t k =
      std::min<std::uint32_t>(4, std::max<std::uint32_t>(2, options.cut_size));

  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < aig.numPos(); ++j) roots.push_back(aig.poDriver(j));
  const std::vector<std::uint32_t> cone = collectCone(aig, roots);

  // --- cut enumeration + two-phase area DP (one topological pass) ---------
  // Each node is costed in both output phases; a phase may be realized
  // directly by a matching cell or as an inverter on the other phase.
  const double inv_area = library.inverterArea();
  std::vector<std::vector<Cut>> cuts(aig.numNodes());
  std::vector<std::array<NodeChoice, 2>> choice(aig.numNodes());
  std::vector<std::array<double, 2>> area_est(
      aig.numNodes(), {std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()});

  for (const std::uint32_t v : cone) {
    if (aig.isPi(v)) {
      cuts[v] = {{v}};
      area_est[v] = {0, inv_area};
      choice[v][1].from_other_phase = true;
      continue;
    }
    const std::uint32_t a = aig.fanin0(v).var();
    const std::uint32_t b = aig.fanin1(v).var();
    std::vector<Cut> enumerated;
    for (const Cut& ca : cuts[a]) {
      for (const Cut& cb : cuts[b]) {
        Cut merged = mergeCuts(ca, cb, k);
        if (!merged.empty()) enumerated.push_back(std::move(merged));
      }
    }
    std::sort(enumerated.begin(), enumerated.end(),
              [](const Cut& x, const Cut& y) {
                return x.size() != y.size() ? x.size() < y.size() : x < y;
              });
    enumerated.erase(std::unique(enumerated.begin(), enumerated.end()),
                     enumerated.end());
    if (enumerated.size() > options.cuts_per_node) {
      enumerated.resize(options.cuts_per_node);
    }

    for (const Cut& cut : enumerated) {
      const std::uint32_t ck = static_cast<std::uint32_t>(cut.size());
      const TruthTable tt = cutFunction(aig, v, cut);
      for (int phase = 0; phase < 2; ++phase) {
        const TruthTable want =
            phase == 0 ? tt : static_cast<TruthTable>(~tt & ttMask(ck));
        const auto match = library.matchFunction(ck, want);
        if (!match) continue;
        const Cell& cell = library.cell(match->cell);
        double cost = cell.area + (match->output_inverted ? inv_area : 0);
        for (std::uint32_t i = 0; i < cell.num_inputs; ++i) {
          const std::uint32_t leaf = cut[match->perm[i]];
          if ((match->input_inverted >> i) & 1) {
            cost += std::min(area_est[leaf][1], area_est[leaf][0] + inv_area);
          } else {
            cost += area_est[leaf][0];
          }
        }
        if (cost < area_est[v][phase]) {
          area_est[v][phase] = cost;
          choice[v][phase] =
              NodeChoice{cut, *match, cost, /*from_other_phase=*/false};
        }
      }
    }
    // Cross-phase realization: the other phase plus one inverter.
    for (int phase = 0; phase < 2; ++phase) {
      const double via_inv = area_est[v][1 - phase] + inv_area;
      if (via_inv < area_est[v][phase]) {
        area_est[v][phase] = via_inv;
        choice[v][phase] = NodeChoice{{}, {}, via_inv, true};
      }
    }
    ECO_CHECK_MSG(area_est[v][0] < std::numeric_limits<double>::infinity() &&
                      area_est[v][1] < std::numeric_limits<double>::infinity(),
                  "library cannot realize a 2-input function");
    // The node's own cuts for parents: trivial cut + enumerated ones.
    enumerated.insert(enumerated.begin(), Cut{v});
    if (enumerated.size() > options.cuts_per_node + 1) {
      enumerated.resize(options.cuts_per_node + 1);
    }
    cuts[v] = std::move(enumerated);
  }

  // --- cover extraction ------------------------------------------------------
  MappedNetlist out;
  out.library = library;
  out.num_inputs = aig.numPis();
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    out.input_names.push_back(aig.piName(i));
  }
  std::uint32_t next_net = aig.numPis();
  // Realized net per (node, phase); PIs are pre-realized in phase 0.
  std::unordered_map<std::uint64_t, std::uint32_t> net_of;
  const auto keyOf = [](std::uint32_t v, int phase) {
    return (static_cast<std::uint64_t>(v) << 1) | static_cast<std::uint32_t>(phase);
  };
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    net_of[keyOf(aig.piVar(i), 0)] = i;
  }
  const auto emitInverter = [&](std::uint32_t in_net) {
    MappedGate inv;
    inv.cell = library.inverterCell();
    inv.inputs = {in_net};
    inv.output = next_net++;
    out.gates.push_back(inv);
    return inv.output;
  };

  // Iterative post-order over the chosen cover, per (node, phase).
  const auto realize = [&](std::uint32_t root, int root_phase) -> std::uint32_t {
    std::vector<std::pair<std::uint32_t, int>> stack{{root, root_phase}};
    while (!stack.empty()) {
      const auto [v, phase] = stack.back();
      if (net_of.count(keyOf(v, phase)) != 0) {
        stack.pop_back();
        continue;
      }
      if (aig.isPi(v)) {
        // Only phase 1 can be missing for a PI.
        net_of[keyOf(v, 1)] = emitInverter(net_of.at(keyOf(v, 0)));
        stack.pop_back();
        continue;
      }
      const NodeChoice& ch = choice[v][phase];
      if (ch.from_other_phase) {
        const auto other = net_of.find(keyOf(v, 1 - phase));
        if (other == net_of.end()) {
          stack.push_back({v, 1 - phase});
          continue;
        }
        net_of[keyOf(v, phase)] = emitInverter(other->second);
        stack.pop_back();
        continue;
      }
      const Cell& cell = library.cell(ch.match.cell);
      bool ready = true;
      for (std::uint32_t i = 0; i < cell.num_inputs; ++i) {
        const std::uint32_t leaf = ch.cut[ch.match.perm[i]];
        const int leaf_phase = (ch.match.input_inverted >> i) & 1;
        if (net_of.count(keyOf(leaf, leaf_phase)) == 0) {
          stack.push_back({leaf, leaf_phase});
          ready = false;
        }
      }
      if (!ready) continue;
      stack.pop_back();
      MappedGate gate;
      gate.cell = ch.match.cell;
      for (std::uint32_t i = 0; i < cell.num_inputs; ++i) {
        const std::uint32_t leaf = ch.cut[ch.match.perm[i]];
        const int leaf_phase = (ch.match.input_inverted >> i) & 1;
        gate.inputs.push_back(net_of.at(keyOf(leaf, leaf_phase)));
      }
      gate.output = next_net++;
      out.gates.push_back(gate);
      std::uint32_t node_net = gate.output;
      if (ch.match.output_inverted) node_net = emitInverter(node_net);
      net_of[keyOf(v, phase)] = node_net;
    }
    return net_of.at(keyOf(root, root_phase));
  };

  // Nets for (possibly complemented or constant) PO drivers.
  const auto litNet = [&](Lit l) -> std::uint32_t {
    if (l.var() == 0) {
      MappedGate tie;
      tie.cell = library.tieCell(l.complemented());
      tie.output = next_net++;
      out.gates.push_back(tie);
      return tie.output;
    }
    return realize(l.var(), l.complemented() ? 1 : 0);
  };

  for (std::uint32_t j = 0; j < aig.numPos(); ++j) {
    out.outputs.push_back(litNet(aig.poDriver(j)));
    out.output_names.push_back(aig.poName(j));
  }
  return out;
}

std::string writeMappedVerilog(const MappedNetlist& netlist,
                               const std::string& module_name) {
  std::ostringstream os;
  const auto netName = [&](std::uint32_t net) -> std::string {
    if (net < netlist.num_inputs) {
      const std::string& n = netlist.input_names[net];
      return n.empty() ? "x" + std::to_string(net) : n;
    }
    return "w" + std::to_string(net);
  };
  os << "module " << module_name << " (";
  bool first = true;
  for (std::uint32_t i = 0; i < netlist.num_inputs; ++i) {
    os << (first ? " " : ", ") << netName(i);
    first = false;
  }
  for (std::size_t j = 0; j < netlist.outputs.size(); ++j) {
    const std::string& n = netlist.output_names[j];
    os << (first ? " " : ", ") << (n.empty() ? "po" + std::to_string(j) : n);
    first = false;
  }
  os << " );\n";
  for (std::uint32_t i = 0; i < netlist.num_inputs; ++i) {
    os << "input " << netName(i) << ";\n";
  }
  for (std::size_t j = 0; j < netlist.outputs.size(); ++j) {
    const std::string& n = netlist.output_names[j];
    os << "output " << (n.empty() ? "po" + std::to_string(j) : n) << ";\n";
  }
  for (const MappedGate& g : netlist.gates) {
    os << "wire " << netName(g.output) << ";\n";
  }
  std::uint32_t id = 0;
  for (const MappedGate& g : netlist.gates) {
    os << netlist.library.cell(g.cell).name << " g" << id++ << " ("
       << netName(g.output);
    for (const std::uint32_t in : g.inputs) os << ", " << netName(in);
    os << ");\n";
  }
  for (std::size_t j = 0; j < netlist.outputs.size(); ++j) {
    const std::string& n = netlist.output_names[j];
    os << "assign " << (n.empty() ? "po" + std::to_string(j) : n) << " = "
       << netName(netlist.outputs[j]) << ";\n";
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace eco::techmap
