#pragma once
// Standard-cell library model for technology mapping.
//
// A cell is a named k-input (k <= 4) single-output function with an area.
// The library pre-expands every cell under all input permutations and input
// complementations (NP-matching), so the mapper can look up an arbitrary
// cut function and receive the cheapest realization: cell + inverters on
// selected inputs (+ optionally one on the output).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace eco::techmap {

/// Truth table over up to 4 variables, stored in the low 2^k bits.
using TruthTable = std::uint16_t;

inline TruthTable ttMask(std::uint32_t k) {
  return static_cast<TruthTable>((1u << (1u << k)) - 1u);
}

/// Canonical input projections: tt of variable i as a function of k vars.
inline TruthTable ttVar(std::uint32_t i) {
  static constexpr TruthTable kProj[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};
  return kProj[i];
}

struct Cell {
  std::string name;
  std::uint32_t num_inputs = 0;
  TruthTable function = 0;  ///< over inputs x0..x{k-1}, low 2^k bits
  double area = 0;
};

/// How a cut function is realized: `cell` with its inputs permuted by
/// `perm` (cell input i is driven by cut leaf perm[i]), inverters on the
/// leaves in `input_inverted`, and optionally an inverter on the output.
struct Match {
  std::uint32_t cell = 0;
  std::uint8_t perm[4] = {0, 1, 2, 3};
  std::uint8_t input_inverted = 0;  ///< bitmask over *cell* input positions
  bool output_inverted = false;
  double total_area = 0;  ///< cell + inverter estimate
};

class CellLibrary {
 public:
  /// A representative generic library: INV/BUF, 2-4 input
  /// NAND/NOR/AND/OR, XOR2/XNOR2, MUX21, AOI21/OAI21, MAJ3, TIE cells.
  static CellLibrary standard();

  /// An intentionally poor library (INV/NAND2 only) for ablation.
  static CellLibrary nand2Only();

  /// Empty library (placeholder for default-constructed netlists).
  CellLibrary() = default;

  CellLibrary(std::string name, std::vector<Cell> cells);

  const std::string& name() const { return name_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const Cell& cell(std::uint32_t i) const { return cells_[i]; }

  double inverterArea() const { return inverter_area_; }
  std::uint32_t inverterCell() const { return inverter_cell_; }
  std::uint32_t tieCell(bool value) const {
    return value ? tie1_cell_ : tie0_cell_;
  }

  /// Cheapest realization of a k-leaf cut function, or nullopt when no
  /// cell family covers it (callers fall back to smaller cuts; the
  /// standard library covers every 1- and 2-input function).
  std::optional<Match> matchFunction(std::uint32_t k, TruthTable tt) const;

 private:
  void expandMatches();

  std::string name_;
  std::vector<Cell> cells_;
  double inverter_area_ = 1;
  std::uint32_t inverter_cell_ = 0;
  std::uint32_t tie0_cell_ = 0;
  std::uint32_t tie1_cell_ = 0;
  /// (k << 16 | tt) -> best match
  std::unordered_map<std::uint32_t, Match> match_of_;
};

}  // namespace eco::techmap
