#include "cnf/cnf.h"

#include <vector>

#include "base/check.h"

namespace eco::cnf {

sat::SLit encodeCone(const Aig& aig, Lit root, CnfMap& map, ClauseSink& sink) {
  // Constant node: a frozen-false variable shared within this map.
  if (map.count(0) == 0) {
    const sat::Var f = sink.newVar();
    sink.addClause({sat::SLit::make(f, true)});
    map[0] = sat::SLit::make(f, false);
  }

  // Iterative bounded DFS: variables already present in `map` are leaves.
  std::vector<std::uint32_t> stack{root.var()};
  while (!stack.empty()) {
    const std::uint32_t var = stack.back();
    if (map.count(var) != 0) {
      stack.pop_back();
      continue;
    }
    ECO_CHECK_MSG(!aig.isPi(var), "encodeCone: unmapped PI in cone");
    const Lit f0 = aig.fanin0(var);
    const Lit f1 = aig.fanin1(var);
    const bool need0 = map.count(f0.var()) == 0;
    const bool need1 = map.count(f1.var()) == 0;
    if (need0) stack.push_back(f0.var());
    if (need1) stack.push_back(f1.var());
    if (need0 || need1) continue;
    stack.pop_back();
    const sat::SLit a = map.at(f0.var());
    const sat::SLit sa = f0.complemented() ? ~a : a;
    const sat::SLit b = map.at(f1.var());
    const sat::SLit sb = f1.complemented() ? ~b : b;
    const sat::Var v = sink.newVar();
    const sat::SLit sv = sat::SLit::make(v, false);
    // v <-> (sa & sb)
    sink.addClause({~sv, sa});
    sink.addClause({~sv, sb});
    sink.addClause({sv, ~sa, ~sb});
    map.emplace(var, sv);
  }
  const sat::SLit r = map.at(root.var());
  return root.complemented() ? ~r : r;
}

}  // namespace eco::cnf
