#pragma once
// Tseitin encoding of AIG cones into CNF.
//
// Clauses are emitted through a ClauseSink so the same encoder serves plain
// satisfiability queries (SolverSink) and partitioned interpolation queries
// (the A/B sinks of itp::ItpJob).

#include <span>
#include <unordered_map>

#include "aig/aig.h"
#include "sat/solver.h"

namespace eco::cnf {

/// Destination for encoded clauses and fresh variables.
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;
  virtual sat::Var newVar() = 0;
  virtual void addClause(std::span<const sat::SLit> lits) = 0;

  void addClause(std::initializer_list<sat::SLit> lits) {
    addClause(std::span<const sat::SLit>(lits.begin(), lits.size()));
  }
};

/// Sink writing directly into a solver.
class SolverSink final : public ClauseSink {
 public:
  explicit SolverSink(sat::Solver& solver) : solver_(solver) {}
  sat::Var newVar() override { return solver_.newVar(); }
  void addClause(std::span<const sat::SLit> lits) override {
    solver_.addClause(lits);
  }

 private:
  sat::Solver& solver_;
};

/// Maps AIG variables to solver literals for one encoding context.
/// Pre-seed PI variables before encoding; internal nodes are added lazily.
using CnfMap = std::unordered_map<std::uint32_t, sat::SLit>;

/// Encodes the cone of `root` with full Tseitin clauses (v <-> a & b) and
/// returns the solver literal of `root`. PI variables reachable from `root`
/// must be present in `map`; the constant node is handled internally via a
/// dedicated frozen-false variable per map. Nodes whose variable is already
/// in `map` are treated as frontier leaves (not expanded) — this implements
/// cut re-expression for localization (Theorem 2).
sat::SLit encodeCone(const Aig& aig, Lit root, CnfMap& map, ClauseSink& sink);

}  // namespace eco::cnf
