#include "qa/oracle.h"

#include <cmath>
#include <optional>

#include "aig/aig_ops.h"
#include "base/rng.h"
#include "cnf/cnf.h"
#include "sat/solver.h"
#include "sim/sim.h"

namespace eco::qa {
namespace {

/// Faulty-AIG literal of a named signal (PI or named internal), if any.
std::optional<Lit> resolveSignal(const Aig& faulty, const std::string& name) {
  if (const auto pi_var = faulty.findPi(name)) {  // findPi returns the var
    return Lit::fromVar(*pi_var, false);
  }
  return faulty.findSignal(name);
}

/// Builds, in a fresh AIG over the X inputs only, the patched faulty
/// outputs followed by the golden outputs. Returns false (with a
/// diagnostic) when a base cone reaches a target pseudo-PI — the structural
/// checks should have caught that already.
struct PatchedModel {
  Aig m;
  std::vector<Lit> x_pis;
  std::vector<Lit> patched;  ///< faulty POs with patches substituted
  std::vector<Lit> golden;   ///< golden POs
};

std::optional<PatchedModel> buildPatchedModel(const EcoInstance& inst,
                                              const PatchResult& r,
                                              OracleReport& report) {
  PatchedModel pm;
  const Aig& f = inst.faulty;

  VarMap fmap;
  for (std::uint32_t i = 0; i < inst.num_x; ++i) {
    const Lit pi = pm.m.addPi(f.piName(i));
    pm.x_pis.push_back(pi);
    fmap[f.piVar(i)] = pi;
  }

  // Base signal functions: cones over X only (bases are outside every
  // target's fanout, so their cones cannot touch a target pseudo-PI).
  std::vector<Lit> base_roots;
  for (const BaseRef& b : r.base) base_roots.push_back(b.lit);
  for (const std::uint32_t v : supportPis(f, base_roots)) {
    if (f.piIndex(v) >= inst.num_x) {
      report.fail("base cone reaches target pseudo-PI '" +
                  f.piName(f.piIndex(v)) + "'");
      return std::nullopt;
    }
  }
  const std::vector<Lit> base_fns = copyCones(f, base_roots, fmap, pm.m);

  // Patch functions over the base functions.
  VarMap pmap;
  for (std::uint32_t i = 0; i < r.patch.numPis(); ++i) {
    pmap[r.patch.piVar(i)] = base_fns[i];
  }
  std::vector<Lit> patch_roots;
  for (std::uint32_t k = 0; k < r.patch.numPos(); ++k) {
    patch_roots.push_back(r.patch.poDriver(k));
  }
  const std::vector<Lit> target_fns = copyCones(r.patch, patch_roots, pmap, pm.m);

  // Patched faulty outputs: target pseudo-PIs replaced by patch functions.
  for (std::uint32_t k = 0; k < inst.numTargets(); ++k) {
    fmap[f.piVar(inst.targetPi(k))] = target_fns[k];
  }
  std::vector<Lit> f_roots;
  for (std::uint32_t j = 0; j < f.numPos(); ++j) f_roots.push_back(f.poDriver(j));
  pm.patched = copyCones(f, f_roots, fmap, pm.m);

  VarMap gmap;
  for (std::uint32_t i = 0; i < inst.num_x; ++i) {
    gmap[inst.golden.piVar(i)] = pm.x_pis[i];
  }
  std::vector<Lit> g_roots;
  for (std::uint32_t j = 0; j < inst.golden.numPos(); ++j) {
    g_roots.push_back(inst.golden.poDriver(j));
  }
  pm.golden = copyCones(inst.golden, g_roots, gmap, pm.m);
  return pm;
}

void checkStructure(const EcoInstance& inst, const PatchResult& r,
                    OracleReport& report) {
  const Aig& f = inst.faulty;
  const std::uint32_t alpha = inst.numTargets();

  if (r.patch.numPos() != alpha) {
    report.fail("patch has " + std::to_string(r.patch.numPos()) +
                " outputs for " + std::to_string(alpha) + " targets");
    return;
  }
  for (std::uint32_t k = 0; k < alpha; ++k) {
    if (r.patch.poName(k) != inst.targetName(k)) {
      report.fail("patch output " + std::to_string(k) + " named '" +
                  r.patch.poName(k) + "', target is '" + inst.targetName(k) + "'");
    }
  }
  if (r.patch.numPis() != r.base.size()) {
    report.fail("patch has " + std::to_string(r.patch.numPis()) +
                " inputs but " + std::to_string(r.base.size()) + " base refs");
    return;
  }

  // Non-base support: no base may lie in any target's transitive fanout.
  std::vector<std::uint32_t> target_vars;
  for (std::uint32_t k = 0; k < alpha; ++k) {
    target_vars.push_back(f.piVar(inst.targetPi(k)));
  }
  const std::vector<bool> tfo = transitiveFanoutMask(f, target_vars);

  double cost = 0;
  for (const BaseRef& b : r.base) {
    const auto lit = resolveSignal(f, b.name);
    if (!lit) {
      report.fail("base '" + b.name + "' is not a faulty-netlist signal");
      continue;
    }
    if (lit->var() != b.lit.var()) {
      report.fail("base '" + b.name + "' literal disagrees with the netlist");
    }
    if (tfo[b.lit.var()]) {
      report.fail("base '" + b.name + "' lies in a target's fanout cone");
    }
    const double expect = inst.weightOf(b.name);
    if (std::abs(b.weight - expect) > 1e-9) {
      report.fail("base '" + b.name + "' weight " + std::to_string(b.weight) +
                  " != instance weight " + std::to_string(expect));
    }
    cost += b.weight;
  }
  if (std::abs(cost - r.cost) > 1e-6) {
    report.fail("reported cost " + std::to_string(r.cost) +
                " != recomputed " + std::to_string(cost));
  }
  if (r.size != r.patch.numAnds()) {
    report.fail("reported size " + std::to_string(r.size) +
                " != patch AND count " + std::to_string(r.patch.numAnds()));
  }
}

/// Fills `ps` with exhaustive minterm patterns when 2^num_x fits, random
/// patterns otherwise. Returns the number of meaningful patterns.
std::uint32_t fillPatterns(sim::PatternSet& ps, std::uint32_t num_x, Rng& rng) {
  const std::uint32_t words = ps.wordsPerSignal();
  if (num_x <= kExhaustiveLimit) {
    for (std::uint32_t p = 0; p < words * 64; ++p) {
      for (std::uint32_t i = 0; i < num_x; ++i) {
        ps.setBit(i, p, (p >> i) & 1);  // wraps past 2^num_x: duplicates
      }
    }
    return words * 64;
  }
  ps.randomize(rng);
  return words * 64;
}

void checkFunctional(const EcoInstance& inst, const PatchResult& r,
                     OracleReport& report) {
  auto pm = buildPatchedModel(inst, r, report);
  if (!pm) return;

  // Simulation: exhaustive when narrow, random sampling otherwise.
  const std::uint32_t words =
      inst.num_x <= kExhaustiveLimit
          ? std::max(1u, (1u << inst.num_x) / 64)
          : 64;
  sim::PatternSet patterns(static_cast<std::uint32_t>(pm->x_pis.size()), words);
  Rng rng(0x0BACA0 + inst.num_x);
  fillPatterns(patterns, inst.num_x, rng);
  const sim::PatternSet values = sim::simulateAll(pm->m, patterns);
  std::vector<std::uint64_t> va(words), vb(words);
  for (std::size_t j = 0; j < pm->patched.size(); ++j) {
    sim::litValues(values, pm->patched[j], va);
    sim::litValues(values, pm->golden[j], vb);
    if (va != vb) {
      report.fail("patched output " + std::to_string(j) +
                  " differs from golden under simulation");
      return;  // SAT check would only repeat the verdict
    }
  }

  // SAT miter, freshly encoded (independent of eco::verifyPatches).
  Aig& m = pm->m;
  std::vector<Lit> xors;
  for (std::size_t j = 0; j < pm->patched.size(); ++j) {
    xors.push_back(m.mkXor(pm->patched[j], pm->golden[j]));
  }
  const Lit miter = m.mkOrN(xors);
  if (miter == kFalse) return;  // structurally equivalent
  sat::Solver solver;
  // One-shot UNSAT-expected miter: safe to preprocess.
  solver.setPreprocessing(true);
  cnf::SolverSink sink(solver);
  cnf::CnfMap map;
  for (const Lit x : pm->x_pis) {
    map[x.var()] = sat::SLit::make(solver.newVar(), false);
  }
  const sat::SLit ml = cnf::encodeCone(m, miter, map, sink);
  solver.addClause({ml});
  const sat::Status status = solver.solve();
  if (status != sat::Status::Unsat) {
    report.fail("independent SAT miter is satisfiable: patched faulty is "
                "not equivalent to golden");
  }
}

}  // namespace

OracleReport checkPatch(const EcoInstance& inst, const PatchResult& r) {
  OracleReport report;
  if (!r.success) {
    report.fail("checkPatch called on an unsuccessful result");
    return report;
  }
  checkStructure(inst, r, report);
  if (report.ok) checkFunctional(inst, r, report);
  return report;
}

OracleReport checkCounterexample(const EcoInstance& inst,
                                 const std::vector<bool>& cex) {
  OracleReport report;
  if (cex.size() != inst.num_x) {
    report.fail("counterexample has " + std::to_string(cex.size()) +
                " bits for " + std::to_string(inst.num_x) + " X inputs");
    return report;
  }
  const std::uint32_t alpha = inst.numTargets();
  if (alpha > 16) return report;  // enumeration out of reach; skip

  const std::vector<bool> golden_out = inst.golden.evaluate(cex);
  std::vector<bool> pis(inst.faulty.numPis());
  for (std::uint32_t i = 0; i < inst.num_x; ++i) pis[i] = cex[i];
  for (std::uint64_t t = 0; t < (1ull << alpha); ++t) {
    for (std::uint32_t k = 0; k < alpha; ++k) {
      pis[inst.targetPi(k)] = (t >> k) & 1;
    }
    if (inst.faulty.evaluate(pis) == golden_out) {
      report.fail("counterexample refuted: target valuation " +
                  std::to_string(t) + " reproduces the golden outputs");
      return report;
    }
  }
  return report;
}

}  // namespace eco::qa
