#include "qa/differential.h"

#include <algorithm>
#include <cmath>

#include "check/patch_audit.h"
#include "eco/engine.h"
#include "qa/oracle.h"

namespace eco::qa {
namespace {

void applyPlantedBug(PatchResult& r, PlantedBug bug) {
  if (!r.success) return;
  switch (bug) {
    case PlantedBug::None:
      break;
    case PlantedBug::FlipPatchPolarity:
      if (r.patch.numPos() > 0) {
        r.patch.setPoDriver(0, !r.patch.poDriver(0));
      }
      break;
    case PlantedBug::MisreportCost:
      r.cost += 1;
      break;
  }
}

std::vector<std::string> sortedBaseNames(const PatchResult& r) {
  std::vector<std::string> names;
  for (const BaseRef& b : r.base) names.push_back(b.name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::vector<DiffConfig> defaultMatrix(std::uint32_t parallel_threads) {
  std::vector<DiffConfig> matrix;
  const auto add = [&](std::string name, std::string must_match,
                       auto mutate) {
    DiffConfig cfg;
    cfg.name = std::move(name);
    cfg.options.num_threads = 1;
    mutate(cfg.options);
    cfg.must_match = std::move(must_match);
    matrix.push_back(std::move(cfg));
  };
  add("seq", "", [](EcoOptions&) {});
  add("par", "seq", [&](EcoOptions& o) { o.num_threads = parallel_threads; });
  // Without localization the cut degenerates to all X inputs and cost
  // optimization explores a far larger base universe; run the ablation
  // without it — the config's job is cross-checking rectifiability.
  add("no-fraig", "", [](EcoOptions& o) {
    o.use_localization = false;
    o.use_cost_opt = false;
  });
  add("no-costopt", "", [](EcoOptions& o) { o.use_cost_opt = false; });
  add("itp-compress", "", [](EcoOptions& o) {
    o.try_interpolation_first = true;
    o.compress_threshold = 1;
  });
  return matrix;
}

InstanceVerdict checkInstance(const EcoInstance& instance, bool known_rectifiable,
                              const CheckOptions& options) {
  const std::vector<DiffConfig> matrix =
      options.matrix.empty() ? defaultMatrix() : options.matrix;
  InstanceVerdict verdict;

  std::vector<PatchResult> results;
  results.reserve(matrix.size());
  for (const DiffConfig& cfg : matrix) {
    EcoOptions run_options = cfg.options;
    run_options.check_level =
        std::max(run_options.check_level, options.audit_level);
    PatchResult r;
    try {
      r = EcoEngine(run_options).run(instance);
    } catch (const std::exception& e) {
      // A violated engine invariant (ECO_CHECK) surfaces here; contain it
      // so the campaign continues and the instance can be shrunk.
      r = PatchResult{};
      r.success = false;
      r.message = std::string("internal error: exception: ") + e.what();
    }
    ++verdict.engine_runs;
    applyPlantedBug(r, options.plant_bug);

    if (r.success) {
      OracleReport o;
      try {
        o = checkPatch(instance, r);
      } catch (const std::exception& e) {
        o.fail(std::string("oracle exception: ") + e.what());
      }
      for (const std::string& v : o.violations) {
        verdict.violations.push_back(cfg.name + ": " + v);
      }
      if (options.audit_level >= check::Level::kStage) {
        // Harness-side contract audit of the *returned* result — unlike the
        // engine's own final gate this sees post-run corruptions too.
        check::PatchAuditOptions pao;
        pao.require_pruned_inputs = run_options.minimize_patches;
        const check::AuditReport rep =
            check::auditPatchContract(instance, r, pao, cfg.name + ".patch");
        if (!rep.ok()) {
          verdict.violations.push_back(cfg.name + ": contract audit: " +
                                       rep.summary());
        }
      }
    } else if (r.message.rfind("internal error", 0) == 0) {
      // The engine's own defense-in-depth tripped (a failed invariant or a
      // patch that flunked re-verification) — always a violation.
      verdict.violations.push_back(cfg.name + ": " + r.message);
    } else {
      if (known_rectifiable) {
        verdict.violations.push_back(
            cfg.name + ": rectifiable-by-construction instance reported "
                       "unrectifiable (" + r.message + ")");
      }
      if (!r.counterexample.empty() || instance.num_x == 0) {
        const OracleReport o = checkCounterexample(instance, r.counterexample);
        for (const std::string& v : o.violations) {
          verdict.violations.push_back(cfg.name + ": " + v);
        }
      } else {
        verdict.violations.push_back(cfg.name +
                                     ": unrectifiable verdict without a "
                                     "counterexample (" + r.message + ")");
      }
    }
    results.push_back(std::move(r));
  }

  verdict.rectifiable = results.front().success;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].success != results.front().success) {
      verdict.violations.push_back(
          matrix[i].name + ": disagrees with " + matrix.front().name +
          " on rectifiability (" + (results[i].success ? "yes" : "no") + " vs " +
          (results.front().success ? "yes" : "no") + ")");
    }
  }

  // Determinism pairs: identical observable results.
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    if (matrix[i].must_match.empty()) continue;
    const auto ref = std::find_if(
        matrix.begin(), matrix.end(),
        [&](const DiffConfig& c) { return c.name == matrix[i].must_match; });
    if (ref == matrix.end()) continue;
    const PatchResult& a = results[i];
    const PatchResult& b = results[ref - matrix.begin()];
    const std::string pair = matrix[i].name + " vs " + ref->name;
    if (a.success != b.success) {
      verdict.violations.push_back(pair + ": determinism: success differs");
      continue;
    }
    if (!a.success) continue;
    if (std::abs(a.cost - b.cost) > 1e-9) {
      verdict.violations.push_back(pair + ": determinism: cost " +
                                   std::to_string(a.cost) + " vs " +
                                   std::to_string(b.cost));
    }
    if (a.size != b.size) {
      verdict.violations.push_back(pair + ": determinism: size " +
                                   std::to_string(a.size) + " vs " +
                                   std::to_string(b.size));
    }
    if (sortedBaseNames(a) != sortedBaseNames(b)) {
      verdict.violations.push_back(pair + ": determinism: base sets differ");
    }
  }

  verdict.ok = verdict.violations.empty();
  return verdict;
}

}  // namespace eco::qa
