#pragma once
// The self-checking fuzz loop: generate → differential matrix → oracle →
// shrink → serialize.
//
// One call drives the whole QA pipeline over `count` seeded instances.
// Failures are shrunk to minimal reproducers and (optionally) written to
// disk in contest format (faulty.v / golden.v / weight.txt plus a spec.txt
// with the generation parameters), ready for io::loadInstance and the
// regression corpus under tests/corpus/.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "qa/differential.h"
#include "qa/shrink.h"

namespace eco::qa {

struct FuzzOptions {
  std::uint64_t seed = 1;    ///< instance i uses spec seed `seed + i`
  std::uint64_t count = 100;
  CheckOptions check;
  bool shrink = true;
  std::uint32_t max_failures = 1;    ///< stop fuzzing after this many
  std::string reproducer_dir;        ///< "" = do not serialize reproducers
  std::FILE* log = nullptr;          ///< nullptr = silent
  std::uint64_t progress_every = 0;  ///< 0 = no periodic progress lines
  /// Emit a heartbeat progress line to `log` whenever this many seconds
  /// elapse without one (long sweeps on slow instances would otherwise go
  /// silent between `progress_every` marks). 0 disables the heartbeat.
  double heartbeat_seconds = 0;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  ShrinkResult shrunk;
  std::string reproducer_path;  ///< empty when not serialized
};

struct FuzzOutcome {
  std::uint64_t instances = 0;
  std::uint64_t rectifiable = 0;
  std::uint64_t unrectifiable = 0;
  std::uint64_t engine_runs = 0;
  std::uint64_t failures = 0;
  double seconds = 0;
  std::vector<FuzzFailure> shrunk_failures;

  double instancesPerSecond() const {
    return seconds > 0 ? static_cast<double>(instances) / seconds : 0;
  }
  bool clean() const { return failures == 0; }
};

/// Runs the fuzz loop. Deterministic in FuzzOptions::seed.
FuzzOutcome runFuzz(const FuzzOptions& options);

/// Serializes a shrunk failure under `dir/<name>/` (contest files plus
/// spec.txt). Returns the directory written, or "" on I/O failure.
std::string writeReproducer(const std::string& dir, const std::string& name,
                            const ShrinkResult& shrunk);

/// Machine-readable sweep summary ("ecopatch-fuzz-report" schema, version 1):
/// options, aggregate outcome, failing seeds, and the global obs metrics
/// snapshot. Uploaded as a nightly CI artifact alongside the trace.
std::string fuzzJsonReport(const FuzzOptions& options,
                           const FuzzOutcome& outcome);

}  // namespace eco::qa
