#include "qa/fuzz.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "base/timer.h"
#include "io/instance_io.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace eco::qa {
namespace {

bool writeFile(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

std::string writeReproducer(const std::string& dir, const std::string& name,
                            const ShrinkResult& shrunk) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target = fs::path(dir) / name;
  fs::create_directories(target, ec);
  if (ec) return "";

  const io::InstanceFiles files = io::saveInstance(shrunk.instance);
  std::string spec = "# eco_fuzz shrunk reproducer\n";
  spec += "# " + benchgen::describeSpec(shrunk.spec) + "\n";
  spec += "# faulty_ands=" + std::to_string(shrunk.faulty_ands);
  spec += " cofactored_pis=" + std::to_string(shrunk.cofactored_pis);
  spec += " shrink_attempts=" + std::to_string(shrunk.attempts) + "\n";
  for (const std::string& v : shrunk.verdict.violations) {
    spec += "# violation: " + v + "\n";
  }
  if (!writeFile(target / "faulty.v", files.faulty_v) ||
      !writeFile(target / "golden.v", files.golden_v) ||
      !writeFile(target / "weight.txt", files.weights) ||
      !writeFile(target / "spec.txt", spec)) {
    return "";
  }
  return target.string();
}

FuzzOutcome runFuzz(const FuzzOptions& options) {
  FuzzOutcome outcome;
  Timer timer;
  const auto logf = [&](const char* fmt, auto... args) {
    if (options.log != nullptr) {
      std::fprintf(options.log, fmt, args...);
      std::fflush(options.log);
    }
  };
  const auto progressLine = [&](std::uint64_t done, const char* tag) {
    logf("eco_fuzz%s: %llu/%llu instances, %llu rectifiable, %llu failures, "
         "%.1f inst/s\n",
         tag, static_cast<unsigned long long>(done),
         static_cast<unsigned long long>(options.count),
         static_cast<unsigned long long>(outcome.rectifiable),
         static_cast<unsigned long long>(outcome.failures),
         static_cast<double>(done) / std::max(timer.seconds(), 1e-9));
  };
  // Liveness contract: a progress line re-arms the heartbeat; the
  // heartbeat (obs::Heartbeat, the generalized form of the old inline
  // timer logic) fires only after `heartbeat_seconds` of silence.
  obs::Heartbeat heartbeat(options.heartbeat_seconds);
  obs::ProgressScope stage("fuzz.stage", "sweep");

  for (std::uint64_t i = 0; i < options.count; ++i) {
    const std::uint64_t seed = options.seed + i;
    ECO_OBS_GAUGE_SET("fuzz.instances",
                      static_cast<std::int64_t>(outcome.instances));
    ECO_OBS_GAUGE_SET("fuzz.failures",
                      static_cast<std::int64_t>(outcome.failures));
    const benchgen::FuzzSpec spec = benchgen::randomFuzzSpec(seed);
    benchgen::FuzzInstance fi;
    InstanceVerdict verdict;
    try {
      fi = benchgen::generateFuzzInstance(spec);
      verdict = checkInstance(fi.instance, fi.known_rectifiable, options.check);
    } catch (const std::exception& e) {
      verdict.ok = false;
      verdict.violations.push_back(std::string("generator exception: ") +
                                   e.what());
    }

    ++outcome.instances;
    outcome.engine_runs += verdict.engine_runs;
    if (verdict.rectifiable) {
      ++outcome.rectifiable;
    } else {
      ++outcome.unrectifiable;
    }

    if (!verdict.ok) {
      ++outcome.failures;
      logf("eco_fuzz: FAILURE at seed %llu (%s)\n",
           static_cast<unsigned long long>(seed),
           benchgen::describeSpec(spec).c_str());
      for (const std::string& v : verdict.violations) {
        logf("  violation: %s\n", v.c_str());
      }

      FuzzFailure failure;
      failure.seed = seed;
      if (options.shrink) {
        logf("  shrinking...\n");
        failure.shrunk = shrinkFailure(spec, options.check);
        logf("  shrunk to %u AND gates (%s) in %u attempts\n",
             failure.shrunk.faulty_ands,
             benchgen::describeSpec(failure.shrunk.spec).c_str(),
             failure.shrunk.attempts);
      } else {
        failure.shrunk.spec = spec;
        failure.shrunk.instance = fi.instance;
        failure.shrunk.verdict = verdict;
        failure.shrunk.faulty_ands = fi.instance.faulty.numAnds();
      }
      if (!options.reproducer_dir.empty()) {
        failure.reproducer_path =
            writeReproducer(options.reproducer_dir,
                            "seed" + std::to_string(seed), failure.shrunk);
        if (!failure.reproducer_path.empty()) {
          logf("  reproducer: %s\n", failure.reproducer_path.c_str());
        }
      }
      outcome.shrunk_failures.push_back(std::move(failure));
      if (outcome.failures >= options.max_failures) break;
    }

    if (options.progress_every != 0 && (i + 1) % options.progress_every == 0) {
      progressLine(i + 1, "");
      heartbeat.beat();
    } else if (heartbeat.due()) {
      // A slow instance (or a sparse --progress setting) can leave a long
      // sweep silent for minutes; the heartbeat keeps CI logs alive.
      progressLine(i + 1, " [heartbeat]");
    }
  }

  ECO_OBS_GAUGE_SET("fuzz.instances",
                    static_cast<std::int64_t>(outcome.instances));
  ECO_OBS_GAUGE_SET("fuzz.failures",
                    static_cast<std::int64_t>(outcome.failures));
  outcome.seconds = timer.seconds();
  return outcome;
}

std::string fuzzJsonReport(const FuzzOptions& options,
                           const FuzzOutcome& outcome) {
  obs::JsonWriter w;
  w.beginObject();
  w.key("schema"); w.value("ecopatch-fuzz-report");
  w.key("schema_version"); w.value(std::int64_t{1});

  w.key("options");
  w.beginObject();
  w.key("seed"); w.value(options.seed);
  w.key("count"); w.value(options.count);
  w.key("shrink"); w.value(options.shrink);
  w.key("max_failures"); w.value(static_cast<std::uint64_t>(options.max_failures));
  w.endObject();

  w.key("outcome");
  w.beginObject();
  w.key("instances"); w.value(outcome.instances);
  w.key("rectifiable"); w.value(outcome.rectifiable);
  w.key("unrectifiable"); w.value(outcome.unrectifiable);
  w.key("engine_runs"); w.value(outcome.engine_runs);
  w.key("failures"); w.value(outcome.failures);
  w.key("seconds"); w.valueFixed(outcome.seconds, 3);
  w.key("instances_per_second"); w.valueFixed(outcome.instancesPerSecond(), 2);
  w.key("clean"); w.value(outcome.clean());
  w.endObject();

  w.key("failing_seeds");
  w.beginArray();
  for (const FuzzFailure& f : outcome.shrunk_failures) {
    w.beginObject();
    w.key("seed"); w.value(f.seed);
    w.key("shrunk_faulty_ands");
    w.value(static_cast<std::uint64_t>(f.shrunk.faulty_ands));
    if (!f.reproducer_path.empty()) {
      w.key("reproducer"); w.value(f.reproducer_path);
    }
    w.endObject();
  }
  w.endArray();

  w.key("metrics");
  obs::writeMetricsJson(w, obs::snapshotMetrics());

  w.endObject();
  return w.take();
}

}  // namespace eco::qa
