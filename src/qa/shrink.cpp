#include "qa/shrink.h"

#include <utility>
#include <vector>

namespace eco::qa {

using benchgen::FaultMode;
using benchgen::Family;
using benchgen::FuzzInstance;
using benchgen::FuzzSpec;

namespace {

bool sameSpec(const FuzzSpec& a, const FuzzSpec& b) {
  return a.seed == b.seed && a.mode == b.mode && a.family == b.family &&
         a.size_param == b.size_param && a.num_targets == b.num_targets &&
         a.num_tiles == b.num_tiles && a.restructure_pct == b.restructure_pct &&
         a.target_depth_frac == b.target_depth_frac;
}

/// Reduction candidates for one descent step, most aggressive first.
std::vector<FuzzSpec> reductionCandidates(const FuzzSpec& cur) {
  std::vector<FuzzSpec> cands;
  const auto push = [&](FuzzSpec c) {
    if (!sameSpec(c, cur)) cands.push_back(std::move(c));
  };
  if (cur.num_tiles > 1) {
    FuzzSpec c = cur;
    c.num_tiles = 1;
    push(c);
    c = cur;
    c.num_tiles = cur.num_tiles / 2;
    push(c);
  }
  if (cur.num_targets > 1) {
    FuzzSpec c = cur;
    c.num_targets = 1;
    push(c);
    c = cur;
    c.num_targets = cur.num_targets / 2;
    push(c);
  }
  if (cur.size_param > 2) {
    FuzzSpec c = cur;
    c.size_param = 2;
    push(c);
    c = cur;
    c.size_param = std::max(2u, cur.size_param / 2);
    push(c);
    c = cur;
    c.size_param = cur.size_param - 1;
    push(c);
  }
  if (cur.restructure_pct > 0) {
    FuzzSpec c = cur;
    c.restructure_pct = 0;
    push(c);
  }
  if (cur.target_depth_frac > 0) {
    FuzzSpec c = cur;
    c.target_depth_frac = 0;
    push(c);
  }
  if (cur.family != Family::Adder) {
    FuzzSpec c = cur;
    c.family = Family::Adder;
    c.size_param = std::min(c.size_param, 4u);
    push(c);
  }
  if (cur.mode != FaultMode::CleanCut) {
    // Harness-level defects (planted bugs, oracle regressions) reproduce on
    // clean instances too; engine defects usually need the fault mode.
    FuzzSpec c = cur;
    c.mode = FaultMode::CleanCut;
    c.num_tiles = 1;
    push(c);
  }
  return cands;
}

}  // namespace

ShrinkResult shrinkFailure(const FuzzSpec& spec, const CheckOptions& check,
                           const ShrinkOptions& options) {
  ShrinkResult out;
  out.spec = spec;

  const auto evaluate = [&](const FuzzSpec& s)
      -> std::pair<FuzzInstance, InstanceVerdict> {
    ++out.attempts;
    FuzzInstance fi;
    try {
      fi = benchgen::generateFuzzInstance(s);
    } catch (const std::exception&) {
      // Degenerate reduction candidate the generator rejects: report it as
      // passing so the descent skips it.
      InstanceVerdict ok_verdict;
      ok_verdict.ok = true;
      return {std::move(fi), std::move(ok_verdict)};
    }
    InstanceVerdict v = checkInstance(fi.instance, fi.known_rectifiable, check);
    return {std::move(fi), std::move(v)};
  };

  auto [cur_fi, cur_v] = evaluate(spec);
  out.verdict = cur_v;
  out.instance = cur_fi.instance;
  out.faulty_ands = cur_fi.instance.faulty.numAnds();
  if (cur_v.ok) return out;  // nothing to shrink (see header)

  // Phase 1: greedy spec descent.
  FuzzSpec cur = spec;
  bool progress = true;
  while (progress && out.attempts < options.max_attempts) {
    progress = false;
    for (const FuzzSpec& cand : reductionCandidates(cur)) {
      if (out.attempts >= options.max_attempts) break;
      auto [fi, v] = evaluate(cand);
      if (v.ok) continue;  // reduction lost the failure
      cur = cand;
      cur_fi = std::move(fi);
      out.verdict = std::move(v);
      progress = true;
      break;
    }
    if (progress) continue;
    // Stuck: nearby re-seeds, accepted only when strictly smaller.
    for (std::uint32_t i = 0;
         i < options.reseed_tries && out.attempts < options.max_attempts; ++i) {
      FuzzSpec cand = cur;
      cand.seed = cur.seed * 6364136223846793005ULL + 1442695040888963407ULL + i;
      auto [fi, v] = evaluate(cand);
      if (v.ok) continue;
      if (fi.instance.faulty.numAnds() >= cur_fi.instance.faulty.numAnds()) {
        continue;
      }
      cur = cand;
      cur_fi = std::move(fi);
      out.verdict = std::move(v);
      progress = true;
      break;
    }
  }
  out.spec = cur;
  out.instance = cur_fi.instance;

  // Phase 2: drop X inputs by cofactoring while the failure persists.
  bool changed = true;
  while (changed && out.attempts < options.max_attempts) {
    changed = false;
    for (std::uint32_t i = 0; i < out.instance.num_x && !changed; ++i) {
      for (const bool value : {false, true}) {
        if (out.attempts >= options.max_attempts) break;
        ++out.attempts;
        EcoInstance cand;
        try {
          cand = benchgen::cofactorPi(out.instance, i, value);
        } catch (const std::exception&) {
          continue;  // cofactoring collapsed the instance; keep the PI
        }
        InstanceVerdict v =
            checkInstance(cand, cur_fi.known_rectifiable, check);
        if (v.ok) continue;
        out.instance = std::move(cand);
        out.verdict = std::move(v);
        ++out.cofactored_pis;
        changed = true;
        break;
      }
    }
  }

  out.faulty_ands = out.instance.faulty.numAnds();
  return out;
}

}  // namespace eco::qa
