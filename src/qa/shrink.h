#pragma once
// Failure shrinking: reduce a failing fuzz instance to a minimal
// reproducer.
//
// Two phases, both driven by the single predicate "checkInstance still
// reports a violation":
//
//   1. Spec-level greedy descent — bisect tiles, drop targets, halve the
//     size parameter, zero restructuring and depth constraints, simplify
//     the family, and finally try nearby re-seeds that yield a smaller
//     circuit. Each accepted move regenerates the instance from the
//     mutated spec, so the reproducer stays a one-line FuzzSpec.
//   2. Instance-level PI cofactoring — substitute constants for X inputs
//     one at a time (benchgen::cofactorPi) while the failure persists.
//
// The result is serialized in contest format by the fuzz driver so a
// failure found overnight is a `loadInstance` away from a debugger.

#include <cstdint>

#include "benchgen/faults.h"
#include "qa/differential.h"

namespace eco::qa {

struct ShrinkOptions {
  std::uint32_t max_attempts = 200;  ///< failure-predicate evaluations
  std::uint32_t reseed_tries = 6;    ///< nearby seeds tried when stuck
};

struct ShrinkResult {
  benchgen::FuzzSpec spec;       ///< minimized spec (pre-cofactor phase)
  EcoInstance instance;          ///< minimized instance (post-cofactor)
  InstanceVerdict verdict;       ///< the surviving failure
  std::uint32_t attempts = 0;    ///< predicate evaluations spent
  std::uint32_t cofactored_pis = 0;
  std::uint32_t faulty_ands = 0;  ///< AND count of the final faulty circuit
};

/// Shrinks a failing spec. The caller must have observed the failure;
/// when the initial spec no longer fails (flaky environment — should not
/// happen, generation is deterministic) the result carries verdict.ok.
ShrinkResult shrinkFailure(const benchgen::FuzzSpec& spec,
                           const CheckOptions& check,
                           const ShrinkOptions& options = {});

}  // namespace eco::qa
