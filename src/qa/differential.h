#pragma once
// Differential execution across an EcoOptions matrix.
//
// Soundness bugs that slip past a single configuration rarely slip past
// all of them: the sequential and parallel paths must produce *identical*
// patches (the PR 1 determinism contract), and every configuration —
// FRAIG/localization on or off, cost optimization on or off, the
// interpolation-first + forced-compression stress path — must agree on
// whether an instance is rectifiable. Each successful result additionally
// passes the independent oracle, and each unrectifiable verdict must carry
// a valid counterexample.
//
// The planted-bug flag corrupts engine results *after* the run — a
// deliberate fault injected to prove the harness catches what it is
// supposed to catch ("testing the tester").

#include <cstdint>
#include <string>
#include <vector>

#include "eco/instance.h"

namespace eco::qa {

struct DiffConfig {
  std::string name;
  EcoOptions options;
  /// When set: this config's result (success, cost, size, base names) must
  /// be bit-identical to the named config's — the determinism contract.
  std::string must_match;
};

/// The standard matrix: sequential, parallel (must match sequential),
/// FRAIG/localization off, cost optimization off, interpolation-first with
/// forced cone compression.
std::vector<DiffConfig> defaultMatrix(std::uint32_t parallel_threads = 0);

/// Deliberate result corruptions for harness self-tests.
enum class PlantedBug : std::uint8_t {
  None = 0,
  FlipPatchPolarity,  ///< complements patch output 0 — a semantic bug
  MisreportCost,      ///< overstates the reported cost — a bookkeeping bug
};

struct CheckOptions {
  std::vector<DiffConfig> matrix;  ///< empty = defaultMatrix()
  PlantedBug plant_bug = PlantedBug::None;
  /// Floor for every config's invariant-audit level (src/check): each
  /// engine run uses the stricter of its config's level and this one, and
  /// every successful result is re-audited against the patch/engine
  /// contract by the harness itself (catching result corruptions the
  /// engine-side audit cannot see, e.g. the MisreportCost planted bug).
  check::Level audit_level = check::Level::kOff;
};

struct InstanceVerdict {
  bool ok = true;
  std::vector<std::string> violations;  ///< prefixed with the config name
  bool rectifiable = false;  ///< consensus verdict (first config's, on split)
  std::uint32_t engine_runs = 0;

  explicit operator bool() const { return ok; }
};

/// Runs the full matrix on one instance and cross-checks every claim.
/// `known_rectifiable` marks instances that are rectifiable by
/// construction: an unrectifiable verdict on one is itself a violation.
InstanceVerdict checkInstance(const EcoInstance& instance, bool known_rectifiable,
                              const CheckOptions& options);

}  // namespace eco::qa
