#pragma once
// Independent result validation for the fuzzing harness.
//
// eco::verifyPatches is the engine's own soundness gate; a bug there (or in
// the workspace plumbing it shares with patch generation) would let a wrong
// patch sail through both. The oracle re-derives every claim from the
// instance and the PatchResult alone, sharing no code with the engine's
// verification path:
//
//   - structural: every base reference names a real faulty signal with the
//     right literal and weight, no base lies in any target's transitive
//     fanout (the "non-base support" rule), reported cost and size match a
//     recomputation;
//   - functional: the patched faulty circuit is compared to golden by
//     exhaustive bit-parallel simulation when the input space is small
//     (<= 2^kExhaustiveLimit), random simulation otherwise, and always by a
//     freshly encoded SAT miter;
//   - unrectifiability witnesses: the claimed counterexample X assignment
//     must leave every target valuation unable to reproduce the golden
//     outputs (exhaustive over targets).

#include <cstdint>
#include <string>
#include <vector>

#include "eco/instance.h"

namespace eco::qa {

struct OracleReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }
  explicit operator bool() const { return ok; }
};

/// X-input widths up to this bound are checked exhaustively.
inline constexpr std::uint32_t kExhaustiveLimit = 11;

/// Validates a successful PatchResult against the instance.
OracleReport checkPatch(const EcoInstance& instance, const PatchResult& result);

/// Validates an unrectifiability counterexample: under X assignment `cex`,
/// no target valuation may reproduce the golden outputs. Skipped (ok) when
/// the instance has more than 16 targets.
OracleReport checkCounterexample(const EcoInstance& instance,
                                 const std::vector<bool>& cex);

}  // namespace eco::qa
