#pragma once
// AIG structural linter.
//
// auditAig is a read-only pass over every internal table of an Aig:
//   - topological order / acyclicity (AND fanins strictly precede the node)
//   - no dangling or constant fanins, canonical fanin order
//   - strash-table consistency: every AND hashes to itself, no duplicate or
//     orphaned strash entries, entry count matches the AND count
//   - PI/PO/constant well-formedness (PI ordinal round-trip, valid drivers)
//   - named-signal index coherence (name_index_ agrees with named_signals_)
//   - level and fanout-count coherence: aig_ops::levels()/fanoutCounts()
//     agree with an independent recomputation (these feed clustering and
//     localization decisions, so a divergence is a real engine hazard)
//
// AigAudit is the access backdoor: a friend of Aig granting the auditor
// const views of the private tables and the negative corruption tests
// (tests/test_check.cpp) mutable ones. Production code must not touch it.

#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.h"
#include "check/check.h"

namespace eco {

struct AigAudit {
  static const std::vector<Aig::Node>& nodes(const Aig& a) { return a.nodes_; }
  static const std::vector<std::uint32_t>& pis(const Aig& a) { return a.pis_; }
  static const std::vector<Lit>& pos(const Aig& a) { return a.pos_; }
  static const std::unordered_map<std::uint64_t, std::uint32_t>& strash(
      const Aig& a) {
    return a.strash_;
  }
  static const std::vector<std::pair<std::string, Lit>>& namedSignals(
      const Aig& a) {
    return a.named_signals_;
  }
  static const std::unordered_map<std::string, Lit>& nameIndex(const Aig& a) {
    return a.name_index_;
  }
  static std::uint64_t strashKey(Lit f0, Lit f1) { return Aig::strashKey(f0, f1); }

  // Mutable access — corruption hooks for the auditor's negative tests only.
  static std::vector<Aig::Node>& nodesMut(Aig& a) { return a.nodes_; }
  static std::vector<std::uint32_t>& pisMut(Aig& a) { return a.pis_; }
  static std::vector<Lit>& posMut(Aig& a) { return a.pos_; }
  static std::unordered_map<std::uint64_t, std::uint32_t>& strashMut(Aig& a) {
    return a.strash_;
  }
  static std::unordered_map<std::string, Lit>& nameIndexMut(Aig& a) {
    return a.name_index_;
  }
};

}  // namespace eco

namespace eco::check {

/// Runs the full structural lint; `subject` labels the report.
AuditReport auditAig(const Aig& aig, std::string subject = "aig");

}  // namespace eco::check
