#include "check/sat_audit.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eco::check {
namespace {

using sat::Clause;
using sat::ClauseId;
using sat::ClauseRef;
using sat::kNoRef;
using sat::LBool;
using sat::SLit;
using sat::Solver;
using sat::SolverAudit;
using sat::Var;

std::string litStr(SLit l) {
  if (!l.defined()) return "<undef>";
  return (l.sign() ? "~x" : "x") + std::to_string(l.var());
}

/// Per-clause facts gathered in one validation pass over the id -> ref
/// table, so the watcher/trail/reason passes can trust the table without
/// re-validating arena bounds (and without tripping ECO_CHECK aborts on a
/// corrupted ref — the auditor reports, it never crashes).
struct ClauseTable {
  /// ids whose ref is in-bounds, id-consistent, and not relocated; the
  /// clause view behind them is safe to read.
  std::vector<std::uint8_t> readable;
  /// readable and not deleted (deleted clauses legally linger in the table
  /// between reduceDb() and the next garbageCollect()).
  std::vector<std::uint8_t> live;
  std::uint64_t live_words = 0;
};

ClauseTable validateClauseTable(const Solver& s, AuditReport& report) {
  const auto& ca = SolverAudit::arena(s);
  const auto& refs = SolverAudit::clauseRefs(s);
  const std::size_t arena_words = ca.sizeWords();
  const std::uint32_t n_vars = s.numVars();
  const auto& eliminated = SolverAudit::eliminated(s);

  ClauseTable table;
  table.readable.assign(refs.size(), 0);
  table.live.assign(refs.size(), 0);

  const auto fail = [&](const char* rule, std::string detail) {
    report.add("sat", rule, std::move(detail));
  };
  const auto check = [&](bool ok, const char* rule, auto detail) {
    ++report.checks_run;
    if (!ok) fail(rule, detail());
  };

  // Ref -> id map for alias detection (two ids claiming one arena slot).
  std::vector<std::pair<ClauseRef, ClauseId>> slots;
  slots.reserve(refs.size());

  for (ClauseId id = 0; id < refs.size(); ++id) {
    const ClauseRef ref = refs[id];
    if (ref == kNoRef) continue;
    check(std::size_t{ref} + Clause::kHeaderWords <= arena_words,
          "arena-bounds", [&] {
            return "clause " + std::to_string(id) + " ref " +
                   std::to_string(ref) + " exceeds the arena (" +
                   std::to_string(arena_words) + " words)";
          });
    if (std::size_t{ref} + Clause::kHeaderWords > arena_words) continue;
    const Clause& c = ca.at(ref);
    check(std::size_t{ref} + Clause::kHeaderWords + c.size() <= arena_words,
          "arena-bounds", [&] {
            return "clause " + std::to_string(id) + " (size " +
                   std::to_string(c.size()) + " at ref " + std::to_string(ref) +
                   ") overruns the arena";
          });
    if (std::size_t{ref} + Clause::kHeaderWords + c.size() > arena_words) {
      continue;
    }
    check(!c.reloced(), "stale-ref", [&] {
      return "clause " + std::to_string(id) +
             " points at a relocated (forwarding) arena slot — table not "
             "rebound after garbageCollect()";
    });
    if (c.reloced()) continue;
    check(c.id() == id, "stale-ref", [&] {
      return "clause " + std::to_string(id) + " ref " + std::to_string(ref) +
             " stores id " + std::to_string(c.id()) +
             " — stale ref after garbageCollect()";
    });
    if (c.id() != id) continue;
    table.readable[id] = 1;
    slots.emplace_back(ref, id);
    if (c.deleted()) continue;
    table.live[id] = 1;
    table.live_words += Clause::kHeaderWords + c.size();
    for (const SLit l : c.lits()) {
      check(l.defined() && l.var() < n_vars, "clause-lit", [&] {
        return "clause " + std::to_string(id) + " holds literal " + litStr(l) +
               " outside the variable range " + std::to_string(n_vars);
      });
      if (l.defined() && l.var() < n_vars) {
        check(!eliminated[l.var()], "clause-lit", [&] {
          return "live clause " + std::to_string(id) +
                 " mentions eliminated variable x" + std::to_string(l.var());
        });
      }
    }
  }

  std::sort(slots.begin(), slots.end());
  for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
    check(slots[i].first != slots[i + 1].first, "ref-alias", [&] {
      return "clauses " + std::to_string(slots[i].second) + " and " +
             std::to_string(slots[i + 1].second) + " share arena ref " +
             std::to_string(slots[i].first);
    });
  }

  // Arena accounting: live clause words plus the wasted-word counter must
  // tile the arena exactly — anything else means a clause was freed without
  // accounting or the table lost a clause that still occupies words.
  if (!report.hasRule("arena-bounds") && !report.hasRule("stale-ref")) {
    check(table.live_words + ca.wastedWords() == arena_words, "arena-account",
          [&] {
            return "live clauses cover " + std::to_string(table.live_words) +
                   " words + " + std::to_string(ca.wastedWords()) +
                   " wasted != arena size " + std::to_string(arena_words);
          });
  }
  return table;
}

}  // namespace

AuditReport auditSolver(const Solver& s, std::string subject) {
  AuditReport report;
  report.subject = std::move(subject);
  const auto fail = [&](const char* rule, std::string detail) {
    report.add("sat", rule, std::move(detail));
  };
  const auto check = [&](bool ok, const char* rule, auto detail) {
    ++report.checks_run;
    if (!ok) fail(rule, detail());
  };

  const auto& ca = SolverAudit::arena(s);
  const auto& refs = SolverAudit::clauseRefs(s);
  const auto& watches = SolverAudit::watches(s);
  const auto& assigns = SolverAudit::assigns(s);
  const auto& levels = SolverAudit::levels(s);
  const auto& reasons = SolverAudit::reasons(s);
  const auto& trail_pos = SolverAudit::trailPos(s);
  const auto& trail = SolverAudit::trail(s);
  const auto& trail_lim = SolverAudit::trailLim(s);
  const auto& eliminated = SolverAudit::eliminated(s);
  const std::uint32_t n_vars = s.numVars();
  const bool ok_state = SolverAudit::ok(s);

  const auto value = [&](SLit l) { return assigns[l.var()] ^ l.sign(); };

  // --- per-variable table shapes --------------------------------------------
  check(levels.size() == n_vars && reasons.size() == n_vars &&
            trail_pos.size() == n_vars && eliminated.size() == n_vars,
        "state-size", [&] {
          return "per-variable tables disagree on the variable count (" +
                 std::to_string(n_vars) + " vars; level " +
                 std::to_string(levels.size()) + ", reason " +
                 std::to_string(reasons.size()) + ", trail_pos " +
                 std::to_string(trail_pos.size()) + ", eliminated " +
                 std::to_string(eliminated.size()) + ")";
        });
  check(watches.size() == std::size_t{2} * n_vars, "state-size", [&] {
    return "watch table has " + std::to_string(watches.size()) +
           " lists for " + std::to_string(n_vars) + " variables";
  });
  check(s.picker().numVars() == n_vars, "state-size", [&] {
    return "VSIDS picker tracks " + std::to_string(s.picker().numVars()) +
           " variables, solver " + std::to_string(n_vars);
  });
  if (!report.ok()) return report;  // indexing below relies on the shapes

  // --- clause table / arena -------------------------------------------------
  const ClauseTable table = validateClauseTable(s, report);
  const auto live_clause = [&](ClauseRef ref) -> const Clause* {
    if (ref == kNoRef ||
        std::size_t{ref} + Clause::kHeaderWords > ca.sizeWords()) {
      return nullptr;
    }
    const Clause& c = ca.at(ref);
    if (std::size_t{ref} + Clause::kHeaderWords + c.size() > ca.sizeWords() ||
        c.reloced() || c.id() >= refs.size() || refs[c.id()] != ref ||
        !table.live[c.id()]) {
      return nullptr;
    }
    return &c;
  };

  // --- two-watched-literal integrity ----------------------------------------
  std::vector<std::uint32_t> watch_count(refs.size(), 0);
  for (std::uint32_t idx = 0; idx < watches.size(); ++idx) {
    const SLit lit = SLit::fromIndex(idx);
    for (const auto& w : watches[idx]) {
      const Clause* c = live_clause(w.ref);
      check(c != nullptr, "watch-clause", [&] {
        return "watch list of " + litStr(lit) + " holds ref " +
               std::to_string(w.ref) +
               " that is not a live registered clause (stale after GC or "
               "missing detach)";
      });
      if (c == nullptr) continue;
      ++watch_count[c->id()];
      check(c->size() >= 2, "watch-clause", [&] {
        return "watched clause " + std::to_string(c->id()) + " has size " +
               std::to_string(c->size());
      });
      if (c->size() < 2) continue;
      check((*c)[0] == ~lit || (*c)[1] == ~lit, "watch-position", [&] {
        return "clause " + std::to_string(c->id()) + " sits in the watch "
               "list of " + litStr(lit) +
               " but neither of its first two literals is " + litStr(~lit);
      });
      bool blocker_in_clause = false;
      for (const SLit l : c->lits()) {
        if (l == w.blocker) {
          blocker_in_clause = true;
          break;
        }
      }
      check(blocker_in_clause, "watch-blocker", [&] {
        return "watcher of clause " + std::to_string(c->id()) +
               " carries blocker " + litStr(w.blocker) +
               " that is not a literal of the clause";
      });
    }
  }
  // Every live clause of size >= 2 is watched exactly twice. An unattached
  // live clause is legal only in the unsatisfiable end state (addClause
  // keeps root-falsified clauses for proof logging without attaching them).
  for (ClauseId id = 0; id < refs.size(); ++id) {
    if (!table.live[id]) continue;
    const Clause& c = ca.at(refs[id]);
    if (c.size() < 2) {
      check(watch_count[id] == 0, "watch-count", [&] {
        return "unit clause " + std::to_string(id) + " appears in " +
               std::to_string(watch_count[id]) + " watch lists";
      });
      continue;
    }
    if (watch_count[id] == 0 && !ok_state) continue;
    check(watch_count[id] == 2, "watch-count", [&] {
      return "clause " + std::to_string(id) + " (size " +
             std::to_string(c.size()) + ") appears in " +
             std::to_string(watch_count[id]) + " watch lists, expected 2";
    });
  }

  // --- trail / assignment consistency ---------------------------------------
  const std::uint32_t qhead = SolverAudit::qhead(s);
  check(trail.size() <= n_vars, "trail-shape", [&] {
    return "trail holds " + std::to_string(trail.size()) + " entries for " +
           std::to_string(n_vars) + " variables";
  });
  check(qhead <= trail.size(), "trail-shape", [&] {
    return "propagation head " + std::to_string(qhead) +
           " is past the trail end " + std::to_string(trail.size());
  });
  for (std::size_t i = 0; i + 1 < trail_lim.size(); ++i) {
    check(trail_lim[i] <= trail_lim[i + 1], "trail-shape", [&] {
      return "decision-level marks are not monotone at level " +
             std::to_string(i + 1);
    });
  }
  check(trail_lim.empty() || trail_lim.back() <= trail.size(), "trail-shape",
        [&] {
          return "last decision-level mark " + std::to_string(trail_lim.back()) +
                 " is past the trail end " + std::to_string(trail.size());
        });
  if (report.hasRule("trail-shape")) return report;

  const std::uint32_t n_levels = static_cast<std::uint32_t>(trail_lim.size());
  const auto level_of_pos = [&](std::uint32_t pos) {
    std::uint32_t d = 0;
    while (d < n_levels && pos >= trail_lim[d]) ++d;
    return d;
  };

  std::vector<std::uint8_t> on_trail(n_vars, 0);
  for (std::uint32_t i = 0; i < trail.size(); ++i) {
    const SLit l = trail[i];
    check(l.defined() && l.var() < n_vars, "trail-lit", [&] {
      return "trail entry " + std::to_string(i) + " is " + litStr(l);
    });
    if (!l.defined() || l.var() >= n_vars) continue;
    const Var v = l.var();
    check(!on_trail[v], "trail-lit", [&] {
      return "variable x" + std::to_string(v) + " appears twice on the trail";
    });
    on_trail[v] = 1;
    check(value(l) == LBool::True, "trail-value", [&] {
      return "trail literal " + litStr(l) + " at position " +
             std::to_string(i) + " is not assigned true";
    });
    check(trail_pos[v] == i, "trail-pos", [&] {
      return "variable x" + std::to_string(v) + " sits at trail position " +
             std::to_string(i) + " but trail_pos records " +
             std::to_string(trail_pos[v]);
    });
    check(levels[v] == level_of_pos(i), "trail-level", [&] {
      return "variable x" + std::to_string(v) + " records level " +
             std::to_string(levels[v]) + " but its trail position " +
             std::to_string(i) + " lies in the level-" +
             std::to_string(level_of_pos(i)) + " segment";
    });
  }
  std::uint32_t assigned = 0;
  for (Var v = 0; v < n_vars; ++v) {
    if (assigns[v] != LBool::Undef) ++assigned;
  }
  check(assigned == trail.size(), "trail-coverage", [&] {
    return std::to_string(assigned) + " variables are assigned but the trail "
           "holds " + std::to_string(trail.size()) + " entries";
  });
  for (Var v = 0; v < n_vars; ++v) {
    if (assigns[v] != LBool::Undef) {
      check(on_trail[v], "trail-coverage", [&] {
        return "variable x" + std::to_string(v) +
               " is assigned but absent from the trail";
      });
    }
    if (eliminated[v]) {
      check(assigns[v] == LBool::Undef, "eliminated-assigned", [&] {
        return "eliminated variable x" + std::to_string(v) +
               " carries an assignment";
      });
    }
  }

  // --- reason consistency ---------------------------------------------------
  for (std::uint32_t i = 0; i < trail.size(); ++i) {
    const SLit l = trail[i];
    if (!l.defined() || l.var() >= n_vars) continue;
    const Var v = l.var();
    const ClauseRef r = reasons[v];
    if (r == kNoRef) {
      // Decisions and assumption/preprocessor roots carry no reason: legal
      // at level 0 or as the first entry of the variable's level segment.
      const std::uint32_t d = levels[v];
      check(d == 0 || (d <= n_levels && trail_pos[v] == trail_lim[d - 1]),
            "reason-missing", [&] {
              return "propagated literal " + litStr(l) + " (level " +
                     std::to_string(d) + ", position " +
                     std::to_string(trail_pos[v]) + ") has no reason clause";
            });
      continue;
    }
    const Clause* c = live_clause(r);
    check(c != nullptr, "reason-clause", [&] {
      return "reason of x" + std::to_string(v) + " (ref " + std::to_string(r) +
             ") is not a live registered clause (stale after GC?)";
    });
    if (c == nullptr) continue;
    check(c->size() >= 1 && (*c)[0] == l, "reason-assert", [&] {
      return "reason clause " + std::to_string(c->id()) + " of x" +
             std::to_string(v) + " does not assert the trail literal " +
             litStr(l) + " at its first position";
    });
    if (c->size() < 1 || (*c)[0] != l) continue;
    for (std::uint32_t k = 1; k < c->size(); ++k) {
      const SLit other = (*c)[k];
      if (!other.defined() || other.var() >= n_vars) continue;
      check(value(other) == LBool::False &&
                trail_pos[other.var()] < trail_pos[v],
            "reason-order", [&] {
              return "reason clause " + std::to_string(c->id()) + " of x" +
                     std::to_string(v) + " holds literal " + litStr(other) +
                     " that is not falsified earlier on the trail";
            });
    }
  }
  for (Var v = 0; v < n_vars; ++v) {
    if (assigns[v] == LBool::Undef) {
      check(reasons[v] == kNoRef, "reason-stale", [&] {
        return "unassigned variable x" + std::to_string(v) +
               " still carries reason ref " + std::to_string(reasons[v]) +
               " (turns stale at the next garbageCollect())";
      });
    }
  }

  // --- propagation fixpoint -------------------------------------------------
  // Only meaningful when the queue is drained and the solver is not already
  // in the unsatisfiable end state: a clause with no true literal must not
  // watch a false literal (it would have propagated or conflicted).
  if (ok_state && qhead == trail.size() && !report.hasRule("watch-count")) {
    for (ClauseId id = 0; id < refs.size(); ++id) {
      if (!table.live[id]) continue;
      const Clause& c = ca.at(refs[id]);
      if (c.size() < 2 || watch_count[id] != 2) continue;
      bool satisfied = false;
      for (const SLit l : c.lits()) {
        if (l.defined() && l.var() < n_vars && value(l) == LBool::True) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (int j = 0; j < 2; ++j) {
        const SLit w = c[static_cast<std::uint32_t>(j)];
        if (!w.defined() || w.var() >= n_vars) continue;
        check(value(w) != LBool::False, "watch-fixpoint", [&] {
          return "non-satisfied clause " + std::to_string(id) +
                 " watches the false literal " + litStr(w) +
                 " at propagation fixpoint";
        });
      }
    }
  }

  // --- VSIDS decision heap --------------------------------------------------
  {
    std::string why;
    check(s.picker().auditHeap(&why), "vsids-heap",
          [&] { return "decision heap self-check failed: " + why; });
  }
  for (Var v = 0; v < n_vars; ++v) {
    if (assigns[v] == LBool::Undef && !eliminated[v] &&
        s.picker().decidable(v)) {
      check(s.picker().heapContains(v), "vsids-missing", [&] {
        return "unassigned decidable variable x" + std::to_string(v) +
               " is absent from the decision heap";
      });
    }
    if (eliminated[v]) {
      check(!s.picker().decidable(v), "vsids-eliminated", [&] {
        return "eliminated variable x" + std::to_string(v) +
               " is still decidable";
      });
    }
  }

  // --- learned / LBD / identity bookkeeping ---------------------------------
  std::uint32_t live_learned = 0;
  for (ClauseId id = 0; id < refs.size(); ++id) {
    if (!table.live[id]) continue;
    const Clause& c = ca.at(refs[id]);
    if (!c.learned() || c.size() < 2) continue;
    ++live_learned;
    check(c.lbd() <= c.size(), "lbd-range", [&] {
      return "learned clause " + std::to_string(id) + " records LBD " +
             std::to_string(c.lbd()) + " above its size " +
             std::to_string(c.size());
    });
  }
  check(SolverAudit::numLearned(s) == live_learned, "learned-count", [&] {
    return "solver counts " + std::to_string(SolverAudit::numLearned(s)) +
           " learned clauses but " + std::to_string(live_learned) +
           " are live in the database";
  });
  check(SolverAudit::clauseBirth(s).size() == refs.size(), "birth-size", [&] {
    return "clause_birth table has " +
           std::to_string(SolverAudit::clauseBirth(s).size()) +
           " entries for " + std::to_string(refs.size()) + " clause ids";
  });
  if (SolverAudit::logsProof(s)) {
    check(s.proof().chains.size() == refs.size(), "proof-size", [&] {
      return "proof-chain table has " +
             std::to_string(s.proof().chains.size()) + " entries for " +
             std::to_string(refs.size()) + " clause ids";
    });
  }

  return report;
}

}  // namespace eco::check
