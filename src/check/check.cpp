#include "check/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "base/check.h"
#include "check/sat_audit.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "sat/solver.h"

namespace eco::check {

const char* levelName(Level level) {
  switch (level) {
    case Level::kOff: return "off";
    case Level::kStage: return "stage";
    case Level::kParanoid: return "paranoid";
  }
  return "?";
}

std::optional<Level> parseLevel(std::string_view text) {
  if (text == "off" || text == "0" || text == "none") return Level::kOff;
  if (text == "stage" || text == "1" || text == "on") return Level::kStage;
  if (text == "paranoid" || text == "2") return Level::kParanoid;
  return std::nullopt;
}

Level levelFromEnv() {
  static const Level level = [] {
    const char* env = std::getenv("ECO_CHECK");
    if (env == nullptr || env[0] == '\0') return Level::kOff;
    if (const auto parsed = parseLevel(env)) return *parsed;
    std::fprintf(stderr,
                 "eco: ignoring unrecognized ECO_CHECK value '%s' "
                 "(expected off|stage|paranoid)\n",
                 env);
    return Level::kOff;
  }();
  return level;
}

void AuditReport::add(std::string auditor, std::string rule, std::string detail) {
  violations.push_back(
      Violation{std::move(auditor), std::move(rule), std::move(detail)});
}

void AuditReport::merge(const AuditReport& other) {
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
  checks_run += other.checks_run;
}

bool AuditReport::hasRule(std::string_view rule) const {
  for (const Violation& v : violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

std::string AuditReport::summary(std::size_t max_items) const {
  std::string out = "audit[" + subject + "]: ";
  if (ok()) {
    out += "ok (" + std::to_string(checks_run) + " checks)";
    return out;
  }
  out += std::to_string(violations.size()) + " violation(s): ";
  for (std::size_t i = 0; i < violations.size() && i < max_items; ++i) {
    if (i != 0) out += "; ";
    out += violations[i].auditor + "/" + violations[i].rule + ": " +
           violations[i].detail;
  }
  if (violations.size() > max_items) {
    out += "; +" + std::to_string(violations.size() - max_items) + " more";
  }
  return out;
}

std::string AuditReport::toJson() const {
  obs::JsonWriter w;
  w.beginObject();
  w.key("schema").value("ecopatch-audit-report");
  w.key("version").value(std::uint64_t{1});
  w.key("subject").value(subject);
  w.key("ok").value(ok());
  w.key("checks_run").value(checks_run);
  w.key("violations").beginArray();
  for (const Violation& v : violations) {
    w.beginObject();
    w.key("auditor").value(v.auditor);
    w.key("rule").value(v.rule);
    w.key("detail").value(v.detail);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.take();
}

namespace {

std::atomic<Level> g_level{Level::kOff};

void solverAuditHook(const sat::Solver& solver, const char* site) {
  if (g_level.load(std::memory_order_acquire) < Level::kParanoid) return;
  const AuditReport report =
      auditSolver(solver, std::string("solver@") + site);
  if (!report.ok()) raise(report);
}

}  // namespace

void setGlobalLevel(Level level) {
  g_level.store(level, std::memory_order_release);
  sat::setSolverAuditHook(level >= Level::kParanoid ? &solverAuditHook
                                                    : nullptr);
}

Level globalLevel() { return g_level.load(std::memory_order_acquire); }

void raise(const AuditReport& report) {
  // Dump at the throw site (see base/check.cpp): the in-flight stage
  // labels are still live here, gone once unwinding reaches a catch.
  obs::dumpPostmortem("audit-failure", report.summary().c_str());
  throw CheckError(report.summary() + "\n" + report.toJson());
}

}  // namespace eco::check
