#pragma once
// SAT solver state auditor.
//
// auditSolver is a read-only pass over a sat::Solver's entire mutable
// state:
//   - clause table / arena integrity: every stable ClauseId maps to an
//     in-bounds, non-relocated clause that stores that id (stale-ref
//     detection after garbageCollect()), no two ids alias one arena slot,
//     and the live-word + wasted-word accounting covers the arena exactly
//   - two-watched-literal integrity: every watcher points at a live,
//     currently-registered clause through its first two literals with a
//     blocker from the clause; every live clause of size >= 2 is watched
//     exactly twice; at propagation fixpoint a non-satisfied clause never
//     watches a false literal
//   - trail / assignment / reason consistency: trail entries are true and
//     position-indexed, decision-level segments match trail_lim_, reasons
//     are live registered clauses asserting their variable with all other
//     literals falsified earlier on the trail, unassigned variables carry
//     no (possibly stale) reason
//   - VSIDS: decision-heap property, position-map agreement, and presence
//     of every unassigned decidable variable
//   - learned/LBD bookkeeping: the live learned-clause count matches
//     num_learned_, LBD never exceeds clause size, proof-chain table size
//     tracks the clause table under proof logging
//
// SolverAudit/PickerAudit are friend backdoors: const views for the
// auditor, mutable ones for the negative corruption tests. Production code
// must not touch them.

#include <string>

#include "check/check.h"
#include "sat/solver.h"

namespace eco::sat {

struct SolverAudit {
  static const ClauseAllocator& arena(const Solver& s) { return s.ca_; }
  static const std::vector<ClauseRef>& clauseRefs(const Solver& s) {
    return s.clause_refs_;
  }
  static const auto& watches(const Solver& s) { return s.watches_; }
  static const std::vector<LBool>& assigns(const Solver& s) { return s.assigns_; }
  static const std::vector<std::uint32_t>& levels(const Solver& s) {
    return s.level_;
  }
  static const std::vector<ClauseRef>& reasons(const Solver& s) {
    return s.reason_;
  }
  static const std::vector<std::uint32_t>& trailPos(const Solver& s) {
    return s.trail_pos_;
  }
  static const std::vector<SLit>& trail(const Solver& s) { return s.trail_; }
  static const std::vector<std::uint32_t>& trailLim(const Solver& s) {
    return s.trail_lim_;
  }
  static std::uint32_t qhead(const Solver& s) { return s.qhead_; }
  static bool ok(const Solver& s) { return s.ok_; }
  static bool logsProof(const Solver& s) { return s.log_proof_; }
  static std::uint32_t numLearned(const Solver& s) { return s.num_learned_; }
  static const std::vector<bool>& eliminated(const Solver& s) {
    return s.eliminated_;
  }
  static const std::vector<std::uint64_t>& clauseBirth(const Solver& s) {
    return s.clause_birth_;
  }

  // Mutable access — corruption hooks for the auditor's negative tests only.
  static auto& watchesMut(Solver& s) { return s.watches_; }
  static std::vector<ClauseRef>& clauseRefsMut(Solver& s) {
    return s.clause_refs_;
  }
  static std::vector<LBool>& assignsMut(Solver& s) { return s.assigns_; }
  static std::vector<ClauseRef>& reasonsMut(Solver& s) { return s.reason_; }
  static std::uint32_t& numLearnedMut(Solver& s) { return s.num_learned_; }
  static VsidsPicker& pickerMut(Solver& s) { return s.picker_; }
};

struct PickerAudit {
  static std::vector<double>& activitiesMut(VsidsPicker& p) {
    return p.activity_;
  }
};

}  // namespace eco::sat

namespace eco::check {

/// Runs the full state audit; `subject` labels the report.
AuditReport auditSolver(const sat::Solver& solver,
                        std::string subject = "solver");

}  // namespace eco::check
