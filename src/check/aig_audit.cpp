#include "check/aig_audit.h"

#include <algorithm>

#include "aig/aig_ops.h"

namespace eco::check {
namespace {

std::string litStr(Lit l) {
  if (!l.valid()) return "<invalid>";
  return (l.complemented() ? "!" : "") + std::to_string(l.var());
}

}  // namespace

AuditReport auditAig(const Aig& aig, std::string subject) {
  AuditReport report;
  report.subject = std::move(subject);
  const auto fail = [&](const char* rule, std::string detail) {
    report.add("aig", rule, std::move(detail));
  };
  const auto check = [&](bool ok, const char* rule, auto detail) {
    ++report.checks_run;
    if (!ok) fail(rule, detail());
  };

  const std::vector<Aig::Node>& nodes = AigAudit::nodes(aig);
  const std::uint32_t n = static_cast<std::uint32_t>(nodes.size());
  if (n == 0) {
    fail("const-node", "graph has no constant node");
    return report;
  }
  check(!nodes[0].fanin0.valid(), "const-node",
        [&] { return std::string("constant node 0 has a valid fanin0"); });

  // Per-node structure: PIs vs ANDs, topological order, dangling fanins,
  // canonical fanin order, constant folding (no constant fanins).
  std::uint32_t pi_nodes = 0;
  std::uint32_t and_nodes = 0;
  for (std::uint32_t v = 1; v < n; ++v) {
    const Aig::Node& node = nodes[v];
    if (!node.fanin0.valid()) {
      ++pi_nodes;
      continue;  // PI ordinal is validated against pis_ below
    }
    ++and_nodes;
    const Lit f0 = node.fanin0;
    const Lit f1 = node.fanin1;
    check(f1.valid(), "dangling-fanin",
          [&] { return "AND " + std::to_string(v) + " has invalid fanin1"; });
    if (!f1.valid()) continue;
    check(f0.var() < n && f1.var() < n, "dangling-fanin", [&] {
      return "AND " + std::to_string(v) + " fanins (" + litStr(f0) + ", " +
             litStr(f1) + ") exceed node count " + std::to_string(n);
    });
    if (f0.var() >= n || f1.var() >= n) continue;
    check(f0.var() < v && f1.var() < v, "topo-order", [&] {
      return "AND " + std::to_string(v) + " fanins (" + litStr(f0) + ", " +
             litStr(f1) + ") do not strictly precede it (cycle risk)";
    });
    check(f0.var() != 0 && f1.var() != 0, "const-fanin", [&] {
      return "AND " + std::to_string(v) +
             " reads the constant node; addAnd folds constants";
    });
    check(f0.value() < f1.value(), "fanin-order", [&] {
      return "AND " + std::to_string(v) + " fanins (" + litStr(f0) + ", " +
             litStr(f1) + ") are not in canonical (strictly increasing) order";
    });
  }

  // Strash consistency: the table and the AND nodes are mutual inverses.
  const auto& strash = AigAudit::strash(aig);
  check(strash.size() == and_nodes, "strash-size", [&] {
    return "strash has " + std::to_string(strash.size()) + " entries for " +
           std::to_string(and_nodes) + " AND nodes";
  });
  for (std::uint32_t v = 1; v < n; ++v) {
    const Aig::Node& node = nodes[v];
    if (!node.fanin0.valid() || !node.fanin1.valid()) continue;
    if (node.fanin0.var() >= n || node.fanin1.var() >= n) continue;
    const std::uint64_t key = AigAudit::strashKey(node.fanin0, node.fanin1);
    const auto it = strash.find(key);
    check(it != strash.end(), "strash-missing", [&] {
      return "AND " + std::to_string(v) + " (" + litStr(node.fanin0) + ", " +
             litStr(node.fanin1) + ") is absent from the strash table";
    });
    if (it != strash.end()) {
      check(it->second == v, "strash-map", [&] {
        return "strash entry for AND " + std::to_string(v) +
               " maps to node " + std::to_string(it->second) +
               " (duplicate structure or corrupted entry)";
      });
    }
  }
  for (const auto& [key, v] : strash) {
    check(v < n && v != 0 && nodes[v].fanin0.valid(), "strash-orphan", [&] {
      return "strash entry maps to " + std::to_string(v) +
             ", which is not an AND node";
    });
    if (v < n && v != 0 && nodes[v].fanin0.valid() &&
        nodes[v].fanin1.valid()) {
      check(AigAudit::strashKey(nodes[v].fanin0, nodes[v].fanin1) == key,
            "strash-key", [&] {
              return "strash entry for AND " + std::to_string(v) +
                     " stores a key that does not match its fanins";
            });
    }
  }

  // PI table: round-trip ordinal mapping, no AND masquerading as a PI.
  const auto& pis = AigAudit::pis(aig);
  check(pis.size() == pi_nodes, "pi-count", [&] {
    return "pi table has " + std::to_string(pis.size()) + " entries but " +
           std::to_string(pi_nodes) + " nodes are PI-shaped";
  });
  for (std::uint32_t i = 0; i < pis.size(); ++i) {
    const std::uint32_t v = pis[i];
    check(v != 0 && v < n, "pi-var", [&] {
      return "PI " + std::to_string(i) + " maps to out-of-range variable " +
             std::to_string(v);
    });
    if (v == 0 || v >= n) continue;
    check(!nodes[v].fanin0.valid(), "pi-shape", [&] {
      return "PI " + std::to_string(i) + " variable " + std::to_string(v) +
             " is an AND node";
    });
    if (nodes[v].fanin0.valid()) continue;
    check(nodes[v].fanin1.valid() && nodes[v].fanin1.value() == i, "pi-index",
          [&] {
            return "PI variable " + std::to_string(v) + " stores ordinal " +
                   (nodes[v].fanin1.valid()
                        ? std::to_string(nodes[v].fanin1.value())
                        : std::string("<invalid>")) +
                   ", expected " + std::to_string(i);
          });
  }

  // PO table: every driver is a valid literal of the graph.
  const auto& pos = AigAudit::pos(aig);
  for (std::uint32_t i = 0; i < pos.size(); ++i) {
    check(pos[i].valid() && pos[i].var() < n, "po-driver", [&] {
      return "PO " + std::to_string(i) + " driver " + litStr(pos[i]) +
             " is not a literal of the graph";
    });
  }

  // Named-signal coherence: the vector and the lookup index agree.
  const auto& named = AigAudit::namedSignals(aig);
  const auto& name_index = AigAudit::nameIndex(aig);
  check(named.size() == name_index.size(), "name-count", [&] {
    return "named_signals has " + std::to_string(named.size()) +
           " entries, name index " + std::to_string(name_index.size());
  });
  for (const auto& [name, lit] : named) {
    check(lit.valid() && lit.var() < n, "name-lit", [&] {
      return "named signal '" + name + "' maps to invalid literal " +
             litStr(lit);
    });
    const auto it = name_index.find(name);
    check(it != name_index.end() && it->second == lit, "name-index", [&] {
      return "name index disagrees with named_signals for '" + name + "'";
    });
  }

  // Stop before the derived-helper cross-checks if the graph is already
  // structurally broken — levels()/fanoutCounts() assume a sane topology.
  if (!report.ok()) return report;

  // Level coherence: aig_ops::levels() against a direct recomputation.
  const std::vector<std::uint32_t> lv = levels(aig);
  check(lv.size() == n, "level-size", [&] {
    return "levels() returned " + std::to_string(lv.size()) + " entries for " +
           std::to_string(n) + " nodes";
  });
  if (lv.size() == n) {
    for (std::uint32_t v = 1; v < n; ++v) {
      if (!nodes[v].fanin0.valid()) {
        check(lv[v] == 0, "level-cache", [&] {
          return "PI variable " + std::to_string(v) + " has level " +
                 std::to_string(lv[v]);
        });
        continue;
      }
      const std::uint32_t want =
          1 + std::max(lv[nodes[v].fanin0.var()], lv[nodes[v].fanin1.var()]);
      check(lv[v] == want, "level-cache", [&] {
        return "AND " + std::to_string(v) + " has level " +
               std::to_string(lv[v]) + ", expected " + std::to_string(want);
      });
    }
  }

  // Fanout/reference-count coherence: aig_ops::fanoutCounts() against a
  // direct recount, plus the global conservation law.
  const std::vector<std::uint32_t> fo = fanoutCounts(aig);
  check(fo.size() == n, "fanout-size", [&] {
    return "fanoutCounts() returned " + std::to_string(fo.size()) +
           " entries for " + std::to_string(n) + " nodes";
  });
  if (fo.size() == n) {
    std::vector<std::uint32_t> want(n, 0);
    for (std::uint32_t v = 1; v < n; ++v) {
      if (!nodes[v].fanin0.valid()) continue;
      ++want[nodes[v].fanin0.var()];
      ++want[nodes[v].fanin1.var()];
    }
    for (const Lit po : pos) ++want[po.var()];
    std::uint64_t total = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      total += fo[v];
      check(fo[v] == want[v], "fanout-count", [&] {
        return "variable " + std::to_string(v) + " has fanout count " +
               std::to_string(fo[v]) + ", recounted " + std::to_string(want[v]);
      });
    }
    check(total == std::uint64_t{2} * and_nodes + pos.size(), "fanout-sum",
          [&] {
            return "fanout counts sum to " + std::to_string(total) +
                   ", expected 2*ands + pos = " +
                   std::to_string(2 * and_nodes + pos.size());
          });
  }

  return report;
}

}  // namespace eco::check
