#pragma once
// Invariant-audit layer: leveled, read-only consistency passes over the
// library's long-lived mutable state (DESIGN.md "Static analysis &
// invariant audit").
//
// Three auditors live under src/check — the AIG structural linter
// (aig_audit.h), the SAT solver state auditor (sat_audit.h), and the
// patch/engine contract checker (patch_audit.h). Each is a pure read-only
// pass returning an AuditReport: a structured list of violations with a
// machine-readable JSON rendering (reusing obs::JsonWriter), so the QA
// harness, the fuzzer, and CI can consume audit failures the same way they
// consume run reports.
//
// Audits are gated by a Level:
//   kOff      — no audits (production default; a branch per stage boundary)
//   kStage    — audits at engine stage boundaries (setup, FRAIG, patchgen,
//               optimization, final contract)
//   kParanoid — kStage plus a solver self-audit after every clause-arena
//               garbageCollect() and preprocessing run, and per-patch
//               audits inside the generation loop
//
// The level of one engine run comes from EcoOptions::check_level, which
// defaults to the ECO_CHECK environment variable ("off" / "stage" /
// "paranoid"). The per-GC solver hook is process-global (solvers are
// created deep inside FRAIG/verification plumbing with no options channel):
// any engine run at kParanoid installs it for the whole process until
// setGlobalLevel() lowers it again.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eco::check {

enum class Level : std::uint8_t { kOff = 0, kStage = 1, kParanoid = 2 };

const char* levelName(Level level);

/// Parses "off" / "stage" / "paranoid" (or "0" / "1" / "2").
std::optional<Level> parseLevel(std::string_view text);

/// Level from the ECO_CHECK environment variable, read once per process.
/// Unset means kOff; an unparsable value warns on stderr (once) and means
/// kOff rather than silently changing semantics of the run.
Level levelFromEnv();

/// One violated invariant.
struct Violation {
  std::string auditor;  ///< "aig", "sat", or "patch"
  std::string rule;     ///< stable machine id, e.g. "strash-map"
  std::string detail;   ///< human-readable specifics (indices, values)
};

/// Result of one audit pass. `ok()` when no invariant was violated;
/// `checks_run` counts individual invariant evaluations so tests can assert
/// an audit actually looked at something.
struct AuditReport {
  std::string subject;  ///< what was audited, e.g. "faulty", "solver@gc"
  std::vector<Violation> violations;
  std::uint64_t checks_run = 0;

  bool ok() const { return violations.empty(); }
  void add(std::string auditor, std::string rule, std::string detail);
  /// Appends `other`'s violations and check count (subject is kept).
  void merge(const AuditReport& other);
  /// True iff some violation carries this rule id.
  bool hasRule(std::string_view rule) const;

  /// One-line human summary: subject, counts, and the first few rules.
  std::string summary(std::size_t max_items = 3) const;
  /// Machine-readable rendering ("ecopatch-audit-report", version 1).
  std::string toJson() const;
};

/// Process-wide audit level. setGlobalLevel(kParanoid) installs the solver
/// post-GC/post-preprocess audit hook (sat::setSolverAuditHook); lowering
/// the level removes it. Thread-safe.
void setGlobalLevel(Level level);
Level globalLevel();

/// Throws eco::CheckError carrying the report summary (the full JSON is
/// appended after a newline so harnesses can split it back out).
[[noreturn]] void raise(const AuditReport& report);

}  // namespace eco::check
