#pragma once
// Patch/engine contract checker.
//
// auditPatchContract validates a *successful* PatchResult against the
// instance it was generated for — the externally observable contract of
// the engine, independent of the SAT-verified functional equivalence:
//   - the patch network itself passes the AIG structural linter
//   - the patch drives exactly the declared targets: one PO per target,
//     named after it, in target order
//   - patch PIs align one-to-one with the base list (same count, names in
//     order, no duplicate base signals)
//   - every base signal is legal: it resolves in the faulty netlist (an X
//     primary input or a named internal signal) to the recorded literal,
//     and it does not lie in the transitive fanout of any target pseudo-PI
//     (reading such a signal would close a combinational cycle through the
//     rectified targets)
//   - the recorded weights match the instance's weight profile, and the
//     reported cost/size match a recomputation from the base list and the
//     patch network
//
// Failed results carry no patch and are not audited (the report comes back
// empty with zero checks).

#include <string>

#include "check/check.h"
#include "eco/instance.h"

namespace eco::check {

struct PatchAuditOptions {
  /// Require every patch PI to be in the support of some patch output.
  /// Matches EcoOptions::minimize_patches: the engine only guarantees
  /// pruned inputs when patch minimization is on.
  bool require_pruned_inputs = true;
};

AuditReport auditPatchContract(const EcoInstance& instance,
                               const PatchResult& result,
                               const PatchAuditOptions& options = {},
                               std::string subject = "patch");

}  // namespace eco::check
