#include "check/patch_audit.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "aig/aig_ops.h"
#include "check/aig_audit.h"

namespace eco::check {

AuditReport auditPatchContract(const EcoInstance& instance,
                               const PatchResult& result,
                               const PatchAuditOptions& options,
                               std::string subject) {
  AuditReport report;
  report.subject = std::move(subject);
  if (!result.success) return report;  // failures carry no patch contract

  const auto fail = [&](const char* rule, std::string detail) {
    report.add("patch", rule, std::move(detail));
  };
  const auto check = [&](bool ok, const char* rule, auto detail) {
    ++report.checks_run;
    if (!ok) fail(rule, detail());
  };

  // The patch network must be a well-formed AIG before anything else is
  // read out of it.
  report.merge(auditAig(result.patch, report.subject + ".aig"));
  if (!report.ok()) return report;

  const Aig& patch = result.patch;
  const Aig& faulty = instance.faulty;
  const std::uint32_t alpha = instance.numTargets();

  // One PO per declared target, named after it, in target order — the
  // patch drives the targets and nothing else.
  check(patch.numPos() == alpha, "po-targets", [&] {
    return "patch has " + std::to_string(patch.numPos()) + " outputs for " +
           std::to_string(alpha) + " targets";
  });
  if (patch.numPos() == alpha) {
    for (std::uint32_t k = 0; k < alpha; ++k) {
      check(patch.poName(k) == instance.targetName(k), "po-name", [&] {
        return "patch output " + std::to_string(k) + " is named '" +
               patch.poName(k) + "', target " + std::to_string(k) + " is '" +
               instance.targetName(k) + "'";
      });
    }
  }

  // Patch PIs align one-to-one with the base list.
  check(patch.numPis() == result.base.size(), "base-align", [&] {
    return "patch has " + std::to_string(patch.numPis()) + " inputs but the "
           "base list has " + std::to_string(result.base.size()) + " entries";
  });
  const bool aligned = patch.numPis() == result.base.size();

  // Transitive fanout of the target pseudo-PIs in the faulty netlist: a
  // base signal in there would make the patched circuit cyclic.
  std::vector<std::uint32_t> target_vars;
  for (std::uint32_t k = 0; k < alpha; ++k) {
    target_vars.push_back(faulty.piVar(instance.targetPi(k)));
  }
  const std::vector<bool> target_tfo =
      transitiveFanoutMask(faulty, target_vars);

  std::unordered_set<std::string> seen_names;
  double recomputed_cost = 0;
  for (std::size_t i = 0; i < result.base.size(); ++i) {
    const BaseRef& b = result.base[i];
    check(!b.name.empty(), "base-name", [&] {
      return "base " + std::to_string(i) + " has no signal name";
    });
    check(seen_names.insert(b.name).second, "base-duplicate", [&] {
      return "base signal '" + b.name + "' is listed twice";
    });
    if (aligned) {
      check(patch.piName(static_cast<std::uint32_t>(i)) == b.name,
            "base-align", [&] {
              return "patch input " + std::to_string(i) + " is named '" +
                     patch.piName(static_cast<std::uint32_t>(i)) +
                     "', base entry is '" + b.name + "'";
            });
    }

    // Resolution in the faulty netlist: an X primary input or a named
    // internal signal, matching the recorded literal.
    Lit resolved;
    if (const auto pi_var = faulty.findPi(b.name)) {
      resolved = Lit::fromVar(*pi_var, false);
    } else if (const auto lit = faulty.findSignal(b.name)) {
      resolved = *lit;
    }
    check(resolved.valid(), "base-unknown", [&] {
      return "base signal '" + b.name + "' does not resolve in the faulty "
             "netlist";
    });
    if (!resolved.valid()) continue;
    check(b.lit == resolved, "base-lit", [&] {
      return "base signal '" + b.name + "' records literal " +
             std::to_string(b.lit.value()) + " but resolves to " +
             std::to_string(resolved.value());
    });
    check(!target_tfo[resolved.var()], "base-loop", [&] {
      return "base signal '" + b.name + "' lies in the transitive fanout of "
             "a target — the patched circuit would be cyclic";
    });
    const double want_weight = instance.weightOf(b.name);
    check(b.weight == want_weight, "base-weight", [&] {
      return "base signal '" + b.name + "' records weight " +
             std::to_string(b.weight) + ", the instance profile says " +
             std::to_string(want_weight);
    });
    recomputed_cost += b.weight;
  }

  // Reported metrics against a recomputation.
  check(std::abs(result.cost - recomputed_cost) <=
            1e-9 * std::max(1.0, std::abs(recomputed_cost)),
        "cost-mismatch", [&] {
          return "reported cost " + std::to_string(result.cost) +
                 " differs from the recomputed base-weight sum " +
                 std::to_string(recomputed_cost);
        });
  check(result.size == patch.numAnds(), "size-mismatch", [&] {
    return "reported size " + std::to_string(result.size) +
           " differs from the patch AND count " +
           std::to_string(patch.numAnds());
  });

  // Every input feeds some output (guaranteed by the engine's input
  // pruning; unused inputs inflate the cost metric).
  if (options.require_pruned_inputs && aligned) {
    std::vector<Lit> roots;
    for (std::uint32_t k = 0; k < patch.numPos(); ++k) {
      roots.push_back(patch.poDriver(k));
    }
    std::unordered_set<std::uint32_t> support;
    for (const std::uint32_t v : supportPis(patch, roots)) support.insert(v);
    for (std::uint32_t i = 0; i < patch.numPis(); ++i) {
      check(support.count(patch.piVar(i)) != 0, "base-unused", [&] {
        return "patch input '" + patch.piName(i) +
               "' feeds no patch output but is charged in the cost";
      });
    }
  }

  return report;
}

}  // namespace eco::check
