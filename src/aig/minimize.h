#pragma once
// AIG minimization for patch-size reduction.
//
// The contest's secondary quality metric is the gate count of the patch, so
// the engine shrinks every candidate patch function before accepting it.
// Passes, iterated to a fixed point (bounded by max_rounds):
//
//   1. dead-node sweep (cleanup)
//   2. AND/OR tree flattening: maximal single-fanout conjunction trees are
//      flattened into a literal set — duplicates collapse, complementary
//      pairs annihilate to a constant — and rebuilt balanced
//   3. FRAIG reduction: functionally equivalent internal nodes are merged
//      onto class representatives (SAT-proven)
//
// All passes are purely functional: the result is a fresh AIG provably
// equivalent input (FRAIG merges are SAT-verified; everything else is
// syntactic).

#include <cstdint>

#include "aig/aig.h"

namespace eco {

struct MinimizeOptions {
  std::uint32_t max_rounds = 3;
  bool use_fraig = true;          ///< enable the SAT-based reduction pass
  std::int64_t fraig_budget = 2000;  ///< per-query conflict budget
  std::uint64_t seed = 0x5EEDULL;
};

/// Returns a functionally equivalent AIG with at most as many AND nodes.
Aig minimizeAig(const Aig& src, const MinimizeOptions& options = {});

}  // namespace eco
