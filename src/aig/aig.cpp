#include "aig/aig.h"

#include <algorithm>

namespace eco {

Aig::Aig() {
  // Variable 0 is the constant-FALSE node.
  nodes_.push_back(Node{Lit(), Lit()});
}

Lit Aig::addPi(std::string name) {
  const auto var = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.fanin0 = Lit();  // invalid marks a PI
  n.fanin1 = Lit::fromValue(static_cast<std::uint32_t>(pis_.size()));
  nodes_.push_back(n);
  pis_.push_back(var);
  pi_names_.push_back(std::move(name));
  return Lit::fromVar(var, false);
}

Lit Aig::addAnd(Lit a, Lit b) {
  ECO_CHECK(a.valid() && b.valid());
  ECO_CHECK(a.var() < nodes_.size() && b.var() < nodes_.size());
  // Constant folding and trivial cases.
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a == !b) return kFalse;
  // Canonical fanin order for structural hashing.
  if (b < a) std::swap(a, b);
  const std::uint64_t key = strashKey(a, b);
  if (auto it = strash_.find(key); it != strash_.end()) {
    return Lit::fromVar(it->second, false);
  }
  const auto var = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b});
  strash_.emplace(key, var);
  return Lit::fromVar(var, false);
}

std::uint32_t Aig::addPo(Lit lit, std::string name) {
  ECO_CHECK(lit.valid());
  const auto idx = static_cast<std::uint32_t>(pos_.size());
  pos_.push_back(lit);
  po_names_.push_back(std::move(name));
  return idx;
}

void Aig::setPoDriver(std::uint32_t po_index, Lit lit) {
  ECO_CHECK(po_index < pos_.size() && lit.valid());
  pos_[po_index] = lit;
}

Lit Aig::mkXor(Lit a, Lit b) {
  // a ^ b = (a & !b) | (!a & b)
  return mkOr(addAnd(a, !b), addAnd(!a, b));
}

Lit Aig::mkMux(Lit sel, Lit t, Lit e) {
  return mkOr(addAnd(sel, t), addAnd(!sel, e));
}

Lit Aig::mkAndN(std::span<const Lit> lits) {
  Lit acc = kTrue;
  for (Lit l : lits) acc = addAnd(acc, l);
  return acc;
}

Lit Aig::mkOrN(std::span<const Lit> lits) {
  Lit acc = kFalse;
  for (Lit l : lits) acc = mkOr(acc, l);
  return acc;
}

std::optional<std::uint32_t> Aig::findPi(const std::string& name) const {
  for (std::uint32_t i = 0; i < numPis(); ++i) {
    if (pi_names_[i] == name) return pis_[i];
  }
  return std::nullopt;
}

void Aig::setSignalName(Lit lit, const std::string& name) {
  ECO_CHECK(lit.valid());
  auto [it, inserted] = name_index_.emplace(name, lit);
  if (inserted) {
    named_signals_.emplace_back(name, lit);
  } else {
    it->second = lit;
    for (auto& [n, l] : named_signals_) {
      if (n == name) { l = lit; break; }
    }
  }
}

std::optional<Lit> Aig::findSignal(const std::string& name) const {
  if (auto it = name_index_.find(name); it != name_index_.end()) return it->second;
  return std::nullopt;
}

std::vector<bool> Aig::evaluate(const std::vector<bool>& inputs) const {
  ECO_CHECK(inputs.size() == pis_.size());
  std::vector<bool> value(nodes_.size(), false);
  for (std::uint32_t var = 1; var < nodes_.size(); ++var) {
    if (isPi(var)) {
      value[var] = inputs[piIndex(var)];
    } else {
      const Node& n = nodes_[var];
      const bool v0 = value[n.fanin0.var()] ^ n.fanin0.complemented();
      const bool v1 = value[n.fanin1.var()] ^ n.fanin1.complemented();
      value[var] = v0 && v1;
    }
  }
  std::vector<bool> out(pos_.size());
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    out[i] = value[pos_[i].var()] ^ pos_[i].complemented();
  }
  return out;
}

}  // namespace eco
