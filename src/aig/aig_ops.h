#pragma once
// Cone-level operations on AIGs: copying cones across graphs, substituting
// drivers for variables (cofactoring and patch insertion), support and
// fanin/fanout cone computation.
//
// The ECO algorithms are phrased almost entirely in terms of these
// operations: care-sets are XORs of two cofactor copies, diff-sets are XORs
// of cones from two graphs, patch insertion is substitution of a pseudo-PI.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "aig/aig.h"

namespace eco {

/// Maps a variable of a source AIG to a literal of a destination AIG.
using VarMap = std::unordered_map<std::uint32_t, Lit>;

/// Copies the cones of `roots` from `src` into `dst`.
///
/// `map` must pre-seed every PI variable of `src` reachable from `roots`
/// with a destination literal; it is extended with the mapping of every
/// internal node copied. Any variable pre-seeded in `map` — including
/// internal AND nodes — is treated as a cut boundary: it is not expanded
/// and its mapping is not overwritten (this implements the Theorem 2
/// re-expression of cones over a cut). Returns the destination literals of
/// `roots`.
std::vector<Lit> copyCones(const Aig& src, std::span<const Lit> roots, VarMap& map,
                           Aig& dst);

/// Convenience overload mapping src PI i to `pi_map[i]`.
std::vector<Lit> copyCones(const Aig& src, std::span<const Lit> roots,
                           std::span<const Lit> pi_map, Aig& dst);

/// Rebuilds the cones of `roots` inside `aig` with the drivers of the given
/// variables replaced (variable -> replacement literal). Used to cofactor a
/// pseudo-PI to a constant or to substitute a patch function for a target.
/// Untouched structure is shared via structural hashing.
std::vector<Lit> substitute(Aig& aig, std::span<const Lit> roots,
                            const VarMap& replacement);

/// Variables (PIs and ANDs) in the transitive fanin cones of `roots`,
/// in topological order; excludes the constant node.
std::vector<std::uint32_t> collectCone(const Aig& aig, std::span<const Lit> roots);

/// PI variables in the combined support of `roots`.
std::vector<std::uint32_t> supportPis(const Aig& aig, std::span<const Lit> roots);

/// Number of AND nodes in the combined cones of `roots` (patch "size" in the
/// contest metric: every primitive gate counts one).
std::uint32_t coneAndCount(const Aig& aig, std::span<const Lit> roots);

/// mark[var] = true iff var is one of `sources` or lies in their transitive
/// fanout. Sources are given as variables.
std::vector<bool> transitiveFanoutMask(const Aig& aig,
                                       std::span<const std::uint32_t> sources);

/// Structural depth per variable (PIs and the constant are level 0).
std::vector<std::uint32_t> levels(const Aig& aig);

/// Fanout reference counts per variable: one per AND-node fanin plus one
/// per PO reference.
std::vector<std::uint32_t> fanoutCounts(const Aig& aig);

/// Duplicates an AIG keeping only logic reachable from its POs (dead-node
/// sweep). PO/PI names and named signals whose node survives are preserved.
Aig cleanup(const Aig& src);

/// Structural + functional equality up to the strash: true iff both graphs
/// have identical PI counts and every PO pair is the same literal after
/// copying `b` into `a`'s namespace. (Cheap syntactic check used by tests.)
bool strashEquivalent(const Aig& a, const Aig& b);

}  // namespace eco
