#include "aig/minimize.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "aig/aig_ops.h"
#include "base/check.h"
#include "fraig/fraig.h"

namespace eco {
namespace {

/// One flatten-and-rebalance rebuild of `src` into a fresh AIG.
Aig flattenRebuild(const Aig& src) {
  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < src.numPos(); ++j) roots.push_back(src.poDriver(j));
  const std::vector<std::uint32_t> live = collectCone(src, roots);

  // Reference counts within the live cone (plus PO references).
  std::vector<std::uint32_t> refs(src.numNodes(), 0);
  for (const std::uint32_t v : live) {
    if (!src.isAnd(v)) continue;
    ++refs[src.fanin0(v).var()];
    ++refs[src.fanin1(v).var()];
  }
  for (const Lit r : roots) ++refs[r.var()];

  Aig dst;
  VarMap map;
  map[0] = kFalse;
  for (std::uint32_t i = 0; i < src.numPis(); ++i) {
    map[src.piVar(i)] = dst.addPi(src.piName(i));
  }

  const auto mappedLit = [&](Lit l) { return map.at(l.var()) ^ l.complemented(); };

  for (const std::uint32_t var : live) {
    if (!src.isAnd(var)) continue;
    // Flatten the maximal AND tree rooted here: descend through
    // non-complemented, single-reference AND fanins.
    std::vector<Lit> leaves;
    std::vector<Lit> stack{src.fanin0(var), src.fanin1(var)};
    while (!stack.empty()) {
      const Lit l = stack.back();
      stack.pop_back();
      if (!l.complemented() && src.isAnd(l.var()) && refs[l.var()] == 1) {
        stack.push_back(src.fanin0(l.var()));
        stack.push_back(src.fanin1(l.var()));
        continue;
      }
      leaves.push_back(mappedLit(l));
    }
    // Deduplicate; x & !x annihilates, TRUE units drop.
    std::sort(leaves.begin(), leaves.end());
    leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
    bool is_false = false;
    for (std::size_t i = 0; i + 1 < leaves.size() && !is_false; ++i) {
      if (leaves[i].var() == leaves[i + 1].var()) is_false = true;
    }
    if (is_false || (!leaves.empty() && leaves[0] == kFalse)) {
      map[var] = kFalse;
      continue;
    }
    std::deque<Lit> queue;
    for (const Lit l : leaves) {
      if (l != kTrue) queue.push_back(l);
    }
    if (queue.empty()) {
      map[var] = kTrue;
      continue;
    }
    // Balanced pairwise reduction.
    while (queue.size() > 1) {
      const Lit a = queue.front();
      queue.pop_front();
      const Lit b = queue.front();
      queue.pop_front();
      queue.push_back(dst.addAnd(a, b));
    }
    map[var] = queue.front();
  }

  for (std::uint32_t j = 0; j < src.numPos(); ++j) {
    dst.addPo(mappedLit(src.poDriver(j)), src.poName(j));
  }
  for (const auto& [name, lit] : src.namedSignals()) {
    if (const auto it = map.find(lit.var()); it != map.end()) {
      dst.setSignalName(it->second ^ lit.complemented(), name);
    }
  }
  return dst;
}

/// FRAIG pass over all PO cones, followed by a dead-node sweep.
Aig fraigRebuild(const Aig& src, const MinimizeOptions& options) {
  Aig work = src;  // compressCones appends into the graph
  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < work.numPos(); ++j) roots.push_back(work.poDriver(j));
  fraig::Options fo;
  fo.conflict_budget = options.fraig_budget;
  fo.seed = options.seed;
  const std::vector<Lit> reduced = fraig::compressCones(work, roots, fo);
  for (std::uint32_t j = 0; j < work.numPos(); ++j) work.setPoDriver(j, reduced[j]);
  return cleanup(work);
}

}  // namespace

Aig minimizeAig(const Aig& src, const MinimizeOptions& options) {
  Aig best = cleanup(src);
  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    Aig next = cleanup(flattenRebuild(best));
    if (options.use_fraig) {
      Aig swept = fraigRebuild(next, options);
      if (swept.numAnds() < next.numAnds()) next = std::move(swept);
    }
    if (next.numAnds() >= best.numAnds()) break;
    best = std::move(next);
  }
  return best;
}

}  // namespace eco
