#pragma once
// Structurally hashed And-Inverter Graph (AIG).
//
// The AIG is the working representation for every circuit in this library:
// faulty/golden networks, care/diff-set constructions, interpolants, and
// patch functions. Nodes are appended in topological order and never
// removed; dead logic is dropped by copying live cones into a fresh graph
// (see aig_ops.h).
//
// Encoding: a literal is (variable << 1) | complement. Variable 0 is the
// constant-FALSE node, so literal 0 is FALSE and literal 1 is TRUE.

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/check.h"

namespace eco {

/// AIG literal: a variable index with an optional complement bit.
class Lit {
 public:
  constexpr Lit() : value_(kInvalid) {}
  constexpr static Lit fromVar(std::uint32_t var, bool complement) {
    return Lit((var << 1) | (complement ? 1u : 0u));
  }
  constexpr static Lit fromValue(std::uint32_t value) { return Lit(value); }

  constexpr std::uint32_t var() const { return value_ >> 1; }
  constexpr bool complemented() const { return (value_ & 1u) != 0; }
  constexpr std::uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  constexpr Lit operator!() const { return Lit(value_ ^ 1u); }
  constexpr Lit operator^(bool c) const { return Lit(value_ ^ (c ? 1u : 0u)); }

  friend constexpr bool operator==(Lit a, Lit b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Lit a, Lit b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Lit a, Lit b) { return a.value_ < b.value_; }

 private:
  constexpr explicit Lit(std::uint32_t value) : value_(value) {}
  static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t value_;
};

/// Constant literals.
inline constexpr Lit kFalse = Lit::fromVar(0, false);
inline constexpr Lit kTrue = Lit::fromVar(0, true);

class Aig {
 public:
  struct Node {
    Lit fanin0;  ///< invalid for PIs and the constant node
    Lit fanin1;  ///< for PIs, holds the PI index in value()
  };

  Aig();

  Aig(const Aig&) = default;
  Aig(Aig&&) = default;
  Aig& operator=(const Aig&) = default;
  Aig& operator=(Aig&&) = default;

  // --- construction -------------------------------------------------------

  /// Adds a primary input; returns its (positive) literal.
  Lit addPi(std::string name = {});

  /// Adds a structurally hashed AND gate with constant folding.
  Lit addAnd(Lit a, Lit b);

  /// Registers a primary output driven by `lit`.
  std::uint32_t addPo(Lit lit, std::string name = {});

  /// Redirects an existing primary output to a new driver.
  void setPoDriver(std::uint32_t po_index, Lit lit);

  // Derived connectives (built from AND/NOT).
  Lit mkOr(Lit a, Lit b) { return !addAnd(!a, !b); }
  Lit mkXor(Lit a, Lit b);
  Lit mkEquiv(Lit a, Lit b) { return !mkXor(a, b); }
  /// if-then-else: sel ? t : e.
  Lit mkMux(Lit sel, Lit t, Lit e);
  Lit mkAndN(std::span<const Lit> lits);
  Lit mkOrN(std::span<const Lit> lits);

  // --- inspection ---------------------------------------------------------

  std::uint32_t numNodes() const { return static_cast<std::uint32_t>(nodes_.size()); }
  std::uint32_t numPis() const { return static_cast<std::uint32_t>(pis_.size()); }
  std::uint32_t numPos() const { return static_cast<std::uint32_t>(pos_.size()); }
  std::uint32_t numAnds() const { return numNodes() - numPis() - 1; }

  bool isPi(std::uint32_t var) const {
    return var != 0 && !nodes_[var].fanin0.valid();
  }
  bool isAnd(std::uint32_t var) const {
    return var != 0 && nodes_[var].fanin0.valid();
  }
  bool isConst(std::uint32_t var) const { return var == 0; }

  /// PI ordinal of a PI variable.
  std::uint32_t piIndex(std::uint32_t var) const {
    ECO_CHECK(isPi(var));
    return nodes_[var].fanin1.value();
  }
  /// Variable of the i-th PI.
  std::uint32_t piVar(std::uint32_t i) const { return pis_[i]; }
  /// Positive literal of the i-th PI.
  Lit piLit(std::uint32_t i) const { return Lit::fromVar(pis_[i], false); }

  Lit fanin0(std::uint32_t var) const { return nodes_[var].fanin0; }
  Lit fanin1(std::uint32_t var) const { return nodes_[var].fanin1; }

  Lit poDriver(std::uint32_t i) const { return pos_[i]; }
  const std::string& poName(std::uint32_t i) const { return po_names_[i]; }
  const std::string& piName(std::uint32_t i) const { return pi_names_[i]; }

  /// Finds a PI by name; returns nullopt if absent.
  std::optional<std::uint32_t> findPi(const std::string& name) const;

  // --- named internal signals --------------------------------------------
  // The contest formulation attaches weights to *named* signals of the
  // faulty netlist; names are preserved through parsing so bases and costs
  // can be reported in the original namespace.

  void setSignalName(Lit lit, const std::string& name);
  std::optional<Lit> findSignal(const std::string& name) const;
  const std::vector<std::pair<std::string, Lit>>& namedSignals() const {
    return named_signals_;
  }

  // --- evaluation ---------------------------------------------------------

  /// Point-evaluates all POs under a PI assignment (inputs[i] = value of PI i).
  std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

 private:
  // Invariant-audit backdoor (src/check/aig_audit.h): const views for the
  // structural linter, mutable ones for its negative corruption tests.
  friend struct AigAudit;

  static std::uint64_t strashKey(Lit a, Lit b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pis_;
  std::vector<Lit> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::vector<std::pair<std::string, Lit>> named_signals_;
  std::unordered_map<std::string, Lit> name_index_;
};

}  // namespace eco
