#include "aig/aig_ops.h"

#include <algorithm>

namespace eco {
namespace {

// Iterative post-order DFS over the fanin cones of `roots`, invoking
// `visit(var)` for every AND node with both fanins already visited.
// PIs must be handled by the caller (present in `done` beforehand or on
// demand). Shared by copyCones/substitute to avoid recursion depth limits
// on deep circuits.
template <typename PiHandler, typename AndHandler>
void forEachConeNode(const Aig& aig, std::span<const Lit> roots, PiHandler on_pi,
                     AndHandler on_and) {
  std::vector<bool> seen(aig.numNodes(), false);
  seen[0] = true;  // constant
  std::vector<std::uint32_t> stack;
  for (Lit r : roots) {
    if (!seen[r.var()]) stack.push_back(r.var());
  }
  while (!stack.empty()) {
    const std::uint32_t var = stack.back();
    if (seen[var]) {
      stack.pop_back();
      continue;
    }
    if (aig.isPi(var)) {
      seen[var] = true;
      stack.pop_back();
      on_pi(var);
      continue;
    }
    const std::uint32_t f0 = aig.fanin0(var).var();
    const std::uint32_t f1 = aig.fanin1(var).var();
    if (!seen[f0]) {
      stack.push_back(f0);
      continue;
    }
    if (!seen[f1]) {
      stack.push_back(f1);
      continue;
    }
    seen[var] = true;
    stack.pop_back();
    on_and(var);
  }
}

}  // namespace

std::vector<Lit> copyCones(const Aig& src, std::span<const Lit> roots, VarMap& map,
                           Aig& dst) {
  map.emplace(0, kFalse);
  // Bounded traversal: variables already present in `map` (pre-seeded PIs
  // or cut-frontier nodes) are leaves and are never expanded or overwritten.
  std::vector<std::uint32_t> stack;
  for (Lit r : roots) stack.push_back(r.var());
  while (!stack.empty()) {
    const std::uint32_t var = stack.back();
    if (map.count(var) != 0) {
      stack.pop_back();
      continue;
    }
    ECO_CHECK_MSG(!src.isPi(var), "copyCones: unmapped source PI");
    const Lit f0 = src.fanin0(var);
    const Lit f1 = src.fanin1(var);
    const bool need0 = map.count(f0.var()) == 0;
    const bool need1 = map.count(f1.var()) == 0;
    if (need0) stack.push_back(f0.var());
    if (need1) stack.push_back(f1.var());
    if (need0 || need1) continue;
    stack.pop_back();
    const Lit m0 = map.at(f0.var()) ^ f0.complemented();
    const Lit m1 = map.at(f1.var()) ^ f1.complemented();
    map.emplace(var, dst.addAnd(m0, m1));
  }
  std::vector<Lit> out;
  out.reserve(roots.size());
  for (Lit r : roots) out.push_back(map.at(r.var()) ^ r.complemented());
  return out;
}

std::vector<Lit> copyCones(const Aig& src, std::span<const Lit> roots,
                           std::span<const Lit> pi_map, Aig& dst) {
  ECO_CHECK(pi_map.size() == src.numPis());
  VarMap map;
  for (std::uint32_t i = 0; i < src.numPis(); ++i) map[src.piVar(i)] = pi_map[i];
  return copyCones(src, roots, map, dst);
}

std::vector<Lit> substitute(Aig& aig, std::span<const Lit> roots,
                            const VarMap& replacement) {
  VarMap map = replacement;
  map[0] = kFalse;
  forEachConeNode(
      aig, roots,
      [&](std::uint32_t pi) {
        // Unreplaced PIs map to themselves.
        map.try_emplace(pi, Lit::fromVar(pi, false));
      },
      [&](std::uint32_t var) {
        if (map.count(var) != 0) return;  // explicitly replaced AND node
        const Lit f0 = aig.fanin0(var);
        const Lit f1 = aig.fanin1(var);
        const Lit m0 = map.at(f0.var()) ^ f0.complemented();
        const Lit m1 = map.at(f1.var()) ^ f1.complemented();
        map[var] = aig.addAnd(m0, m1);
      });
  // Note: forEachConeNode traverses *through* replaced AND nodes' original
  // fanins as well, which is harmless (extra shared nodes already exist).
  std::vector<Lit> out;
  out.reserve(roots.size());
  for (Lit r : roots) out.push_back(map.at(r.var()) ^ r.complemented());
  return out;
}

std::vector<std::uint32_t> collectCone(const Aig& aig, std::span<const Lit> roots) {
  std::vector<std::uint32_t> order;
  forEachConeNode(
      aig, roots, [&](std::uint32_t pi) { order.push_back(pi); },
      [&](std::uint32_t var) { order.push_back(var); });
  return order;
}

std::vector<std::uint32_t> supportPis(const Aig& aig, std::span<const Lit> roots) {
  std::vector<std::uint32_t> pis;
  forEachConeNode(
      aig, roots, [&](std::uint32_t pi) { pis.push_back(pi); },
      [](std::uint32_t) {});
  std::sort(pis.begin(), pis.end());
  return pis;
}

std::uint32_t coneAndCount(const Aig& aig, std::span<const Lit> roots) {
  std::uint32_t count = 0;
  forEachConeNode(
      aig, roots, [](std::uint32_t) {}, [&](std::uint32_t) { ++count; });
  return count;
}

std::vector<bool> transitiveFanoutMask(const Aig& aig,
                                       std::span<const std::uint32_t> sources) {
  std::vector<bool> mark(aig.numNodes(), false);
  for (std::uint32_t s : sources) mark[s] = true;
  // Nodes are stored in topological order, so one forward sweep suffices.
  for (std::uint32_t var = 1; var < aig.numNodes(); ++var) {
    if (!aig.isAnd(var) || mark[var]) continue;
    if (mark[aig.fanin0(var).var()] || mark[aig.fanin1(var).var()]) mark[var] = true;
  }
  return mark;
}

std::vector<std::uint32_t> levels(const Aig& aig) {
  std::vector<std::uint32_t> d(aig.numNodes(), 0);
  for (std::uint32_t v = 1; v < aig.numNodes(); ++v) {
    if (aig.isAnd(v)) {
      d[v] = 1 + std::max(d[aig.fanin0(v).var()], d[aig.fanin1(v).var()]);
    }
  }
  return d;
}

std::vector<std::uint32_t> fanoutCounts(const Aig& aig) {
  std::vector<std::uint32_t> refs(aig.numNodes(), 0);
  for (std::uint32_t v = 1; v < aig.numNodes(); ++v) {
    if (!aig.isAnd(v)) continue;
    ++refs[aig.fanin0(v).var()];
    ++refs[aig.fanin1(v).var()];
  }
  for (std::uint32_t j = 0; j < aig.numPos(); ++j) ++refs[aig.poDriver(j).var()];
  return refs;
}

Aig cleanup(const Aig& src) {
  Aig dst;
  VarMap map;
  for (std::uint32_t i = 0; i < src.numPis(); ++i) {
    map[src.piVar(i)] = dst.addPi(src.piName(i));
  }
  std::vector<Lit> roots;
  roots.reserve(src.numPos());
  for (std::uint32_t i = 0; i < src.numPos(); ++i) roots.push_back(src.poDriver(i));
  const std::vector<Lit> mapped = copyCones(src, roots, map, dst);
  for (std::uint32_t i = 0; i < src.numPos(); ++i) {
    dst.addPo(mapped[i], src.poName(i));
  }
  for (const auto& [name, lit] : src.namedSignals()) {
    if (auto it = map.find(lit.var()); it != map.end()) {
      dst.setSignalName(it->second ^ lit.complemented(), name);
    }
  }
  return dst;
}

bool strashEquivalent(const Aig& a, const Aig& b) {
  if (a.numPis() != b.numPis() || a.numPos() != b.numPos()) return false;
  Aig scratch;
  VarMap map_a, map_b;
  for (std::uint32_t i = 0; i < a.numPis(); ++i) {
    const Lit pi = scratch.addPi();
    map_a[a.piVar(i)] = pi;
    map_b[b.piVar(i)] = pi;
  }
  std::vector<Lit> roots_a, roots_b;
  for (std::uint32_t i = 0; i < a.numPos(); ++i) roots_a.push_back(a.poDriver(i));
  for (std::uint32_t i = 0; i < b.numPos(); ++i) roots_b.push_back(b.poDriver(i));
  const std::vector<Lit> ma = copyCones(a, roots_a, map_a, scratch);
  const std::vector<Lit> mb = copyCones(b, roots_b, map_b, scratch);
  return ma == mb;
}

}  // namespace eco
