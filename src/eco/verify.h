#pragma once
// Patch application and SAT-based equivalence verification.
//
// The decisive soundness check of the whole flow: substitute the patch
// functions for the target pseudo-PIs inside the workspace and prove the
// patched faulty outputs equivalent to the golden outputs with a miter.

#include <cstdint>
#include <span>
#include <vector>

#include "eco/patchgen.h"
#include "eco/relations.h"

namespace eco {

/// Copies a standalone patch cone into the workspace, mapping each patch PI
/// to its signal's workspace function. Returns the patch's w literal.
Lit composePatchInWorkspace(Workspace& ws, const TargetPatch& patch);

struct VerifyOutcome {
  bool equivalent = false;
  /// On inequivalence: a distinguishing X assignment and the first PO index
  /// observed to differ under it.
  std::vector<bool> cex_inputs;
  std::uint32_t failing_output = 0;
};

/// Verifies that substituting `patches` (one per target, any order; targets
/// not covered stay floating and make verification fail unless irrelevant)
/// makes every faulty output equivalent to its golden counterpart.
VerifyOutcome verifyPatches(Workspace& ws, std::span<const TargetPatch> patches);

/// Checks whether the outputs untouched by any target already match —
/// a necessary condition for rectifiability.
VerifyOutcome verifyUntouchedOutputs(Workspace& ws,
                                     std::span<const std::uint32_t> untouched_pos);

/// Point-evaluates the patched faulty circuit on one X assignment: base
/// signal values are computed from the faulty circuit (they never depend on
/// targets), fed through the patch network, and the resulting target values
/// are applied. Reference semantics for tests and examples.
std::vector<bool> evaluatePatched(const EcoInstance& instance,
                                  const PatchResult& result,
                                  const std::vector<bool>& x);

}  // namespace eco
