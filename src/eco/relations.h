#pragma once
// Workspace construction and the care/diff-set algebra of Sec. 2.3 / Sec. 4.
//
// All rectification reasoning happens in one combined AIG (the *workspace*)
// holding the faulty cones f_j(X, T), the golden cones g_j(X) over shared X
// PIs, and every derived construction (cofactors, care-sets, diff-sets,
// on/off-sets, patches). Structural hashing keeps the shared structure
// compact, and provenance maps connect workspace nodes back to the faulty
// netlist's named signals for base selection and cost accounting.

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig_ops.h"
#include "eco/instance.h"

namespace eco {

struct Workspace {
  Aig w;
  std::vector<Lit> x_pis;  ///< workspace PI literal of X input i
  std::vector<Lit> t_pis;  ///< workspace PI literal of target k
  std::vector<Lit> f_roots;  ///< f_j(X, T), as originally parsed
  std::vector<Lit> g_roots;  ///< g_j(X)

  /// Provenance: workspace literal of every faulty-AIG variable (by faulty
  /// var index) and tag masks for localization's shared-signal detection.
  VarMap faulty_to_w;
  VarMap golden_to_w;
  std::vector<bool> from_faulty;  ///< per workspace var
  std::vector<bool> from_golden;  ///< per workspace var
};

Workspace buildWorkspace(const EcoInstance& instance);

struct OnOffSets {
  Lit on;   ///< Eq. (7): minterms where the patch must output 1
  Lit off;  ///< Eq. (8): minterms where the patch must output 0
};

/// Builds the multi-output on/off-sets of target pseudo-PI `t_k` (Eqs. 7–8)
/// for the given faulty root functions (earlier patches already
/// substituted). `f_roots` and `g_roots` must be index-aligned.
OnOffSets buildOnOff(Aig& w, std::span<const Lit> f_roots,
                     std::span<const Lit> g_roots, Lit t_k);

/// Cofactors the given roots on pseudo-PI `t` (substitutes the constant).
std::vector<Lit> cofactorRoots(Aig& w, std::span<const Lit> roots, Lit t,
                               bool value);

}  // namespace eco
