#include "eco/rectifiability.h"

#include "base/check.h"
#include "cnf/cnf.h"
#include "eco/relations.h"
#include "sat/solver.h"

namespace eco {

RectifiabilityResult checkRectifiability(const EcoInstance& instance,
                                         std::uint32_t max_strategies,
                                         std::int64_t conflict_budget) {
  RectifiabilityResult result;
  Workspace ws = buildWorkspace(instance);
  const std::uint32_t alpha = instance.numTargets();

  // Exists-solver: one incremental encoding of F(X,T) != ... == G(X) with
  // X constrained by assumptions; asks "does some T fix this X*?".
  sat::Solver exists_solver;
  // The clause database is complete before the first solve; later calls only
  // vary the assumptions (over frozen X) and read T values (frozen too), so
  // preprocessing the encoding once is safe.
  exists_solver.setPreprocessing(true);
  cnf::SolverSink exists_sink(exists_solver);
  cnf::CnfMap exists_map;
  std::vector<sat::SLit> x_lits, t_lits;
  for (const Lit x : ws.x_pis) {
    const sat::SLit l = sat::SLit::make(exists_solver.newVar(), false);
    exists_solver.freezeVar(l.var());
    exists_map[x.var()] = l;
    x_lits.push_back(l);
  }
  for (const Lit t : ws.t_pis) {
    const sat::SLit l = sat::SLit::make(exists_solver.newVar(), false);
    exists_solver.freezeVar(l.var());
    exists_map[t.var()] = l;
    t_lits.push_back(l);
  }
  {
    // Assert every output pair equal.
    for (std::size_t j = 0; j < ws.f_roots.size(); ++j) {
      const Lit eq = ws.w.mkEquiv(ws.f_roots[j], ws.g_roots[j]);
      const sat::SLit el = cnf::encodeCone(ws.w, eq, exists_map, exists_sink);
      exists_solver.addClause({el});
    }
  }

  // Forall-solver: accumulates one "this strategy fails" miter per
  // discovered T-strategy; a model is an X no known strategy fixes.
  // No preprocessing here: each addStrategy encodes a fresh cone that may
  // reference any internal variable of the shared CNF map, which variable
  // elimination would have removed.
  sat::Solver forall_solver;
  cnf::SolverSink forall_sink(forall_solver);
  cnf::CnfMap forall_map;
  std::vector<sat::SLit> fx_lits;
  for (const Lit x : ws.x_pis) {
    const sat::SLit l = sat::SLit::make(forall_solver.newVar(), false);
    forall_map[x.var()] = l;
    fx_lits.push_back(l);
  }
  const auto addStrategy = [&](const std::vector<bool>& t_values) {
    VarMap repl;
    for (std::uint32_t k = 0; k < alpha; ++k) {
      repl[ws.t_pis[k].var()] = t_values[k] ? kTrue : kFalse;
    }
    const std::vector<Lit> fixed = substitute(ws.w, ws.f_roots, repl);
    Lit neq = kFalse;
    for (std::size_t j = 0; j < fixed.size(); ++j) {
      neq = ws.w.mkOr(neq, ws.w.mkXor(fixed[j], ws.g_roots[j]));
    }
    const sat::SLit nl = cnf::encodeCone(ws.w, neq, forall_map, forall_sink);
    forall_solver.addClause({nl});
  };

  // Seed with the all-zero strategy.
  addStrategy(std::vector<bool>(alpha, false));
  ++result.iterations;

  while (result.iterations <= max_strategies) {
    forall_solver.setConflictBudget(conflict_budget);
    const sat::Status fs = forall_solver.solve();
    if (fs == sat::Status::Unsat) {
      result.status = Rectifiability::Rectifiable;
      return result;
    }
    if (fs != sat::Status::Sat) break;  // budgeted out

    std::vector<bool> x_star(ws.x_pis.size());
    std::vector<sat::SLit> assumptions;
    for (std::size_t i = 0; i < fx_lits.size(); ++i) {
      x_star[i] = forall_solver.modelValue(fx_lits[i]) == sat::LBool::True;
      assumptions.push_back(x_star[i] ? x_lits[i] : ~x_lits[i]);
    }
    exists_solver.setConflictBudget(conflict_budget);
    const sat::Status es = exists_solver.solve(assumptions);
    if (es == sat::Status::Unsat) {
      result.status = Rectifiability::Unrectifiable;
      result.witness_x = std::move(x_star);
      return result;
    }
    if (es != sat::Status::Sat) break;

    std::vector<bool> t_star(alpha);
    for (std::uint32_t k = 0; k < alpha; ++k) {
      t_star[k] = exists_solver.modelValue(t_lits[k]) == sat::LBool::True;
    }
    addStrategy(t_star);
    ++result.iterations;
  }
  result.status = Rectifiability::Unknown;
  return result;
}

}  // namespace eco
