#include "eco/baseline.h"

#include <unordered_map>

#include "base/timer.h"
#include "eco/candidates.h"
#include "eco/relations.h"
#include "eco/verify.h"

namespace eco {

EcoOptions winnerProxyOptions() {
  EcoOptions o;
  o.use_localization = false;
  o.pi_candidates_only = true;
  o.use_cost_opt = true;
  o.opt_rounds = 1;
  o.try_interpolation_first = false;
  return o;
}

PatchResult runWinnerProxy(const EcoInstance& instance) {
  return EcoEngine(winnerProxyOptions()).run(instance);
}

namespace {

/// Extracts a standalone PI-support patch from a workspace literal.
TargetPatch extractXPatch(const EcoInstance& instance, const Workspace& ws,
                          Lit root, std::uint32_t target) {
  TargetPatch patch;
  patch.target = target;
  const std::vector<Lit> roots{root};
  const std::vector<std::uint32_t> support = supportPis(ws.w, roots);
  VarMap map;
  std::unordered_map<std::uint32_t, std::uint32_t> x_index;
  for (std::uint32_t i = 0; i < ws.x_pis.size(); ++i) {
    x_index[ws.x_pis[i].var()] = i;
  }
  for (const std::uint32_t var : support) {
    const auto it = x_index.find(var);
    ECO_CHECK_MSG(it != x_index.end(),
                  "Tang11 patch support is not X-only (coupled targets)");
    const std::uint32_t i = it->second;
    Candidate c;
    c.name = instance.faulty.piName(i);
    c.f_lit = instance.faulty.piLit(i);
    c.w_fn = ws.x_pis[i];
    c.weight = instance.weightOf(c.name);
    map[var] = patch.fn.addPi(c.name);
    patch.inputs.push_back(std::move(c));
  }
  const Lit out = copyCones(ws.w, roots, map, patch.fn)[0];
  patch.fn.addPo(out);
  return patch;
}

}  // namespace

PatchResult runTang11(const EcoInstance& instance) {
  Timer timer;
  PatchResult result;
  const std::uint32_t alpha = instance.numTargets();
  Workspace ws = buildWorkspace(instance);

  // Independent per-target fix: other targets are held at constant 0 (their
  // "unpatched" stand-in); no dependent-patch iteration.
  std::vector<TargetPatch> patches;
  for (std::uint32_t k = 0; k < alpha; ++k) {
    std::vector<Lit> f_fixed = ws.f_roots;
    for (std::uint32_t j = 0; j < alpha; ++j) {
      if (j == k) continue;
      f_fixed = cofactorRoots(ws.w, f_fixed, ws.t_pis[j], false);
    }
    const OnOffSets oo = buildOnOff(ws.w, f_fixed, ws.g_roots, ws.t_pis[k]);
    patches.push_back(extractXPatch(instance, ws, oo.on, k));
  }

  const VerifyOutcome v = verifyPatches(ws, patches);
  result.seconds = timer.seconds();
  if (!v.equivalent) {
    result.success = false;
    result.message = "independent per-target fix failed verification (output " +
                     std::to_string(v.failing_output) + ")";
    return result;
  }
  result.success = true;
  result.message = "ok";

  // Assemble cost/size (deduplicated inputs).
  std::unordered_map<std::string, Lit> pi_of_name;
  for (const TargetPatch& p : patches) {
    VarMap map;
    for (std::uint32_t i = 0; i < p.fn.numPis(); ++i) {
      const Candidate& in = p.inputs[i];
      auto it = pi_of_name.find(in.name);
      if (it == pi_of_name.end()) {
        const Lit pi = result.patch.addPi(in.name);
        it = pi_of_name.emplace(in.name, pi).first;
        BaseRef ref;
        ref.name = in.name;
        ref.lit = in.f_lit;
        ref.weight = in.weight;
        result.base.push_back(std::move(ref));
        result.cost += in.weight;
      }
      map[p.fn.piVar(i)] = it->second;
    }
    const std::vector<Lit> roots{p.fn.poDriver(0)};
    const Lit out = copyCones(p.fn, roots, map, result.patch)[0];
    result.patch.addPo(out, instance.targetName(p.target));
  }
  result.size = result.patch.numAnds();
  return result;
}

}  // namespace eco
