#pragma once
// Problem and result types for the multi-fix ECO engine.
//
// An instance follows the ICCAD 2017 contest formulation (Sec. 2.2): the
// faulty circuit F(X, T) has its pre-specified target signals T rewritten
// as floating pseudo-PIs; the golden circuit G(X) is the reference; every
// usable base signal of F carries a weight. A patch assigns each target a
// function over base signals of F such that F|_{T=P} == G.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.h"
#include "check/check.h"

namespace eco {

struct EcoInstance {
  std::string name;

  /// Faulty circuit. PIs are the X inputs followed by the target
  /// pseudo-PIs; `num_x` X inputs come first.
  Aig faulty;
  std::uint32_t num_x = 0;

  /// Golden circuit over the same X inputs (same count and order) with the
  /// same number of POs in the same order.
  Aig golden;

  /// Weight of each base-candidate signal of F, keyed by signal name
  /// (PI names and named internal signals). Signals without an entry get
  /// `default_weight`.
  std::unordered_map<std::string, double> weights;
  double default_weight = 1.0;

  std::uint32_t numTargets() const { return faulty.numPis() - num_x; }
  /// PI index (in `faulty`) of target k.
  std::uint32_t targetPi(std::uint32_t k) const { return num_x + k; }
  const std::string& targetName(std::uint32_t k) const {
    return faulty.piName(targetPi(k));
  }
  double weightOf(const std::string& name) const {
    const auto it = weights.find(name);
    return it == weights.end() ? default_weight : it->second;
  }
};

/// One patch input: an existing signal of F, optionally complemented
/// (the inversion is realized inside the patch and counted in its size).
struct BaseRef {
  std::string name;   ///< F signal name (PI name or internal signal name)
  Lit lit;            ///< literal in the *faulty* AIG
  double weight = 0;  ///< cost of using this signal
  bool inverted = false;
};

/// Resource delta attributed to one engine stage (run report v2). CPU
/// and allocation figures are process-wide deltas over the stage window
/// (exact for a single engine, an upper bound with concurrent engines);
/// peak_rss_bytes is the monotonic process high-water mark observed at
/// stage end.
struct StageResource {
  std::string stage;
  double cpu_seconds = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
};

struct PatchResult {
  bool success = false;
  std::string message;
  /// On unrectifiability: an X assignment under which no target valuation
  /// (or no generated patch) reproduces the golden outputs.
  std::vector<bool> counterexample;
  /// When an invariant audit failed the run (message prefixed
  /// "internal error: invariant audit"): the full machine-readable
  /// AuditReport ("ecopatch-audit-report" JSON).
  std::string audit_json;

  /// Patch network: PI i corresponds to base[i]; PO k is the patch
  /// function of target k (named after the target).
  Aig patch;
  std::vector<BaseRef> base;

  double cost = 0;         ///< sum of base weights (contest cost metric)
  std::uint32_t size = 0;  ///< AND-gate count of the patch network
  double seconds = 0;      ///< wall-clock of the engine run

  // Stage statistics (for benches and EXPERIMENTS.md).
  std::uint32_t num_clusters = 0;
  std::uint32_t cut_size = 0;
  std::uint32_t initial_size = 0;
  double initial_cost = 0;
  std::uint32_t itp_failures = 0;  ///< Sec. 4.3 interpolation fallbacks
  std::uint64_t sat_conflicts = 0;

  // Per-stage wall-clock and solver-call counters (see DESIGN.md,
  // "Parallel architecture"). The stage times sum to roughly `seconds`.
  std::uint32_t num_threads_used = 1;   ///< resolved worker count of the run
  double fraig_seconds = 0;             ///< FRAIG sweeping stage
  double patchgen_seconds = 0;          ///< localization + per-cluster patchgen
  double opt_seconds = 0;               ///< Sec. 6 cost optimization
  double verify_seconds = 0;            ///< SAT verification gates
  std::uint64_t fraig_sat_queries = 0;  ///< solve() calls in the FRAIG stage
  std::uint32_t fraig_rounds = 0;       ///< FRAIG refinement rounds

  // Resource attribution (run report v2 "resources" section). Filled at
  // the end of run(); alloc counters are 0 when the obs allocation hook
  // is compiled out (sanitizers, ECO_OBS_DISABLED).
  std::vector<StageResource> stage_resources;  ///< stage entry order = run order
  std::uint64_t peak_rss_bytes = 0;            ///< process peak at run end
  double cpu_seconds = 0;                      ///< process CPU over the run
  std::uint64_t alloc_count = 0;               ///< operator new calls in the run
  std::uint64_t alloc_bytes = 0;               ///< bytes requested in the run
  /// Per-thread CPU seconds of threads registered at run end ("main",
  /// "pool-0", ...) — the pool is still alive at capture time.
  std::vector<std::pair<std::string, double>> thread_cpu_seconds;
};

struct EcoOptions {
  bool use_localization = true;  ///< Sec. 5 cut-based re-expression
  bool use_cost_opt = true;      ///< Sec. 6 rebase + base selection
  /// Try interpolation for the initial patch (may fail on multi-output
  /// conflicts, Sec. 4.3); fall back to the on-set function.
  bool try_interpolation_first = false;
  std::uint32_t watch_size = 5;  ///< beta, |Watch| (paper: 5)
  std::uint32_t opt_rounds = 2;  ///< optimization iterations over all targets
  std::uint32_t max_candidates = 160;  ///< cap on |B'| per rebase
  /// Cap on candidates whose counterexamples are enumerated per Watch round
  /// (Sec. 6.2 Step 2); bounds the dominant SAT cost of base selection.
  std::uint32_t max_step2_candidates = 48;
  std::int64_t itp_conflict_budget = 200000;
  /// When the working cones of Algorithm 1 exceed this many AND nodes, a
  /// FRAIG reduction pass (compressCones) collapses proven-equivalent
  /// structure; damps the growth of iterated on-set substitution.
  std::uint32_t compress_threshold = 3000;
  /// Run AIG minimization (flatten/rebalance + FRAIG sweep) on every patch
  /// function — the contest's secondary metric counts patch gates.
  bool minimize_patches = true;
  std::uint64_t seed = 0xC0FFEEULL;
  /// Restrict base candidates to the X primary inputs (the PI-support
  /// baseline proxy; see DESIGN.md).
  bool pi_candidates_only = false;
  /// Charge zero for a base signal another target's patch already pays for
  /// (the contest cost counts each distinct base signal once).
  bool account_shared_bases = true;
  /// Worker threads for FRAIG sweeping and per-cluster patch generation.
  /// 0 = one per hardware thread; 1 = the exact sequential legacy path.
  /// Results (patch, cost, size) are identical for every value — see the
  /// determinism contract in DESIGN.md.
  std::uint32_t num_threads = 0;
  /// Invariant-audit level for this run (src/check): stage-boundary
  /// checkpoints at kStage, plus per-GC solver audits and per-patch AIG
  /// audits at kParanoid. Defaults to the ECO_CHECK environment variable.
  check::Level check_level = check::levelFromEnv();
  /// Wall-clock budget for one run in seconds; 0 = unlimited. Checked at
  /// stage boundaries (a stage in flight is never interrupted): when
  /// exceeded the run fails with a "time budget exhausted" message and,
  /// if a postmortem path is configured, dumps a flight-recorder
  /// postmortem with reason "budget".
  double time_budget_seconds = 0;
};

}  // namespace eco
