#include "eco/report.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace eco {
namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

/// One ratio column of the comparison table. A ratio is only meaningful
/// when the denominator is positive; a zero denominator with a zero
/// numerator counts as parity (both engines degenerate equally), while a
/// zero denominator with a positive numerator is unmeasurable and renders
/// as "n/a" — never inf/nan, which would also poison the geomean.
struct RatioCell {
  double value = 1.0;
  bool measurable = false;
};

RatioCell safeRatio(double num, double den) {
  if (den > 0) return {num / den, true};
  if (num <= 0) return {1.0, true};
  return {1.0, false};
}

/// Accumulates log-ratios of the measurable cells of one column.
struct GeoMean {
  double log_sum = 0;
  int n = 0;
  void add(const RatioCell& r) {
    if (!r.measurable) return;
    log_sum += std::log(std::max(r.value, 1e-6));
    ++n;
  }
  std::string str() const {
    return n > 0 ? fmt("%6.3f", std::exp(log_sum / n)) : fmt("%6s", "n/a");
  }
};

std::string ratioStr(const RatioCell& r) {
  return r.measurable ? fmt("%6.3f", r.value) : fmt("%6s", "n/a");
}

}  // namespace

std::string formatRunReport(const EcoInstance& instance, const PatchResult& r) {
  std::ostringstream os;
  os << "instance " << instance.name << ": " << instance.num_x << " inputs, "
     << instance.faulty.numPos() << " outputs, " << instance.numTargets()
     << " target(s)\n";
  if (!r.success) {
    os << "  FAILED: " << r.message << "\n";
    return os.str();
  }
  os << fmt("  clusters: %u, cut signals: %u, interpolation fallbacks: %u\n",
            r.num_clusters, r.cut_size, r.itp_failures);
  os << fmt(
      "  stages (%u thread%s): fraig %.2fs (%llu SAT queries, %u rounds), "
      "patchgen %.2fs, opt %.2fs, verify %.2fs\n",
      r.num_threads_used, r.num_threads_used == 1 ? "" : "s", r.fraig_seconds,
      static_cast<unsigned long long>(r.fraig_sat_queries), r.fraig_rounds,
      r.patchgen_seconds, r.opt_seconds, r.verify_seconds);
  os << fmt("  initial patch: cost %.2f, %u gates\n", r.initial_cost,
            r.initial_size);
  os << fmt("  final patch:   cost %.2f, %u gates, %zu base signal(s), %.2fs\n",
            r.cost, r.size, r.base.size(), r.seconds);
  for (const BaseRef& b : r.base) {
    os << fmt("    base %-16s weight %.2f\n", b.name.c_str(), b.weight);
  }
  return os.str();
}

std::string formatComparisonTable(const std::vector<ComparisonRow>& rows) {
  std::ostringstream os;
  os << fmt("%-10s %7s | %10s %6s %8s | %10s %6s %8s | %6s %6s %6s\n", "ckt",
            "#target", "b.cost", "b.size", "b.time", "o.cost", "o.size",
            "o.time", "r.cost", "r.size", "r.time");
  GeoMean geo_cost, geo_size, geo_time;
  int counted = 0;
  for (const ComparisonRow& row : rows) {
    if (!row.baseline.success || !row.ours.success) {
      os << fmt("%-10s %7u | baseline: %s / ours: %s\n", row.name.c_str(),
                row.num_targets,
                row.baseline.success ? "ok" : row.baseline.message.c_str(),
                row.ours.success ? "ok" : row.ours.message.c_str());
      continue;
    }
    const RatioCell rc = safeRatio(row.ours.cost, row.baseline.cost);
    const RatioCell rs = safeRatio(row.ours.size, row.baseline.size);
    const RatioCell rt = safeRatio(row.ours.seconds, row.baseline.seconds);
    os << fmt("%-10s %7u | %10.1f %6u %7.2fs | %10.1f %6u %7.2fs | ",
              row.name.c_str(), row.num_targets, row.baseline.cost,
              row.baseline.size, row.baseline.seconds, row.ours.cost,
              row.ours.size, row.ours.seconds)
       << ratioStr(rc) << " " << ratioStr(rs) << " " << ratioStr(rt) << "\n";
    geo_cost.add(rc);
    geo_size.add(rs);
    geo_time.add(rt);
    ++counted;
  }
  if (counted > 0) {
    // Each column averages only its own measurable cells, so one zero-time
    // baseline row cannot blank (or skew) the cost/size means.
    os << fmt("%-10s %7s | %27s | %27s | ", "geomean", "", "", "")
       << geo_cost.str() << " " << geo_size.str() << " " << geo_time.str()
       << "  (geo. mean)\n";
  }
  return os.str();
}

}  // namespace eco
