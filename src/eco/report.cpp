#include "eco/report.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace eco {
namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

/// Ratio with 0/0 -> 1 convention (both engines degenerate equally).
double safeRatio(double num, double den) {
  if (den <= 0) return num <= 0 ? 1.0 : num;
  return num / den;
}

}  // namespace

std::string formatRunReport(const EcoInstance& instance, const PatchResult& r) {
  std::ostringstream os;
  os << "instance " << instance.name << ": " << instance.num_x << " inputs, "
     << instance.faulty.numPos() << " outputs, " << instance.numTargets()
     << " target(s)\n";
  if (!r.success) {
    os << "  FAILED: " << r.message << "\n";
    return os.str();
  }
  os << fmt("  clusters: %u, cut signals: %u, interpolation fallbacks: %u\n",
            r.num_clusters, r.cut_size, r.itp_failures);
  os << fmt(
      "  stages (%u thread%s): fraig %.2fs (%llu SAT queries, %u rounds), "
      "patchgen %.2fs, opt %.2fs, verify %.2fs\n",
      r.num_threads_used, r.num_threads_used == 1 ? "" : "s", r.fraig_seconds,
      static_cast<unsigned long long>(r.fraig_sat_queries), r.fraig_rounds,
      r.patchgen_seconds, r.opt_seconds, r.verify_seconds);
  os << fmt("  initial patch: cost %.2f, %u gates\n", r.initial_cost,
            r.initial_size);
  os << fmt("  final patch:   cost %.2f, %u gates, %zu base signal(s), %.2fs\n",
            r.cost, r.size, r.base.size(), r.seconds);
  for (const BaseRef& b : r.base) {
    os << fmt("    base %-16s weight %.2f\n", b.name.c_str(), b.weight);
  }
  return os.str();
}

std::string formatComparisonTable(const std::vector<ComparisonRow>& rows) {
  std::ostringstream os;
  os << fmt("%-10s %7s | %10s %6s %8s | %10s %6s %8s | %6s %6s %6s\n", "ckt",
            "#target", "b.cost", "b.size", "b.time", "o.cost", "o.size",
            "o.time", "r.cost", "r.size", "r.time");
  double geo_cost = 0, geo_size = 0, geo_time = 0;
  int counted = 0;
  for (const ComparisonRow& row : rows) {
    if (!row.baseline.success || !row.ours.success) {
      os << fmt("%-10s %7u | baseline: %s / ours: %s\n", row.name.c_str(),
                row.num_targets,
                row.baseline.success ? "ok" : row.baseline.message.c_str(),
                row.ours.success ? "ok" : row.ours.message.c_str());
      continue;
    }
    const double rc = safeRatio(row.ours.cost, row.baseline.cost);
    const double rs = safeRatio(row.ours.size, row.baseline.size);
    const double rt = safeRatio(row.ours.seconds, row.baseline.seconds);
    os << fmt(
        "%-10s %7u | %10.1f %6u %7.2fs | %10.1f %6u %7.2fs | %6.3f %6.3f "
        "%6.2f\n",
        row.name.c_str(), row.num_targets, row.baseline.cost,
        row.baseline.size, row.baseline.seconds, row.ours.cost, row.ours.size,
        row.ours.seconds, rc, rs, rt);
    geo_cost += std::log(std::max(rc, 1e-6));
    geo_size += std::log(std::max(rs, 1e-6));
    geo_time += std::log(std::max(rt, 1e-6));
    ++counted;
  }
  if (counted > 0) {
    os << fmt("%-10s %7s | %27s | %27s | %6.3f %6.3f %6.2f  (geo. mean)\n",
              "geomean", "", "", "", std::exp(geo_cost / counted),
              std::exp(geo_size / counted), std::exp(geo_time / counted));
  }
  return os.str();
}

}  // namespace eco
