#include "eco/relations.h"

#include "base/check.h"

namespace eco {

Workspace buildWorkspace(const EcoInstance& instance) {
  const Aig& f = instance.faulty;
  const Aig& g = instance.golden;
  ECO_CHECK_MSG(g.numPis() == instance.num_x,
                "golden circuit must be over the X inputs only");
  ECO_CHECK_MSG(f.numPos() == g.numPos(),
                "faulty and golden circuits must have matching outputs");

  Workspace ws;
  for (std::uint32_t i = 0; i < instance.num_x; ++i) {
    ws.x_pis.push_back(ws.w.addPi(f.piName(i)));
  }
  for (std::uint32_t k = 0; k < instance.numTargets(); ++k) {
    ws.t_pis.push_back(ws.w.addPi(instance.targetName(k)));
  }

  // Faulty side: X PIs map to shared X, targets to target pseudo-PIs.
  for (std::uint32_t i = 0; i < instance.num_x; ++i) {
    ws.faulty_to_w[f.piVar(i)] = ws.x_pis[i];
  }
  for (std::uint32_t k = 0; k < instance.numTargets(); ++k) {
    ws.faulty_to_w[f.piVar(instance.targetPi(k))] = ws.t_pis[k];
  }
  std::vector<Lit> f_drivers;
  for (std::uint32_t j = 0; j < f.numPos(); ++j) f_drivers.push_back(f.poDriver(j));
  // Also carry every *named* faulty signal into the workspace so it can be
  // offered as a patch-base candidate even when outside the PO cones.
  for (const auto& [name, lit] : f.namedSignals()) {
    (void)name;
    f_drivers.push_back(lit);
  }
  const std::vector<Lit> f_mapped = copyCones(f, f_drivers, ws.faulty_to_w, ws.w);
  ws.f_roots.assign(f_mapped.begin(), f_mapped.begin() + f.numPos());
  ws.from_faulty.assign(ws.w.numNodes(), false);
  for (const auto& [fvar, wlit] : ws.faulty_to_w) {
    (void)fvar;
    ws.from_faulty[wlit.var()] = true;
  }

  // Golden side over the shared X PIs.
  for (std::uint32_t i = 0; i < instance.num_x; ++i) {
    ws.golden_to_w[g.piVar(i)] = ws.x_pis[i];
  }
  std::vector<Lit> g_drivers;
  for (std::uint32_t j = 0; j < g.numPos(); ++j) g_drivers.push_back(g.poDriver(j));
  ws.g_roots = copyCones(g, g_drivers, ws.golden_to_w, ws.w);
  ws.from_golden.assign(ws.w.numNodes(), false);
  for (const auto& [gvar, wlit] : ws.golden_to_w) {
    (void)gvar;
    ws.from_golden[wlit.var()] = true;
  }
  ws.from_faulty.resize(ws.w.numNodes(), false);
  return ws;
}

std::vector<Lit> cofactorRoots(Aig& w, std::span<const Lit> roots, Lit t,
                               bool value) {
  ECO_CHECK(!t.complemented());
  VarMap repl;
  repl[t.var()] = value ? kTrue : kFalse;
  return substitute(w, roots, repl);
}

OnOffSets buildOnOff(Aig& w, std::span<const Lit> f_roots,
                     std::span<const Lit> g_roots, Lit t_k) {
  ECO_CHECK(f_roots.size() == g_roots.size());
  const std::vector<Lit> f0 = cofactorRoots(w, f_roots, t_k, false);
  const std::vector<Lit> f1 = cofactorRoots(w, f_roots, t_k, true);

  Lit on = kFalse;
  Lit off = kFalse;
  for (std::size_t j = 0; j < f_roots.size(); ++j) {
    // care_j^{t_k} = f_j|t=0 xor f_j|t=1  (sensitivity of output j to t_k)
    const Lit care = w.mkXor(f0[j], f1[j]);
    // diff_j|t=e = f_j|t=e xor g_j       (error minterms with t_k = e)
    const Lit diff0 = w.mkXor(f0[j], g_roots[j]);
    const Lit diff1 = w.mkXor(f1[j], g_roots[j]);
    on = w.mkOr(on, w.addAnd(care, diff0));
    off = w.mkOr(off, w.addAnd(care, diff1));
  }
  return {on, off};
}

}  // namespace eco
