#include "eco/clustering.h"

#include <algorithm>
#include <numeric>

#include "aig/aig_ops.h"

namespace eco {
namespace {

class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<TargetCluster> clusterTargets(const EcoInstance& instance) {
  const Aig& f = instance.faulty;
  const std::uint32_t alpha = instance.numTargets();

  // For each PO, which targets reach it.
  std::vector<std::vector<std::uint32_t>> po_targets(f.numPos());
  for (std::uint32_t k = 0; k < alpha; ++k) {
    const std::uint32_t tvar = f.piVar(instance.targetPi(k));
    const std::vector<std::uint32_t> src{tvar};
    const std::vector<bool> tfo = transitiveFanoutMask(f, src);
    for (std::uint32_t j = 0; j < f.numPos(); ++j) {
      if (tfo[f.poDriver(j).var()]) po_targets[j].push_back(k);
    }
  }

  // Merge targets that share a PO.
  UnionFind uf(alpha);
  for (const auto& ts : po_targets) {
    for (std::size_t i = 1; i < ts.size(); ++i) uf.unite(ts[0], ts[i]);
  }

  // Collect clusters in order of their smallest target index.
  std::vector<TargetCluster> clusters;
  std::vector<int> cluster_of_root(alpha, -1);
  for (std::uint32_t k = 0; k < alpha; ++k) {
    const std::uint32_t root = uf.find(k);
    if (cluster_of_root[root] < 0) {
      cluster_of_root[root] = static_cast<int>(clusters.size());
      clusters.emplace_back();
    }
    clusters[cluster_of_root[root]].targets.push_back(k);
  }
  for (std::uint32_t j = 0; j < f.numPos(); ++j) {
    if (po_targets[j].empty()) continue;
    const std::uint32_t root = uf.find(po_targets[j][0]);
    clusters[cluster_of_root[root]].outputs.push_back(j);
  }
  for (auto& c : clusters) {
    std::sort(c.outputs.begin(), c.outputs.end());
  }
  return clusters;
}

}  // namespace eco
