#include "eco/rebase.h"

#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "cnf/cnf.h"
#include "itp/itp.h"

namespace eco {

RebaseOracle::RebaseOracle(const Workspace& ws, Lit on_w, Lit off_w,
                           std::span<const Candidate> candidates) {
  cnf::SolverSink sink(solver_);
  cnf::CnfMap map_a, map_b;  // independent X copies
  for (const Lit x : ws.x_pis) {
    map_a[x.var()] = sat::SLit::make(solver_.newVar(), false);
    map_b[x.var()] = sat::SLit::make(solver_.newVar(), false);
  }
  // "p_k constraint" + "care set" halves (Fig. 3): the A copy must lie in
  // the on-set, the B copy in the off-set.
  const sat::SLit on = cnf::encodeCone(ws.w, on_w, map_a, sink);
  solver_.addClause({on});
  const sat::SLit off = cnf::encodeCone(ws.w, off_w, map_b, sink);
  solver_.addClause({off});

  sel_.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    const sat::SLit a = cnf::encodeCone(ws.w, c.w_fn, map_a, sink);
    const sat::SLit b = cnf::encodeCone(ws.w, c.w_fn, map_b, sink);
    const sat::SLit s = sat::SLit::make(solver_.newVar(), false);
    // s -> (a == b)
    solver_.addClause({~s, ~a, b});
    solver_.addClause({~s, a, ~b});
    sel_.push_back(s);
    val_a_.push_back(a);
    val_b_.push_back(b);
  }
}

bool RebaseOracle::feasible(std::span<const std::uint32_t> selected) {
  std::vector<sat::SLit> assumptions;
  assumptions.reserve(selected.size());
  for (const std::uint32_t i : selected) {
    ECO_CHECK(i < sel_.size());
    assumptions.push_back(sel_[i]);
  }
  const sat::Status status = solver_.solve(assumptions);
  if (status != sat::Status::Unsat) return false;
  // Map the failed-assumption core back to candidate indices.
  last_core_.clear();
  std::unordered_map<std::uint32_t, std::uint32_t> index_of_var;
  for (const std::uint32_t i : selected) index_of_var[sel_[i].var()] = i;
  for (const sat::SLit l : solver_.failedAssumptions()) {
    const auto it = index_of_var.find(l.var());
    if (it != index_of_var.end()) last_core_.push_back(it->second);
  }
  if (last_core_.empty()) {
    // The formula is unsatisfiable without any selection (degenerate patch:
    // on-set or off-set empty). Any base works, including the empty one.
    last_core_.assign(selected.begin(), selected.end());
  }
  return true;
}

std::vector<std::uint64_t> RebaseOracle::enumerateCex(
    std::span<const std::uint32_t> selected, std::span<const std::uint32_t> watch,
    std::uint32_t max_cex) {
  ECO_CHECK(watch.size() <= 64);
  std::vector<sat::SLit> assumptions;
  for (const std::uint32_t i : selected) assumptions.push_back(sel_[i]);

  std::vector<std::uint64_t> patterns;
  std::unordered_set<std::uint64_t> seen;
  while (patterns.size() < max_cex) {
    const sat::Status status = solver_.solve(assumptions);
    if (status != sat::Status::Sat) break;  // Unsat: fully enumerated
    std::uint64_t pat = 0;
    for (std::size_t j = 0; j < watch.size(); ++j) {
      if (solver_.modelValue(val_a_[watch[j]]) == sat::LBool::True) {
        pat |= std::uint64_t{1} << j;
      }
    }
    if (!seen.insert(pat).second) break;  // defensive: should be blocked
    patterns.push_back(pat);
    // Block this on-side valuation under a fresh control variable
    // (Sec. 6.2.1): c -> OR_j (watch_j != pat_j).
    const sat::Var c = solver_.newVar();
    std::vector<sat::SLit> clause{sat::SLit::make(c, true)};
    for (std::size_t j = 0; j < watch.size(); ++j) {
      const bool bit = (pat >> j) & 1;
      clause.push_back(bit ? ~val_a_[watch[j]] : val_a_[watch[j]]);
    }
    solver_.addClause(clause);
    assumptions.push_back(sat::SLit::make(c, false));
  }
  return patterns;
}

std::optional<Aig> synthesizeOverBase(const Workspace& ws, Lit on_w, Lit off_w,
                                      std::span<const Candidate> candidates,
                                      std::span<const std::uint32_t> selected,
                                      std::int64_t conflict_budget) {
  itp::ItpJob job;
  cnf::CnfMap map_a, map_b;
  for (const Lit x : ws.x_pis) {
    map_a[x.var()] = sat::SLit::make(job.solver().newVar(), false);
    map_b[x.var()] = sat::SLit::make(job.solver().newVar(), false);
  }

  Aig result;
  const sat::SLit on = cnf::encodeCone(ws.w, on_w, map_a, job.sinkA());
  job.addClauseA({on});
  const sat::SLit off = cnf::encodeCone(ws.w, off_w, map_b, job.sinkB());
  job.addClauseB({off});

  for (const std::uint32_t i : selected) {
    const Candidate& c = candidates[i];
    const Lit pi = result.addPi(c.name);
    const sat::SLit a = cnf::encodeCone(ws.w, c.w_fn, map_a, job.sinkA());
    const sat::SLit b = cnf::encodeCone(ws.w, c.w_fn, map_b, job.sinkB());
    const sat::Var y = job.solver().newVar();
    const sat::SLit yl = sat::SLit::make(y, false);
    job.markShared(y, pi);
    // y == b_i in A, y == b_i* in B: y becomes the only interface.
    job.addClauseA({~yl, a});
    job.addClauseA({yl, ~a});
    job.addClauseB({~yl, b});
    job.addClauseB({yl, ~b});
  }

  if (job.solve(conflict_budget) != sat::Status::Unsat) return std::nullopt;
  const Lit out = job.buildInterpolant(result);
  result.addPo(out);
  return result;
}

}  // namespace eco
