#include "eco/costopt.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"

namespace eco {
namespace {

double costOf(std::span<const double> weight, std::span<const std::uint32_t> base) {
  double c = 0;
  for (const std::uint32_t i : base) c += weight[i];
  return c;
}

/// Shrinks a feasible base with its unsat core, then by greedy removal in
/// non-increasing weight order. Every intermediate set is re-verified.
std::vector<std::uint32_t> shrinkBase(RebaseOracle& oracle,
                                      std::span<const double> weight,
                                      std::vector<std::uint32_t> base) {
  if (oracle.feasible(base)) base = oracle.lastCore();
  std::vector<std::uint32_t> order = base;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return weight[a] > weight[b];
  });
  for (const std::uint32_t victim : order) {
    std::vector<std::uint32_t> trial;
    for (const std::uint32_t i : base) {
      if (i != victim) trial.push_back(i);
    }
    if (trial.size() < base.size() && oracle.feasible(trial)) {
      base = oracle.lastCore();
    }
  }
  return base;
}

void sortByWeightDesc(std::span<const double> weight,
                      std::vector<std::uint32_t>& v) {
  std::sort(v.begin(), v.end(), [&](std::uint32_t a, std::uint32_t b) {
    return weight[a] != weight[b] ? weight[a] > weight[b] : a < b;
  });
}

}  // namespace

BaseSelection selectBase(RebaseOracle& oracle,
                         std::span<const double> effective_weight,
                         std::span<const std::uint32_t> initial,
                         const EcoOptions& options) {
  const std::uint32_t n = oracle.numCandidates();
  ECO_CHECK(effective_weight.size() == n);
  const std::uint32_t beta = std::max<std::uint32_t>(1, options.watch_size);
  const std::uint32_t max_cex = std::min<std::uint32_t>(
      64, beta >= 6 ? 64 : (std::uint32_t{1} << beta));

  BaseSelection best;
  best.base = shrinkBase(oracle, effective_weight,
                         {initial.begin(), initial.end()});
  best.cost = costOf(effective_weight, best.base);

  // Step 1: base ordered by weight, non-increasing; the Watch window of
  // size beta rotates over it (Step 4) and is challenged each round.
  std::vector<std::uint32_t> base = best.base;
  sortByWeightDesc(effective_weight, base);
  // Paper Step 4 terminates after |B| rounds; additionally capped for
  // pathologically large initial bases.
  const std::uint32_t rounds =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(base.size()), 24);
  std::size_t offset = 0;

  for (std::uint32_t round = 0; round < rounds; ++round) {
    if (base.empty()) break;
    if (offset >= base.size()) offset = 0;
    const std::size_t wlen = std::min<std::size_t>(beta, base.size());
    std::vector<std::uint32_t> watch, hold;
    for (std::size_t i = 0; i < base.size(); ++i) {
      const bool in_window =
          (i >= offset && i < offset + wlen) ||
          (offset + wlen > base.size() && i < offset + wlen - base.size());
      (in_window ? watch : hold).push_back(base[i]);
    }
    const std::unordered_set<std::uint32_t> hold_set(hold.begin(), hold.end());
    double watch_cost = 0;
    for (const std::uint32_t wsig : watch) watch_cost += effective_weight[wsig];

    // Step 2: counterexamples for candidates outside Hold. Candidates at
    // least as expensive as the whole Watch group cannot improve the base;
    // the remaining pool is capped cheapest-first (max_step2_candidates) to
    // bound the enumeration cost, with the Watch signals always included.
    std::vector<std::uint32_t> step2;
    for (std::uint32_t b = 0; b < n; ++b) {
      if (hold_set.count(b) != 0) continue;
      const bool in_watch =
          std::find(watch.begin(), watch.end(), b) != watch.end();
      if (in_watch) continue;  // appended below, exempt from the cap
      if (watch_cost > 0 && effective_weight[b] >= watch_cost) continue;
      step2.push_back(b);
    }
    std::sort(step2.begin(), step2.end(), [&](std::uint32_t a, std::uint32_t b) {
      return effective_weight[a] != effective_weight[b]
                 ? effective_weight[a] < effective_weight[b]
                 : a < b;
    });
    step2.resize(std::min<std::size_t>(step2.size(),
                                       options.max_step2_candidates));
    step2.insert(step2.end(), watch.begin(), watch.end());

    std::unordered_map<std::uint32_t, std::unordered_set<std::uint64_t>> cex_of;
    std::unordered_set<std::uint64_t> universe;
    for (const std::uint32_t b : step2) {
      std::vector<std::uint32_t> selected = hold;
      selected.push_back(b);
      const std::vector<std::uint64_t> pats =
          oracle.enumerateCex(selected, watch, max_cex);
      auto& set = cex_of[b];
      set.insert(pats.begin(), pats.end());
      universe.insert(pats.begin(), pats.end());
    }

    // Step 3: greedily add candidates by smallest CPB (Eq. 13) until the
    // selection is feasible without the Watch signals.
    std::vector<std::uint32_t> gamma;
    std::unordered_set<std::uint32_t> gamma_set;
    std::unordered_set<std::uint64_t> remaining = universe;
    bool success = false;
    for (std::uint32_t iter = 0; iter <= n; ++iter) {
      std::vector<std::uint32_t> selected = hold;
      selected.insert(selected.end(), gamma.begin(), gamma.end());
      if (oracle.feasible(selected)) {
        success = true;
        break;
      }
      double best_cpb = std::numeric_limits<double>::infinity();
      int pick = -1;
      for (const auto& [b, set] : cex_of) {
        if (gamma_set.count(b) != 0) continue;
        std::size_t blocked = 0;
        for (const std::uint64_t pat : remaining) {
          if (set.count(pat) == 0) ++blocked;
        }
        if (blocked == 0) continue;
        const double cpb = effective_weight[b] / static_cast<double>(blocked);
        if (cpb < best_cpb) {
          best_cpb = cpb;
          pick = static_cast<int>(b);
        }
      }
      if (pick < 0) {
        // No candidate blocks anything new: re-add the cheapest unused
        // Watch signal to restore feasibility.
        for (const std::uint32_t wsig : watch) {
          if (gamma_set.count(wsig) == 0 &&
              (pick < 0 ||
               effective_weight[wsig] <
                   effective_weight[static_cast<std::uint32_t>(pick)])) {
            pick = static_cast<int>(wsig);
          }
        }
        if (pick < 0) break;  // nothing left to add
      }
      gamma.push_back(static_cast<std::uint32_t>(pick));
      gamma_set.insert(static_cast<std::uint32_t>(pick));
      if (const auto it = cex_of.find(static_cast<std::uint32_t>(pick));
          it != cex_of.end()) {
        for (auto pit = remaining.begin(); pit != remaining.end();) {
          if (it->second.count(*pit) == 0) {
            pit = remaining.erase(pit);
          } else {
            ++pit;
          }
        }
      }
    }

    if (success) {
      std::vector<std::uint32_t> achieved = hold;
      achieved.insert(achieved.end(), gamma.begin(), gamma.end());
      achieved = shrinkBase(oracle, effective_weight, std::move(achieved));
      const double cost = costOf(effective_weight, achieved);
      if (cost < best.cost ||
          (cost == best.cost && achieved.size() < best.base.size())) {
        best.base = achieved;
        best.cost = cost;
        base = achieved;
        sortByWeightDesc(effective_weight, base);
        offset = 0;  // re-challenge the now-most-expensive signals
        continue;
      }
    }
    offset += wlen;  // Step 4: slide the Watch window
  }
  return best;
}

}  // namespace eco
