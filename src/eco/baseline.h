#pragma once
// Baselines for the Table 2 and E6 experiments (see DESIGN.md).
//
// Winner proxy — stands in for the closed-source 1st-place contest tool:
// a complete multi-fix engine in the style of Tang et al. DATE'12 [20],
// whose patches read primary inputs only (no localization, no intermediate
// bases), with greedy PI-support cost reduction.
//
// Tang'11 proxy — the prior method [19] adapted to pre-specified targets:
// every target is patched independently with the other targets held at
// constant 0. Sound when it verifies, but incomplete: coupled targets make
// it fail, which is exactly the paper's motivation for Algorithm 1.

#include "eco/engine.h"
#include "eco/instance.h"

namespace eco {

/// Options configuring EcoEngine as the PI-support winner proxy.
EcoOptions winnerProxyOptions();

/// Runs the winner proxy on an instance.
PatchResult runWinnerProxy(const EcoInstance& instance);

/// Runs the [19]-style independent per-target fix. `result.success` is
/// false when the independently derived patches do not verify.
PatchResult runTang11(const EcoInstance& instance);

}  // namespace eco
