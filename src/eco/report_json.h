#pragma once
// Machine-readable run reports: a versioned JSON schema for one engine
// run, consumed by the bench harnesses (BENCH_*.json), the CLI --json
// flag, the fuzz driver, and downstream trajectory tooling.
//
// Schema policy (DESIGN.md "Observability"): the document carries
// `"schema": "ecopatch-run-report"` and an integer `"schema_version"`.
// Additions of new keys are backward compatible and do NOT bump the
// version; renaming, removing, or changing the type/meaning of an
// existing key bumps it. Consumers must ignore unknown keys.

#include <string>

#include "eco/instance.h"

namespace eco {

inline constexpr const char* kRunReportSchema = "ecopatch-run-report";
/// v2 adds the required "resources" section (per-stage CPU/allocation
/// attribution, process peak RSS, per-thread CPU). The validator still
/// accepts v1 documents, which predate it.
inline constexpr int kRunReportSchemaVersion = 2;

struct RunReportOptions {
  /// Embed a snapshot of the global obs metrics registry. Process-wide:
  /// with several engine runs in one process the numbers are cumulative.
  bool include_metrics = true;
  /// List the selected base signals with their weights.
  bool include_base = true;
};

/// Serializes one engine run as a schema-versioned JSON document.
std::string writeJsonReport(const EcoInstance& instance, const PatchResult& r,
                            const RunReportOptions& options = {});

/// Structural validation of a run-report document: parses the JSON and
/// checks schema name/version plus the presence and types of every
/// required key. Returns false and fills `error` on the first violation.
bool validateJsonReport(const std::string& json, std::string* error = nullptr);

}  // namespace eco
