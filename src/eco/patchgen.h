#pragma once
// Multi-fix ECO patch generation (Sec. 4, Algorithm 1).
//
// Phase 1 derives target-variable dependent patches p'_k(C_d, T_k) one
// target at a time from the on/off-sets of Eqs. (7)/(8) (re-expressed over
// the localization cut, Theorem 2), substituting each patch into the
// faulty cones before handling the next target. Phase 2 back-substitutes
// p'_alpha, ..., p'_1 to eliminate the target-variable dependencies.
//
// SynthesizePatch first tries Craig interpolation of (on, off) when
// requested; when the pair is satisfiable — the multi-output conflict of
// Sec. 4.3, possible even for rectifiable instances — it falls back to
// taking the on-set function directly.

#include <cstdint>
#include <vector>

#include "eco/clustering.h"
#include "eco/instance.h"
#include "eco/localization.h"

namespace eco {

/// A finished patch for one target: a standalone single-output AIG whose
/// PIs are raw faulty-circuit signals (any needed inversion is absorbed
/// into the cone).
struct TargetPatch {
  std::uint32_t target = 0;  ///< global target index
  Aig fn;
  std::vector<Candidate> inputs;  ///< aligned with fn's PIs
};

struct ClusterPatchResult {
  std::vector<TargetPatch> patches;  ///< aligned with cluster.targets
  std::uint32_t itp_failures = 0;    ///< Sec. 4.3 fallbacks taken
  std::uint32_t itp_successes = 0;
};

/// Runs Algorithm 1 + phase 2 on one localized cluster network.
ClusterPatchResult dependentPatchGen(const TargetCluster& cluster,
                                     LocalNetwork& net, const EcoOptions& options);

/// Extracts a standalone patch for `root` (a literal of net.v whose support
/// must lie within the base PIs). Inversions between cut PIs and their
/// implementing signals are absorbed here.
TargetPatch extractPatch(const LocalNetwork& net, Lit root,
                         std::uint32_t global_target);

/// Drops patch PIs outside the function's true structural support (e.g.
/// inputs an interpolant ended up not using), so they are not charged.
void pruneUnusedInputs(TargetPatch& patch);

}  // namespace eco
