#pragma once
// Human-readable run reports: a per-instance summary block and a
// multi-instance comparison table (the Table 2 layout). Used by the CLI,
// the examples, and the bench harnesses.

#include <string>
#include <vector>

#include "eco/instance.h"

namespace eco {

/// Formats one engine run as an indented multi-line block.
std::string formatRunReport(const EcoInstance& instance, const PatchResult& r);

/// One row of a comparison table.
struct ComparisonRow {
  std::string name;
  std::uint32_t num_targets = 0;
  PatchResult baseline;
  PatchResult ours;
};

/// Formats the paper's Table 2 layout: per-row cost/size/time for both
/// engines, ours/baseline ratio columns, geometric means in the footer.
std::string formatComparisonTable(const std::vector<ComparisonRow>& rows);

}  // namespace eco
