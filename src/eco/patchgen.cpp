#include "eco/patchgen.h"

#include <unordered_map>

#include "base/check.h"
#include "cnf/cnf.h"
#include "eco/relations.h"
#include "fraig/fraig.h"
#include "itp/itp.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace eco {
namespace {

/// SynthesizePatch (Algorithm 1, line 7): interpolate (on, off) over the
/// network's PIs when requested; on satisfiability (the Sec. 4.3
/// multi-output conflict) fall back to the on-set function. Returns the
/// patch literal in net.v and whether interpolation failed.
Lit synthesizePatch(LocalNetwork& net, const OnOffSets& oo,
                    const EcoOptions& options, bool* itp_failed) {
  *itp_failed = false;
  // Either the on-set or the negated off-set is a valid patch (Sec. 4.3);
  // take the structurally smaller one.
  const auto coneSize = [&](Lit l) {
    const std::vector<Lit> root{l};
    return coneAndCount(net.v, root);
  };
  const Lit direct = coneSize(oo.on) <= coneSize(!oo.off) ? oo.on : !oo.off;
  if (!options.try_interpolation_first) return direct;

  itp::ItpJob job;
  // Shared variables: every PI of the localized network (cut signals and
  // remaining target variables); the interpolant is built back into net.v.
  cnf::CnfMap map_a, map_b;
  for (std::uint32_t i = 0; i < net.v.numPis(); ++i) {
    const sat::Var v = job.solver().newVar();
    const sat::SLit sl = sat::SLit::make(v, false);
    map_a[net.v.piVar(i)] = sl;
    map_b[net.v.piVar(i)] = sl;
    job.markShared(v, net.v.piLit(i));
  }
  const sat::SLit on = cnf::encodeCone(net.v, oo.on, map_a, job.sinkA());
  job.addClauseA({on});
  const sat::SLit off = cnf::encodeCone(net.v, oo.off, map_b, job.sinkB());
  job.addClauseB({off});

  const sat::Status status = job.solve(options.itp_conflict_budget);
  if (status != sat::Status::Unsat) {
    // Satisfiable (or budgeted out): interpolation is not applicable here.
    *itp_failed = true;
    return direct;
  }
  const Lit itp = job.buildInterpolant(net.v);
  return coneSize(itp) <= coneSize(direct) ? itp : direct;
}

}  // namespace

ClusterPatchResult dependentPatchGen(const TargetCluster& cluster,
                                     LocalNetwork& net,
                                     const EcoOptions& options) {
  obs::Span span("eco.dependent_patchgen");
  span.arg("targets", cluster.targets.size());
  ClusterPatchResult result;
  const std::uint32_t alpha = static_cast<std::uint32_t>(cluster.targets.size());

  // Iterated substitution of on-set patches can grow the working cones
  // multiplicatively (XOR-dominated cones barely share structure). A FRAIG
  // reduction pass collapses proven-equivalent nodes whenever the live
  // cones exceed the configured threshold — the same role the FRAIG stage
  // plays for "computation overhead" in the paper's flow.
  fraig::Options fraig_opt;
  fraig_opt.sim_words = 4;
  fraig_opt.conflict_budget = 2000;
  const auto compressAll = [&](std::vector<Lit>& f_cur, std::vector<Lit>& p_dep,
                               std::uint32_t upto) {
    std::vector<Lit> all = f_cur;
    all.insert(all.end(), net.g_roots.begin(), net.g_roots.end());
    for (std::uint32_t j = 0; j < upto; ++j) all.push_back(p_dep[j]);
    if (coneAndCount(net.v, all) <= options.compress_threshold) return;
    const std::vector<Lit> mapped = fraig::compressCones(net.v, all, fraig_opt);
    std::size_t idx = 0;
    for (Lit& r : f_cur) r = mapped[idx++];
    for (Lit& r : net.g_roots) r = mapped[idx++];
    for (std::uint32_t j = 0; j < upto; ++j) p_dep[j] = mapped[idx++];
  };

  // Phase 1: target-variable dependent patches p'_k(C_d, t_{k+1..alpha}).
  std::vector<Lit> p_dep(alpha);
  std::vector<Lit> f_cur = net.f_roots;
  for (std::uint32_t k = 0; k < alpha; ++k) {
    const Lit t_k = net.t_pis[k];
    const OnOffSets oo = buildOnOff(net.v, f_cur, net.g_roots, t_k);
    bool itp_failed = false;
    p_dep[k] = synthesizePatch(net, oo, options, &itp_failed);
    if (options.try_interpolation_first) {
      if (itp_failed) {
        ++result.itp_failures;
        ECO_OBS_COUNT("eco.itp_fallbacks", 1);
      } else {
        ++result.itp_successes;
      }
    }
    // F' <- F'|_{t_k = p'_k}
    VarMap repl;
    repl[t_k.var()] = p_dep[k];
    f_cur = substitute(net.v, f_cur, repl);
    compressAll(f_cur, p_dep, k + 1);
  }

  // Phase 2: eliminate target-variable dependencies bottom-up:
  //   p_alpha = p'_alpha,  p_k = p'_k(t_{k+1}=p_{k+1}, ..., t_alpha=p_alpha).
  //
  // A FRAIG compress pass may have rebuilt a patch cone on a representative
  // whose *structure* mentions an already-eliminated target variable even
  // though the function is provably independent of it (the merge was
  // SAT-proven over all PIs, and the pre-compress cone had no such
  // dependence). Such vacuous occurrences are grounded to constant false:
  // substituting any value for a variable the function does not depend on
  // preserves the function, and extraction requires a target-free support.
  std::vector<Lit> p_final(alpha);
  for (std::uint32_t k = alpha; k-- > 0;) {
    VarMap repl;
    for (std::uint32_t j = 0; j < alpha; ++j) {
      repl[net.t_pis[j].var()] = j > k ? p_final[j] : kFalse;
    }
    const std::vector<Lit> roots{p_dep[k]};
    p_final[k] = substitute(net.v, roots, repl)[0];
    if (coneAndCount(net.v, std::vector<Lit>{p_final[k]}) >
        options.compress_threshold) {
      const std::vector<Lit> one{p_final[k]};
      p_final[k] = fraig::compressCones(net.v, one, fraig_opt)[0];
      // The compress itself can re-introduce vacuous target structure;
      // ground it the same way.
      VarMap ground;
      for (std::uint32_t j = 0; j < alpha; ++j) {
        ground[net.t_pis[j].var()] = kFalse;
      }
      const std::vector<Lit> again{p_final[k]};
      p_final[k] = substitute(net.v, again, ground)[0];
    }
  }

  result.patches.reserve(alpha);
  for (std::uint32_t k = 0; k < alpha; ++k) {
    result.patches.push_back(extractPatch(net, p_final[k], cluster.targets[k]));
  }
  return result;
}

TargetPatch extractPatch(const LocalNetwork& net, Lit root,
                         std::uint32_t global_target) {
  TargetPatch patch;
  patch.target = global_target;

  // The support must be free of target variables after phase 2.
  const std::vector<Lit> roots{root};
  const std::vector<std::uint32_t> support = supportPis(net.v, roots);
  std::unordered_map<std::uint32_t, const CutBase*> base_of_var;
  for (const CutBase& b : net.bases) base_of_var[b.v_pi.var()] = &b;

  VarMap map;
  for (const std::uint32_t pi_var : support) {
    const auto it = base_of_var.find(pi_var);
    ECO_CHECK_MSG(it != base_of_var.end(),
                  "patch support contains a non-base variable (phase 2 failed)");
    const CutBase& b = *it->second;
    // The patch PI carries the *raw* signal; the cut PI equals the raw
    // signal XOR inverted, so absorb the inversion here.
    const Lit raw_pi = patch.fn.addPi(b.signal.name);
    map[pi_var] = raw_pi ^ b.inverted;
    patch.inputs.push_back(b.signal);
  }
  const Lit out = copyCones(net.v, roots, map, patch.fn)[0];
  patch.fn.addPo(out);
  return patch;
}

void pruneUnusedInputs(TargetPatch& patch) {
  const std::vector<Lit> roots{patch.fn.poDriver(0)};
  const std::vector<std::uint32_t> support = supportPis(patch.fn, roots);
  if (support.size() == patch.fn.numPis()) return;
  std::unordered_map<std::uint32_t, bool> used;
  for (const std::uint32_t v : support) used[v] = true;

  Aig pruned;
  std::vector<Candidate> inputs;
  VarMap map;
  for (std::uint32_t i = 0; i < patch.fn.numPis(); ++i) {
    const std::uint32_t var = patch.fn.piVar(i);
    if (used.count(var) == 0) continue;
    map[var] = pruned.addPi(patch.fn.piName(i));
    inputs.push_back(patch.inputs[i]);
  }
  const Lit out = copyCones(patch.fn, roots, map, pruned)[0];
  pruned.addPo(out);
  patch.fn = std::move(pruned);
  patch.inputs = std::move(inputs);
}

}  // namespace eco
