#pragma once
// Rebasing with functional dependency (Sec. 6.1, Eq. 12, Fig. 3).
//
// The oracle holds two CNF copies of the patch constraint: the A copy
// asserts the on-set (mu = 1) over inputs X, the B copy asserts the off-set
// (mu* = 0) over an independent input copy X*, and every base candidate
// b_i is encoded in both copies with a selection variable s_i adding
//   s_i -> (b_i == b_i*).
// A candidate base set is feasible — some function over it implements the
// patch — iff the formula is UNSAT under the unit assumptions selecting it.
// Counterexample enumeration over the Watch signals (Sec. 6.2.1) uses
// control variables to block witnessed on-side valuations.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "eco/candidates.h"
#include "sat/solver.h"

namespace eco {

class RebaseOracle {
 public:
  /// `on_w`/`off_w` must be functions of the workspace X inputs only;
  /// candidate functions likewise.
  RebaseOracle(const Workspace& ws, Lit on_w, Lit off_w,
               std::span<const Candidate> candidates);

  std::uint32_t numCandidates() const {
    return static_cast<std::uint32_t>(sel_.size());
  }

  /// True iff the selected candidate subset can implement the patch.
  /// Undecided (budgeted) queries conservatively report false.
  bool feasible(std::span<const std::uint32_t> selected);

  /// After a feasible() == true: the subset of `selected` that the solver
  /// actually used to derive infeasibility of a collision (an unsat core —
  /// itself a feasible base).
  const std::vector<std::uint32_t>& lastCore() const { return last_core_; }

  /// Counterexample enumeration (Sec. 6.2.1): with `selected` assumed,
  /// enumerates distinct on-side valuations of the `watch` candidates
  /// (bit i of a pattern = value of watch[i] in the A copy), blocking each
  /// with a fresh control variable. Stops at `max_cex` patterns.
  std::vector<std::uint64_t> enumerateCex(std::span<const std::uint32_t> selected,
                                          std::span<const std::uint32_t> watch,
                                          std::uint32_t max_cex);

  std::uint64_t numConflicts() const { return solver_.numConflicts(); }

 private:
  sat::Solver solver_;
  std::vector<sat::SLit> sel_;    ///< selection literal per candidate
  std::vector<sat::SLit> val_a_;  ///< candidate value in the on (A) copy
  std::vector<sat::SLit> val_b_;  ///< candidate value in the off (B) copy
  std::vector<std::uint32_t> last_core_;
};

/// Synthesizes a patch function over the selected candidates by Craig
/// interpolation with fresh shared variables y_i == b_i (A side) and
/// y_i == b_i* (B side). Returns a standalone single-output AIG whose PI i
/// is the raw value of candidates[selected[i]], or nullopt when the query
/// does not refute within the budget (infeasible or budgeted out).
std::optional<Aig> synthesizeOverBase(const Workspace& ws, Lit on_w, Lit off_w,
                                      std::span<const Candidate> candidates,
                                      std::span<const std::uint32_t> selected,
                                      std::int64_t conflict_budget);

}  // namespace eco
