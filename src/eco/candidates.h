#pragma once
// Patch-base candidate signals.
//
// A candidate is an existing signal of the faulty netlist that a patch may
// read: an X primary input or a named internal signal. Signals inside the
// transitive fanout of any target are excluded — reading them from a patch
// would create a combinational cycle through the rectified targets.

#include <string>
#include <vector>

#include "eco/instance.h"
#include "eco/relations.h"

namespace eco {

struct Candidate {
  std::string name;  ///< faulty netlist signal name
  Lit f_lit;         ///< literal in the faulty AIG
  Lit w_fn;          ///< the signal's function in the workspace (over X only)
  double weight = 0;
};

/// Collects all base candidates of an instance: X PIs first (index-aligned
/// with ws.x_pis), then named internal signals outside the targets' TFO,
/// deduplicated by workspace function (cheapest name wins).
std::vector<Candidate> collectCandidates(const EcoInstance& instance,
                                         const Workspace& ws);

}  // namespace eco
