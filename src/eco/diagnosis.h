#pragma once
// Rectification-target diagnosis — the first phase of the ECO computation
// (Sec. 1: "First, identify target signals for rectification"), which the
// paper and the contest assume already done. This module closes the loop:
// given an ordinary faulty netlist (no pre-cut targets) and the golden
// netlist, it proposes internal signals whose re-synthesis can rectify the
// design.
//
// Two stages:
//  1. Simulation screening: counterexample patterns are collected from the
//     miter; a signal scores by the fraction of failing patterns that a
//     point-flip of the signal repairs (all outputs match golden). Only
//     signals repairing every observed failure can be single-fix targets.
//  2. Exact certification: top-scoring signals are cut to a floating
//     pseudo-PI and checked with the Eq. (2) rectifiability oracle.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aig/aig.h"
#include "eco/instance.h"

namespace eco {

struct DiagnosisOptions {
  std::uint32_t num_cex = 48;       ///< counterexample patterns to collect
  std::uint32_t max_certify = 16;   ///< signals to certify exactly
  std::uint32_t max_strategies = 64;  ///< rectifiability CEGAR bound
  std::uint64_t seed = 0xD1A6ULL;
};

struct DiagnosisCandidate {
  std::string name;  ///< faulty netlist signal name (empty if unnamed)
  std::uint32_t var = 0;  ///< faulty AIG variable
  double score = 0;  ///< fraction of failing patterns repaired by a flip
  bool certified = false;  ///< proven rectifiable as a single target
};

struct DiagnosisResult {
  /// True when the circuits are already equivalent (nothing to fix).
  bool equivalent = false;
  /// Ranked candidates: certified ones first, then by descending score.
  std::vector<DiagnosisCandidate> candidates;
};

/// Diagnoses single-fix rectification targets. `faulty` and `golden` are
/// over the same X inputs (no floating targets).
DiagnosisResult diagnoseSingleFix(const Aig& faulty, const Aig& golden,
                                  const DiagnosisOptions& options = {});

/// Builds the ECO instance that cuts the given faulty AND nodes as targets
/// "t0", "t1", ... (weights are left to the caller).
EcoInstance cutAsTargets(const Aig& faulty, const Aig& golden,
                         std::span<const std::uint32_t> vars);

/// Single-target convenience wrapper.
EcoInstance cutAsTarget(const Aig& faulty, const Aig& golden, std::uint32_t var);

struct PairDiagnosisResult {
  bool equivalent = false;
  bool found = false;
  std::uint32_t var_a = 0, var_b = 0;  ///< certified rectification pair
  std::string name_a, name_b;
};

/// Escalation for multi-error designs: when no single signal certifies,
/// search pairs among the top point-flip scorers, certifying each pair
/// with the Eq. (2) oracle. Returns the first certified pair.
PairDiagnosisResult diagnoseDoubleFix(const Aig& faulty, const Aig& golden,
                                      const DiagnosisOptions& options = {});

}  // namespace eco
