#pragma once
// Target clustering (Fig. 2 of the paper).
//
// Two targets belong to one group when they share a primary output in
// their transitive fanout cones; groups sharing a target are merged
// transitively. Rectification then proceeds one group at a time, which
// keeps the care/diff constructions local to the outputs a group can
// actually influence.

#include <cstdint>
#include <vector>

#include "eco/instance.h"

namespace eco {

struct TargetCluster {
  std::vector<std::uint32_t> targets;  ///< target indices (0-based)
  std::vector<std::uint32_t> outputs;  ///< PO indices reachable from them
};

/// Groups the instance's targets. Every target appears in exactly one
/// cluster; POs unreachable from any target appear in no cluster.
std::vector<TargetCluster> clusterTargets(const EcoInstance& instance);

}  // namespace eco
