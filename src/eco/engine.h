#pragma once
// The complete ECO flow (Fig. 1): FRAIG equivalence classes, target
// clustering, localization, multi-fix patch generation, SAT verification,
// and cost optimization.
//
// This is the library's primary entry point:
//
//   eco::EcoInstance inst = ...;          // parse or generate
//   eco::EcoEngine engine;                // default EcoOptions
//   eco::PatchResult r = engine.run(inst);
//   if (r.success) { use r.patch / r.base / r.cost / r.size; }

#include "eco/instance.h"

namespace eco {

class EcoEngine {
 public:
  explicit EcoEngine(EcoOptions options = {}) : options_(options) {}

  /// Runs the full flow. The returned patch is verified: on success the
  /// patched faulty circuit is SAT-proven equivalent to the golden one.
  PatchResult run(const EcoInstance& instance) const;

  const EcoOptions& options() const { return options_; }

 private:
  EcoOptions options_;
};

}  // namespace eco
