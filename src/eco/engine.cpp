#include "eco/engine.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "aig/minimize.h"
#include "base/check.h"
#include "base/thread_pool.h"
#include "check/aig_audit.h"
#include "check/check.h"
#include "check/patch_audit.h"
#include "eco/candidates.h"
#include "eco/clustering.h"
#include "eco/costopt.h"
#include "eco/localization.h"
#include "eco/patchgen.h"
#include "eco/rebase.h"
#include "eco/relations.h"
#include "eco/verify.h"
#include "fraig/fraig.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace eco {
namespace {

/// Merges the per-target patches into one patch network with deduplicated
/// inputs and fills the result's base/cost/size fields.
void assembleResult(const EcoInstance& instance,
                    std::span<const TargetPatch> patches, PatchResult& result) {
  result.patch = Aig();
  result.base.clear();
  std::unordered_map<std::string, Lit> pi_of_name;

  // Deterministic target order.
  std::vector<const TargetPatch*> ordered;
  for (const TargetPatch& p : patches) ordered.push_back(&p);
  std::sort(ordered.begin(), ordered.end(),
            [](const TargetPatch* a, const TargetPatch* b) {
              return a->target < b->target;
            });

  for (const TargetPatch* p : ordered) {
    VarMap map;
    for (std::uint32_t i = 0; i < p->fn.numPis(); ++i) {
      const Candidate& in = p->inputs[i];
      auto it = pi_of_name.find(in.name);
      if (it == pi_of_name.end()) {
        const Lit pi = result.patch.addPi(in.name);
        it = pi_of_name.emplace(in.name, pi).first;
        BaseRef ref;
        ref.name = in.name;
        ref.lit = in.f_lit;
        ref.weight = in.weight;
        result.base.push_back(std::move(ref));
      }
      map[p->fn.piVar(i)] = it->second;
    }
    const std::vector<Lit> roots{p->fn.poDriver(0)};
    const Lit out = copyCones(p->fn, roots, map, result.patch)[0];
    result.patch.addPo(out, instance.targetName(p->target));
  }

  result.cost = 0;
  for (const BaseRef& b : result.base) result.cost += b.weight;
  result.size = result.patch.numAnds();
}

}  // namespace

PatchResult EcoEngine::run(const EcoInstance& instance) const {
  // Stage accounting runs on obs spans (DESIGN.md "Observability"): each
  // stage's kTimed span both feeds the Chrome trace (when a session is
  // recording) and populates the pre-existing PatchResult wall-clock
  // fields, so the human-readable report needs no separate timers.
  obs::Span run_span("eco.run", obs::Span::Mode::kTimed);
  // Live status: "engine.stage" tracks the in-flight stage; nested
  // ProgressScopes restore the enclosing value, so a postmortem dumped
  // mid-stage (CheckError, fatal signal, budget) names where the run was.
  obs::ProgressScope run_scope("engine.stage", "run");
  const std::uint64_t sat_conflicts0 = obs::counterValue("sat.conflicts");
  const obs::ResourceUsage run_usage0 = obs::currentUsage();
  PatchResult result;
  // Process-wide SAT effort attributed to this run; exact for a single
  // engine, an upper bound when several engines run concurrently.
  const auto finishRun = [&] {
    result.sat_conflicts = obs::counterValue("sat.conflicts") - sat_conflicts0;
    result.seconds = run_span.stop();
    const obs::ResourceUsage used = obs::usageSince(run_usage0);
    result.cpu_seconds = used.cpu_seconds;
    result.peak_rss_bytes = used.peak_rss_bytes;
    result.alloc_count = used.alloc_count;
    result.alloc_bytes = used.alloc_bytes;
    for (const auto& row : obs::snapshotResources().threads) {
      result.thread_cpu_seconds.emplace_back(row.name, row.cpu_seconds);
    }
    ECO_OBS_COUNT("eco.runs", 1);
    // Interned directly (not via ECO_OBS_COUNT): the macro's static
    // reference would bind to whichever outcome happened first.
    const char* outcome = result.success ? "eco.runs_ok" : "eco.runs_failed";
    obs::counter(outcome).add(1);
    obs::flightRecordCount(outcome, 1);
  };
  // Per-stage resource attribution (run report v2): one entry per stage
  // actually executed, in run order.
  const auto recordStage = [&](const char* stage,
                               const obs::ResourceUsage& begin) {
    const obs::ResourceUsage d = obs::usageSince(begin);
    StageResource sr;
    sr.stage = stage;
    sr.cpu_seconds = d.cpu_seconds;
    sr.alloc_count = d.alloc_count;
    sr.alloc_bytes = d.alloc_bytes;
    sr.peak_rss_bytes = d.peak_rss_bytes;
    result.stage_resources.push_back(std::move(sr));
  };
  // Wall-clock budget, checked at stage boundaries only (a stage in
  // flight is never interrupted, keeping results deterministic for a
  // given budget outcome).
  const auto budgetExhausted = [&](const char* after_stage) -> bool {
    if (options_.time_budget_seconds <= 0) return false;
    if (run_span.seconds() < options_.time_budget_seconds) return false;
    result.success = false;
    result.message = std::string("engine time budget exhausted after stage ") +
                     after_stage;
    ECO_OBS_COUNT("eco.budget_exhausted", 1);
    obs::dumpPostmortem("budget", result.message.c_str());
    return true;
  };
  // Invariant-audit checkpoints (DESIGN.md "Static analysis & invariant
  // audit"). A failed audit is an engine defect, reported like a failed
  // final verification: a failed result with an "internal error" message
  // plus the machine-readable report, so the QA harness can catch and
  // shrink it. Paranoid runs additionally arm the process-global solver
  // hook (audits after every clause-arena GC and preprocessing run).
  const check::Level check_level = options_.check_level;
  if (check_level >= check::Level::kParanoid &&
      check::globalLevel() < check::Level::kParanoid) {
    check::setGlobalLevel(check::Level::kParanoid);
  }
  const auto auditFailed = [&](const check::AuditReport& rep) -> bool {
    if (rep.ok()) return false;
    result.success = false;
    result.message = "internal error: invariant audit failed: " + rep.summary();
    result.audit_json = rep.toJson();
    return true;
  };

  const std::uint32_t alpha = instance.numTargets();
  ECO_OBS_GAUGE_SET("eco.targets", alpha);
  if (alpha == 0) {
    result.success = false;
    result.message = "instance has no targets";
    finishRun();
    return result;
  }

  // Worker pool for the FRAIG and per-cluster stages. num_threads == 1
  // keeps pool null, which routes every stage through the exact legacy
  // sequential code path.
  const std::uint32_t num_threads = options_.num_threads == 0
                                        ? ThreadPool::defaultThreads()
                                        : options_.num_threads;
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (num_threads > 1) {
    pool_storage.emplace(num_threads);
    pool = &*pool_storage;
  }
  // Report the pool's actual worker count: ThreadPool clamps outlandish
  // requests, and the legacy path is exactly one thread.
  result.num_threads_used = pool != nullptr ? pool->numWorkers() : 1;

  Workspace ws;
  std::vector<TargetCluster> clusters;
  {
    obs::Span s("eco.setup");
    obs::ProgressScope stage("engine.stage", "setup");
    const obs::ResourceUsage u0 = obs::currentUsage();
    ws = buildWorkspace(instance);
    clusters = clusterTargets(instance);
    recordStage("setup", u0);
  }
  result.num_clusters = static_cast<std::uint32_t>(clusters.size());
  ECO_OBS_GAUGE_SET("eco.clusters", result.num_clusters);

  if (check_level >= check::Level::kStage) {
    obs::Span s("eco.audit_setup");
    obs::ProgressScope stage("engine.stage", "audit_setup");
    if (auditFailed(check::auditAig(instance.faulty, "setup.faulty")) ||
        auditFailed(check::auditAig(instance.golden, "setup.golden")) ||
        auditFailed(check::auditAig(ws.w, "setup.workspace"))) {
      finishRun();
      return result;
    }
  }
  if (budgetExhausted("setup")) {
    finishRun();
    return result;
  }

  // Outputs no target can influence must already match the golden circuit.
  {
    std::vector<bool> touched(instance.faulty.numPos(), false);
    for (const TargetCluster& c : clusters) {
      for (const std::uint32_t j : c.outputs) touched[j] = true;
    }
    std::vector<std::uint32_t> untouched;
    for (std::uint32_t j = 0; j < touched.size(); ++j) {
      if (!touched[j]) untouched.push_back(j);
    }
    if (!untouched.empty()) {
      obs::Span s("eco.verify_untouched", obs::Span::Mode::kTimed);
      obs::ProgressScope stage("engine.stage", "verify_untouched");
      const obs::ResourceUsage u0 = obs::currentUsage();
      VerifyOutcome v = verifyUntouchedOutputs(ws, untouched);
      recordStage("verify_untouched", u0);
      result.verify_seconds += s.stop();
      if (!v.equivalent) {
        result.success = false;
        result.message =
            "unrectifiable: output " + std::to_string(v.failing_output) +
            " differs from golden but no target reaches it";
        result.counterexample = std::move(v.cex_inputs);
        finishRun();
        return result;
      }
    }
  }

  // FRAIG stage (only needed when localization wants shared signals).
  std::optional<fraig::EquivClasses> classes;
  if (options_.use_localization) {
    obs::Span s("eco.fraig", obs::Span::Mode::kTimed);
    obs::ProgressScope stage("engine.stage", "fraig");
    const obs::ResourceUsage u0 = obs::currentUsage();
    std::vector<Lit> roots = ws.f_roots;
    roots.insert(roots.end(), ws.g_roots.begin(), ws.g_roots.end());
    fraig::Options fo;
    fo.seed = options_.seed;
    fo.pool = pool;
    fraig::Stats fstats;
    classes = fraig::computeEquivClasses(ws.w, roots, fo, &fstats);
    s.arg("sat_queries", fstats.sat_queries);
    recordStage("fraig", u0);
    result.fraig_seconds = s.stop();
    result.fraig_sat_queries = fstats.sat_queries;
    result.fraig_rounds = fstats.rounds;
    if (check_level >= check::Level::kStage) {
      obs::Span audit_span("eco.audit_fraig");
      obs::ProgressScope audit_stage("engine.stage", "audit_fraig");
      if (auditFailed(check::auditAig(ws.w, "fraig.workspace"))) {
        finishRun();
        return result;
      }
    }
  }
  if (budgetExhausted("fraig")) {
    finishRun();
    return result;
  }

  std::vector<Candidate> candidates = collectCandidates(instance, ws);
  if (options_.pi_candidates_only) {
    candidates.resize(std::min<std::size_t>(candidates.size(), instance.num_x));
  }

  // Localization + initial multi-fix patch generation, per cluster.
  // Clusters are independent (each task reads the shared workspace and
  // candidate list, all const, and builds its own local network), so they
  // are dispatched to the pool; results are merged in cluster-index order
  // below so the output is identical regardless of the worker count.
  obs::Span patchgen_span("eco.patchgen", obs::Span::Mode::kTimed);
  // optional<> because the stage spans two statement blocks; reset()
  // closes it exactly where the span stops.
  std::optional<obs::ProgressScope> patchgen_scope;
  patchgen_scope.emplace("engine.stage", "patchgen");
  const obs::ResourceUsage patchgen_usage0 = obs::currentUsage();
  std::vector<TargetPatch> patches(alpha);
  {
    std::vector<ClusterPatchResult> cluster_results(clusters.size());
    std::vector<std::uint32_t> cluster_cut(clusters.size(), 0);
    const auto runCluster = [&](std::size_t ci) {
      // Per-cluster span: on a multi-worker run these land in the pool
      // workers' trace rows, the per-thread view of the PR-1 pipeline.
      obs::Span s("eco.cluster");
      s.arg("cluster", ci);
      const TargetCluster& cluster = clusters[ci];
      LocalNetwork net =
          buildLocalNetwork(instance, ws, cluster, candidates,
                            options_.use_localization ? &*classes : nullptr);
      cluster_cut[ci] = static_cast<std::uint32_t>(net.bases.size());
      cluster_results[ci] = dependentPatchGen(cluster, net, options_);
    };
    if (pool != nullptr) {
      pool->parallelFor(clusters.size(), runCluster);
    } else {
      for (std::size_t ci = 0; ci < clusters.size(); ++ci) runCluster(ci);
    }
    for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
      result.cut_size += cluster_cut[ci];
      result.itp_failures += cluster_results[ci].itp_failures;
      for (std::size_t i = 0; i < clusters[ci].targets.size(); ++i) {
        patches[clusters[ci].targets[i]] =
            std::move(cluster_results[ci].patches[i]);
      }
    }
  }
  if (options_.minimize_patches) {
    // Per-patch minimization is deterministic in isolation (own seed), so
    // patch order carries no state and the loop parallelizes directly.
    const auto minimizeOne = [&](std::size_t i) {
      obs::Span s("eco.minimize_patch");
      s.arg("target", i);
      MinimizeOptions mo;
      mo.seed = options_.seed;
      patches[i].fn = minimizeAig(patches[i].fn, mo);
      pruneUnusedInputs(patches[i]);
    };
    if (pool != nullptr) {
      pool->parallelFor(patches.size(), minimizeOne);
    } else {
      for (std::size_t i = 0; i < patches.size(); ++i) minimizeOne(i);
    }
  }
  recordStage("patchgen", patchgen_usage0);
  result.patchgen_seconds = patchgen_span.stop();
  patchgen_scope.reset();
  if (budgetExhausted("patchgen")) {
    finishRun();
    return result;
  }

  if (check_level >= check::Level::kParanoid) {
    obs::Span s("eco.audit_patchgen");
    obs::ProgressScope stage("engine.stage", "audit_patchgen");
    for (std::uint32_t k = 0; k < alpha; ++k) {
      if (auditFailed(check::auditAig(patches[k].fn,
                                      "patchgen.target" + std::to_string(k)))) {
        finishRun();
        return result;
      }
    }
  }

  // Soundness gate: the initial patch must verify. The generation procedure
  // is complete for this formulation, so failure here means the instance is
  // not rectifiable through the given targets.
  {
    obs::Span s("eco.verify_initial", obs::Span::Mode::kTimed);
    obs::ProgressScope stage("engine.stage", "verify_initial");
    const obs::ResourceUsage u0 = obs::currentUsage();
    VerifyOutcome v = verifyPatches(ws, patches);
    recordStage("verify_initial", u0);
    result.verify_seconds += s.stop();
    if (!v.equivalent) {
      result.success = false;
      result.message = "unrectifiable: initial patch fails verification at output " +
                       std::to_string(v.failing_output);
      result.counterexample = std::move(v.cex_inputs);
      finishRun();
      return result;
    }
  }
  assembleResult(instance, patches, result);
  result.initial_cost = result.cost;
  result.initial_size = result.size;
  if (budgetExhausted("verify_initial")) {
    // The initial patch verified, so the budgeted result is still a
    // correct (just unoptimized) patch; report it as such.
    result.success = true;
    result.message += " (returning unoptimized patch)";
    finishRun();
    return result;
  }

  // Cost optimization (Sec. 6): per-target rebasing with Watch/Hold/CPB
  // base selection, holding the other targets' patches fixed.
  if (options_.use_cost_opt) {
    obs::Span opt_span("eco.opt", obs::Span::Mode::kTimed);
    obs::ProgressScope stage("engine.stage", "opt");
    const obs::ResourceUsage opt_usage0 = obs::currentUsage();
    // Cheapest-first candidate cap; per-target bases are appended below.
    std::vector<std::uint32_t> cheap_order(candidates.size());
    for (std::uint32_t i = 0; i < candidates.size(); ++i) cheap_order[i] = i;
    std::sort(cheap_order.begin(), cheap_order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return candidates[a].weight != candidates[b].weight
                           ? candidates[a].weight < candidates[b].weight
                           : a < b;
              });
    cheap_order.resize(
        std::min<std::size_t>(cheap_order.size(), options_.max_candidates));

    std::unordered_map<std::string, std::uint32_t> candidate_by_name;
    for (std::uint32_t i = 0; i < candidates.size(); ++i) {
      candidate_by_name.emplace(candidates[i].name, i);
    }

    // Cluster lookup per target.
    std::vector<const TargetCluster*> cluster_of(alpha, nullptr);
    for (const TargetCluster& c : clusters) {
      for (const std::uint32_t t : c.targets) cluster_of[t] = &c;
    }

    for (std::uint32_t round = 0; round < options_.opt_rounds; ++round) {
      ECO_OBS_GAUGE_SET("eco.opt_round", round + 1);
      bool improved = false;
      for (std::uint32_t k = 0; k < alpha; ++k) {
        const TargetCluster& cluster = *cluster_of[k];
        if (cluster.outputs.empty()) continue;  // patch is trivially const
        obs::Span target_span("eco.opt_target");
        target_span.arg("target", k);

        // Candidate universe for this target: cheap prefix + current base.
        std::vector<std::uint32_t> universe = cheap_order;
        std::unordered_set<std::uint32_t> in_universe(universe.begin(),
                                                      universe.end());
        std::vector<std::uint32_t> initial;
        bool base_ok = true;
        for (const Candidate& in : patches[k].inputs) {
          const auto it = candidate_by_name.find(in.name);
          if (it == candidate_by_name.end()) {
            base_ok = false;
            break;
          }
          if (in_universe.insert(it->second).second) {
            universe.push_back(it->second);
          }
        }
        if (!base_ok) continue;
        std::vector<Candidate> cand_k;
        std::unordered_map<std::uint32_t, std::uint32_t> local_of_global;
        for (const std::uint32_t g : universe) {
          local_of_global[g] = static_cast<std::uint32_t>(cand_k.size());
          cand_k.push_back(candidates[g]);
        }
        for (const Candidate& in : patches[k].inputs) {
          initial.push_back(local_of_global.at(candidate_by_name.at(in.name)));
        }

        // Signals other targets already pay for are free here.
        std::unordered_set<std::string> shared_names;
        if (options_.account_shared_bases) {
          for (std::uint32_t j = 0; j < alpha; ++j) {
            if (j == k) continue;
            for (const Candidate& in : patches[j].inputs) {
              shared_names.insert(in.name);
            }
          }
        }
        std::vector<double> eff_weight(cand_k.size());
        for (std::size_t i = 0; i < cand_k.size(); ++i) {
          eff_weight[i] =
              shared_names.count(cand_k[i].name) != 0 ? 0.0 : cand_k[i].weight;
        }

        // On/off-sets of t_k with every other target's patch substituted.
        VarMap repl;
        for (std::uint32_t j = 0; j < alpha; ++j) {
          if (j == k) continue;
          repl[ws.t_pis[j].var()] = composePatchInWorkspace(ws, patches[j]);
        }
        std::vector<Lit> f_fixed, g_fixed;
        for (const std::uint32_t j : cluster.outputs) {
          f_fixed.push_back(ws.f_roots[j]);
          g_fixed.push_back(ws.g_roots[j]);
        }
        f_fixed = substitute(ws.w, f_fixed, repl);
        const OnOffSets oo = buildOnOff(ws.w, f_fixed, g_fixed, ws.t_pis[k]);

        RebaseOracle oracle(ws, oo.on, oo.off, cand_k);
        if (!oracle.feasible(initial)) continue;  // defensive

        const BaseSelection sel =
            selectBase(oracle, eff_weight, initial, options_);

        double old_cost = 0;
        for (const std::uint32_t i : initial) old_cost += eff_weight[i];
        const std::uint32_t old_size = patches[k].fn.numAnds();
        if (sel.cost > old_cost) continue;

        auto synth = synthesizeOverBase(ws, oo.on, oo.off, cand_k, sel.base,
                                        options_.itp_conflict_budget);
        if (!synth) continue;
        const std::uint32_t new_size = synth->numAnds();
        if (sel.cost == old_cost && new_size >= old_size) continue;

        TargetPatch np;
        np.target = k;
        np.fn = std::move(*synth);
        for (const std::uint32_t i : sel.base) np.inputs.push_back(cand_k[i]);
        if (options_.minimize_patches) {
          MinimizeOptions mo;
          mo.seed = options_.seed;
          np.fn = minimizeAig(np.fn, mo);
        }
        pruneUnusedInputs(np);
        patches[k] = std::move(np);
        improved = true;
      }
      if (!improved) break;
    }
    recordStage("opt", opt_usage0);
    result.opt_seconds = opt_span.stop();
    if (check_level >= check::Level::kStage) {
      obs::Span s("eco.audit_opt");
      obs::ProgressScope audit_stage("engine.stage", "audit_opt");
      if (auditFailed(check::auditAig(ws.w, "opt.workspace"))) {
        finishRun();
        return result;
      }
      if (check_level >= check::Level::kParanoid) {
        for (std::uint32_t k = 0; k < alpha; ++k) {
          if (auditFailed(check::auditAig(patches[k].fn,
                                          "opt.target" + std::to_string(k)))) {
            finishRun();
            return result;
          }
        }
      }
    }
  }

  // Final verification (defense in depth for the optimization stage). A
  // failure here is an engine defect, not an instance property — the
  // initial patch verified, so optimization broke it. Reported as a failed
  // result (message prefixed "internal error") rather than aborting, so the
  // QA harness can catch, log, and shrink it.
  {
    obs::Span s("eco.verify_final", obs::Span::Mode::kTimed);
    obs::ProgressScope stage("engine.stage", "verify_final");
    const obs::ResourceUsage u0 = obs::currentUsage();
    VerifyOutcome v = verifyPatches(ws, patches);
    recordStage("verify_final", u0);
    result.verify_seconds += s.stop();
    if (!v.equivalent) {
      result.success = false;
      result.message =
          "internal error: optimized patch failed verification at output " +
          std::to_string(v.failing_output);
      result.counterexample = std::move(v.cex_inputs);
      finishRun();
      return result;
    }
  }
  assembleResult(instance, patches, result);
  result.success = true;
  result.message = "ok";

  // Final contract gate: the assembled result must satisfy the patch/engine
  // contract before it is handed out as a success.
  if (check_level >= check::Level::kStage) {
    obs::Span s("eco.audit_final");
    obs::ProgressScope stage("engine.stage", "audit_final");
    check::PatchAuditOptions pao;
    pao.require_pruned_inputs = options_.minimize_patches;
    if (auditFailed(
            check::auditPatchContract(instance, result, pao, "final.patch"))) {
      finishRun();
      return result;
    }
  }
  finishRun();
  return result;
}

}  // namespace eco
