#include "eco/candidates.h"

#include <algorithm>
#include <unordered_map>

#include "aig/aig_ops.h"

namespace eco {

std::vector<Candidate> collectCandidates(const EcoInstance& instance,
                                         const Workspace& ws) {
  const Aig& f = instance.faulty;
  std::vector<Candidate> out;

  // Workspace nodes downstream of any target are off limits.
  std::vector<std::uint32_t> t_vars;
  for (const Lit t : ws.t_pis) t_vars.push_back(t.var());
  const std::vector<bool> tfo = transitiveFanoutMask(ws.w, t_vars);

  // X primary inputs.
  for (std::uint32_t i = 0; i < instance.num_x; ++i) {
    Candidate c;
    c.name = f.piName(i);
    c.f_lit = f.piLit(i);
    c.w_fn = ws.x_pis[i];
    c.weight = instance.weightOf(c.name);
    out.push_back(std::move(c));
  }

  // Named internal signals, deduplicated by workspace function: when two
  // names compute the same function, keep the cheaper one.
  std::unordered_map<std::uint32_t, std::size_t> by_fn;  // w lit value -> index
  for (std::size_t i = 0; i < out.size(); ++i) by_fn[out[i].w_fn.value()] = i;
  for (const auto& [name, f_lit] : f.namedSignals()) {
    const auto it = ws.faulty_to_w.find(f_lit.var());
    if (it == ws.faulty_to_w.end()) continue;  // not carried into workspace
    const Lit w_fn = it->second ^ f_lit.complemented();
    if (tfo[w_fn.var()]) continue;
    Candidate c;
    c.name = name;
    c.f_lit = f_lit;
    c.w_fn = w_fn;
    c.weight = instance.weightOf(name);
    const auto dup = by_fn.find(w_fn.value());
    if (dup != by_fn.end()) {
      // Keep the cheaper of the two names; X PI entries keep their slot so
      // the X-prefix index alignment is preserved.
      if (dup->second >= instance.num_x && c.weight < out[dup->second].weight) {
        out[dup->second] = std::move(c);
      }
      continue;
    }
    by_fn[w_fn.value()] = out.size();
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace eco
