#pragma once
// Cost-aware base selection (Sec. 6.2).
//
// Starting from a feasible base B, the most expensive beta (= |Watch|)
// signals are challenged each round: counterexamples over the Watch
// signals are enumerated for every candidate (Sec. 6.2.1), and candidates
// are greedily re-added by smallest cost-per-blocking (CPB, Eq. 13) until
// the selection is feasible again. The best (cheapest) feasible base seen
// across rounds is returned.

#include <cstdint>
#include <span>
#include <vector>

#include "eco/instance.h"
#include "eco/rebase.h"

namespace eco {

struct BaseSelection {
  std::vector<std::uint32_t> base;  ///< candidate indices, feasible
  double cost = 0;
};

/// `effective_weight[i]` is the cost charged for candidate i (the raw
/// weight, or 0 when the signal is already paid for by another target's
/// patch). `initial` must be feasible.
BaseSelection selectBase(RebaseOracle& oracle,
                         std::span<const double> effective_weight,
                         std::span<const std::uint32_t> initial,
                         const EcoOptions& options);

}  // namespace eco
