#include "eco/diagnosis.h"

#include <algorithm>

#include "aig/aig_ops.h"
#include "base/check.h"
#include "base/rng.h"
#include "cnf/cnf.h"
#include "eco/rectifiability.h"
#include "sat/solver.h"
#include "sim/sim.h"

namespace eco {
namespace {

/// Collects up to `n` distinct error minterms of the miter via incremental
/// SAT with blocking clauses. Returns one X assignment per pattern.
std::vector<std::vector<bool>> collectCounterexamples(const Aig& faulty,
                                                      const Aig& golden,
                                                      std::uint32_t n) {
  sat::Solver solver;
  // Incremental use (blocking clauses between solves), but those clauses
  // only mention the X literals — preprocessing is safe once they're frozen.
  solver.setPreprocessing(true);
  cnf::SolverSink sink(solver);

  // Shared X variables; both cones encoded against them.
  Aig miter;
  VarMap mf, mg;
  std::vector<Lit> x;
  for (std::uint32_t i = 0; i < faulty.numPis(); ++i) {
    x.push_back(miter.addPi(faulty.piName(i)));
    mf[faulty.piVar(i)] = x.back();
    mg[golden.piVar(i)] = x.back();
  }
  std::vector<Lit> fr, gr;
  for (std::uint32_t j = 0; j < faulty.numPos(); ++j) fr.push_back(faulty.poDriver(j));
  for (std::uint32_t j = 0; j < golden.numPos(); ++j) gr.push_back(golden.poDriver(j));
  const std::vector<Lit> f_in_m = copyCones(faulty, fr, mf, miter);
  const std::vector<Lit> g_in_m = copyCones(golden, gr, mg, miter);
  Lit diff = kFalse;
  for (std::size_t j = 0; j < f_in_m.size(); ++j) {
    diff = miter.mkOr(diff, miter.mkXor(f_in_m[j], g_in_m[j]));
  }

  cnf::CnfMap map;
  std::vector<sat::SLit> x_lits;
  for (const Lit xi : x) {
    const sat::SLit l = sat::SLit::make(solver.newVar(), false);
    solver.freezeVar(l.var());
    map[xi.var()] = l;
    x_lits.push_back(l);
  }
  const sat::SLit d = cnf::encodeCone(miter, diff, map, sink);
  solver.addClause({d});

  std::vector<std::vector<bool>> patterns;
  while (patterns.size() < n && solver.solve() == sat::Status::Sat) {
    std::vector<bool> p(x_lits.size());
    std::vector<sat::SLit> block;
    for (std::size_t i = 0; i < x_lits.size(); ++i) {
      p[i] = solver.modelValue(x_lits[i]) == sat::LBool::True;
      block.push_back(p[i] ? ~x_lits[i] : x_lits[i]);
    }
    patterns.push_back(std::move(p));
    solver.addClause(block);
  }
  return patterns;
}

}  // namespace

EcoInstance cutAsTargets(const Aig& faulty, const Aig& golden,
                         std::span<const std::uint32_t> vars) {
  EcoInstance inst;
  inst.name = "diagnosis-cut";
  VarMap map;
  for (std::uint32_t i = 0; i < faulty.numPis(); ++i) {
    map[faulty.piVar(i)] = inst.faulty.addPi(faulty.piName(i));
  }
  inst.num_x = faulty.numPis();
  for (std::size_t k = 0; k < vars.size(); ++k) {
    ECO_CHECK(faulty.isAnd(vars[k]));
    map[vars[k]] = inst.faulty.addPi("t" + std::to_string(k));
  }
  std::vector<Lit> roots;
  for (std::uint32_t j = 0; j < faulty.numPos(); ++j) {
    roots.push_back(faulty.poDriver(j));
  }
  const std::vector<Lit> mapped = copyCones(faulty, roots, map, inst.faulty);
  for (std::uint32_t j = 0; j < faulty.numPos(); ++j) {
    inst.faulty.addPo(mapped[j], faulty.poName(j));
  }
  // Preserve every named signal that is not downstream of the cut.
  for (const auto& [name, lit] : faulty.namedSignals()) {
    if (const auto it = map.find(lit.var()); it != map.end()) {
      inst.faulty.setSignalName(it->second ^ lit.complemented(), name);
    }
  }
  // Golden is shared by copy.
  VarMap gmap;
  for (std::uint32_t i = 0; i < golden.numPis(); ++i) {
    gmap[golden.piVar(i)] = inst.golden.addPi(golden.piName(i));
  }
  std::vector<Lit> groots;
  for (std::uint32_t j = 0; j < golden.numPos(); ++j) {
    groots.push_back(golden.poDriver(j));
  }
  const std::vector<Lit> gm = copyCones(golden, groots, gmap, inst.golden);
  for (std::uint32_t j = 0; j < golden.numPos(); ++j) {
    inst.golden.addPo(gm[j], golden.poName(j));
  }
  return inst;
}

EcoInstance cutAsTarget(const Aig& faulty, const Aig& golden, std::uint32_t var) {
  const std::uint32_t vars[1] = {var};
  return cutAsTargets(faulty, golden, vars);
}

PairDiagnosisResult diagnoseDoubleFix(const Aig& faulty, const Aig& golden,
                                      const DiagnosisOptions& options) {
  PairDiagnosisResult result;
  const DiagnosisResult single = diagnoseSingleFix(faulty, golden, options);
  if (single.equivalent) {
    result.equivalent = true;
    return result;
  }
  // Pool: the top scorers (a pair member need not repair every failure
  // alone, so anything with positive score qualifies).
  std::vector<const DiagnosisCandidate*> pool;
  for (const auto& c : single.candidates) {
    if (pool.size() >= options.max_certify) break;
    pool.push_back(&c);
  }
  std::uint32_t budget = options.max_certify * 2;
  for (std::size_t i = 0; i < pool.size() && budget > 0; ++i) {
    for (std::size_t j = i + 1; j < pool.size() && budget > 0; ++j) {
      // Nested cuts are ill-formed when one node sits in the other's cone
      // copy order; cutAsTargets handles any pair (boundary map), but a
      // node inside another target's dead cone adds nothing — try anyway.
      const std::uint32_t pair_vars[2] = {pool[i]->var, pool[j]->var};
      const EcoInstance probe = cutAsTargets(faulty, golden, pair_vars);
      --budget;
      const RectifiabilityResult r =
          checkRectifiability(probe, options.max_strategies);
      if (r.status == Rectifiability::Rectifiable) {
        result.found = true;
        result.var_a = pool[i]->var;
        result.var_b = pool[j]->var;
        result.name_a = pool[i]->name;
        result.name_b = pool[j]->name;
        return result;
      }
    }
  }
  return result;
}

DiagnosisResult diagnoseSingleFix(const Aig& faulty, const Aig& golden,
                                  const DiagnosisOptions& options) {
  ECO_CHECK(faulty.numPis() == golden.numPis());
  ECO_CHECK(faulty.numPos() == golden.numPos());
  DiagnosisResult result;

  const std::vector<std::vector<bool>> cex =
      collectCounterexamples(faulty, golden, options.num_cex);
  if (cex.empty()) {
    result.equivalent = true;
    return result;
  }

  // Pack the counterexamples into word-parallel patterns.
  const std::uint32_t words = (static_cast<std::uint32_t>(cex.size()) + 63) / 64;
  sim::PatternSet patterns(faulty.numPis(), words);
  for (std::size_t p = 0; p < cex.size(); ++p) {
    for (std::uint32_t i = 0; i < faulty.numPis(); ++i) {
      patterns.setBit(i, static_cast<std::uint32_t>(p), cex[p][i]);
    }
  }
  const std::uint64_t last_mask =
      cex.size() % 64 == 0 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << (cex.size() % 64)) - 1);

  const sim::PatternSet base_values = sim::simulateAll(faulty, patterns);
  const sim::PatternSet golden_values = sim::simulateAll(golden, patterns);

  // Point-flip screening: recompute the faulty circuit with signal w's
  // value complemented on every pattern; count patterns where all outputs
  // now agree with golden.
  std::vector<std::uint64_t> flip_values(faulty.numNodes() * words, 0);
  const auto flipScore = [&](std::uint32_t w) -> double {
    // values with override at w (the constant row stays all-zero)
    for (std::uint32_t v = 1; v < faulty.numNodes(); ++v) {
      auto dst = std::span<std::uint64_t>(flip_values.data() + v * words, words);
      const auto src = base_values.of(v);
      if (v == w) {
        for (std::uint32_t k = 0; k < words; ++k) dst[k] = ~src[k];
        continue;
      }
      if (faulty.isPi(v) || v < w) {
        for (std::uint32_t k = 0; k < words; ++k) dst[k] = src[k];
        continue;
      }
      const Lit f0 = faulty.fanin0(v);
      const Lit f1 = faulty.fanin1(v);
      const std::uint64_t* a = flip_values.data() + f0.var() * words;
      const std::uint64_t* b = flip_values.data() + f1.var() * words;
      const std::uint64_t ma = f0.complemented() ? ~std::uint64_t{0} : 0;
      const std::uint64_t mb = f1.complemented() ? ~std::uint64_t{0} : 0;
      for (std::uint32_t k = 0; k < words; ++k) dst[k] = (a[k] ^ ma) & (b[k] ^ mb);
    }
    std::uint32_t fixed = 0;
    for (std::uint32_t k = 0; k < words; ++k) {
      std::uint64_t ok = ~std::uint64_t{0};
      for (std::uint32_t j = 0; j < faulty.numPos(); ++j) {
        const Lit fd = faulty.poDriver(j);
        const Lit gd = golden.poDriver(j);
        const std::uint64_t fv =
            flip_values[fd.var() * words + k] ^
            (fd.complemented() ? ~std::uint64_t{0} : 0);
        std::uint64_t gv = golden_values.of(gd.var())[k];
        if (gd.complemented()) gv = ~gv;
        ok &= ~(fv ^ gv);
      }
      if (k + 1 == words) ok &= last_mask;
      fixed += static_cast<std::uint32_t>(__builtin_popcountll(ok));
    }
    return static_cast<double>(fixed) / static_cast<double>(cex.size());
  };

  for (std::uint32_t v = 1; v < faulty.numNodes(); ++v) {
    if (!faulty.isAnd(v)) continue;
    const double score = flipScore(v);
    if (score <= 0) continue;
    DiagnosisCandidate c;
    c.var = v;
    c.score = score;
    for (const auto& [name, lit] : faulty.namedSignals()) {
      if (lit.var() == v && !lit.complemented()) {
        c.name = name;
        break;
      }
    }
    result.candidates.push_back(std::move(c));
  }
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
              return a.score != b.score ? a.score > b.score : a.var < b.var;
            });

  // Exact certification of the top scorers (a perfect screening score is
  // necessary for a single-fix target, but not sufficient).
  std::uint32_t certified = 0;
  for (DiagnosisCandidate& c : result.candidates) {
    if (certified >= options.max_certify) break;
    if (c.score < 1.0) break;  // cannot repair all observed failures
    const EcoInstance probe = cutAsTarget(faulty, golden, c.var);
    const RectifiabilityResult r =
        checkRectifiability(probe, options.max_strategies);
    c.certified = r.status == Rectifiability::Rectifiable;
    ++certified;
  }
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
                     return a.certified > b.certified;
                   });
  return result;
}

}  // namespace eco
