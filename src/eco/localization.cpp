#include "eco/localization.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/check.h"

namespace eco {
namespace {

/// Identity normalization when localization is disabled.
Lit normalizeOrSelf(const fraig::EquivClasses* classes, std::uint32_t var) {
  const Lit l = Lit::fromVar(var, false);
  return classes ? classes->normalize(l) : l;
}

}  // namespace

LocalNetwork buildLocalNetwork(const EcoInstance& instance, const Workspace& ws,
                               const TargetCluster& cluster,
                               std::span<const Candidate> candidates,
                               const fraig::EquivClasses* classes) {
  const Aig& w = ws.w;

  // Which workspace PI vars are targets, and their cluster-local index.
  std::unordered_map<std::uint32_t, std::uint32_t> cluster_t_index;
  for (std::uint32_t i = 0; i < cluster.targets.size(); ++i) {
    cluster_t_index[ws.t_pis[cluster.targets[i]].var()] = i;
  }
  std::unordered_set<std::uint32_t> all_t_vars;
  for (const Lit t : ws.t_pis) all_t_vars.insert(t.var());

  // Per-class representative: is the class shared between F and G, and the
  // cheapest implementing candidate.
  struct Impl {
    int candidate = -1;
    bool inverted = false;  // candidate function == rep function XOR inverted
  };
  std::unordered_map<std::uint32_t, Impl> impl_of_rep;
  std::unordered_map<std::uint32_t, std::uint8_t> side_of_rep;  // bit0 = F, bit1 = G
  if (classes) {
    for (std::uint32_t var = 1; var < w.numNodes(); ++var) {
      const Lit nl = classes->normalize(Lit::fromVar(var, false));
      std::uint8_t& side = side_of_rep[nl.var()];
      if (var < ws.from_faulty.size() && ws.from_faulty[var]) side |= 1;
      if (var < ws.from_golden.size() && ws.from_golden[var]) side |= 2;
    }
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Lit nl = classes ? classes->normalize(candidates[i].w_fn)
                           : candidates[i].w_fn;
    Impl& impl = impl_of_rep[nl.var()];
    if (impl.candidate < 0 ||
        candidates[i].weight < candidates[impl.candidate].weight) {
      impl.candidate = static_cast<int>(i);
      impl.inverted = nl.complemented();
    }
  }

  // Stop predicate for the cut-frontier traversals (Algorithm 2): X inputs,
  // target pseudo-PIs, and implementable shared equivalence classes.
  const auto isStop = [&](std::uint32_t var, bool golden_side) -> bool {
    if (all_t_vars.count(var) != 0) return true;
    if (w.isPi(var)) return true;  // X input
    if (!classes) return false;
    const Lit nl = classes->normalize(Lit::fromVar(var, false));
    if (nl.var() == 0) return true;  // stuck-at constant
    const auto side = side_of_rep.find(nl.var());
    const bool shared =
        side != side_of_rep.end() && (side->second & 1) && (side->second & 2);
    if (!shared && golden_side) return false;
    if (!shared) return false;  // faulty side also requires a shared class
    return impl_of_rep.count(nl.var()) != 0 &&
           impl_of_rep.at(nl.var()).candidate >= 0;
  };

  // CutFrontier: reverse-topological DFS collecting the first stop signal
  // along every path.
  const auto cutFrontier = [&](std::span<const Lit> roots, bool golden_side,
                               std::unordered_set<std::uint32_t>& frontier) {
    std::vector<std::uint32_t> stack;
    std::unordered_set<std::uint32_t> seen;
    for (const Lit r : roots) stack.push_back(r.var());
    while (!stack.empty()) {
      const std::uint32_t var = stack.back();
      stack.pop_back();
      if (var == 0 || seen.count(var) != 0) continue;
      seen.insert(var);
      if (isStop(var, golden_side)) {
        frontier.insert(var);
        continue;
      }
      ECO_CHECK_MSG(w.isAnd(var), "cut traversal reached an unexpected leaf");
      stack.push_back(w.fanin0(var).var());
      stack.push_back(w.fanin1(var).var());
    }
  };

  std::vector<Lit> f_roots, g_roots;
  for (const std::uint32_t j : cluster.outputs) {
    f_roots.push_back(ws.f_roots[j]);
    g_roots.push_back(ws.g_roots[j]);
  }

  std::unordered_set<std::uint32_t> frontier;
  cutFrontier(f_roots, /*golden_side=*/false, frontier);
  cutFrontier(g_roots, /*golden_side=*/true, frontier);

  // Build the localized network: one PI per used class representative plus
  // one PI per cluster target.
  LocalNetwork net;
  net.t_pis.resize(cluster.targets.size());
  for (std::uint32_t i = 0; i < cluster.targets.size(); ++i) {
    net.t_pis[i] =
        net.v.addPi(instance.targetName(cluster.targets[i]));
  }

  std::unordered_map<std::uint32_t, Lit> pi_of_rep;  // rep var -> v PI literal
  VarMap boundary;
  // Deterministic iteration: sort the frontier.
  std::vector<std::uint32_t> frontier_sorted(frontier.begin(), frontier.end());
  std::sort(frontier_sorted.begin(), frontier_sorted.end());
  for (const std::uint32_t u : frontier_sorted) {
    if (const auto t = cluster_t_index.find(u); t != cluster_t_index.end()) {
      boundary[u] = net.t_pis[t->second];
      continue;
    }
    ECO_CHECK_MSG(all_t_vars.count(u) == 0,
                  "cluster cone reached a foreign target");
    const Lit nl = normalizeOrSelf(classes, u);
    if (nl.var() == 0) {
      boundary[u] = kFalse ^ nl.complemented();
      continue;
    }
    Lit pi;
    if (const auto it = pi_of_rep.find(nl.var()); it != pi_of_rep.end()) {
      pi = it->second;
    } else {
      const auto impl_it = impl_of_rep.find(nl.var());
      ECO_CHECK_MSG(impl_it != impl_of_rep.end() && impl_it->second.candidate >= 0,
                    "frontier class without an implementing signal");
      const Candidate& cand = candidates[impl_it->second.candidate];
      pi = net.v.addPi(cand.name);
      pi_of_rep.emplace(nl.var(), pi);
      CutBase base;
      base.v_pi = pi;
      base.signal = cand;
      base.inverted = impl_it->second.inverted;
      net.bases.push_back(std::move(base));
    }
    boundary[u] = pi ^ nl.complemented();
  }

  net.f_roots = copyCones(w, f_roots, boundary, net.v);
  net.g_roots = copyCones(w, g_roots, boundary, net.v);
  return net;
}

}  // namespace eco
