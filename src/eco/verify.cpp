#include "eco/verify.h"

#include "base/check.h"
#include "cnf/cnf.h"
#include "sat/solver.h"

namespace eco {
namespace {

/// SAT-checks OR_j (a_j xor b_j) over the workspace PIs; fills a cex on SAT.
VerifyOutcome checkMiters(Workspace& ws, std::span<const Lit> a,
                          std::span<const Lit> b,
                          std::span<const std::uint32_t> po_index) {
  VerifyOutcome out;
  Aig& w = ws.w;
  sat::Solver solver;
  // One-shot query, no assumptions, no late clauses: preprocessing is safe,
  // and model reads of eliminated variables are reconstructed.
  solver.setPreprocessing(true);
  cnf::SolverSink sink(solver);
  cnf::CnfMap map;
  for (const Lit x : ws.x_pis) map[x.var()] = sat::SLit::make(solver.newVar(), false);
  // Targets stay free in the miter encoding only if some cone still refers
  // to them; a correct full substitution leaves none. Seed them anyway so a
  // partial substitution yields a counterexample instead of an abort.
  for (const Lit t : ws.t_pis) map[t.var()] = sat::SLit::make(solver.newVar(), false);

  std::vector<sat::SLit> miter_lits;
  std::vector<Lit> xors;
  for (std::size_t j = 0; j < a.size(); ++j) {
    xors.push_back(w.mkXor(a[j], b[j]));
  }
  for (const Lit x : xors) {
    miter_lits.push_back(cnf::encodeCone(w, x, map, sink));
  }
  solver.addClause(miter_lits);
  const sat::Status status = solver.solve();
  if (status == sat::Status::Unsat) {
    out.equivalent = true;
    return out;
  }
  ECO_CHECK_MSG(status == sat::Status::Sat, "verification solve did not finish");
  out.equivalent = false;
  out.cex_inputs.resize(ws.x_pis.size());
  for (std::size_t i = 0; i < ws.x_pis.size(); ++i) {
    out.cex_inputs[i] =
        solver.modelValue(map.at(ws.x_pis[i].var())) == sat::LBool::True;
  }
  for (std::size_t j = 0; j < miter_lits.size(); ++j) {
    if (solver.modelValue(miter_lits[j]) == sat::LBool::True) {
      out.failing_output = po_index.empty() ? static_cast<std::uint32_t>(j)
                                            : po_index[j];
      break;
    }
  }
  return out;
}

}  // namespace

Lit composePatchInWorkspace(Workspace& ws, const TargetPatch& patch) {
  VarMap map;
  for (std::uint32_t i = 0; i < patch.fn.numPis(); ++i) {
    map[patch.fn.piVar(i)] = patch.inputs[i].w_fn;
  }
  const std::vector<Lit> roots{patch.fn.poDriver(0)};
  return copyCones(patch.fn, roots, map, ws.w)[0];
}

VerifyOutcome verifyPatches(Workspace& ws, std::span<const TargetPatch> patches) {
  VarMap repl;
  for (const TargetPatch& p : patches) {
    repl[ws.t_pis[p.target].var()] = composePatchInWorkspace(ws, p);
  }
  const std::vector<Lit> patched = substitute(ws.w, ws.f_roots, repl);
  return checkMiters(ws, patched, ws.g_roots, {});
}

VerifyOutcome verifyUntouchedOutputs(Workspace& ws,
                                     std::span<const std::uint32_t> untouched_pos) {
  std::vector<Lit> a, b;
  for (const std::uint32_t j : untouched_pos) {
    a.push_back(ws.f_roots[j]);
    b.push_back(ws.g_roots[j]);
  }
  return checkMiters(ws, a, b, untouched_pos);
}

std::vector<bool> evaluatePatched(const EcoInstance& instance,
                                  const PatchResult& result,
                                  const std::vector<bool>& x) {
  ECO_CHECK(x.size() == instance.num_x);
  const Aig& f = instance.faulty;
  // Pass 1: node values with targets tied to 0 — base signals are outside
  // every target's fanout, so their values are already exact.
  std::vector<bool> value(f.numNodes(), false);
  for (std::uint32_t v = 1; v < f.numNodes(); ++v) {
    if (f.isPi(v)) {
      const std::uint32_t i = f.piIndex(v);
      value[v] = i < instance.num_x ? x[i] : false;
    } else {
      const Lit f0 = f.fanin0(v);
      const Lit f1 = f.fanin1(v);
      value[v] = (value[f0.var()] ^ f0.complemented()) &&
                 (value[f1.var()] ^ f1.complemented());
    }
  }
  // Patch inputs by base reference.
  std::vector<bool> patch_in(result.base.size());
  for (std::size_t i = 0; i < result.base.size(); ++i) {
    const Lit l = result.base[i].lit;
    patch_in[i] = value[l.var()] ^ l.complemented();
  }
  const std::vector<bool> t_vals = result.patch.evaluate(patch_in);
  // Pass 2: full evaluation with patched target values. Patch PO k drives
  // target k (assembleResult emits POs in ascending target order).
  std::vector<bool> pis(f.numPis());
  for (std::uint32_t i = 0; i < instance.num_x; ++i) pis[i] = x[i];
  for (std::uint32_t k = 0; k < instance.numTargets(); ++k) {
    pis[instance.targetPi(k)] = t_vals[k];
  }
  return f.evaluate(pis);
}

}  // namespace eco
