#include "eco/report_json.h"

#include <iterator>
#include <string_view>

#include "obs/json.h"
#include "obs/metrics.h"

namespace eco {
namespace {

using obs::json::Value;

/// Required keys common to every schema version, with the Kind each must
/// carry. `success` and the numeric result block are the contract the
/// bench trajectory and CI smoke tests rely on; everything else may be
/// extended freely.
struct RequiredKey {
  const char* path;  ///< "section.key" (one level deep) or top-level key
  Value::Kind kind;
};

constexpr RequiredKey kRequired[] = {
    {"schema", Value::Kind::String},
    {"schema_version", Value::Kind::Number},
    {"instance.name", Value::Kind::String},
    {"instance.num_inputs", Value::Kind::Number},
    {"instance.num_outputs", Value::Kind::Number},
    {"instance.num_targets", Value::Kind::Number},
    {"result.success", Value::Kind::Bool},
    {"result.cost", Value::Kind::Number},
    {"result.size", Value::Kind::Number},
    {"result.seconds", Value::Kind::Number},
    {"result.num_clusters", Value::Kind::Number},
    {"result.sat_conflicts", Value::Kind::Number},
    {"stages.threads", Value::Kind::Number},
    {"stages.fraig_seconds", Value::Kind::Number},
    {"stages.patchgen_seconds", Value::Kind::Number},
    {"stages.opt_seconds", Value::Kind::Number},
    {"stages.verify_seconds", Value::Kind::Number},
};

/// Additionally required from v2 on: the resource-attribution section.
constexpr RequiredKey kRequiredV2[] = {
    {"resources.peak_rss_bytes", Value::Kind::Number},
    {"resources.cpu_seconds", Value::Kind::Number},
    {"resources.alloc_count", Value::Kind::Number},
    {"resources.alloc_bytes", Value::Kind::Number},
    {"resources.stages", Value::Kind::Array},
    {"resources.threads", Value::Kind::Array},
};

const char* kindName(Value::Kind k) {
  switch (k) {
    case Value::Kind::Null: return "null";
    case Value::Kind::Bool: return "bool";
    case Value::Kind::Number: return "number";
    case Value::Kind::String: return "string";
    case Value::Kind::Array: return "array";
    case Value::Kind::Object: return "object";
  }
  return "?";
}

}  // namespace

std::string writeJsonReport(const EcoInstance& instance, const PatchResult& r,
                            const RunReportOptions& options) {
  obs::JsonWriter w;
  w.beginObject();
  w.key("schema"); w.value(kRunReportSchema);
  w.key("schema_version"); w.value(static_cast<std::int64_t>(kRunReportSchemaVersion));

  w.key("instance");
  w.beginObject();
  w.key("name"); w.value(instance.name);
  w.key("num_inputs"); w.value(static_cast<std::uint64_t>(instance.num_x));
  w.key("num_outputs"); w.value(static_cast<std::uint64_t>(instance.golden.numPos()));
  w.key("num_targets"); w.value(static_cast<std::uint64_t>(instance.numTargets()));
  w.key("faulty_ands"); w.value(static_cast<std::uint64_t>(instance.faulty.numAnds()));
  w.key("golden_ands"); w.value(static_cast<std::uint64_t>(instance.golden.numAnds()));
  w.endObject();

  w.key("result");
  w.beginObject();
  w.key("success"); w.value(r.success);
  if (!r.message.empty()) { w.key("message"); w.value(r.message); }
  w.key("cost"); w.value(r.cost);
  w.key("size"); w.value(static_cast<std::uint64_t>(r.size));
  w.key("seconds"); w.valueFixed(r.seconds, 6);
  w.key("initial_cost"); w.value(r.initial_cost);
  w.key("initial_size"); w.value(static_cast<std::uint64_t>(r.initial_size));
  w.key("num_clusters"); w.value(static_cast<std::uint64_t>(r.num_clusters));
  w.key("cut_size"); w.value(static_cast<std::uint64_t>(r.cut_size));
  w.key("itp_failures"); w.value(static_cast<std::uint64_t>(r.itp_failures));
  w.key("sat_conflicts"); w.value(r.sat_conflicts);
  w.endObject();

  w.key("stages");
  w.beginObject();
  w.key("threads"); w.value(static_cast<std::uint64_t>(r.num_threads_used));
  w.key("fraig_seconds"); w.valueFixed(r.fraig_seconds, 6);
  w.key("patchgen_seconds"); w.valueFixed(r.patchgen_seconds, 6);
  w.key("opt_seconds"); w.valueFixed(r.opt_seconds, 6);
  w.key("verify_seconds"); w.valueFixed(r.verify_seconds, 6);
  w.key("fraig_sat_queries"); w.value(r.fraig_sat_queries);
  w.key("fraig_rounds"); w.value(static_cast<std::uint64_t>(r.fraig_rounds));
  w.endObject();

  // v2: resource attribution. Allocation counters read 0 when the obs
  // allocation hook is compiled out (sanitizers, ECO_OBS_DISABLED).
  w.key("resources");
  w.beginObject();
  w.key("peak_rss_bytes"); w.value(r.peak_rss_bytes);
  w.key("cpu_seconds"); w.valueFixed(r.cpu_seconds, 6);
  w.key("alloc_count"); w.value(r.alloc_count);
  w.key("alloc_bytes"); w.value(r.alloc_bytes);
  w.key("stages");
  w.beginArray();
  for (const StageResource& sr : r.stage_resources) {
    w.beginObject();
    w.key("stage"); w.value(sr.stage);
    w.key("cpu_seconds"); w.valueFixed(sr.cpu_seconds, 6);
    w.key("alloc_count"); w.value(sr.alloc_count);
    w.key("alloc_bytes"); w.value(sr.alloc_bytes);
    w.key("peak_rss_bytes"); w.value(sr.peak_rss_bytes);
    w.endObject();
  }
  w.endArray();
  w.key("threads");
  w.beginArray();
  for (const auto& [name, cpu] : r.thread_cpu_seconds) {
    w.beginObject();
    w.key("name"); w.value(name);
    w.key("cpu_seconds"); w.valueFixed(cpu, 6);
    w.endObject();
  }
  w.endArray();
  w.endObject();

  if (options.include_base) {
    w.key("base");
    w.beginArray();
    for (const BaseRef& b : r.base) {
      w.beginObject();
      w.key("name"); w.value(b.name);
      w.key("weight"); w.value(b.weight);
      w.key("inverted"); w.value(b.inverted);
      w.endObject();
    }
    w.endArray();
  }

  if (options.include_metrics) {
    w.key("metrics");
    obs::writeMetricsJson(w, obs::snapshotMetrics());
  }

  w.endObject();
  return w.take();
}

bool validateJsonReport(const std::string& json, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  Value root;
  std::string parse_error;
  if (!obs::json::parse(json, &root, &parse_error)) {
    return fail("run report is not valid JSON: " + parse_error);
  }
  if (root.kind != Value::Kind::Object) {
    return fail("run report root must be an object");
  }

  const auto checkKeys = [&](const RequiredKey* keys, std::size_t n,
                             std::string* key_error) -> bool {
    for (std::size_t i = 0; i < n; ++i) {
      const RequiredKey& req = keys[i];
      const std::string_view path(req.path);
      const std::size_t dot = path.find('.');
      const Value* v = nullptr;
      if (dot == std::string_view::npos) {
        v = root.find(std::string(path));
      } else {
        const Value* section = root.find(std::string(path.substr(0, dot)));
        if (section == nullptr || section->kind != Value::Kind::Object) {
          *key_error = "run report missing section '" +
                       std::string(path.substr(0, dot)) + "'";
          return false;
        }
        v = section->find(std::string(path.substr(dot + 1)));
      }
      if (v == nullptr) {
        *key_error =
            "run report missing required key '" + std::string(path) + "'";
        return false;
      }
      if (v->kind != req.kind) {
        *key_error = "run report key '" + std::string(path) + "' must be " +
                     kindName(req.kind) + ", got " + kindName(v->kind);
        return false;
      }
    }
    return true;
  };

  std::string key_error;
  if (!checkKeys(kRequired, std::size(kRequired), &key_error)) {
    return fail(key_error);
  }

  const Value* schema = root.find("schema");
  if (schema->string != kRunReportSchema) {
    return fail("unexpected schema name '" + schema->string + "'");
  }
  // Backward-compatible validation: v1 documents (pre-resources) stay
  // valid; v2 additionally requires the resources section.
  const double version = root.find("schema_version")->number;
  if (version != 1 && version != static_cast<double>(kRunReportSchemaVersion)) {
    return fail("unsupported schema_version " + std::to_string(version));
  }
  if (version >= 2 &&
      !checkKeys(kRequiredV2, std::size(kRequiredV2), &key_error)) {
    return fail(key_error);
  }
  return true;
}

}  // namespace eco
