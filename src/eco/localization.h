#pragma once
// Localization for initial patch simplification (Sec. 5, Algorithm 2,
// Theorem 2).
//
// Using the FRAIG equivalence classes, signals of the faulty circuit proven
// equivalent to signals of the golden circuit form trusted cut points. A
// reverse-topological traversal from the primary outputs collects, along
// every path, the first signal that is an X input, a target pseudo-PI, or
// such a shared equivalent signal; the union of the faulty-side and
// golden-side cut frontiers is the cut C_d. Theorem 2 lets the on/off-sets
// be re-expressed as functions of (C_d, T), so initial patches may read
// cheap intermediate signals instead of primary inputs.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "eco/candidates.h"
#include "eco/clustering.h"
#include "eco/instance.h"
#include "eco/relations.h"
#include "fraig/fraig.h"

namespace eco {

/// A cut point usable as a patch input.
struct CutBase {
  Lit v_pi;          ///< PI literal in the localized network
  Candidate signal;  ///< implementing faulty-circuit signal
  /// Relation between the localized PI and the raw signal: PI function ==
  /// signal function XOR `inverted` (absorbed into the patch cone when the
  /// patch is extracted).
  bool inverted = false;
};

/// The cluster's cones re-expressed over the cut (Theorem 2).
struct LocalNetwork {
  Aig v;
  std::vector<CutBase> bases;  ///< non-target PIs of `v`, in PI order
  std::vector<Lit> t_pis;      ///< PI literal in `v` of each *cluster* target
  std::vector<Lit> f_roots;    ///< cluster outputs of F over (cut, T)
  std::vector<Lit> g_roots;    ///< cluster outputs of G over cut
};

/// Builds the localized network of one cluster.
///
/// With `classes == nullptr` localization is disabled: the cut degenerates
/// to the X inputs (the no-localization ablation and the PI-based
/// baseline). `candidates` must come from collectCandidates on the same
/// workspace.
LocalNetwork buildLocalNetwork(const EcoInstance& instance, const Workspace& ws,
                               const TargetCluster& cluster,
                               std::span<const Candidate> candidates,
                               const fraig::EquivClasses* classes);

}  // namespace eco
