#pragma once
// Rectifiability decision (Sec. 4.1, Eq. 2):
//
//   forall X  exists T :  F(X, T) == G(X)
//
// holds iff the faulty circuit can be rectified through the given targets.
// Decided by counterexample-guided strategy refinement on the 2QBF: a
// growing set S of constant T-strategies is maintained; a SAT query looks
// for an X* that no strategy in S fixes; a second (incremental) query asks
// whether any T fixes X* — adding it to S on success, or returning X* as an
// unrectifiability witness on failure.
//
// Independent of the patch generator, so it doubles as an oracle for
// validating the engine's completeness (a generation failure must coincide
// with Unrectifiable here).

#include <cstdint>
#include <vector>

#include "eco/instance.h"

namespace eco {

enum class Rectifiability { Rectifiable, Unrectifiable, Unknown };

struct RectifiabilityResult {
  Rectifiability status = Rectifiability::Unknown;
  /// Witness X assignment when Unrectifiable: no T value fixes it.
  std::vector<bool> witness_x;
  std::uint32_t iterations = 0;  ///< strategies enumerated
};

RectifiabilityResult checkRectifiability(const EcoInstance& instance,
                                         std::uint32_t max_strategies = 256,
                                         std::int64_t conflict_budget = -1);

}  // namespace eco
