#pragma once
// FRAIG-style functional equivalence class computation (the FRAIG stage of
// the paper's flow, Fig. 1).
//
// Candidate classes come from word-parallel random simulation; candidates
// are confirmed by incremental SAT (miter per pair) and refuted
// counterexamples are fed back as new simulation patterns until the classes
// stabilize. Complemented equivalences (a == !b) are handled by canonical
// signature phase.
//
// The ECO flow runs this on a combined AIG holding both the faulty and the
// golden cones over shared PIs; signals of the two circuits falling into
// one class are exactly the paper's "shared equivalent signals".

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.h"

namespace eco {
class ThreadPool;
}  // namespace eco

namespace eco::fraig {

struct Options {
  std::uint32_t sim_words = 8;        ///< initial random pattern words (x64)
  std::uint32_t max_rounds = 64;      ///< refinement round cap
  std::int64_t conflict_budget = 10000;  ///< per-query SAT budget
  std::uint64_t seed = 0xECD5EEDULL;
  /// When non-null with >= 2 workers, each refinement round batches its
  /// candidate-pair SAT checks and runs them concurrently, one fresh
  /// sat::Solver per pair over a thread-local CNF encoding; outcomes are
  /// merged at a deterministic barrier in pair order, so the refinement is
  /// reproducible and independent of the worker count. Null (or a 1-worker
  /// pool) selects the sequential incremental-solver path.
  ThreadPool* pool = nullptr;
};

/// Counters filled by computeEquivClasses (per call, not cumulative).
struct Stats {
  std::uint64_t sat_queries = 0;     ///< individual solve() calls issued
  std::uint32_t rounds = 0;          ///< refinement rounds executed
  std::uint64_t counterexamples = 0; ///< distinguishing patterns fed back
};

class EquivClasses {
 public:
  explicit EquivClasses(std::uint32_t num_vars);

  /// Canonical literal of `l`'s proven equivalence class. Two literals are
  /// proven functionally equivalent iff their normalized literals coincide.
  Lit normalize(Lit l) const {
    const Lit r = repr_[l.var()];
    return r ^ l.complemented();
  }

  /// True iff `var` has a proven-equivalent node with a smaller index (or
  /// is equivalent to the constant).
  bool hasSmallerEquiv(std::uint32_t var) const {
    return repr_[var].var() != var;
  }

  void merge(std::uint32_t var, Lit repr);

  std::uint32_t numVars() const { return static_cast<std::uint32_t>(repr_.size()); }

 private:
  std::vector<Lit> repr_;  ///< indexed by var; representatives map to themselves
};

/// Computes proven equivalence classes among all nodes in the cones of
/// `roots` (constant node included, so stuck-at signals are detected).
/// `stats`, when non-null, receives this call's work counters.
EquivClasses computeEquivClasses(const Aig& aig, std::span<const Lit> roots,
                                 const Options& options = {},
                                 Stats* stats = nullptr);

/// Functionally reduces the cones of `roots`: every node proven equivalent
/// to an (earlier, hence typically smaller) class representative is rebuilt
/// on top of that representative. Returns the rebuilt root literals in the
/// same graph. This is the classical FRAIG reduction; the ECO engine uses
/// it to damp the cone growth of Algorithm 1's iterated substitutions.
std::vector<Lit> compressCones(Aig& aig, std::span<const Lit> roots,
                               const Options& options = {});

}  // namespace eco::fraig
