#include "fraig/fraig.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "aig/aig_ops.h"
#include "base/check.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "cnf/cnf.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sat/solver.h"
#include "sim/sim.h"

namespace eco::fraig {

EquivClasses::EquivClasses(std::uint32_t num_vars) {
  repr_.reserve(num_vars);
  for (std::uint32_t v = 0; v < num_vars; ++v) {
    repr_.push_back(Lit::fromVar(v, false));
  }
}

void EquivClasses::merge(std::uint32_t var, Lit repr) {
  ECO_CHECK(repr.var() < var);
  ECO_CHECK_MSG(repr_[repr.var()].var() == repr.var(),
                "merge target must be a class representative");
  repr_[var] = repr;
}

namespace {

// 64-bit FNV-1a over the signature words.
std::uint64_t hashWords(std::span<const std::uint64_t> words, bool invert) {
  std::uint64_t h = 1469598103934665603ULL;
  const std::uint64_t m = invert ? ~std::uint64_t{0} : 0;
  for (const std::uint64_t w : words) {
    std::uint64_t x = w ^ m;
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// Canonical phase: complement the signature if its first bit is set, so a
// node and its complement land in the same bucket.
bool canonicalPhase(std::span<const std::uint64_t> sig) { return (sig[0] & 1) != 0; }

/// One candidate equivalence check of the batched (parallel) sweep:
/// rep (positive phase) vs cand, complemented when the canonical phases of
/// their signatures disagree.
struct PairTask {
  std::uint32_t rep = 0;
  std::uint32_t cand = 0;
  bool phase_diff = false;
};

enum class PairOutcome : std::uint8_t {
  Equivalent,     ///< both directions Unsat: merge cand into rep's class
  Distinguished,  ///< a model separates them: feed back as a new pattern
  Abandoned,      ///< conflict budget exceeded: never re-query this pair
};

struct PairResult {
  PairOutcome outcome = PairOutcome::Abandoned;
  std::uint32_t queries = 0;
  std::vector<bool> cex;  ///< PI assignment when Distinguished
};

/// Pairs per chunk of the batched sweep. Each chunk owns one incremental
/// solver + CNF map, so cone encodings amortize across its pairs (the
/// tasks are sorted, so pairs of one representative land in one chunk).
/// The value is a constant — chunk composition must not depend on the
/// worker count, or determinism across thread counts would be lost.
constexpr std::size_t kPairChunk = 32;

/// Decides one chunk of candidate pairs on a chunk-local incremental
/// solver. Everything here is chunk-local and the chunk's contents depend
/// only on the (sorted) task list, so every outcome — including
/// counterexample models — is deterministic for a fixed pattern history,
/// independent of scheduling order or worker count.
void checkPairChunk(const Aig& aig, std::span<const PairTask> tasks,
                    std::span<PairResult> results, std::int64_t budget,
                    std::uint64_t cex_seed) {
  // Preprocessing stays off: each task's encodeCone call may reuse internal
  // variables encoded by earlier tasks, which variable elimination would
  // have removed from the database.
  sat::Solver solver;
  cnf::SolverSink sink(solver);
  cnf::CnfMap map;
  for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
    map[aig.piVar(i)] = sat::SLit::make(solver.newVar(), false);
  }

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const PairTask& task = tasks[t];
    PairResult& result = results[t];
    const Lit rep_lit = Lit::fromVar(task.rep, false);
    const Lit cand_lit = Lit::fromVar(task.cand, task.phase_diff);
    const sat::SLit a = cnf::encodeCone(aig, rep_lit, map, sink);
    const sat::SLit b = cnf::encodeCone(aig, cand_lit, map, sink);

    const auto storeModel = [&] {
      Rng rng(cex_seed ^ ((static_cast<std::uint64_t>(task.rep) << 32) |
                          task.cand));
      result.cex.resize(aig.numPis());
      for (std::uint32_t p = 0; p < aig.numPis(); ++p) {
        const sat::LBool v = solver.modelValue(map.at(aig.piVar(p)));
        result.cex[p] =
            v == sat::LBool::Undef ? rng.chance(1, 2) : v == sat::LBool::True;
      }
    };

    solver.setConflictBudget(budget);
    const sat::Status s1 = solver.solve({a, ~b});
    ++result.queries;
    if (s1 == sat::Status::Sat) {
      result.outcome = PairOutcome::Distinguished;
      storeModel();
      continue;
    }
    if (s1 == sat::Status::Undef) {
      result.outcome = PairOutcome::Abandoned;
      continue;
    }
    solver.setConflictBudget(budget);
    const sat::Status s2 = solver.solve({~a, b});
    ++result.queries;
    if (s2 == sat::Status::Sat) {
      result.outcome = PairOutcome::Distinguished;
      storeModel();
      continue;
    }
    result.outcome = s2 == sat::Status::Unsat ? PairOutcome::Equivalent
                                              : PairOutcome::Abandoned;
  }
}

}  // namespace

EquivClasses computeEquivClasses(const Aig& aig, std::span<const Lit> roots,
                                 const Options& options, Stats* stats) {
  obs::Span span("fraig.compute_classes");
  EquivClasses classes(aig.numNodes());
  Rng rng(options.seed);
  Stats local;

  // Restrict attention to the cones of the roots (plus the constant node).
  std::vector<std::uint32_t> cone_vars = collectCone(aig, roots);
  cone_vars.push_back(0);
  std::sort(cone_vars.begin(), cone_vars.end());

  sim::PatternSet patterns(aig.numPis(), options.sim_words);
  patterns.randomize(rng);

  const bool parallel =
      options.pool != nullptr && options.pool->numWorkers() >= 2;

  // Sequential path: one incremental solver over the whole region, cones
  // encoded on demand. The parallel path instead encodes per pair. Like the
  // chunk solver, preprocessing must stay off — later cones reference
  // earlier-encoded internals.
  sat::Solver solver;
  cnf::SolverSink sink(solver);
  cnf::CnfMap cnf_map;
  if (!parallel) {
    for (std::uint32_t i = 0; i < aig.numPis(); ++i) {
      cnf_map[aig.piVar(i)] = sat::SLit::make(solver.newVar(), false);
    }
  }
  const auto litOf = [&](Lit l) {
    return cnf::encodeCone(aig, l, cnf_map, sink);
  };

  // Pairs already proven or abandoned, keyed by (lo var, hi var).
  std::unordered_set<std::uint64_t> settled;
  const auto pairKey = [](std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };

  // Pending counterexamples collected during a verification sweep.
  sim::PatternSet cex(aig.numPis(), 1);
  std::uint32_t cex_count = 0;

  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    ++local.rounds;
    ECO_OBS_GAUGE_SET("fraig.round", round + 1);
    obs::Span round_span("fraig.round");
    round_span.arg("round", round);
    const sim::PatternSet values = sim::simulateAll(aig, patterns);

    // Bucket by canonical signature hash.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    for (const std::uint32_t var : cone_vars) {
      if (classes.hasSmallerEquiv(var)) continue;  // already merged
      const auto sig = values.of(var);
      buckets[hashWords(sig, canonicalPhase(sig))].push_back(var);
    }

    // Exact signature comparison (hash buckets can collide).
    const auto sigsEqual = [&](std::uint32_t rep, std::uint32_t cand,
                               bool* phase_diff) {
      const auto rep_sig = values.of(rep);
      const auto cand_sig = values.of(cand);
      *phase_diff = canonicalPhase(rep_sig) != canonicalPhase(cand_sig);
      const std::uint64_t m = *phase_diff ? ~std::uint64_t{0} : 0;
      for (std::uint32_t w = 0; w < patterns.wordsPerSignal(); ++w) {
        if (rep_sig[w] != (cand_sig[w] ^ m)) return false;
      }
      return true;
    };

    bool found_cex = false;
    cex_count = 0;

    if (parallel) {
      // Batched sweep: collect this round's unsettled simulation-equal
      // pairs, decide each one concurrently on an isolated solver, then
      // merge outcomes in deterministic pair order at the barrier below.
      std::vector<PairTask> tasks;
      for (auto& [hash, members] : buckets) {
        (void)hash;
        if (members.size() < 2) continue;
        std::sort(members.begin(), members.end());
        const std::uint32_t rep = members[0];
        for (std::size_t i = 1; i < members.size(); ++i) {
          const std::uint32_t cand = members[i];
          if (settled.count(pairKey(rep, cand)) != 0) continue;
          bool phase_diff = false;
          if (!sigsEqual(rep, cand, &phase_diff)) continue;
          tasks.push_back(PairTask{rep, cand, phase_diff});
        }
      }
      std::sort(tasks.begin(), tasks.end(),
                [](const PairTask& a, const PairTask& b) {
                  return a.rep != b.rep ? a.rep < b.rep : a.cand < b.cand;
                });

      ECO_OBS_OBSERVE("fraig.round_pairs", tasks.size());
      std::vector<PairResult> results(tasks.size());
      const std::size_t num_chunks =
          (tasks.size() + kPairChunk - 1) / kPairChunk;
      options.pool->parallelFor(num_chunks, [&](std::size_t c) {
        // Runs on a pool worker: the chunk span lands in that worker's
        // thread-local buffer and renders on its own trace row.
        obs::Span chunk_span("fraig.pair_chunk");
        chunk_span.arg("pairs", std::min(kPairChunk, tasks.size() - c * kPairChunk));
        const std::size_t begin = c * kPairChunk;
        const std::size_t len = std::min(kPairChunk, tasks.size() - begin);
        checkPairChunk(
            aig, std::span<const PairTask>(tasks.data() + begin, len),
            std::span<PairResult>(results.data() + begin, len),
            options.conflict_budget,
            options.seed ^ (0x9E3779B97F4A7C15ULL * (round + 1)));
      });

      // Deterministic barrier: apply merges and pattern feedback in pair
      // order. Representatives are bucket minima, so they are never merged
      // away within the round and every merge target stays a class
      // representative.
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const PairTask& t = tasks[i];
        const PairResult& r = results[i];
        local.sat_queries += r.queries;
        switch (r.outcome) {
          case PairOutcome::Equivalent: {
            const Lit rep_lit = Lit::fromVar(t.rep, false);
            classes.merge(t.cand, t.phase_diff ? !rep_lit : rep_lit);
            settled.insert(pairKey(t.rep, t.cand));
            break;
          }
          case PairOutcome::Abandoned:
            settled.insert(pairKey(t.rep, t.cand));
            break;
          case PairOutcome::Distinguished:
            found_cex = true;
            if (cex_count < 64) {
              for (std::uint32_t p = 0; p < aig.numPis(); ++p) {
                cex.setBit(p, cex_count, r.cex[p]);
              }
              ++cex_count;
              ++local.counterexamples;
            }
            break;
        }
      }
    } else {
      for (auto& [hash, members] : buckets) {
        (void)hash;
        if (members.size() < 2) continue;
        std::sort(members.begin(), members.end());
        const std::uint32_t rep = members[0];
        for (std::size_t i = 1; i < members.size(); ++i) {
          const std::uint32_t cand = members[i];
          if (settled.count(pairKey(rep, cand)) != 0) continue;
          bool phase_diff = false;
          if (!sigsEqual(rep, cand, &phase_diff)) continue;

          // SAT check: rep_lit == cand_lit (with relative phase)?
          const Lit rep_lit = Lit::fromVar(rep, false);
          const Lit cand_lit = Lit::fromVar(cand, phase_diff);
          const sat::SLit a = litOf(rep_lit);
          const sat::SLit b = litOf(cand_lit);
          solver.setConflictBudget(options.conflict_budget);
          const sat::Status s1 = solver.solve({a, ~b});
          ++local.sat_queries;
          if (s1 == sat::Status::Sat) {
            // Record the distinguishing pattern.
            for (std::uint32_t p = 0; p < aig.numPis(); ++p) {
              const sat::SLit pl = cnf_map.at(aig.piVar(p));
              const sat::LBool v = solver.modelValue(pl);
              cex.setBit(p, cex_count % 64,
                         v == sat::LBool::Undef ? rng.chance(1, 2)
                                                : v == sat::LBool::True);
            }
            ++cex_count;
            ++local.counterexamples;
            found_cex = true;
            continue;
          }
          sat::Status s2 = sat::Status::Undef;
          if (s1 == sat::Status::Unsat) {
            s2 = solver.solve({~a, b});
            ++local.sat_queries;
          }
          if (s2 == sat::Status::Sat) {
            for (std::uint32_t p = 0; p < aig.numPis(); ++p) {
              const sat::SLit pl = cnf_map.at(aig.piVar(p));
              const sat::LBool v = solver.modelValue(pl);
              cex.setBit(p, cex_count % 64,
                         v == sat::LBool::Undef ? rng.chance(1, 2)
                                                : v == sat::LBool::True);
            }
            ++cex_count;
            ++local.counterexamples;
            found_cex = true;
            continue;
          }
          if (s1 == sat::Status::Unsat && s2 == sat::Status::Unsat) {
            classes.merge(cand, phase_diff ? !rep_lit : rep_lit);
          }
          // Proven or abandoned either way: never re-query this pair.
          settled.insert(pairKey(rep, cand));
          if (cex_count >= 64) break;
        }
        if (cex_count >= 64) break;
      }
    }

    if (!found_cex) break;
    // Extend the pattern set with the counterexamples and refine.
    sim::PatternSet extended(aig.numPis(), patterns.wordsPerSignal() + 1);
    for (std::uint32_t p = 0; p < aig.numPis(); ++p) {
      auto dst = extended.of(p);
      const auto src = patterns.of(p);
      for (std::uint32_t w = 0; w < patterns.wordsPerSignal(); ++w) dst[w] = src[w];
      dst[patterns.wordsPerSignal()] = cex.of(p)[0];
    }
    patterns = std::move(extended);
  }
  ECO_OBS_COUNT("fraig.sweeps", 1);
  ECO_OBS_COUNT("fraig.rounds", local.rounds);
  ECO_OBS_COUNT("fraig.sat_queries", local.sat_queries);
  ECO_OBS_COUNT("fraig.counterexamples", local.counterexamples);
  span.arg("sat_queries", local.sat_queries);
  if (stats != nullptr) *stats = local;
  return classes;
}

std::vector<Lit> compressCones(Aig& aig, std::span<const Lit> roots,
                               const Options& options) {
  obs::Span span("fraig.compress");
  ECO_OBS_COUNT("fraig.compress_calls", 1);
  const EquivClasses classes = computeEquivClasses(aig, roots, options);
  VarMap map;
  map[0] = kFalse;
  // collectCone yields fanins before fanouts, and representatives have
  // smaller indices than their members, so one forward pass suffices.
  for (const std::uint32_t var : collectCone(aig, roots)) {
    const Lit nl = classes.normalize(Lit::fromVar(var, false));
    if (nl.var() != var) {
      const auto it = map.find(nl.var());
      if (it != map.end()) {
        map[var] = it->second ^ nl.complemented();
        continue;
      }
      // Representative outside the traversed cone: fall through and rebuild
      // this node structurally.
    }
    if (aig.isPi(var)) {
      map[var] = Lit::fromVar(var, false);
      continue;
    }
    const Lit f0 = aig.fanin0(var);
    const Lit f1 = aig.fanin1(var);
    const Lit m0 = map.at(f0.var()) ^ f0.complemented();
    const Lit m1 = map.at(f1.var()) ^ f1.complemented();
    map[var] = aig.addAnd(m0, m1);
  }
  std::vector<Lit> out;
  out.reserve(roots.size());
  for (const Lit r : roots) out.push_back(map.at(r.var()) ^ r.complemented());
  return out;
}

}  // namespace eco::fraig
