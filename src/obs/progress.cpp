#include "obs/progress.h"

#include <csignal>
#include <cstring>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/json.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace eco::obs {
namespace {

/// Interning maps, leaked like the metric maps (metrics.cpp): references
/// must survive static destruction because worker threads may still
/// publish while the process unwinds.
struct ProgressMaps {
  std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
  std::unordered_map<std::string, std::unique_ptr<std::atomic<const char*>>>
      labels;
};

ProgressMaps& maps() {
  static ProgressMaps* m = new ProgressMaps();
  return *m;
}

std::atomic<const char*>& labelSlot(std::string_view slot) {
  ProgressMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  auto it = m.labels.find(std::string(slot));
  if (it == m.labels.end()) {
    it = m.labels
             .emplace(std::string(slot),
                      std::make_unique<std::atomic<const char*>>(nullptr))
             .first;
  }
  return *it->second;
}

}  // namespace

Gauge& gauge(std::string_view name) {
  ProgressMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  auto it = m.gauges.find(std::string(name));
  if (it == m.gauges.end()) {
    it = m.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

std::int64_t gaugeValue(std::string_view name) {
  ProgressMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  const auto it = m.gauges.find(std::string(name));
  return it == m.gauges.end() ? 0 : it->second->value();
}

void setLabel(std::string_view slot, const char* value) {
#if ECO_OBS_ENABLED
  labelSlot(slot).store(value, std::memory_order_relaxed);
#else
  (void)slot;
  (void)value;
#endif
}

const char* labelValue(std::string_view slot) {
  ProgressMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  const auto it = m.labels.find(std::string(slot));
  return it == m.labels.end() ? nullptr
                              : it->second->load(std::memory_order_relaxed);
}

ProgressScope::ProgressScope(const char* slot, const char* value) {
#if ECO_OBS_ENABLED
  slot_ = &labelSlot(slot);
  previous_ = slot_->exchange(value, std::memory_order_relaxed);
#else
  (void)slot;
  (void)value;
#endif
}

ProgressScope::~ProgressScope() {
#if ECO_OBS_ENABLED
  slot_->store(previous_, std::memory_order_relaxed);
#endif
}

StatusSnapshot snapshotStatus() {
  StatusSnapshot snap;
  snap.uptime_seconds = static_cast<double>(monotonicNs()) * 1e-9;
  ProgressMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  snap.labels.reserve(m.labels.size());
  for (const auto& [slot, value] : m.labels) {
    const char* v = value->load(std::memory_order_relaxed);
    if (v != nullptr) snap.labels.push_back({slot, v});
  }
  std::sort(snap.labels.begin(), snap.labels.end(),
            [](const auto& a, const auto& b) { return a.slot < b.slot; });
  snap.gauges.reserve(m.gauges.size());
  for (const auto& [name, g] : m.gauges) {
    snap.gauges.push_back({name, g->value()});
  }
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

std::string statusJson() {
  const StatusSnapshot snap = snapshotStatus();
  const ResourceSnapshot res = snapshotResources();
  JsonWriter w;
  w.beginObject();
  w.key("schema").value(kStatusSchema);
  w.key("schema_version").value(static_cast<std::int64_t>(kStatusSchemaVersion));
  w.key("uptime_seconds").valueFixed(snap.uptime_seconds, 3);
  w.key("labels").beginObject();
  for (const auto& row : snap.labels) w.key(row.slot).value(row.value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& row : snap.gauges) {
    w.key(row.name).value(static_cast<std::int64_t>(row.value));
  }
  w.endObject();
  w.key("resources");
  writeResourceJson(w, res);
  w.endObject();
  return w.take();
}

bool validateStatusJson(const std::string& json, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  json::Value root;
  std::string parse_error;
  if (!json::parse(json, &root, &parse_error)) {
    return fail("status is not valid JSON: " + parse_error);
  }
  if (!root.isObject()) return fail("status root must be an object");
  const json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->string != kStatusSchema) {
    return fail("status document must carry schema '" +
                std::string(kStatusSchema) + "'");
  }
  const json::Value* version = root.find("schema_version");
  if (version == nullptr || !version->isNumber() ||
      version->number != static_cast<double>(kStatusSchemaVersion)) {
    return fail("unsupported status schema_version");
  }
  const struct {
    const char* key;
    json::Value::Kind kind;
  } required[] = {
      {"uptime_seconds", json::Value::Kind::Number},
      {"labels", json::Value::Kind::Object},
      {"gauges", json::Value::Kind::Object},
      {"resources", json::Value::Kind::Object},
  };
  for (const auto& req : required) {
    const json::Value* v = root.find(req.key);
    if (v == nullptr) {
      return fail(std::string("status missing required key '") + req.key + "'");
    }
    if (v->kind != req.kind) {
      return fail(std::string("status key '") + req.key + "' has wrong type");
    }
  }
  for (const auto& [name, value] : root.find("gauges")->object) {
    if (!value.isNumber()) {
      return fail("status gauge '" + name + "' must be a number");
    }
  }
  for (const auto& [name, value] : root.find("labels")->object) {
    if (!value.isString()) {
      return fail("status label '" + name + "' must be a string");
    }
  }
  return true;
}

Heartbeat::Heartbeat(double period_seconds)
    : period_(period_seconds), last_beat_ns_(monotonicNs()) {}

bool Heartbeat::due() {
  if (period_ <= 0) return false;
  const std::uint64_t now = monotonicNs();
  if (static_cast<double>(now - last_beat_ns_) * 1e-9 < period_) return false;
  last_beat_ns_ = now;
  return true;
}

void Heartbeat::beat() { last_beat_ns_ = monotonicNs(); }

double Heartbeat::sinceLastBeat() const {
  return static_cast<double>(monotonicNs() - last_beat_ns_) * 1e-9;
}

// --- status emitter -------------------------------------------------------

namespace {

struct Emitter {
  std::thread thread;
  std::atomic<bool> stop{false};
  bool running = false;
  std::mutex mutex;  ///< guards thread/running transitions
};

Emitter& emitter() {
  static Emitter* e = new Emitter();
  return *e;
}

std::atomic<bool> g_dump_requested{false};

void writeStatusLine(int fd) {
  std::string line = statusJson();
  line += '\n';
  // Best-effort: a closed/full status pipe must not kill the run.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

void emitterMain(int fd, double period_seconds) {
  setThreadName("obs-status");
  Heartbeat hb(period_seconds);
  Emitter& e = emitter();
  while (!e.stop.load(std::memory_order_acquire)) {
    if (g_dump_requested.exchange(false, std::memory_order_acq_rel) ||
        hb.due()) {
      writeStatusLine(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Final line so stream consumers see the terminal state of the run.
  // On-request-only mode (period <= 0) has no subscriber: stay silent.
  if (period_seconds > 0) writeStatusLine(fd);
}

void sigusr1Handler(int) { requestStatusDump(); }

}  // namespace

bool startStatusEmitter(int fd, double period_seconds) {
  Emitter& e = emitter();
  std::lock_guard<std::mutex> lock(e.mutex);
  if (e.running) return false;
  e.stop.store(false, std::memory_order_release);
  e.thread = std::thread(emitterMain, fd, period_seconds);
  e.running = true;
  return true;
}

void stopStatusEmitter() {
  Emitter& e = emitter();
  std::lock_guard<std::mutex> lock(e.mutex);
  if (!e.running) return;
  e.stop.store(true, std::memory_order_release);
  e.thread.join();
  e.running = false;
}

void requestStatusDump() {
  g_dump_requested.store(true, std::memory_order_release);
}

void installStatusSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &sigusr1Handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &sa, nullptr);
}

}  // namespace eco::obs
