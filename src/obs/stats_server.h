#pragma once
// Embeddable stats endpoint: a loopback-only HTTP/1.1 listener serving
// GET /metrics (Prometheus text, prometheus.h) and GET /status (the
// one-line "ecopatch-status" JSON, progress.h). One background thread,
// one request per connection, Connection: close — deliberately not a web
// server, just enough for `curl`, a Prometheus scraper, or the CI
// exposition check. The stepping stone to tools/ecopatch_serve
// (ROADMAP "ECO-as-a-service").
//
// Compiled in both obs modes: in ECO_OBS_DISABLED builds the endpoints
// serve whatever the (empty) registries report, so callers need no
// ifdefs.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace eco::obs {

class StatsServer {
 public:
  StatsServer() = default;
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;
  ~StatsServer() { stop(); }

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the accept thread. False + `error` on failure or when
  /// already running.
  bool start(std::uint16_t port, std::string* error = nullptr);

  /// Stops the accept thread and closes the socket (idempotent).
  void stop();

  bool running() const { return running_; }

  /// The bound port; 0 when not running.
  std::uint16_t port() const { return port_; }

 private:
  void serve();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace eco::obs
