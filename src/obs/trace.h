#pragma once
// Hierarchical scoped spans with thread-local, lock-free event buffers,
// exported as Chrome trace_event JSON (load the file in chrome://tracing
// or https://ui.perfetto.dev).
//
// Recording model: each thread appends completed spans to its own chunked
// buffer — single-writer slots published with a release store, no locks
// or CAS on the hot path (the chunk list and the thread registry take a
// mutex only on chunk rollover / first event per thread). Events carry
// absolute steady-clock timestamps; a session is the [startTrace,
// stopTrace) time window and stopTrace() drains every thread's buffer,
// keeping the events that fall inside the window. Spans nest by scope:
// Perfetto reconstructs the hierarchy per thread from the (ts, dur)
// containment of complete ("X") events, which RAII scoping guarantees.
//
// When tracing is off (the default), a Span construction is one relaxed
// atomic load; Mode::kTimed spans additionally read the steady clock so
// callers can keep populating wall-clock stats (PatchResult) with the
// same object. With ECO_OBS_DISABLED builds, tracing is compiled out and
// only kTimed clock reads remain.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs_config.h"

namespace eco::obs {

struct TraceEvent {
  const char* name = nullptr;      ///< static-storage span name
  const char* arg_name = nullptr;  ///< optional single argument
  std::uint64_t arg_value = 0;
  std::uint64_t ts_ns = 0;   ///< start, relative to the session start
  std::uint64_t dur_ns = 0;  ///< duration
  std::uint32_t tid = 0;     ///< obs-assigned dense thread id
};

struct TraceDump {
  std::vector<TraceEvent> events;  ///< sorted by (tid, ts_ns, -dur)
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  std::uint64_t dropped_events = 0;  ///< lost to the per-thread cap
  std::uint64_t session_ns = 0;      ///< session wall-clock length
};

/// Nanoseconds on the steady clock since the process-wide obs epoch
/// (first use). The shared timebase for trace events, the flight
/// recorder, live-status uptime, and heartbeats.
std::uint64_t monotonicNs();

/// True while a session is recording. One relaxed load.
bool traceEnabled();

/// Opens a recording session. Nested/overlapping sessions are not
/// supported: a second start before stop is a no-op.
void startTrace();

/// Closes the session and drains every thread's events recorded inside
/// it. Spans still open on other threads when stop is called are lost
/// (best effort); returns an empty dump when no session was open.
TraceDump stopTrace();

/// Names the calling thread in trace exports ("main", "pool-3", ...).
/// The thread-pool workers register themselves; call this from other
/// long-lived threads that emit spans.
void setThreadName(std::string name);

/// Serializes a dump in Chrome trace_event JSON object format.
std::string chromeTraceJson(const TraceDump& dump);

/// Writes chromeTraceJson to `path`; false + `error` on I/O failure.
bool writeChromeTrace(const std::string& path, const TraceDump& dump,
                      std::string* error = nullptr);

class Span {
 public:
  enum class Mode : std::uint8_t {
    kTrace,  ///< time only when a session is recording
    kTimed,  ///< always time; seconds()/stop() report the duration
  };

  explicit Span(const char* name, Mode mode = Mode::kTrace);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }

  /// Attaches one integer argument, shown in the trace viewer.
  void arg(const char* key, std::uint64_t value) {
    arg_name_ = key;
    arg_value_ = value;
  }

  /// Seconds since construction (0 when untimed).
  double seconds() const;

  /// Ends the span now (idempotent), emits the trace event when a session
  /// is recording, and returns the measured duration in seconds.
  double stop();

 private:
  const char* name_;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t dur_ns_ = 0;
  bool timing_ = false;
  bool tracing_ = false;
  bool done_ = false;
};

}  // namespace eco::obs
