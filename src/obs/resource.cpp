#include "obs/resource.h"

#include <pthread.h>
#include <sys/resource.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>

#include "obs/json.h"

// The allocation hook replaces global operator new/delete with counting
// wrappers around malloc/free. Sanitizer builds keep the sanitizer's own
// interceptors (replacing them would break leak/race bookkeeping), and
// ECO_OBS_DISABLED builds compile the hook out entirely.
#if ECO_OBS_ENABLED && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ECO_OBS_ALLOC_HOOKS 0
#else
#define ECO_OBS_ALLOC_HOOKS 1
#endif
#else
#define ECO_OBS_ALLOC_HOOKS 1
#endif
#else
#define ECO_OBS_ALLOC_HOOKS 0
#endif

namespace {

// File-scope (not inside eco::obs) so the operator new replacements at
// the bottom of this file can reach them.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

}  // namespace

namespace eco::obs {
namespace {

double clockSeconds(clockid_t clock) {
  struct timespec ts;
  if (clock_gettime(clock, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Registered per-thread CPU clocks. Leaked singleton: registrations are
/// RAII-scoped to their threads, but a snapshot may race static teardown.
struct ThreadClockRegistry {
  struct Entry {
    std::uint64_t id = 0;
    std::string name;
    clockid_t clock{};
  };
  std::mutex mutex;
  std::vector<Entry> entries;
  std::uint64_t next_id = 1;
};

ThreadClockRegistry& threadClocks() {
  static ThreadClockRegistry* r = new ThreadClockRegistry();
  return *r;
}

}  // namespace

std::uint64_t peakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

double processCpuSeconds() { return clockSeconds(CLOCK_PROCESS_CPUTIME_ID); }

double threadCpuSeconds() { return clockSeconds(CLOCK_THREAD_CPUTIME_ID); }

std::uint64_t allocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::uint64_t allocBytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

ThreadCpuRegistration::ThreadCpuRegistration(std::string name) {
  clockid_t clock;
  if (pthread_getcpuclockid(pthread_self(), &clock) != 0) return;
  ThreadClockRegistry& reg = threadClocks();
  std::lock_guard<std::mutex> lock(reg.mutex);
  id_ = reg.next_id++;
  reg.entries.push_back({id_, std::move(name), clock});
}

ThreadCpuRegistration::~ThreadCpuRegistration() {
  if (id_ == 0) return;
  ThreadClockRegistry& reg = threadClocks();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto it = reg.entries.begin(); it != reg.entries.end(); ++it) {
    if (it->id == id_) {
      reg.entries.erase(it);
      break;
    }
  }
}

ResourceSnapshot snapshotResources() {
  ResourceSnapshot snap;
  snap.peak_rss_bytes = peakRssBytes();
  snap.cpu_seconds = processCpuSeconds();
  snap.alloc_count = allocCount();
  snap.alloc_bytes = allocBytes();
  ThreadClockRegistry& reg = threadClocks();
  std::lock_guard<std::mutex> lock(reg.mutex);
  snap.threads.reserve(reg.entries.size());
  for (const auto& entry : reg.entries) {
    struct timespec ts;
    // EINVAL when the thread exited without unregistering; skip it.
    if (clock_gettime(entry.clock, &ts) != 0) continue;
    snap.threads.push_back(
        {entry.name, static_cast<double>(ts.tv_sec) +
                         static_cast<double>(ts.tv_nsec) * 1e-9});
  }
  std::sort(snap.threads.begin(), snap.threads.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void writeResourceJson(JsonWriter& w, const ResourceSnapshot& snap) {
  w.beginObject();
  w.key("peak_rss_bytes").value(snap.peak_rss_bytes);
  w.key("cpu_seconds").valueFixed(snap.cpu_seconds, 6);
  w.key("alloc_count").value(snap.alloc_count);
  w.key("alloc_bytes").value(snap.alloc_bytes);
  w.key("threads").beginArray();
  for (const auto& row : snap.threads) {
    w.beginObject();
    w.key("name").value(row.name);
    w.key("cpu_seconds").valueFixed(row.cpu_seconds, 6);
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

ResourceUsage currentUsage() {
  ResourceUsage u;
  u.cpu_seconds = processCpuSeconds();
  u.alloc_count = allocCount();
  u.alloc_bytes = allocBytes();
  u.peak_rss_bytes = peakRssBytes();
  return u;
}

ResourceUsage usageSince(const ResourceUsage& begin) {
  ResourceUsage now = currentUsage();
  ResourceUsage delta;
  delta.cpu_seconds = now.cpu_seconds - begin.cpu_seconds;
  delta.alloc_count = now.alloc_count - begin.alloc_count;
  delta.alloc_bytes = now.alloc_bytes - begin.alloc_bytes;
  delta.peak_rss_bytes = now.peak_rss_bytes;  // monotonic high-water mark
  return delta;
}

}  // namespace eco::obs

#if ECO_OBS_ALLOC_HOOKS

namespace {

void* countedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = countedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = countedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return countedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return countedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // ECO_OBS_ALLOC_HOOKS
