#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace eco::obs {
namespace {

/// Nanoseconds on the steady clock since a process-wide epoch (first use).
std::uint64_t nowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

#if ECO_OBS_ENABLED

/// Fixed-capacity event chunk: its owning thread is the only writer and
/// publishes each slot with a release store of `count`; the drain reads
/// `count` with acquire and only touches slots below it.
struct Chunk {
  static constexpr std::uint32_t kCap = 4096;
  std::atomic<std::uint32_t> count{0};
  std::array<TraceEvent, kCap> events;
};

/// Spans a long fuzz sweep can record per thread before dropping; bounds
/// trace memory to ~96 MB/thread worst case (48 B/event x 2M).
constexpr std::uint64_t kMaxEventsPerThread = 2u << 20;

struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t id) : tid(id) {}

  const std::uint32_t tid;
  // Writer-private fields (owner thread only).
  Chunk* open = nullptr;
  std::uint64_t total = 0;
  // Shared fields, guarded by Registry::mutex.
  std::vector<std::unique_ptr<Chunk>> chunks;
  std::string name;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

/// Never destroyed: buffers must outlive detached/exiting threads and any
/// atexit-time drain.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_dropped{0};
std::uint64_t g_session_start_ns = 0;  ///< guarded by Registry::mutex

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer& localBuffer() {
  if (t_buffer == nullptr) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto buf =
        std::make_unique<ThreadBuffer>(static_cast<std::uint32_t>(reg.buffers.size()));
    t_buffer = buf.get();
    reg.buffers.push_back(std::move(buf));
  }
  return *t_buffer;
}

void emitEvent(const char* name, const char* arg_name, std::uint64_t arg_value,
               std::uint64_t ts_ns, std::uint64_t dur_ns) {
  ThreadBuffer& b = localBuffer();
  if (b.total >= kMaxEventsPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (b.open == nullptr ||
      b.open->count.load(std::memory_order_relaxed) == Chunk::kCap) {
    auto chunk = std::make_unique<Chunk>();
    Chunk* raw = chunk.get();
    std::lock_guard<std::mutex> lock(registry().mutex);
    b.chunks.push_back(std::move(chunk));
    b.open = raw;
  }
  const std::uint32_t i = b.open->count.load(std::memory_order_relaxed);
  b.open->events[i] =
      TraceEvent{name, arg_name, arg_value, ts_ns, dur_ns, b.tid};
  b.open->count.store(i + 1, std::memory_order_release);
  ++b.total;
}

#endif  // ECO_OBS_ENABLED

}  // namespace

std::uint64_t monotonicNs() { return nowNs(); }

bool traceEnabled() {
#if ECO_OBS_ENABLED
  return g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void startTrace() {
#if ECO_OBS_ENABLED
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (g_enabled.load(std::memory_order_relaxed)) return;
  g_session_start_ns = nowNs();
  g_enabled.store(true, std::memory_order_release);
#endif
}

TraceDump stopTrace() {
  TraceDump dump;
#if ECO_OBS_ENABLED
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!g_enabled.load(std::memory_order_relaxed)) return dump;
  g_enabled.store(false, std::memory_order_release);
  const std::uint64_t start = g_session_start_ns;
  dump.session_ns = nowNs() - start;
  dump.dropped_events = g_dropped.exchange(0, std::memory_order_relaxed);
  for (const auto& buf : reg.buffers) {
    if (!buf->name.empty()) {
      dump.thread_names.emplace_back(buf->tid, buf->name);
    }
    for (const auto& chunk : buf->chunks) {
      const std::uint32_t n = chunk->count.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) {
        TraceEvent ev = chunk->events[i];
        if (ev.ts_ns < start) continue;  // recorded in an earlier session
        ev.ts_ns -= start;
        dump.events.push_back(ev);
      }
    }
  }
  std::sort(dump.events.begin(), dump.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;  // enclosing span first
            });
#endif
  return dump;
}

void setThreadName(std::string name) {
#if ECO_OBS_ENABLED
  flightSetThreadName(name);
  ThreadBuffer& b = localBuffer();
  std::lock_guard<std::mutex> lock(registry().mutex);
  b.name = std::move(name);
#else
  (void)name;
#endif
}

std::string chromeTraceJson(const TraceDump& dump) {
  JsonWriter w;
  w.beginObject();
  w.key("traceEvents").beginArray();
  w.beginObject();
  w.key("ph").value("M");
  w.key("name").value("process_name");
  w.key("pid").value(std::uint64_t{1});
  w.key("tid").value(std::uint64_t{0});
  w.key("args").beginObject().key("name").value("ecopatch").endObject();
  w.endObject();
  for (const auto& [tid, name] : dump.thread_names) {
    w.beginObject();
    w.key("ph").value("M");
    w.key("name").value("thread_name");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(std::uint64_t{tid});
    w.key("args").beginObject().key("name").value(name).endObject();
    w.endObject();
  }
  for (const TraceEvent& ev : dump.events) {
    w.beginObject();
    w.key("ph").value("X");
    w.key("name").value(ev.name);
    w.key("cat").value("eco");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(std::uint64_t{ev.tid});
    w.key("ts").valueFixed(static_cast<double>(ev.ts_ns) / 1e3, 3);
    w.key("dur").valueFixed(static_cast<double>(ev.dur_ns) / 1e3, 3);
    if (ev.arg_name != nullptr) {
      w.key("args").beginObject().key(ev.arg_name).value(ev.arg_value).endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").beginObject();
  w.key("dropped_events").value(dump.dropped_events);
  w.key("session_us").valueFixed(static_cast<double>(dump.session_ns) / 1e3, 3);
  w.endObject();
  w.endObject();
  return w.take();
}

bool writeChromeTrace(const std::string& path, const TraceDump& dump,
                      std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << chromeTraceJson(dump);
  out.close();
  if (!out) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

Span::Span(const char* name, Mode mode) : name_(name) {
  tracing_ = traceEnabled();
  timing_ = tracing_ || mode == Mode::kTimed;
  if (timing_) start_ns_ = nowNs();
#if ECO_OBS_ENABLED
  flightRecordSpanBegin(name_);
#endif
}

double Span::seconds() const {
  if (done_ || !timing_) return static_cast<double>(dur_ns_) * 1e-9;
  return static_cast<double>(nowNs() - start_ns_) * 1e-9;
}

double Span::stop() {
  if (!done_) {
    done_ = true;
    if (timing_) {
      dur_ns_ = nowNs() - start_ns_;
#if ECO_OBS_ENABLED
      if (tracing_) {
        emitEvent(name_, arg_name_, arg_value_, start_ns_, dur_ns_);
      }
#endif
    }
#if ECO_OBS_ENABLED
    flightRecordSpanEnd(name_, dur_ns_);
#endif
  }
  return static_cast<double>(dur_ns_) * 1e-9;
}

}  // namespace eco::obs
