#pragma once
// Compile-time switch for the observability layer. The CMake option
// ECO_OBS_DISABLED defines the macro of the same name globally, turning
// every metric update and trace emission into a no-op (timed spans keep
// timing — the engine's PatchResult stage fields predate this layer and
// must stay populated). See EXPERIMENTS.md E12 for the overhead
// methodology built on this switch.

#ifdef ECO_OBS_DISABLED
#define ECO_OBS_ENABLED 0
#else
#define ECO_OBS_ENABLED 1
#endif
