#include "obs/metrics.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/json.h"

namespace eco::obs {
namespace {

/// Name-keyed interning maps. Deliberately leaked via a never-destroyed
/// singleton so metric references stay valid during static destruction
/// (worker threads and atexit handlers may still be counting).
struct MetricMaps {
  std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricMaps& maps() {
  static MetricMaps* m = new MetricMaps();
  return *m;
}

}  // namespace

Counter& counter(std::string_view name) {
  MetricMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  auto it = m.counters.find(std::string(name));
  if (it == m.counters.end()) {
    it = m.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name) {
  MetricMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  auto it = m.histograms.find(std::string(name));
  if (it == m.histograms.end()) {
    it = m.histograms.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::uint64_t counterValue(std::string_view name) {
  MetricMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  const auto it = m.counters.find(std::string(name));
  return it == m.counters.end() ? 0 : it->second->value();
}

MetricsSnapshot snapshotMetrics() {
  MetricsSnapshot snap;
  MetricMaps& m = maps();
  std::lock_guard<std::mutex> lock(m.mutex);
  snap.counters.reserve(m.counters.size());
  for (const auto& [name, c] : m.counters) {
    snap.counters.push_back({name, c->value()});
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  snap.histograms.reserve(m.histograms.size());
  for (const auto& [name, h] : m.histograms) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.min = row.count > 0 ? h->min() : 0;
    row.max = h->max();
    for (std::uint32_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucketCount(i);
      if (n != 0) row.buckets.emplace_back(Histogram::bucketLowerBound(i), n);
    }
    snap.histograms.push_back(std::move(row));
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void writeMetricsJson(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& row : snapshot.counters) {
    w.key(row.name).value(row.value);
  }
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& row : snapshot.histograms) {
    w.key(row.name).beginObject();
    w.key("count").value(row.count);
    w.key("sum").value(row.sum);
    w.key("min").value(row.min);
    w.key("max").value(row.max);
    w.key("buckets").beginArray();
    for (const auto& [lower, n] : row.buckets) {
      w.beginArray().value(lower).value(n).endArray();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

}  // namespace eco::obs
