#pragma once
// Global metrics registry: named monotonic counters and power-of-two
// histograms with relaxed-atomic updates.
//
// Hot-path contract: an instrumentation site interns its metric once (the
// ECO_OBS_COUNT / ECO_OBS_OBSERVE macros hide a function-local static
// reference), after which every update is a handful of relaxed atomic
// adds — safe from any thread, no locks, no allocation. Building with
// -DECO_OBS_DISABLED=ON compiles every update site out entirely (the
// macro arguments are not even evaluated), which is the baseline of the
// EXPERIMENTS.md E12 overhead measurement.
//
// Metric names are dot-separated, lower-case, and stable: they are part
// of the machine-readable run-report schema (see DESIGN.md
// "Observability" for the full taxonomy).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs_config.h"

namespace eco::obs {

class JsonWriter;

class Counter {
 public:
  void add(std::uint64_t n = 1) {
#if ECO_OBS_ENABLED
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Histogram over non-negative integer samples (durations in microseconds,
/// sizes in nodes, conflicts per query, ...). Bucket i counts samples in
/// [2^(i-1), 2^i); bucket 0 counts exact zeros. Updates are relaxed
/// atomics; a snapshot taken during concurrent updates is internally
/// consistent per field (count/sum/min/max may trail each other by a few
/// in-flight samples, which reporting tolerates).
class Histogram {
 public:
  static constexpr std::uint32_t kBuckets = 64;

  void observe(std::uint64_t value) {
#if ECO_OBS_ENABLED
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    updateMin(value);
    updateMax(value);
#else
    (void)value;
#endif
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Meaningful only when count() > 0.
  std::uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucketCount(std::uint32_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  static std::uint32_t bucketOf(std::uint64_t value) {
    if (value == 0) return 0;
    const auto width = static_cast<std::uint32_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }
  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucketLowerBound(std::uint32_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

 private:
  void updateMin(std::uint64_t value) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  void updateMax(std::uint64_t value) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Interns `name` (first call registers, later calls return the same
/// object). References stay valid for the process lifetime.
Counter& counter(std::string_view name);
Histogram& histogram(std::string_view name);

/// Current value of a registered counter; 0 when no site registered it.
std::uint64_t counterValue(std::string_view name);

struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /// (inclusive lower bound, count) for each non-empty bucket, ascending.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  std::vector<CounterRow> counters;      ///< sorted by name
  std::vector<HistogramRow> histograms;  ///< sorted by name
};

/// Snapshot of every registered metric, sorted by name.
MetricsSnapshot snapshotMetrics();

/// Flight-recorder hook (defined in flight_recorder.cpp): the update
/// macros below mirror every metric delta into the calling thread's
/// postmortem ring. Declared here so metrics.h stays free of the
/// flight-recorder include.
void flightRecordCount(const char* name, std::uint64_t n);

/// Writes the snapshot as {"counters": {...}, "histograms": {...}}.
void writeMetricsJson(JsonWriter& w, const MetricsSnapshot& snapshot);

// Interned-once update macros; the do/while swallows the trailing
// semicolon and the disabled form does not evaluate its arguments. Each
// update is also mirrored into the flight recorder's per-thread ring
// (name must therefore be a static-storage string, which the interning
// contract already required in practice).
#if ECO_OBS_ENABLED
#define ECO_OBS_COUNT(name, n)                                        \
  do {                                                                \
    static ::eco::obs::Counter& eco_obs_counter_ =                    \
        ::eco::obs::counter(name);                                    \
    const std::uint64_t eco_obs_n_ = (n);                             \
    eco_obs_counter_.add(eco_obs_n_);                                 \
    ::eco::obs::flightRecordCount(name, eco_obs_n_);                  \
  } while (0)
#define ECO_OBS_OBSERVE(name, v)                                      \
  do {                                                                \
    static ::eco::obs::Histogram& eco_obs_histogram_ =                \
        ::eco::obs::histogram(name);                                  \
    const std::uint64_t eco_obs_v_ = (v);                             \
    eco_obs_histogram_.observe(eco_obs_v_);                           \
    ::eco::obs::flightRecordCount(name, eco_obs_v_);                  \
  } while (0)
#else
#define ECO_OBS_COUNT(name, n) \
  do {                         \
    (void)sizeof(n);           \
  } while (0)
#define ECO_OBS_OBSERVE(name, v) \
  do {                           \
    (void)sizeof(v);             \
  } while (0)
#endif

}  // namespace eco::obs
