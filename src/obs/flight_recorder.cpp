#include "obs/flight_recorder.h"

#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <memory>
#include <mutex>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace eco::obs {
namespace {

#if ECO_OBS_ENABLED

/// Per-thread ring. The owner is the only writer: it fills the slot at
/// head % kCap with relaxed stores, then publishes with a release store
/// of head. Readers load head with acquire and walk the last
/// min(head, kCap) slots — only the slot currently being overwritten can
/// mix two events.
struct FlightRing {
  static constexpr std::uint32_t kCap = 256;  // power of two
  static_assert((kCap & (kCap - 1)) == 0);

  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint8_t> kind{0};
  };

  explicit FlightRing(std::uint32_t id) : tid(id) {}

  const std::uint32_t tid;
  std::atomic<std::uint64_t> head{0};  ///< events ever recorded
  std::array<Slot, kCap> slots;
  std::string name;  ///< guarded by FlightRegistry::mutex
};

struct FlightRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<FlightRing>> rings;
};

/// Never destroyed: rings must outlive exiting threads and any
/// atexit/crash-time dump.
FlightRegistry& flightRegistry() {
  static FlightRegistry* r = new FlightRegistry();
  return *r;
}

thread_local FlightRing* t_ring = nullptr;

FlightRing& localRing() {
  if (t_ring == nullptr) {
    FlightRegistry& reg = flightRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto ring = std::make_unique<FlightRing>(
        static_cast<std::uint32_t>(reg.rings.size()));
    t_ring = ring.get();
    reg.rings.push_back(std::move(ring));
  }
  return *t_ring;
}

void record(FlightEvent::Kind kind, const char* name, std::uint64_t value) {
  FlightRing& r = localRing();
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  FlightRing::Slot& s = r.slots[h & (FlightRing::kCap - 1)];
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.value.store(value, std::memory_order_relaxed);
  s.ts_ns.store(monotonicNs(), std::memory_order_relaxed);
  r.head.store(h + 1, std::memory_order_release);
}

#endif  // ECO_OBS_ENABLED

const char* kindName(FlightEvent::Kind kind) {
  switch (kind) {
    case FlightEvent::Kind::kSpanBegin:
      return "span_begin";
    case FlightEvent::Kind::kSpanEnd:
      return "span_end";
    case FlightEvent::Kind::kCount:
      return "count";
    case FlightEvent::Kind::kNone:
      break;
  }
  return "none";
}

}  // namespace

void flightRecordSpanBegin(const char* name) {
#if ECO_OBS_ENABLED
  record(FlightEvent::Kind::kSpanBegin, name, 0);
#else
  (void)name;
#endif
}

void flightRecordSpanEnd(const char* name, std::uint64_t dur_ns) {
#if ECO_OBS_ENABLED
  record(FlightEvent::Kind::kSpanEnd, name, dur_ns);
#else
  (void)name;
  (void)dur_ns;
#endif
}

void flightRecordCount(const char* name, std::uint64_t n) {
#if ECO_OBS_ENABLED
  record(FlightEvent::Kind::kCount, name, n);
#else
  (void)name;
  (void)n;
#endif
}

void flightSetThreadName(const std::string& name) {
#if ECO_OBS_ENABLED
  FlightRing& r = localRing();
  std::lock_guard<std::mutex> lock(flightRegistry().mutex);
  r.name = name;
#else
  (void)name;
#endif
}

FlightDump snapshotFlight() {
  FlightDump dump;
#if ECO_OBS_ENABLED
  FlightRegistry& reg = flightRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  dump.threads.reserve(reg.rings.size());
  for (const auto& ring : reg.rings) {
    FlightDump::ThreadRow row;
    row.tid = ring->tid;
    row.name = ring->name;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    row.recorded = head;
    const std::uint64_t n = head < FlightRing::kCap ? head : FlightRing::kCap;
    row.events.reserve(n);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const FlightRing::Slot& s = ring->slots[i & (FlightRing::kCap - 1)];
      FlightEvent ev;
      ev.kind = static_cast<FlightEvent::Kind>(
          s.kind.load(std::memory_order_relaxed));
      ev.name = s.name.load(std::memory_order_relaxed);
      ev.value = s.value.load(std::memory_order_relaxed);
      ev.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      if (ev.name != nullptr && ev.kind != FlightEvent::Kind::kNone) {
        row.events.push_back(ev);
      }
    }
    dump.threads.push_back(std::move(row));
  }
#endif
  return dump;
}

std::string postmortemJson(const char* reason, const char* detail) {
  const StatusSnapshot status = snapshotStatus();
  const FlightDump flight = snapshotFlight();
  JsonWriter w;
  w.beginObject();
  w.key("schema").value(kPostmortemSchema);
  w.key("schema_version")
      .value(static_cast<std::int64_t>(kPostmortemSchemaVersion));
  w.key("reason").value(reason != nullptr ? reason : "");
  w.key("detail").value(detail != nullptr ? detail : "");
  w.key("uptime_seconds").valueFixed(status.uptime_seconds, 3);
  w.key("labels").beginObject();
  for (const auto& row : status.labels) w.key(row.slot).value(row.value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& row : status.gauges) {
    w.key(row.name).value(static_cast<std::int64_t>(row.value));
  }
  w.endObject();
  w.key("resources");
  writeResourceJson(w, snapshotResources());
  w.key("counters").beginObject();
  for (const auto& row : snapshotMetrics().counters) {
    w.key(row.name).value(row.value);
  }
  w.endObject();
  w.key("threads").beginArray();
  for (const auto& thread : flight.threads) {
    w.beginObject();
    w.key("tid").value(std::uint64_t{thread.tid});
    w.key("name").value(thread.name);
    w.key("recorded").value(thread.recorded);
    w.key("events").beginArray();
    for (const FlightEvent& ev : thread.events) {
      w.beginObject();
      w.key("kind").value(kindName(ev.kind));
      w.key("name").value(ev.name);
      w.key("value").value(ev.value);
      w.key("ts_ns").value(ev.ts_ns);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.take();
}

bool validatePostmortemJson(const std::string& json, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  json::Value root;
  std::string parse_error;
  if (!json::parse(json, &root, &parse_error)) {
    return fail("postmortem is not valid JSON: " + parse_error);
  }
  if (!root.isObject()) return fail("postmortem root must be an object");
  const json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->string != kPostmortemSchema) {
    return fail("postmortem document must carry schema '" +
                std::string(kPostmortemSchema) + "'");
  }
  const json::Value* version = root.find("schema_version");
  if (version == nullptr || !version->isNumber() ||
      version->number != static_cast<double>(kPostmortemSchemaVersion)) {
    return fail("unsupported postmortem schema_version");
  }
  const struct {
    const char* key;
    json::Value::Kind kind;
  } required[] = {
      {"reason", json::Value::Kind::String},
      {"detail", json::Value::Kind::String},
      {"uptime_seconds", json::Value::Kind::Number},
      {"labels", json::Value::Kind::Object},
      {"gauges", json::Value::Kind::Object},
      {"resources", json::Value::Kind::Object},
      {"counters", json::Value::Kind::Object},
      {"threads", json::Value::Kind::Array},
  };
  for (const auto& req : required) {
    const json::Value* v = root.find(req.key);
    if (v == nullptr) {
      return fail(std::string("postmortem missing required key '") + req.key +
                  "'");
    }
    if (v->kind != req.kind) {
      return fail(std::string("postmortem key '") + req.key +
                  "' has wrong type");
    }
  }
  for (const json::Value& thread : root.find("threads")->array) {
    if (!thread.isObject()) return fail("postmortem thread must be an object");
    const json::Value* events = thread.find("events");
    if (thread.find("tid") == nullptr || !thread.find("tid")->isNumber() ||
        thread.find("name") == nullptr || !thread.find("name")->isString() ||
        thread.find("recorded") == nullptr ||
        !thread.find("recorded")->isNumber() || events == nullptr ||
        !events->isArray()) {
      return fail("postmortem thread missing tid/name/recorded/events");
    }
    for (const json::Value& ev : events->array) {
      if (!ev.isObject() || ev.find("kind") == nullptr ||
          !ev.find("kind")->isString() || ev.find("name") == nullptr ||
          !ev.find("name")->isString() || ev.find("ts_ns") == nullptr ||
          !ev.find("ts_ns")->isNumber() || ev.find("value") == nullptr ||
          !ev.find("value")->isNumber()) {
        return fail("postmortem event missing kind/name/ts_ns/value");
      }
    }
  }
  return true;
}

// --- postmortem dump ------------------------------------------------------

namespace {

std::mutex g_path_mutex;
char g_path[4096] = {0};  ///< guarded by g_path_mutex for writes
std::atomic<bool> g_dumped{false};

}  // namespace

void setPostmortemPath(const char* path) {
  std::lock_guard<std::mutex> lock(g_path_mutex);
  if (path == nullptr) path = "";
  std::strncpy(g_path, path, sizeof(g_path) - 1);
  g_path[sizeof(g_path) - 1] = '\0';
  g_dumped.store(false, std::memory_order_release);
}

std::string postmortemPath() {
  std::lock_guard<std::mutex> lock(g_path_mutex);
  return g_path;
}

bool dumpPostmortem(const char* reason, const char* detail) {
  char path[sizeof(g_path)];
  {
    std::lock_guard<std::mutex> lock(g_path_mutex);
    std::memcpy(path, g_path, sizeof(path));
  }
  if (path[0] == '\0') return false;
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return false;
  const std::string doc = postmortemJson(reason, detail);
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < doc.size()) {
    const ssize_t n = ::write(fd, doc.data() + off, doc.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return off == doc.size();
}

// --- crash handlers -------------------------------------------------------

namespace {

struct CrashSignal {
  int sig;
  const char* reason;
};

constexpr CrashSignal kCrashSignals[] = {
    {SIGSEGV, "signal:SIGSEGV"}, {SIGBUS, "signal:SIGBUS"},
    {SIGABRT, "signal:SIGABRT"}, {SIGFPE, "signal:SIGFPE"},
    {SIGILL, "signal:SIGILL"},
};

std::atomic<bool> g_in_crash{false};

void crashHandler(int sig) {
  if (!g_in_crash.exchange(true, std::memory_order_acq_rel)) {
    const char* reason = "signal:unknown";
    for (const CrashSignal& cs : kCrashSignals) {
      if (cs.sig == sig) reason = cs.reason;
    }
    dumpPostmortem(reason, "fatal signal");
  }
  // SA_RESETHAND restored the default disposition; re-raising delivers the
  // signal on handler return so the exit status reflects the crash.
  ::raise(sig);
}

}  // namespace

void installCrashHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &crashHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const CrashSignal& cs : kCrashSignals) {
    sigaction(cs.sig, &sa, nullptr);
  }
}

}  // namespace eco::obs
