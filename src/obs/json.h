#pragma once
// Minimal JSON emitter and parser for the observability layer.
//
// JsonWriter streams a JSON document into a string with correct escaping
// and comma placement; it is the single serializer behind Chrome trace
// export, the metrics snapshot, the versioned run report, and the
// BENCH_*.json bench outputs. The parser builds a small DOM used by the
// run-report validator and the trace/report tests — it accepts exactly
// the JSON this repo emits (no comments, no trailing commas) plus any
// other RFC 8259 document.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eco::obs {

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object key; must be followed by a value or container begin.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }
  JsonWriter& nullValue();
  /// Fixed-point double (e.g. trace timestamps in microseconds).
  JsonWriter& valueFixed(double v, int decimals);
  /// Splices a pre-serialized JSON value verbatim (caller guarantees it is
  /// a complete, valid JSON document — e.g. another JsonWriter's output).
  JsonWriter& rawValue(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void separate();  ///< comma between siblings, nothing after a key

  std::string out_;
  std::vector<bool> has_sibling_;  ///< per open container
  bool after_key_ = false;
};

/// Appends `v` to `out` with JSON string escaping (no surrounding quotes).
void appendJsonEscaped(std::string& out, std::string_view v);

namespace json {

struct Value {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  bool isNull() const { return kind == Kind::Null; }
  bool isBool() const { return kind == Kind::Bool; }
  bool isNumber() const { return kind == Kind::Number; }
  bool isString() const { return kind == Kind::String; }
  bool isArray() const { return kind == Kind::Array; }
  bool isObject() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parses a complete JSON document. On failure returns false and, when
/// `error` is non-null, stores a message with the byte offset.
bool parse(std::string_view text, Value* out, std::string* error = nullptr);

}  // namespace json
}  // namespace eco::obs
