#pragma once
// Live run status: process-global gauges and label slots that long-running
// stages publish into, snapshotted on demand as the versioned
// "ecopatch-status" JSON document (DESIGN.md "Observability").
//
// The metrics registry (metrics.h) answers "how much work has happened";
// this layer answers "what is the process doing right now". Publishers are
// the engine stages (ProgressScope labels), the FRAIG round loop and the
// SAT search loop (gauges), and the fuzz sweep. Consumers are the CLI
// --status-fd stream, the SIGUSR1 dump, the StatsServer /status endpoint,
// and the flight-recorder postmortem (the "in-flight stage" it names is
// the engine.stage label at dump time).
//
// Update contract mirrors metrics.h: interned once per site, then relaxed
// atomic stores — safe from any thread, no locks, no allocation. With
// several engines in one process the slots are last-writer-wins, which is
// the intended "what is happening now" semantics. -DECO_OBS_DISABLED=ON
// compiles every update site out; snapshots are then empty (still
// schema-valid).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs_config.h"

namespace eco::obs {

/// Instantaneous signed value (current FRAIG round, conflicts into the
/// running SAT query, instances into a fuzz sweep, ...).
class Gauge {
 public:
  void set(std::int64_t v) {
#if ECO_OBS_ENABLED
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t d) {
#if ECO_OBS_ENABLED
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Interns `name` (same contract as obs::counter): first call registers,
/// references stay valid for the process lifetime.
Gauge& gauge(std::string_view name);

/// Current value of a registered gauge; 0 when no site registered it.
std::int64_t gaugeValue(std::string_view name);

/// Label slots: named textual states ("engine.stage" -> "fraig"). Values
/// MUST be static-storage strings (string literals): the slot stores the
/// pointer, so publishing is one relaxed atomic store. nullptr clears.
void setLabel(std::string_view slot, const char* value);
/// Current value of a label slot; nullptr when unset or never registered.
const char* labelValue(std::string_view slot);

/// RAII stage publisher: sets `slot` to `value`, restores the previous
/// value on destruction (so nested scopes unwind correctly, including
/// through exceptions — a postmortem dumped during unwinding still sees
/// the enclosing stage).
class ProgressScope {
 public:
  ProgressScope(const char* slot, const char* value);
  ProgressScope(const ProgressScope&) = delete;
  ProgressScope& operator=(const ProgressScope&) = delete;
  ~ProgressScope();

 private:
#if ECO_OBS_ENABLED
  std::atomic<const char*>* slot_ = nullptr;
  const char* previous_ = nullptr;
#endif
};

struct StatusSnapshot {
  struct LabelRow {
    std::string slot;
    std::string value;  ///< "" when the slot is currently cleared
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value = 0;
  };
  std::vector<LabelRow> labels;  ///< sorted by slot; cleared slots omitted
  std::vector<GaugeRow> gauges;  ///< sorted by name
  double uptime_seconds = 0;     ///< since the obs clock epoch (first use)
};

/// Snapshot of every registered label and gauge.
StatusSnapshot snapshotStatus();

inline constexpr const char* kStatusSchema = "ecopatch-status";
inline constexpr int kStatusSchemaVersion = 1;

/// One-line JSON document (no embedded newlines): schema, uptime, labels,
/// gauges, and a resource summary (RSS / CPU). Safe to stream line-wise.
std::string statusJson();

/// Structural validation of a status document (schema name/version plus
/// required keys/types), mirroring eco::validateJsonReport.
bool validateStatusJson(const std::string& json, std::string* error = nullptr);

/// Generalized heartbeat: "emit a liveness line when `period` seconds pass
/// silently" (extracted from the fuzz sweep's progress loop so any long
/// runner can reuse it). due() is edge-triggered: it returns true at most
/// once per elapsed period and re-arms itself; beat() re-arms without
/// firing (call it when regular progress output made a heartbeat
/// redundant). A non-positive period never fires.
class Heartbeat {
 public:
  explicit Heartbeat(double period_seconds);
  bool due();
  void beat();
  double sinceLastBeat() const;

 private:
  double period_;
  std::uint64_t last_beat_ns_;
};

// --- status emitter -------------------------------------------------------
//
// A small background thread that writes statusJson() lines to a file
// descriptor: every `period_seconds` when positive, and additionally
// whenever requestStatusDump() was called (the SIGUSR1 handler installed
// by installStatusSignalHandler() does exactly that — a handler can only
// set a flag, the emitter thread does the serialization). Used by
// `ecopatch_cli --status-fd`.

/// Starts the emitter (no-op if already running). period_seconds <= 0
/// means on-request only. Returns false when the thread is already up.
bool startStatusEmitter(int fd, double period_seconds);

/// Stops and joins the emitter thread (no-op when not running).
void stopStatusEmitter();

/// Asks the emitter to write one status line as soon as possible.
/// Async-signal-safe (one relaxed atomic store).
void requestStatusDump();

/// Installs a SIGUSR1 handler that calls requestStatusDump().
void installStatusSignalHandler();

// Interned-once gauge update macros (same shape as ECO_OBS_COUNT; the
// disabled form does not evaluate its arguments).
#if ECO_OBS_ENABLED
#define ECO_OBS_GAUGE_SET(name, v)                                    \
  do {                                                                \
    static ::eco::obs::Gauge& eco_obs_gauge_ =                        \
        ::eco::obs::gauge(name);                                      \
    eco_obs_gauge_.set(v);                                            \
  } while (0)
#define ECO_OBS_GAUGE_ADD(name, d)                                    \
  do {                                                                \
    static ::eco::obs::Gauge& eco_obs_gauge_ =                        \
        ::eco::obs::gauge(name);                                      \
    eco_obs_gauge_.add(d);                                            \
  } while (0)
#else
#define ECO_OBS_GAUGE_SET(name, v) \
  do {                             \
    (void)sizeof(v);               \
  } while (0)
#define ECO_OBS_GAUGE_ADD(name, d) \
  do {                             \
    (void)sizeof(d);               \
  } while (0)
#endif

}  // namespace eco::obs
