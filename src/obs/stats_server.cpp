#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "obs/progress.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace eco::obs {
namespace {

void sendAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

void sendResponse(int fd, const char* status, const char* content_type,
                  const std::string& body) {
  std::string head = "HTTP/1.1 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  sendAll(fd, head);
  sendAll(fd, body);
}

/// Reads until the end of the request head (or 4 KB / 2 s give up) and
/// returns the request target of a GET, "" otherwise.
std::string requestTarget(int fd) {
  std::string req;
  char buf[1024];
  while (req.size() < 4096 && req.find("\r\n\r\n") == std::string::npos) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
    if (req.find("\r\n") != std::string::npos) break;  // request line is in
  }
  if (req.rfind("GET ", 0) != 0) return "";
  const std::size_t end = req.find(' ', 4);
  if (end == std::string::npos) return "";
  return req.substr(4, end - 4);
}

}  // namespace

bool StatsServer::start(std::uint16_t port, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (running_) return fail("stats server already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return fail("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return fail("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    ::close(fd);
    return fail("getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread(&StatsServer::serve, this);
  running_ = true;
  return true;
}

void StatsServer::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
  running_ = false;
}

void StatsServer::serve() {
  setThreadName("obs-stats");
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const std::string target = requestTarget(client);
    if (target == "/metrics") {
      sendResponse(client, "200 OK", "text/plain; version=0.0.4",
                   prometheusText());
    } else if (target == "/status") {
      sendResponse(client, "200 OK", "application/json", statusJson() + "\n");
    } else if (target.empty()) {
      sendResponse(client, "400 Bad Request", "text/plain",
                   "only GET is supported\n");
    } else {
      sendResponse(client, "404 Not Found", "text/plain",
                   "try /metrics or /status\n");
    }
    ::close(client);
  }
}

}  // namespace eco::obs
