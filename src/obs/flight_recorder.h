#pragma once
// Always-on flight recorder: per-thread bounded rings of the most recent
// span begin/end and counter-delta events, dumped as the versioned
// "ecopatch-postmortem" JSON document when the process dies mid-run
// (fatal signal, eco::CheckError, engine budget exhaustion) or on demand.
// The Chrome trace (trace.h) answers "how did the whole run spend its
// time" when a session was recording; the flight recorder answers "what
// were the last few hundred things each thread did" with no session and
// no unbounded memory.
//
// Recording model: each thread owns a fixed-capacity ring. The owning
// thread is the only writer; every slot field is a relaxed atomic and the
// monotonically increasing head index is published with a release store,
// so a dumper on another thread reads a consistent recent window without
// locks (TSan-clean). The single slot being overwritten while a dump
// reads it can mix fields from two events; dumps tolerate that one-slot
// fuzziness. Recording an event is a few relaxed stores plus one clock
// read.
//
// Signal-path caveat: dumpPostmortem() serializes with ordinary code
// (allocation, the registry mutexes), which is async-signal-unsafe in
// the strict sense. The crash handler accepts that as best effort: the
// process is already dying, a re-entrancy guard stops handler recursion,
// and the handler re-raises with default disposition afterwards so the
// exit status still reflects the original crash.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs_config.h"

namespace eco::obs {

struct FlightEvent {
  enum class Kind : std::uint8_t { kNone = 0, kSpanBegin, kSpanEnd, kCount };

  Kind kind = Kind::kNone;
  const char* name = nullptr;  ///< static-storage span/counter name
  std::uint64_t value = 0;     ///< span: duration ns (end only); count: delta
  std::uint64_t ts_ns = 0;     ///< monotonicNs() at record time
};

/// Record into the calling thread's ring. No-ops in ECO_OBS_DISABLED
/// builds. `name` must have static storage duration (string literal).
void flightRecordSpanBegin(const char* name);
void flightRecordSpanEnd(const char* name, std::uint64_t dur_ns);
void flightRecordCount(const char* name, std::uint64_t n);

/// Names the calling thread's ring in postmortem dumps. trace.h's
/// setThreadName forwards here, so pool workers are named automatically.
void flightSetThreadName(const std::string& name);

struct FlightDump {
  struct ThreadRow {
    std::uint32_t tid = 0;
    std::string name;               ///< "" when never named
    std::uint64_t recorded = 0;     ///< events ever recorded by this thread
    std::vector<FlightEvent> events;  ///< oldest first, at most ring capacity
  };
  std::vector<ThreadRow> threads;  ///< ordered by tid
};

/// Snapshot of every thread's recent events (lock-free reads of the
/// rings; the registry itself takes a mutex).
FlightDump snapshotFlight();

inline constexpr const char* kPostmortemSchema = "ecopatch-postmortem";
inline constexpr int kPostmortemSchemaVersion = 1;

/// Full postmortem document: reason/detail, the live status snapshot
/// (whose "engine.stage" label names the in-flight stage), the resource
/// summary, the counter registry, and each thread's recent events.
std::string postmortemJson(const char* reason, const char* detail);

/// Structural validation (schema name/version, required keys/types),
/// mirroring eco::validateJsonReport.
bool validatePostmortemJson(const std::string& json,
                            std::string* error = nullptr);

/// Configures where dumpPostmortem writes. nullptr or "" disables (the
/// default): dumpPostmortem then does nothing, so library code can call
/// it unconditionally at throw sites without side effects in tests.
void setPostmortemPath(const char* path);

/// Currently configured path, "" when disabled.
std::string postmortemPath();

/// Writes postmortemJson(reason, detail) to the configured path. Returns
/// true when a file was written. Safe to call from any thread; a global
/// guard makes concurrent/recursive dumps single-shot (first wins) until
/// the path is reconfigured.
bool dumpPostmortem(const char* reason, const char* detail);

/// Installs handlers for fatal signals (SIGSEGV, SIGBUS, SIGABRT, SIGFPE,
/// SIGILL) that dump a postmortem with reason "signal:<name>" and then
/// re-raise with the default disposition. No-op when no postmortem path
/// is configured at crash time.
void installCrashHandlers();

}  // namespace eco::obs
