#include "obs/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/resource.h"

namespace eco::obs {
namespace {

void appendU64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void appendI64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void appendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void appendType(std::string& out, std::string_view name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

std::string exportedName(std::string_view registry_name, const char* suffix) {
  std::string name = "ecopatch_";
  appendPrometheusName(name, registry_name);
  name += suffix;
  return name;
}

}  // namespace

void appendPrometheusLabelEscaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void appendPrometheusName(std::string& out, std::string_view name) {
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
}

std::string prometheusText() {
  std::string out;
  const MetricsSnapshot metrics = snapshotMetrics();
  const StatusSnapshot status = snapshotStatus();
  const ResourceSnapshot res = snapshotResources();

  for (const auto& row : metrics.counters) {
    const std::string name = exportedName(row.name, "_total");
    appendType(out, name, "counter");
    out += name;
    out += ' ';
    appendU64(out, row.value);
    out += '\n';
  }

  for (const auto& row : metrics.histograms) {
    const std::string name = exportedName(row.name, "");
    appendType(out, name, "histogram");
    // Registry buckets carry inclusive power-of-two lower bounds; the
    // exposition needs cumulative counts up to an inclusive upper bound:
    // lower 0 holds exact zeros (le="0"), lower L holds [L, 2L).
    std::uint64_t cumulative = 0;
    for (const auto& [lower, count] : row.buckets) {
      cumulative += count;
      out += name;
      out += "_bucket{le=\"";
      appendU64(out, lower == 0 ? 0 : lower * 2 - 1);
      out += "\"} ";
      appendU64(out, cumulative);
      out += '\n';
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    appendU64(out, row.count);
    out += '\n';
    out += name;
    out += "_sum ";
    appendU64(out, row.sum);
    out += '\n';
    out += name;
    out += "_count ";
    appendU64(out, row.count);
    out += '\n';
  }

  for (const auto& row : status.gauges) {
    const std::string name = exportedName(row.name, "");
    appendType(out, name, "gauge");
    out += name;
    out += ' ';
    appendI64(out, row.value);
    out += '\n';
  }

  if (!status.labels.empty()) {
    appendType(out, "ecopatch_status_info", "gauge");
    for (const auto& row : status.labels) {
      out += "ecopatch_status_info{slot=\"";
      appendPrometheusLabelEscaped(out, row.slot);
      out += "\",value=\"";
      appendPrometheusLabelEscaped(out, row.value);
      out += "\"} 1\n";
    }
  }

  appendType(out, "ecopatch_peak_rss_bytes", "gauge");
  out += "ecopatch_peak_rss_bytes ";
  appendU64(out, res.peak_rss_bytes);
  out += '\n';
  appendType(out, "ecopatch_cpu_seconds_total", "counter");
  out += "ecopatch_cpu_seconds_total ";
  appendDouble(out, res.cpu_seconds);
  out += '\n';
  appendType(out, "ecopatch_alloc_total", "counter");
  out += "ecopatch_alloc_total ";
  appendU64(out, res.alloc_count);
  out += '\n';
  appendType(out, "ecopatch_alloc_bytes_total", "counter");
  out += "ecopatch_alloc_bytes_total ";
  appendU64(out, res.alloc_bytes);
  out += '\n';
  appendType(out, "ecopatch_thread_cpu_seconds_total", "counter");
  for (const auto& row : res.threads) {
    out += "ecopatch_thread_cpu_seconds_total{thread=\"";
    appendPrometheusLabelEscaped(out, row.name);
    out += "\"} ";
    appendDouble(out, row.cpu_seconds);
    out += '\n';
  }
  return out;
}

}  // namespace eco::obs
