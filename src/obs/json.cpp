#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eco::obs {

void appendJsonEscaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ',';
    has_sibling_.back() = true;
  }
}

JsonWriter& JsonWriter::beginObject() {
  separate();
  out_ += '{';
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  has_sibling_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  separate();
  out_ += '[';
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  has_sibling_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  out_ += '"';
  appendJsonEscaped(out_, k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  out_ += '"';
  appendJsonEscaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the convention
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::valueFixed(double v, int decimals) {
  separate();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::nullValue() {
  separate();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::rawValue(std::string_view json) {
  separate();
  out_ += json;
  return *this;
}

namespace json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Value* out) {
    skipWs();
    if (!parseValue(out)) return false;
    skipWs();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parseValue(Value* out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{': ok = parseObject(out); break;
      case '[': ok = parseArray(out); break;
      case '"':
        out->kind = Value::Kind::String;
        ok = parseString(&out->string);
        break;
      case 't':
        out->kind = Value::Kind::Bool;
        out->boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out->kind = Value::Kind::Bool;
        out->boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out->kind = Value::Kind::Null;
        ok = literal("null");
        break;
      default: ok = parseNumber(out); break;
    }
    --depth_;
    return ok;
  }

  bool parseObject(Value* out) {
    out->kind = Value::Kind::Object;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parseString(&key)) return false;
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skipWs();
      Value v;
      if (!parseValue(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(Value* out) {
    out->kind = Value::Kind::Array;
    ++pos_;  // '['
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      Value v;
      if (!parseValue(&v)) return false;
      out->array.push_back(std::move(v));
      skipWs();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("dangling escape");
      const char e = text_[pos_ + 1];
      pos_ += 2;
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by this repo's emitter; pass them through raw).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->kind = Value::Kind::Number;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    return true;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool parse(std::string_view text, Value* out, std::string* error) {
  return Parser(text, error).run(out);
}

}  // namespace json
}  // namespace eco::obs
