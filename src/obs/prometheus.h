#pragma once
// Prometheus text exposition (format 0.0.4) of the obs registries:
// counters (`<name>_total`), histograms (cumulative `_bucket{le=...}`
// plus `_sum`/`_count`), live-status gauges, label slots (as
// `ecopatch_status_info{slot=...,value=...} 1` series), and the process
// resource summary. Metric names are the registry's dot-separated names
// with dots mapped to underscores under an `ecopatch_` prefix
// ("sat.conflicts" -> "ecopatch_sat_conflicts_total"). Served by
// obs::StatsServer at GET /metrics; valid to scrape in ECO_OBS_DISABLED
// builds too (only the resource series remain).

#include <string>
#include <string_view>

namespace eco::obs {

/// Full exposition document. Each metric is preceded by its `# TYPE`
/// line; series within a metric are ordered by name.
std::string prometheusText();

/// Appends `v` escaped for a Prometheus label value (backslash, double
/// quote, and newline escapes), without the surrounding quotes.
void appendPrometheusLabelEscaped(std::string& out, std::string_view v);

/// Appends `name` sanitized to the Prometheus metric-name alphabet
/// ([a-zA-Z0-9_:]; every other byte becomes '_').
void appendPrometheusName(std::string& out, std::string_view name);

}  // namespace eco::obs
