#pragma once
// Process and per-thread resource accounting for run reports, status
// snapshots, and postmortems: peak RSS (getrusage), CPU time
// (CLOCK_PROCESS_CPUTIME_ID / per-thread CPU clocks), and cumulative
// allocation counters (a global operator new hook in resource.cpp,
// compiled out under sanitizers and ECO_OBS_DISABLED builds — the
// counters then read 0).
//
// Per-stage attribution works by delta: the engine captures
// currentUsage() at a stage boundary and subtracts on exit
// (usageSince). Peak RSS is monotonic, so a stage records the process
// peak observed at its end rather than a delta.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs_config.h"

namespace eco::obs {

class JsonWriter;

struct ResourceSnapshot {
  std::uint64_t peak_rss_bytes = 0;  ///< process high-water mark
  double cpu_seconds = 0;            ///< process CPU (user + system)
  std::uint64_t alloc_count = 0;     ///< cumulative operator new calls
  std::uint64_t alloc_bytes = 0;     ///< cumulative bytes requested

  struct ThreadRow {
    std::string name;
    double cpu_seconds = 0;
  };
  std::vector<ThreadRow> threads;  ///< live registered threads, sorted
};

/// Snapshot of the process counters plus every registered thread clock.
ResourceSnapshot snapshotResources();

/// Writes {"peak_rss_bytes":..,"cpu_seconds":..,"alloc_count":..,
/// "alloc_bytes":..,"threads":[{"name":..,"cpu_seconds":..},..]}.
void writeResourceJson(JsonWriter& w, const ResourceSnapshot& snap);

/// Process peak resident set size in bytes (getrusage ru_maxrss).
std::uint64_t peakRssBytes();

/// CPU seconds consumed by the whole process / by the calling thread.
double processCpuSeconds();
double threadCpuSeconds();

/// Cumulative allocation counters (0 when the hook is compiled out).
std::uint64_t allocCount();
std::uint64_t allocBytes();

/// Registers the calling thread's CPU clock under `name` for the
/// lifetime of the object so snapshotResources can attribute CPU per
/// thread; the thread-pool workers register themselves. Unregisters on
/// destruction (a thread's CPU clock dies with the thread).
class ThreadCpuRegistration {
 public:
  explicit ThreadCpuRegistration(std::string name);
  ThreadCpuRegistration(const ThreadCpuRegistration&) = delete;
  ThreadCpuRegistration& operator=(const ThreadCpuRegistration&) = delete;
  ~ThreadCpuRegistration();

 private:
  std::uint64_t id_ = 0;
};

/// Point-in-time usage for stage deltas (cheap: two syscalls + two
/// relaxed loads; no thread iteration).
struct ResourceUsage {
  double cpu_seconds = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
};

ResourceUsage currentUsage();

/// Delta against an earlier currentUsage(); peak_rss_bytes carries the
/// current (monotonic) peak, not a difference.
ResourceUsage usageSince(const ResourceUsage& begin);

}  // namespace eco::obs
