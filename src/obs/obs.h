#pragma once
// Umbrella header for the observability layer: scoped tracing spans
// (trace.h), the global metrics registry (metrics.h), live run status
// and heartbeats (progress.h), the flight recorder and postmortem dumps
// (flight_recorder.h), resource accounting (resource.h), Prometheus
// exposition (prometheus.h), the embeddable stats server
// (stats_server.h), and the JSON emitter/parser they share (json.h).
// See DESIGN.md "Observability" for the span taxonomy, metric name
// registry, and report schema policy.

#include "obs/flight_recorder.h"  // IWYU pragma: export
#include "obs/json.h"             // IWYU pragma: export
#include "obs/metrics.h"          // IWYU pragma: export
#include "obs/progress.h"         // IWYU pragma: export
#include "obs/prometheus.h"       // IWYU pragma: export
#include "obs/resource.h"         // IWYU pragma: export
#include "obs/stats_server.h"     // IWYU pragma: export
#include "obs/trace.h"            // IWYU pragma: export
