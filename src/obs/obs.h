#pragma once
// Umbrella header for the observability layer: scoped tracing spans
// (trace.h), the global metrics registry (metrics.h), and the JSON
// emitter/parser they share (json.h). See DESIGN.md "Observability" for
// the span taxonomy, metric name registry, and report schema policy.

#include "obs/json.h"     // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export
