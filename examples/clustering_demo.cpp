// Clustering demo (Figure 2 of the paper).
//
// Four targets: t1 and t2 share output o1, t2 and t3 share output o2, and
// t4 only reaches o4. Clustering must merge {t1, t2, t3} into one group and
// leave {t4} alone, so rectification runs once per group instead of once
// for the whole circuit.
//
// Run:  ./build/examples/clustering_demo

#include <cstdio>

#include "eco/clustering.h"
#include "eco/engine.h"

int main() {
  using namespace eco;

  EcoInstance inst;
  inst.name = "figure2";
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    const Lit d = g.addPi("d");
    g.addPo(g.addAnd(a, b), "o1");
    g.addPo(g.mkOr(g.addAnd(a, b), c), "o2");
    g.addPo(g.mkXor(c, d), "o3");
    g.addPo(g.addAnd(c, d), "o4");
  }
  {
    Aig& f = inst.faulty;
    const Lit a = f.addPi("a");
    const Lit b = f.addPi("b");
    const Lit c = f.addPi("c");
    const Lit d = f.addPi("d");
    (void)a;
    (void)c;
    const Lit t1 = f.addPi("t1");
    const Lit t2 = f.addPi("t2");
    const Lit t3 = f.addPi("t3");
    const Lit t4 = f.addPi("t4");
    inst.num_x = 4;
    f.addPo(f.addAnd(t1, t2), "o1");          // o1 sees t1, t2
    f.addPo(f.mkOr(t2, f.addAnd(t3, b)), "o2");  // o2 sees t2, t3
    f.addPo(f.mkXor(t3, d), "o3");            // o3 sees t3
    f.addPo(t4, "o4");                        // o4 sees t4
  }
  inst.default_weight = 1.0;

  const auto clusters = clusterTargets(inst);
  std::printf("found %zu target group(s):\n", clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    std::printf("  group %zu: targets {", i);
    for (const std::uint32_t t : clusters[i].targets) {
      std::printf(" %s", inst.targetName(t).c_str());
    }
    std::printf(" }, outputs {");
    for (const std::uint32_t o : clusters[i].outputs) {
      std::printf(" %s", inst.faulty.poName(o).c_str());
    }
    std::printf(" }\n");
  }

  const PatchResult r = EcoEngine().run(inst);
  if (!r.success) {
    std::printf("rectification failed: %s\n", r.message.c_str());
    return 1;
  }
  std::printf(
      "\nrectified %u targets in %u group(s): cost=%.1f size=%u time=%.2fs\n",
      inst.numTargets(), r.num_clusters, r.cost, r.size, r.seconds);
  return 0;
}
