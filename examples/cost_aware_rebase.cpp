// Cost-aware rebasing demo (Sections 5 and 6 of the paper).
//
// The same generated instance is solved four ways:
//   1. PI bases only (no localization, no optimization)
//   2. PI bases + cost optimization          — what a [20]-style tool does
//   3. localization, no optimization         — Sec. 5 initial patch
//   4. localization + cost optimization      — the full flow
// and the patch cost/size of each is printed. On weight profiles where
// primary inputs are expensive (common in physical ECO: long routes to the
// patch region), intermediate-signal bases win decisively.
//
// Run:  ./build/examples/cost_aware_rebase

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/engine.h"

int main() {
  using namespace eco;

  benchgen::UnitSpec spec{.name = "rebase-demo",
                          .family = benchgen::Family::Alu,
                          .size_param = 6,
                          .num_targets = 2,
                          .seed = 2024,
                          .target_depth_frac = 0.5,
                          .pi_weight = 30,
                          .internal_weight = 1};
  const EcoInstance inst = benchgen::generateUnit(spec);
  std::printf("instance: %u-bit ALU, %u targets, PIs cost ~%.0f, "
              "internal signals cost ~%.0f\n\n",
              spec.size_param, inst.numTargets(), spec.pi_weight,
              spec.internal_weight);

  struct Config {
    const char* label;
    bool localization;
    bool cost_opt;
    bool pi_only;
  };
  const Config configs[] = {
      {"PI bases, no opt            ", false, false, true},
      {"PI bases + cost opt         ", false, true, true},
      {"localization, no opt        ", true, false, false},
      {"localization + cost opt     ", true, true, false},
  };

  std::printf("%-30s %10s %8s %8s\n", "configuration", "cost", "size", "time");
  for (const Config& c : configs) {
    EcoOptions opt;
    opt.use_localization = c.localization;
    opt.use_cost_opt = c.cost_opt;
    opt.pi_candidates_only = c.pi_only;
    const PatchResult r = EcoEngine(opt).run(inst);
    if (!r.success) {
      std::printf("%-30s FAILED: %s\n", c.label, r.message.c_str());
      continue;
    }
    std::printf("%-30s %10.1f %8u %7.2fs\n", c.label, r.cost, r.size,
                r.seconds);
  }
  return 0;
}
