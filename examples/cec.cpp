// cec — combinational equivalence checker over the library's netlist
// formats, built on the same miter + CDCL machinery the ECO engine uses
// for patch verification.
//
//   cec A.v B.v          (also .aag / .aig / .blif, mixed freely)
//
// Exit codes: 0 equivalent, 1 usage/parse error, 2 not equivalent.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "aig/aig_ops.h"
#include "cnf/cnf.h"
#include "io/aiger.h"
#include "io/blif.h"
#include "io/verilog.h"
#include "sat/solver.h"

namespace {

std::string readFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cec: cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

eco::Aig loadAny(const char* path) {
  const std::string text = readFile(path);
  const std::string p = path;
  const auto ends_with = [&](const char* suf) {
    const std::size_t n = std::strlen(suf);
    return p.size() >= n && p.compare(p.size() - n, n, suf) == 0;
  };
  if (ends_with(".aag") || ends_with(".aig")) return eco::io::parseAiger(text);
  if (ends_with(".blif")) return eco::io::parseBlif(text);
  return eco::io::parseVerilog(text).aig;  // default: Verilog
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eco;
  if (argc != 3) {
    std::fprintf(stderr, "usage: cec <A.(v|aag|aig|blif)> <B.(v|aag|aig|blif)>\n");
    return 1;
  }
  Aig a, b;
  try {
    a = loadAny(argv[1]);
    b = loadAny(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cec: %s\n", e.what());
    return 1;
  }
  if (a.numPis() != b.numPis() || a.numPos() != b.numPos()) {
    std::printf("NOT EQUIVALENT: interface mismatch (%u/%u inputs, %u/%u "
                "outputs)\n",
                a.numPis(), b.numPis(), a.numPos(), b.numPos());
    return 2;
  }

  // Shared-input miter.
  Aig miter;
  VarMap ma, mb;
  for (std::uint32_t i = 0; i < a.numPis(); ++i) {
    const Lit x = miter.addPi(a.piName(i));
    ma[a.piVar(i)] = x;
    mb[b.piVar(i)] = x;
  }
  std::vector<Lit> ra, rb;
  for (std::uint32_t j = 0; j < a.numPos(); ++j) ra.push_back(a.poDriver(j));
  for (std::uint32_t j = 0; j < b.numPos(); ++j) rb.push_back(b.poDriver(j));
  const std::vector<Lit> fa = copyCones(a, ra, ma, miter);
  const std::vector<Lit> fb = copyCones(b, rb, mb, miter);

  sat::Solver solver;
  // One-shot equivalence query: preprocessing on; eliminated-variable model
  // values are reconstructed before the counterexample is printed.
  solver.setPreprocessing(true);
  cnf::SolverSink sink(solver);
  cnf::CnfMap map;
  std::vector<sat::SLit> x_lits;
  for (std::uint32_t i = 0; i < miter.numPis(); ++i) {
    const sat::SLit l = sat::SLit::make(solver.newVar(), false);
    map[miter.piVar(i)] = l;
    x_lits.push_back(l);
  }
  std::vector<sat::SLit> diffs;
  for (std::uint32_t j = 0; j < a.numPos(); ++j) {
    diffs.push_back(
        cnf::encodeCone(miter, miter.mkXor(fa[j], fb[j]), map, sink));
  }
  solver.addClause(diffs);

  if (solver.solve() == sat::Status::Unsat) {
    std::printf("EQUIVALENT (%u outputs proven)\n", a.numPos());
    return 0;
  }
  std::printf("NOT EQUIVALENT; counterexample:");
  for (std::uint32_t i = 0; i < miter.numPis(); ++i) {
    const std::string& n = miter.piName(i);
    std::printf(" %s=%d", n.empty() ? ("x" + std::to_string(i)).c_str() : n.c_str(),
                solver.modelValue(x_lits[i]) == sat::LBool::True ? 1 : 0);
  }
  std::printf("\n");
  for (std::uint32_t j = 0; j < diffs.size(); ++j) {
    if (solver.modelValue(diffs[j]) == sat::LBool::True) {
      std::printf("first differing output: %u (%s)\n", j, a.poName(j).c_str());
      break;
    }
  }
  return 2;
}
