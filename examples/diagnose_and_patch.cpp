// End-to-end ECO: diagnose the rectification target, then patch it.
//
// The paper (and the contest) assume the target signals are given; real
// flows must find them first. This example injects a wrong gate into an
// ALU, runs the diagnosis module to locate candidate single-fix sites,
// certifies them with the Eq. (2) rectifiability oracle, cuts the best
// site, and synthesizes a verified cost-aware patch.
//
// Run:  ./build/examples/diagnose_and_patch

#include <cstdio>

#include "aig/aig_ops.h"
#include "benchgen/families.h"
#include "eco/diagnosis.h"
#include "eco/engine.h"
#include "eco/report.h"

int main() {
  using namespace eco;

  const Aig golden = benchgen::makeAlu(4);

  // Sabotage: turn one AND of the carry chain into an OR.
  Aig faulty;
  {
    VarMap map;
    for (std::uint32_t i = 0; i < golden.numPis(); ++i) {
      map[golden.piVar(i)] = faulty.addPi(golden.piName(i));
    }
    std::uint32_t and_seen = 0;
    std::uint32_t victim = 0;
    for (std::uint32_t v = 1; v < golden.numNodes(); ++v) {
      if (golden.isAnd(v) && ++and_seen == 7) victim = v;
    }
    for (std::uint32_t v = 1; v < golden.numNodes(); ++v) {
      if (!golden.isAnd(v)) continue;
      const Lit f0 = golden.fanin0(v);
      const Lit f1 = golden.fanin1(v);
      const Lit a = map.at(f0.var()) ^ f0.complemented();
      const Lit b = map.at(f1.var()) ^ f1.complemented();
      map[v] = (v == victim) ? faulty.mkOr(a, b) : faulty.addAnd(a, b);
    }
    for (std::uint32_t j = 0; j < golden.numPos(); ++j) {
      const Lit d = golden.poDriver(j);
      faulty.addPo(map.at(d.var()) ^ d.complemented(), golden.poName(j));
    }
    for (std::uint32_t v = 1; v < faulty.numNodes(); ++v) {
      if (faulty.isAnd(v)) {
        faulty.setSignalName(Lit::fromVar(v, false), "n" + std::to_string(v));
      }
    }
  }

  std::printf("diagnosing a sabotaged %u-gate ALU against its golden model...\n",
              faulty.numAnds());
  const DiagnosisResult diag = diagnoseSingleFix(faulty, golden);
  if (diag.equivalent) {
    std::printf("circuits already equivalent — nothing to fix\n");
    return 0;
  }
  std::printf("top candidate rectification sites:\n");
  std::size_t shown = 0;
  const DiagnosisCandidate* best = nullptr;
  for (const auto& c : diag.candidates) {
    if (shown++ >= 6) break;
    std::printf("  %-8s score %.2f %s\n", c.name.c_str(), c.score,
                c.certified ? "[certified single-fix]" : "");
    if (!best && c.certified) best = &c;
  }
  if (!best) {
    std::printf("no certified single-fix site — multi-target ECO needed\n");
    return 1;
  }

  std::printf("\ncutting %s and generating a patch...\n\n", best->name.c_str());
  EcoInstance inst = cutAsTarget(faulty, golden, best->var);
  inst.name = "diagnosed-alu";
  inst.default_weight = 1.0;
  // Primary inputs are expensive to reach from the patch region.
  for (std::uint32_t i = 0; i < inst.num_x; ++i) {
    inst.weights[inst.faulty.piName(i)] = 12.0;
  }

  const PatchResult r = EcoEngine().run(inst);
  if (!r.success) {
    std::printf("rectification failed: %s\n", r.message.c_str());
    return 1;
  }
  std::printf("%s", formatRunReport(inst, r).c_str());
  return 0;
}
