// Contest-style file flow: parse a faulty netlist (with floating targets),
// a golden netlist, and a weight file; run the engine; emit patch.v.
//
// Mirrors the ICCAD 2017 Problem A interface. With no arguments the example
// runs on embedded netlists; with three arguments it reads your files:
//
//   ./build/examples/netlist_eco_flow F.v G.v weights.txt [patch.v]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "eco/engine.h"
#include "io/verilog.h"

namespace {

const char* kFaulty = R"(
// Faulty circuit: two rectification points t_0, t_1 (floating wires).
module top ( a, b, c, d, o1, o2 );
input a, b, c, d;
output o1, o2;
wire t_0, t_1, n1, n2, n3;
and g1 ( n1, a, b );
or  g2 ( n2, t_0, c );
and g3 ( o1, n1, n2 );
xor g4 ( n3, t_1, d );
or  g5 ( o2, n3, n1 );
endmodule
)";

const char* kGolden = R"(
module top ( a, b, c, d, o1, o2 );
input a, b, c, d;
output o1, o2;
wire n1, n2, n3, n4;
and g1 ( n1, a, b );
xor g2 ( n4, a, d );
or  g3 ( n2, n4, c );
and g4 ( o1, n1, n2 );
xor g5 ( n3, n1, d );
or  g6 ( o2, n3, n1 );
endmodule
)";

const char* kWeights = R"(
a 12
b 12
c 12
d 12
n1 2
n2 3
n3 3
)";

std::string readFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eco;

  const std::string f_text = argc > 3 ? readFile(argv[1]) : kFaulty;
  const std::string g_text = argc > 3 ? readFile(argv[2]) : kGolden;
  const std::string w_text = argc > 3 ? readFile(argv[3]) : kWeights;

  io::Netlist faulty, golden;
  try {
    faulty = io::parseVerilog(f_text);
    golden = io::parseVerilog(g_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }

  EcoInstance inst;
  inst.name = faulty.module_name;
  inst.faulty = std::move(faulty.aig);
  inst.golden = std::move(golden.aig);
  inst.num_x = static_cast<std::uint32_t>(faulty.inputs.size());
  inst.weights = io::parseWeights(w_text);

  std::printf("instance %s: %u inputs, %u outputs, %u target(s): ",
              inst.name.c_str(), inst.num_x, inst.faulty.numPos(),
              inst.numTargets());
  for (const std::string& t : faulty.targets) std::printf("%s ", t.c_str());
  std::printf("\n");

  const PatchResult r = EcoEngine().run(inst);
  if (!r.success) {
    std::printf("rectification failed: %s\n", r.message.c_str());
    return 2;
  }
  std::printf("patch: cost=%.1f size=%u time=%.2fs (initial cost=%.1f size=%u)\n",
              r.cost, r.size, r.seconds, r.initial_cost, r.initial_size);

  const std::string patch_v = io::writeVerilog(r.patch, "patch");
  if (argc > 4) {
    std::ofstream out(argv[4]);
    out << patch_v;
    std::printf("patch written to %s\n", argv[4]);
  } else {
    std::printf("\n%s", patch_v.c_str());
  }
  return 0;
}
