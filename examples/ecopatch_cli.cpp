// ecopatch_cli — command-line driver for the full ECO flow.
//
//   ecopatch_cli -f F.v -g G.v -w weights.txt [-o patch.v] [options]
//
// Options:
//   --no-localization      disable the Sec. 5 cut re-expression
//   --no-cost-opt          disable the Sec. 6 base selection
//   --no-minimize          keep raw patch structure
//   --itp-first            try interpolation before the on-set fallback
//   --pi-only              restrict bases to primary inputs (baseline mode)
//   --watch N              |Watch| group size (default 5)
//   --rounds N             optimization rounds (default 2)
//   --seed N               RNG seed
//   --threads N            worker threads (0 = hardware concurrency,
//                          1 = sequential; default 0)
//   --check[=LEVEL]        run the invariant-audit layer: bare --check
//                          audits at stage boundaries; LEVEL is
//                          off|stage|paranoid (paranoid adds per-GC solver
//                          audits). Default: the ECO_CHECK environment
//                          variable. An audit failure prints the
//                          machine-readable report on stderr
//   --json FILE            write a machine-readable run report (see
//                          eco/report_json.h for the schema)
//   --trace FILE           record a Chrome trace_event JSON of the run,
//                          viewable in chrome://tracing or Perfetto
//   --status-fd N          write "ecopatch-status" JSON lines to file
//                          descriptor N every 2 seconds and on SIGUSR1
//                          (SIGUSR1 works even without --status-fd=stderr:
//                          the emitter thread owns the write)
//   --metrics-port N       serve GET /metrics (Prometheus text) and
//                          GET /status (JSON) on 127.0.0.1:N for the
//                          duration of the run; N=0 picks an ephemeral
//                          port and prints it on stderr
//   --postmortem FILE      dump a flight-recorder postmortem JSON to FILE
//                          on a crash signal, invariant-audit failure, or
//                          engine budget exhaustion
//   --time-budget S        fail the run once it exceeds S wall-clock
//                          seconds (checked at stage boundaries; 0 =
//                          unlimited)
//   --quiet                suppress the stage report
//
// Exit codes: 0 patched+verified, 1 usage/parse error, 2 unrectifiable.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "eco/engine.h"
#include "eco/report.h"
#include "eco/report_json.h"
#include "io/instance_io.h"
#include "io/verilog.h"
#include "obs/flight_recorder.h"
#include "obs/progress.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ecopatch: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: ecopatch_cli -f faulty.v -g golden.v -w weights.txt "
               "[-o patch.v] [--no-localization] [--no-cost-opt] "
               "[--no-minimize] [--itp-first] [--pi-only] [--watch N] "
               "[--rounds N] [--seed N] [--threads N] [--check[=LEVEL]] "
               "[--json FILE] [--trace FILE] [--status-fd N] "
               "[--metrics-port N] [--postmortem FILE] [--time-budget S] "
               "[--quiet]\n");
  std::exit(1);
}

bool writeTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

// atoi/atoll silently return 0 on garbage; reject non-numeric input instead.
std::uint64_t parseU64(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "ecopatch: expected a number, got '%s'\n", s);
    usage();
  }
  return v;
}

double parseSeconds(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v >= 0)) {
    std::fprintf(stderr,
                 "ecopatch: expected a non-negative number of seconds, "
                 "got '%s'\n",
                 s);
    usage();
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eco;

  std::string f_path, g_path, w_path, out_path, json_path, trace_path;
  std::string postmortem_path;
  EcoOptions opt;
  bool quiet = false;
  int status_fd = -1;
  bool serve_metrics = false;
  std::uint16_t metrics_port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "-f") {
      f_path = next();
    } else if (a == "-g") {
      g_path = next();
    } else if (a == "-w") {
      w_path = next();
    } else if (a == "-o") {
      out_path = next();
    } else if (a == "--no-localization") {
      opt.use_localization = false;
    } else if (a == "--no-cost-opt") {
      opt.use_cost_opt = false;
    } else if (a == "--no-minimize") {
      opt.minimize_patches = false;
    } else if (a == "--itp-first") {
      opt.try_interpolation_first = true;
    } else if (a == "--pi-only") {
      opt.pi_candidates_only = true;
    } else if (a == "--watch") {
      opt.watch_size = static_cast<std::uint32_t>(parseU64(next()));
    } else if (a == "--rounds") {
      opt.opt_rounds = static_cast<std::uint32_t>(parseU64(next()));
    } else if (a == "--seed") {
      opt.seed = parseU64(next());
    } else if (a == "--threads") {
      opt.num_threads = static_cast<std::uint32_t>(parseU64(next()));
    } else if (a == "--check") {
      opt.check_level = check::Level::kStage;
    } else if (a.rfind("--check=", 0) == 0) {
      const auto level = check::parseLevel(a.substr(8));
      if (!level) {
        std::fprintf(stderr, "ecopatch: bad --check level '%s'\n",
                     a.substr(8).c_str());
        usage();
      }
      opt.check_level = *level;
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--status-fd") {
      status_fd = static_cast<int>(parseU64(next()));
    } else if (a == "--metrics-port") {
      serve_metrics = true;
      metrics_port = static_cast<std::uint16_t>(parseU64(next()));
    } else if (a == "--postmortem") {
      postmortem_path = next();
    } else if (a == "--time-budget") {
      opt.time_budget_seconds = parseSeconds(next());
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "ecopatch: unknown option '%s'\n", a.c_str());
      usage();
    }
  }
  if (f_path.empty() || g_path.empty() || w_path.empty()) usage();

  EcoInstance inst;
  try {
    inst = io::loadInstance(readFile(f_path), readFile(g_path),
                            readFile(w_path), f_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecopatch: %s\n", e.what());
    return 1;
  }

  if (!postmortem_path.empty()) {
    obs::setPostmortemPath(postmortem_path.c_str());
    obs::installCrashHandlers();
  }
  // SIGUSR1 always asks for a status line; without --status-fd the emitter
  // defaults to stderr so a plain `kill -USR1` is never a silent no-op.
  obs::installStatusSignalHandler();
  obs::startStatusEmitter(status_fd >= 0 ? status_fd : 2,
                          status_fd >= 0 ? 2.0 : 0.0);
  obs::StatsServer stats_server;
  if (serve_metrics) {
    std::string server_error;
    if (!stats_server.start(metrics_port, &server_error)) {
      std::fprintf(stderr, "ecopatch: %s\n", server_error.c_str());
      return 1;
    }
    std::fprintf(stderr, "ecopatch: serving http://127.0.0.1:%u/metrics\n",
                 static_cast<unsigned>(stats_server.port()));
  }

  if (!trace_path.empty()) obs::startTrace();
  const PatchResult r = EcoEngine(opt).run(inst);
  obs::stopStatusEmitter();
  stats_server.stop();
  if (!trace_path.empty()) {
    const obs::TraceDump dump = obs::stopTrace();
    std::string trace_error;
    if (!obs::writeChromeTrace(trace_path, dump, &trace_error)) {
      std::fprintf(stderr, "ecopatch: %s\n", trace_error.c_str());
    } else if (!quiet) {
      std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                  dump.events.size());
    }
  }
  if (!json_path.empty() &&
      !writeTextFile(json_path, writeJsonReport(inst, r))) {
    std::fprintf(stderr, "ecopatch: cannot write '%s'\n", json_path.c_str());
  }
  if (!r.success) {
    std::fprintf(stderr, "ecopatch: %s\n", r.message.c_str());
    if (!r.audit_json.empty()) {
      std::fprintf(stderr, "%s\n", r.audit_json.c_str());
    }
    return 2;
  }
  if (!quiet) std::printf("%s", formatRunReport(inst, r).c_str());
  const std::string patch_text = io::writeVerilog(r.patch, "patch");
  if (out_path.empty()) {
    std::printf("%s", patch_text.c_str());
  } else {
    std::ofstream out(out_path);
    out << patch_text;
    if (!quiet) std::printf("patch written to %s\n", out_path.c_str());
  }
  return 0;
}
