// map_patch — generate a patch and realize it in standard cells.
//
// Shows the resource-aware tail of the flow: the engine's patch (an AIG)
// is mapped onto the generic cell library; the cell-level netlist, its
// area, and the NAND2-only ablation are printed. This is the metric a
// physical ECO actually pays for.
//
// Run:  ./build/examples/map_patch

#include <cstdio>

#include "benchgen/benchgen.h"
#include "eco/engine.h"
#include "techmap/mapper.h"

int main() {
  using namespace eco;

  benchgen::UnitSpec spec{.name = "map-demo",
                          .family = benchgen::Family::Alu,
                          .size_param = 5,
                          .num_targets = 2,
                          .seed = 31415,
                          .target_depth_frac = 0.4,
                          .pi_weight = 20};
  const EcoInstance inst = benchgen::generateUnit(spec);
  const PatchResult r = EcoEngine().run(inst);
  if (!r.success) {
    std::printf("rectification failed: %s\n", r.message.c_str());
    return 1;
  }
  std::printf("patch: cost=%.1f, %u AIG AND nodes, %u inputs, %u outputs\n\n",
              r.cost, r.size, r.patch.numPis(), r.patch.numPos());

  const techmap::CellLibrary generic = techmap::CellLibrary::standard();
  const techmap::MappedNetlist mapped = techmap::mapAig(r.patch, generic);
  std::printf("generic library: %u cells, area %.1f\n", mapped.cellCount(),
              mapped.area());
  const techmap::MappedNetlist nand2 =
      techmap::mapAig(r.patch, techmap::CellLibrary::nand2Only());
  std::printf("NAND2-only:      %u cells, area %.1f\n\n", nand2.cellCount(),
              nand2.area());
  std::printf("%s", techmap::writeMappedVerilog(mapped, "patch_mapped").c_str());
  return 0;
}
