// Quickstart: rectify a tiny faulty circuit end to end.
//
// The golden design computes o = (a & b) ^ c. In the faulty design the
// AND gate was found to be wrong and has been ripped out: its output is
// the floating target t0. We ask the engine for a cost-minimal patch and
// print it as structural Verilog.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "eco/engine.h"
#include "io/verilog.h"

int main() {
  using namespace eco;

  EcoInstance inst;
  inst.name = "quickstart";

  // Golden circuit: o = (a & b) ^ c.
  {
    Aig& g = inst.golden;
    const Lit a = g.addPi("a");
    const Lit b = g.addPi("b");
    const Lit c = g.addPi("c");
    g.addPo(g.mkXor(g.addAnd(a, b), c), "o");
  }

  // Faulty circuit: the inner AND was cut out; t0 is a floating pseudo-PI.
  {
    Aig& f = inst.faulty;
    const Lit a = f.addPi("a");
    const Lit b = f.addPi("b");
    const Lit c = f.addPi("c");
    const Lit t0 = f.addPi("t0");
    inst.num_x = 3;
    // A spare gate near the fault — cheap to reuse as a patch base.
    const Lit spare = f.addAnd(a, b);
    f.setSignalName(spare, "spare_and");
    f.addPo(f.mkXor(t0, c), "o");
  }

  // Resource costs: primary inputs are expensive to route to, the spare
  // gate's output is cheap.
  inst.weights = {{"a", 10}, {"b", 10}, {"c", 10}, {"spare_and", 1}};

  EcoEngine engine;  // default options: localization + cost optimization
  const PatchResult r = engine.run(inst);
  if (!r.success) {
    std::printf("rectification failed: %s\n", r.message.c_str());
    return 1;
  }

  std::printf("patch found: cost=%.1f size=%u gates, %zu base signal(s)\n",
              r.cost, r.size, r.base.size());
  for (const BaseRef& b : r.base) {
    std::printf("  base: %-12s (weight %.1f)\n", b.name.c_str(), b.weight);
  }
  std::printf("\n%s", io::writeVerilog(r.patch, "patch").c_str());
  return 0;
}
