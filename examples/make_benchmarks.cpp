// make_benchmarks — emits the 20-unit synthetic contest suite as files in
// the ICCAD 2017 Problem A layout, one directory per unit:
//
//   [outdir]/unitNN/F.v          faulty netlist (targets = floating wires)
//   [outdir]/unitNN/G.v          golden netlist
//   [outdir]/unitNN/weight.txt   per-signal base costs
//
// Together with ecopatch_cli this reproduces the full contest workflow:
//
//   ./build/examples/make_benchmarks bench_out
//   ./build/examples/ecopatch_cli -f bench_out/unit06/F.v
//        -g bench_out/unit06/G.v -w bench_out/unit06/weight.txt -o patch.v

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "benchgen/benchgen.h"
#include "io/verilog.h"

int main(int argc, char** argv) {
  using namespace eco;
  const std::string outdir = argc > 1 ? argv[1] : "bench_out";

  for (const auto& spec : benchgen::contestSuite()) {
    const EcoInstance inst = benchgen::generateUnit(spec);
    const std::filesystem::path dir = std::filesystem::path(outdir) / spec.name;
    std::filesystem::create_directories(dir);

    std::vector<std::uint32_t> floating;
    for (std::uint32_t k = 0; k < inst.numTargets(); ++k) {
      floating.push_back(inst.targetPi(k));
    }
    std::ofstream(dir / "F.v") << io::writeVerilogWithFloating(inst.faulty,
                                                               "top", floating);
    std::ofstream(dir / "G.v") << io::writeVerilog(inst.golden, "top");
    std::ofstream(dir / "weight.txt") << io::writeWeights(inst.weights);
    std::printf("%-8s  %u targets, %u faulty gates -> %s\n", spec.name.c_str(),
                inst.numTargets(), inst.faulty.numAnds(),
                dir.string().c_str());
  }
  return 0;
}
