// eco_fuzz — differential fuzzing driver for the ECO engine.
//
//   eco_fuzz --seed 1 --count 1000
//
// Generates seeded randomized instances across all fault-injection modes,
// runs the full EcoOptions differential matrix on each, validates every
// claim with the independent oracle, and shrinks any failure to a minimal
// reproducer.
//
// Options:
//   --seed N          base seed; instance i uses seed N+i (default 1)
//   --count N         number of instances (default 100)
//   --threads N       worker threads for the parallel matrix config
//                     (0 = hardware concurrency; default 0)
//   --plant-bug MODE  corrupt engine results to test the tester:
//                     flip-po (semantic) or misreport-cost (bookkeeping)
//   --out DIR         write shrunk reproducers under DIR (contest format)
//   --no-shrink       report failures without shrinking
//   --max-failures N  stop after N failures (default 1)
//   --check[=LEVEL]   run the invariant-audit layer on every engine run:
//                     bare --check audits at stage boundaries; --check=LEVEL
//                     picks off|stage|paranoid (paranoid adds per-GC solver
//                     audits)
//   --progress N      progress line every N instances (default count/10)
//   --heartbeat S     also emit a progress line after S silent seconds
//                     (default 30; 0 disables)
//   --postmortem FILE dump a flight-recorder postmortem JSON to FILE on a
//                     crash signal or audit failure (see obs/flight_recorder.h)
//   --json FILE       write a machine-readable sweep report
//   --trace FILE      record a Chrome trace_event JSON of the whole sweep
//   --quiet           suppress progress (failures still print)
//
// Exit codes: 0 clean sweep, 1 usage error, 3 discrepancies found.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "check/check.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "qa/fuzz.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: eco_fuzz [--seed N] [--count N] [--threads N] "
               "[--plant-bug flip-po|misreport-cost] [--out DIR] "
               "[--no-shrink] [--max-failures N] [--check[=LEVEL]] "
               "[--progress N] [--heartbeat S] [--postmortem FILE] "
               "[--json FILE] [--trace FILE] [--quiet]\n");
  std::exit(1);
}

std::uint64_t parseU64(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') usage();
  return v;
}

// strtod without the end-pointer check silently maps garbage to 0 (which
// *disables* the heartbeat); reject non-numeric and negative input instead.
double parseSeconds(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v >= 0)) {
    std::fprintf(stderr,
                 "eco_fuzz: expected a non-negative number of seconds, "
                 "got '%s'\n",
                 s);
    usage();
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eco;

  qa::FuzzOptions opt;
  opt.log = stderr;
  opt.heartbeat_seconds = 30;
  std::uint32_t threads = 0;
  bool quiet = false;
  std::uint64_t progress = 0;
  std::string json_path, trace_path, postmortem_path;

  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg("--seed")) {
      opt.seed = parseU64(value());
    } else if (arg("--count")) {
      opt.count = parseU64(value());
    } else if (arg("--threads")) {
      threads = static_cast<std::uint32_t>(parseU64(value()));
    } else if (arg("--plant-bug")) {
      const std::string mode = value();
      if (mode == "flip-po") {
        opt.check.plant_bug = qa::PlantedBug::FlipPatchPolarity;
      } else if (mode == "misreport-cost") {
        opt.check.plant_bug = qa::PlantedBug::MisreportCost;
      } else {
        usage();
      }
    } else if (arg("--out")) {
      opt.reproducer_dir = value();
    } else if (arg("--no-shrink")) {
      opt.shrink = false;
    } else if (arg("--max-failures")) {
      opt.max_failures = static_cast<std::uint32_t>(parseU64(value()));
    } else if (arg("--check")) {
      opt.check.audit_level = check::Level::kStage;
    } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
      const auto level = check::parseLevel(argv[i] + 8);
      if (!level) usage();
      opt.check.audit_level = *level;
    } else if (arg("--progress")) {
      progress = parseU64(value());
    } else if (arg("--heartbeat")) {
      opt.heartbeat_seconds = parseSeconds(value());
    } else if (arg("--postmortem")) {
      postmortem_path = value();
    } else if (arg("--json")) {
      json_path = value();
    } else if (arg("--trace")) {
      trace_path = value();
    } else if (arg("--quiet")) {
      quiet = true;
    } else {
      usage();
    }
  }
  opt.check.matrix = qa::defaultMatrix(threads);
  opt.progress_every = quiet ? 0 : (progress != 0 ? progress : opt.count / 10);
  if (quiet) opt.heartbeat_seconds = 0;
  if (!postmortem_path.empty()) {
    obs::setPostmortemPath(postmortem_path.c_str());
    obs::installCrashHandlers();
  }

  if (!trace_path.empty()) obs::startTrace();
  const qa::FuzzOutcome outcome = qa::runFuzz(opt);
  if (!trace_path.empty()) {
    const obs::TraceDump dump = obs::stopTrace();
    std::string trace_error;
    if (!obs::writeChromeTrace(trace_path, dump, &trace_error)) {
      std::fprintf(stderr, "eco_fuzz: %s\n", trace_error.c_str());
    } else {
      std::fprintf(stderr, "eco_fuzz: trace written to %s (%zu events)\n",
                   trace_path.c_str(), dump.events.size());
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (out) {
      out << qa::fuzzJsonReport(opt, outcome);
    } else {
      std::fprintf(stderr, "eco_fuzz: cannot write '%s'\n", json_path.c_str());
    }
  }

  std::printf(
      "eco_fuzz: %llu instances (seed %llu), %llu rectifiable, "
      "%llu unrectifiable, %llu engine runs, %.2fs (%.1f inst/s), "
      "%llu discrepancies\n",
      static_cast<unsigned long long>(outcome.instances),
      static_cast<unsigned long long>(opt.seed),
      static_cast<unsigned long long>(outcome.rectifiable),
      static_cast<unsigned long long>(outcome.unrectifiable),
      static_cast<unsigned long long>(outcome.engine_runs), outcome.seconds,
      outcome.instancesPerSecond(),
      static_cast<unsigned long long>(outcome.failures));
  for (const qa::FuzzFailure& f : outcome.shrunk_failures) {
    std::printf("  seed %llu shrunk to %u AND gates%s%s\n",
                static_cast<unsigned long long>(f.seed), f.shrunk.faulty_ands,
                f.reproducer_path.empty() ? "" : " -> ",
                f.reproducer_path.c_str());
  }
  return outcome.clean() ? 0 : 3;
}
