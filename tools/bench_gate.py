#!/usr/bin/env python3
"""Perf-regression gate over bench_table2 output.

Compares the engine wall-time geometric mean of a fresh BENCH_table2.json
run against the checked-in baseline (bench/baselines/bench_table2_baseline.json)
and fails when the current geomean regresses by more than the threshold.

Only units present in BOTH files enter the comparison, and each unit must
have succeeded in both — a unit that fails outright is reported as an error
regardless of timing. Per-unit times on shared CI runners are noisy; the
geomean over the pinned subset (plus the generous default threshold) is the
tradeoff between sensitivity and flakiness. Correctness is never gated here:
ctest does that; this gate only watches wall time.

Usage:
  tools/bench_gate.py --current BENCH_table2.json \
      --baseline bench/baselines/bench_table2_baseline.json \
      [--threshold-pct 15]

Re-baselining (after an accepted perf change): run the bench job, download
the BENCH_table2.json artifact from CI (or run the same pinned subset
locally on a quiet machine), copy it to the baseline path, and commit it in
the same PR — with `[bench-rebaseline]` in the commit message or the
`bench-rebaseline` label on the PR to skip the gate for that run.
"""

import argparse
import json
import math
import sys


def unit_times(doc):
    """Returns {unit_name: engine_seconds} for successful units."""
    times = {}
    failed = []
    for unit in doc.get("units", []):
        name = unit.get("name", "?")
        ours = unit.get("ours", {})
        result = ours.get("result", {})
        if not result.get("success", False):
            failed.append(name)
            continue
        seconds = result.get("seconds")
        if isinstance(seconds, (int, float)) and seconds >= 0:
            times[name] = float(seconds)
    return times, failed


def geomean(values, floor_s=1e-4):
    # Clamp tiny times to a floor: a unit finishing in microseconds would
    # otherwise dominate the geomean through timer noise.
    return math.exp(sum(math.log(max(v, floor_s)) for v in values) / len(values))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--threshold-pct", type=float, default=15.0)
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    cur_times, cur_failed = unit_times(current)
    base_times, _ = unit_times(baseline)
    if cur_failed:
        print(f"FAIL: units failed in the current run: {', '.join(cur_failed)}")
        return 1

    shared = sorted(set(cur_times) & set(base_times))
    if not shared:
        print("FAIL: no shared successful units between current and baseline")
        return 1
    missing = sorted(set(base_times) - set(cur_times))
    if missing:
        print(f"WARNING: baseline units missing from current run: {', '.join(missing)}")

    cur_gm = geomean([cur_times[u] for u in shared])
    base_gm = geomean([base_times[u] for u in shared])
    ratio = cur_gm / base_gm
    print(f"units compared: {len(shared)} ({', '.join(shared)})")
    for u in shared:
        print(f"  {u}: baseline {base_times[u]:.4f}s -> current {cur_times[u]:.4f}s "
              f"({cur_times[u] / max(base_times[u], 1e-9):.2f}x)")
    print(f"geomean: baseline {base_gm:.4f}s -> current {cur_gm:.4f}s "
          f"({ratio:.3f}x, threshold {1 + args.threshold_pct / 100:.3f}x)")

    if ratio > 1 + args.threshold_pct / 100:
        print(f"FAIL: engine wall-time geomean regressed by "
              f"{(ratio - 1) * 100:.1f}% (> {args.threshold_pct:.0f}%)")
        print("If this regression is intended, re-baseline: see the module "
              "docstring or DESIGN.md 'SAT core'.")
        return 1
    print("OK: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
