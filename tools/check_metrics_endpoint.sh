#!/usr/bin/env bash
# Smoke-checks the live /metrics endpoint: starts ecopatch_cli with an
# embedded stats server on an ephemeral port, scrapes /metrics and /status
# mid-run, and validates the Prometheus exposition format (0.0.4) plus the
# presence of the SAT conflict counters. Used by the CI tier-1 step; also
# runnable locally:
#
#   tools/check_metrics_endpoint.sh <build-dir>
#
# Exits nonzero when the endpoint is unreachable, malformed, or missing
# the expected series.
set -euo pipefail

BUILD_DIR=${1:-build}
CLI="$BUILD_DIR/examples/ecopatch_cli"
GEN="$BUILD_DIR/examples/make_benchmarks"
[[ -x $CLI && -x $GEN ]] || {
  echo "check_metrics_endpoint: missing $CLI or $GEN (build first)" >&2
  exit 1
}

WORK=$(mktemp -d)
trap 'kill "$CLI_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$GEN" "$WORK" >/dev/null

# unit19 runs for several seconds in Release: long enough to scrape
# mid-flight. --rounds 6 stretches the optimization stage as a buffer on
# fast machines.
"$CLI" -f "$WORK/unit19/F.v" -g "$WORK/unit19/G.v" -w "$WORK/unit19/weight.txt" \
  --metrics-port 0 --rounds 6 --quiet -o /dev/null 2>"$WORK/stderr.txt" &
CLI_PID=$!

# The CLI prints "serving http://127.0.0.1:PORT/metrics" once bound.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\)/metrics.*|\1|p' \
    "$WORK/stderr.txt" | head -n1)
  [[ -n $PORT ]] && break
  kill -0 "$CLI_PID" 2>/dev/null || {
    echo "check_metrics_endpoint: CLI exited before binding" >&2
    cat "$WORK/stderr.txt" >&2
    exit 1
  }
  sleep 0.1
done
[[ -n $PORT ]] || { echo "check_metrics_endpoint: no port announced" >&2; exit 1; }

curl -sf "http://127.0.0.1:$PORT/metrics" -o "$WORK/metrics.txt"
curl -sf "http://127.0.0.1:$PORT/status" -o "$WORK/status.json"

# Exposition format: every line is "# TYPE ecopatch_* counter|gauge|histogram"
# or "name[{labels}] value" with a numeric value.
awk '
  /^# TYPE ecopatch_[a-zA-Z0-9_:]+ (counter|gauge|histogram)$/ { next }
  /^#/ { print "bad comment line: " $0; bad = 1; next }
  {
    if ($0 !~ /^ecopatch_[a-zA-Z0-9_:]+(\{[^}]*\})? -?[0-9+][0-9a-zA-Z_.+-]*$/) {
      print "bad sample line: " $0
      bad = 1
    }
  }
  END { exit bad }
' "$WORK/metrics.txt"

# The scrape happened during (or after) a real engine run: the SAT core
# counters must be present.
grep -q '^# TYPE ecopatch_sat_conflicts_total counter$' "$WORK/metrics.txt"
grep -q '^ecopatch_sat_conflicts_total ' "$WORK/metrics.txt"
grep -q '^ecopatch_peak_rss_bytes ' "$WORK/metrics.txt"
grep -q '"schema":"ecopatch-status"' "$WORK/status.json"

wait "$CLI_PID"
echo "check_metrics_endpoint: OK (port $PORT," \
  "$(wc -l <"$WORK/metrics.txt") exposition lines)"
