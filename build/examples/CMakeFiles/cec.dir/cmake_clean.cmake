file(REMOVE_RECURSE
  "CMakeFiles/cec.dir/cec.cpp.o"
  "CMakeFiles/cec.dir/cec.cpp.o.d"
  "cec"
  "cec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
