# Empty dependencies file for cec.
# This may be replaced when dependencies are built.
