# Empty compiler generated dependencies file for cec.
# This may be replaced when dependencies are built.
