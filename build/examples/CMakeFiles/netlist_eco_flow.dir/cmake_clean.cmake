file(REMOVE_RECURSE
  "CMakeFiles/netlist_eco_flow.dir/netlist_eco_flow.cpp.o"
  "CMakeFiles/netlist_eco_flow.dir/netlist_eco_flow.cpp.o.d"
  "netlist_eco_flow"
  "netlist_eco_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_eco_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
