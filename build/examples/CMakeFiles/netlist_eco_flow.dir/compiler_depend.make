# Empty compiler generated dependencies file for netlist_eco_flow.
# This may be replaced when dependencies are built.
