file(REMOVE_RECURSE
  "CMakeFiles/ecopatch_cli.dir/ecopatch_cli.cpp.o"
  "CMakeFiles/ecopatch_cli.dir/ecopatch_cli.cpp.o.d"
  "ecopatch_cli"
  "ecopatch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecopatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
