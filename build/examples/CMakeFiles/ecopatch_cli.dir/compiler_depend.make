# Empty compiler generated dependencies file for ecopatch_cli.
# This may be replaced when dependencies are built.
