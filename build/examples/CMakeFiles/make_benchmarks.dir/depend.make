# Empty dependencies file for make_benchmarks.
# This may be replaced when dependencies are built.
