file(REMOVE_RECURSE
  "CMakeFiles/make_benchmarks.dir/make_benchmarks.cpp.o"
  "CMakeFiles/make_benchmarks.dir/make_benchmarks.cpp.o.d"
  "make_benchmarks"
  "make_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
