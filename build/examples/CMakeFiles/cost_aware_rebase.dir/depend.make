# Empty dependencies file for cost_aware_rebase.
# This may be replaced when dependencies are built.
