file(REMOVE_RECURSE
  "CMakeFiles/cost_aware_rebase.dir/cost_aware_rebase.cpp.o"
  "CMakeFiles/cost_aware_rebase.dir/cost_aware_rebase.cpp.o.d"
  "cost_aware_rebase"
  "cost_aware_rebase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_aware_rebase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
