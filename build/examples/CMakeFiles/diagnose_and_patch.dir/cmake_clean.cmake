file(REMOVE_RECURSE
  "CMakeFiles/diagnose_and_patch.dir/diagnose_and_patch.cpp.o"
  "CMakeFiles/diagnose_and_patch.dir/diagnose_and_patch.cpp.o.d"
  "diagnose_and_patch"
  "diagnose_and_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_and_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
