# Empty dependencies file for diagnose_and_patch.
# This may be replaced when dependencies are built.
