# Empty dependencies file for map_patch.
# This may be replaced when dependencies are built.
