file(REMOVE_RECURSE
  "CMakeFiles/map_patch.dir/map_patch.cpp.o"
  "CMakeFiles/map_patch.dir/map_patch.cpp.o.d"
  "map_patch"
  "map_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
