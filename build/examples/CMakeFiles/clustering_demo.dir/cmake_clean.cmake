file(REMOVE_RECURSE
  "CMakeFiles/clustering_demo.dir/clustering_demo.cpp.o"
  "CMakeFiles/clustering_demo.dir/clustering_demo.cpp.o.d"
  "clustering_demo"
  "clustering_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
