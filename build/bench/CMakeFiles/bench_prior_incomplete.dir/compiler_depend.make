# Empty compiler generated dependencies file for bench_prior_incomplete.
# This may be replaced when dependencies are built.
