file(REMOVE_RECURSE
  "CMakeFiles/bench_prior_incomplete.dir/bench_prior_incomplete.cpp.o"
  "CMakeFiles/bench_prior_incomplete.dir/bench_prior_incomplete.cpp.o.d"
  "bench_prior_incomplete"
  "bench_prior_incomplete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prior_incomplete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
