# Empty dependencies file for bench_watch_sweep.
# This may be replaced when dependencies are built.
