file(REMOVE_RECURSE
  "CMakeFiles/bench_watch_sweep.dir/bench_watch_sweep.cpp.o"
  "CMakeFiles/bench_watch_sweep.dir/bench_watch_sweep.cpp.o.d"
  "bench_watch_sweep"
  "bench_watch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_watch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
