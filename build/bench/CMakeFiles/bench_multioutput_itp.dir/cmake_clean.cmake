file(REMOVE_RECURSE
  "CMakeFiles/bench_multioutput_itp.dir/bench_multioutput_itp.cpp.o"
  "CMakeFiles/bench_multioutput_itp.dir/bench_multioutput_itp.cpp.o.d"
  "bench_multioutput_itp"
  "bench_multioutput_itp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multioutput_itp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
