# Empty dependencies file for bench_multioutput_itp.
# This may be replaced when dependencies are built.
