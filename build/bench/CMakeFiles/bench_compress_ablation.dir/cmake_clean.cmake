file(REMOVE_RECURSE
  "CMakeFiles/bench_compress_ablation.dir/bench_compress_ablation.cpp.o"
  "CMakeFiles/bench_compress_ablation.dir/bench_compress_ablation.cpp.o.d"
  "bench_compress_ablation"
  "bench_compress_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compress_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
