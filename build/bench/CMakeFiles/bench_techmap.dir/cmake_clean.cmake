file(REMOVE_RECURSE
  "CMakeFiles/bench_techmap.dir/bench_techmap.cpp.o"
  "CMakeFiles/bench_techmap.dir/bench_techmap.cpp.o.d"
  "bench_techmap"
  "bench_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
