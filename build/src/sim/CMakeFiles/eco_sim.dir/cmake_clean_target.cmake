file(REMOVE_RECURSE
  "libeco_sim.a"
)
