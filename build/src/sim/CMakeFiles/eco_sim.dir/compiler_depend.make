# Empty compiler generated dependencies file for eco_sim.
# This may be replaced when dependencies are built.
