file(REMOVE_RECURSE
  "CMakeFiles/eco_sim.dir/sim.cpp.o"
  "CMakeFiles/eco_sim.dir/sim.cpp.o.d"
  "libeco_sim.a"
  "libeco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
