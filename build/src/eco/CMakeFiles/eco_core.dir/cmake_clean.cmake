file(REMOVE_RECURSE
  "CMakeFiles/eco_core.dir/baseline.cpp.o"
  "CMakeFiles/eco_core.dir/baseline.cpp.o.d"
  "CMakeFiles/eco_core.dir/candidates.cpp.o"
  "CMakeFiles/eco_core.dir/candidates.cpp.o.d"
  "CMakeFiles/eco_core.dir/clustering.cpp.o"
  "CMakeFiles/eco_core.dir/clustering.cpp.o.d"
  "CMakeFiles/eco_core.dir/costopt.cpp.o"
  "CMakeFiles/eco_core.dir/costopt.cpp.o.d"
  "CMakeFiles/eco_core.dir/diagnosis.cpp.o"
  "CMakeFiles/eco_core.dir/diagnosis.cpp.o.d"
  "CMakeFiles/eco_core.dir/engine.cpp.o"
  "CMakeFiles/eco_core.dir/engine.cpp.o.d"
  "CMakeFiles/eco_core.dir/localization.cpp.o"
  "CMakeFiles/eco_core.dir/localization.cpp.o.d"
  "CMakeFiles/eco_core.dir/patchgen.cpp.o"
  "CMakeFiles/eco_core.dir/patchgen.cpp.o.d"
  "CMakeFiles/eco_core.dir/rebase.cpp.o"
  "CMakeFiles/eco_core.dir/rebase.cpp.o.d"
  "CMakeFiles/eco_core.dir/rectifiability.cpp.o"
  "CMakeFiles/eco_core.dir/rectifiability.cpp.o.d"
  "CMakeFiles/eco_core.dir/relations.cpp.o"
  "CMakeFiles/eco_core.dir/relations.cpp.o.d"
  "CMakeFiles/eco_core.dir/report.cpp.o"
  "CMakeFiles/eco_core.dir/report.cpp.o.d"
  "CMakeFiles/eco_core.dir/verify.cpp.o"
  "CMakeFiles/eco_core.dir/verify.cpp.o.d"
  "libeco_core.a"
  "libeco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
