
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eco/baseline.cpp" "src/eco/CMakeFiles/eco_core.dir/baseline.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/baseline.cpp.o.d"
  "/root/repo/src/eco/candidates.cpp" "src/eco/CMakeFiles/eco_core.dir/candidates.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/candidates.cpp.o.d"
  "/root/repo/src/eco/clustering.cpp" "src/eco/CMakeFiles/eco_core.dir/clustering.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/clustering.cpp.o.d"
  "/root/repo/src/eco/costopt.cpp" "src/eco/CMakeFiles/eco_core.dir/costopt.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/costopt.cpp.o.d"
  "/root/repo/src/eco/diagnosis.cpp" "src/eco/CMakeFiles/eco_core.dir/diagnosis.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/diagnosis.cpp.o.d"
  "/root/repo/src/eco/engine.cpp" "src/eco/CMakeFiles/eco_core.dir/engine.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/engine.cpp.o.d"
  "/root/repo/src/eco/localization.cpp" "src/eco/CMakeFiles/eco_core.dir/localization.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/localization.cpp.o.d"
  "/root/repo/src/eco/patchgen.cpp" "src/eco/CMakeFiles/eco_core.dir/patchgen.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/patchgen.cpp.o.d"
  "/root/repo/src/eco/rebase.cpp" "src/eco/CMakeFiles/eco_core.dir/rebase.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/rebase.cpp.o.d"
  "/root/repo/src/eco/rectifiability.cpp" "src/eco/CMakeFiles/eco_core.dir/rectifiability.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/rectifiability.cpp.o.d"
  "/root/repo/src/eco/relations.cpp" "src/eco/CMakeFiles/eco_core.dir/relations.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/relations.cpp.o.d"
  "/root/repo/src/eco/report.cpp" "src/eco/CMakeFiles/eco_core.dir/report.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/report.cpp.o.d"
  "/root/repo/src/eco/verify.cpp" "src/eco/CMakeFiles/eco_core.dir/verify.cpp.o" "gcc" "src/eco/CMakeFiles/eco_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aig/CMakeFiles/eco_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/eco_aig_minimize.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/eco_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/eco_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/itp/CMakeFiles/eco_itp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fraig/CMakeFiles/eco_fraig.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/eco_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
