# Empty dependencies file for eco_core.
# This may be replaced when dependencies are built.
