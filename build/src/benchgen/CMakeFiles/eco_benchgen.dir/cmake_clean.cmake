file(REMOVE_RECURSE
  "CMakeFiles/eco_benchgen.dir/benchgen.cpp.o"
  "CMakeFiles/eco_benchgen.dir/benchgen.cpp.o.d"
  "CMakeFiles/eco_benchgen.dir/families.cpp.o"
  "CMakeFiles/eco_benchgen.dir/families.cpp.o.d"
  "libeco_benchgen.a"
  "libeco_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
