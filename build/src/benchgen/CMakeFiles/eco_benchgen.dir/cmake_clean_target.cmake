file(REMOVE_RECURSE
  "libeco_benchgen.a"
)
