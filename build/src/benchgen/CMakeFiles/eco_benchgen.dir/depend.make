# Empty dependencies file for eco_benchgen.
# This may be replaced when dependencies are built.
