file(REMOVE_RECURSE
  "CMakeFiles/eco_techmap.dir/library.cpp.o"
  "CMakeFiles/eco_techmap.dir/library.cpp.o.d"
  "CMakeFiles/eco_techmap.dir/mapper.cpp.o"
  "CMakeFiles/eco_techmap.dir/mapper.cpp.o.d"
  "libeco_techmap.a"
  "libeco_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
