# Empty dependencies file for eco_techmap.
# This may be replaced when dependencies are built.
