file(REMOVE_RECURSE
  "libeco_techmap.a"
)
