file(REMOVE_RECURSE
  "libeco_itp.a"
)
