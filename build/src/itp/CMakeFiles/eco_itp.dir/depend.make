# Empty dependencies file for eco_itp.
# This may be replaced when dependencies are built.
