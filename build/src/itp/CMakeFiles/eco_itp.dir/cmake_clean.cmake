file(REMOVE_RECURSE
  "CMakeFiles/eco_itp.dir/itp.cpp.o"
  "CMakeFiles/eco_itp.dir/itp.cpp.o.d"
  "libeco_itp.a"
  "libeco_itp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_itp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
