file(REMOVE_RECURSE
  "CMakeFiles/eco_fraig.dir/fraig.cpp.o"
  "CMakeFiles/eco_fraig.dir/fraig.cpp.o.d"
  "libeco_fraig.a"
  "libeco_fraig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_fraig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
