# Empty dependencies file for eco_fraig.
# This may be replaced when dependencies are built.
