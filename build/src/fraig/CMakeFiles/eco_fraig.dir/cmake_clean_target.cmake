file(REMOVE_RECURSE
  "libeco_fraig.a"
)
