# Empty compiler generated dependencies file for eco_aig_minimize.
# This may be replaced when dependencies are built.
