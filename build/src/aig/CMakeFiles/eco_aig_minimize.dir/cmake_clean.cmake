file(REMOVE_RECURSE
  "CMakeFiles/eco_aig_minimize.dir/minimize.cpp.o"
  "CMakeFiles/eco_aig_minimize.dir/minimize.cpp.o.d"
  "libeco_aig_minimize.a"
  "libeco_aig_minimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_aig_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
