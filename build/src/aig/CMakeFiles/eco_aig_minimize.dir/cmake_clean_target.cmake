file(REMOVE_RECURSE
  "libeco_aig_minimize.a"
)
