# Empty dependencies file for eco_aig.
# This may be replaced when dependencies are built.
