file(REMOVE_RECURSE
  "CMakeFiles/eco_aig.dir/aig.cpp.o"
  "CMakeFiles/eco_aig.dir/aig.cpp.o.d"
  "CMakeFiles/eco_aig.dir/aig_ops.cpp.o"
  "CMakeFiles/eco_aig.dir/aig_ops.cpp.o.d"
  "libeco_aig.a"
  "libeco_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
