file(REMOVE_RECURSE
  "libeco_aig.a"
)
