# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("aig")
subdirs("sat")
subdirs("cnf")
subdirs("itp")
subdirs("sim")
subdirs("fraig")
subdirs("io")
subdirs("eco")
subdirs("techmap")
subdirs("benchgen")
