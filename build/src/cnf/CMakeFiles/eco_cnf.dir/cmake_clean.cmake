file(REMOVE_RECURSE
  "CMakeFiles/eco_cnf.dir/cnf.cpp.o"
  "CMakeFiles/eco_cnf.dir/cnf.cpp.o.d"
  "libeco_cnf.a"
  "libeco_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
