# Empty dependencies file for eco_cnf.
# This may be replaced when dependencies are built.
