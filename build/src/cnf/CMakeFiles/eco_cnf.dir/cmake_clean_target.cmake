file(REMOVE_RECURSE
  "libeco_cnf.a"
)
