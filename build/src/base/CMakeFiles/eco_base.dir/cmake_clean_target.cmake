file(REMOVE_RECURSE
  "libeco_base.a"
)
