file(REMOVE_RECURSE
  "CMakeFiles/eco_base.dir/rng.cpp.o"
  "CMakeFiles/eco_base.dir/rng.cpp.o.d"
  "CMakeFiles/eco_base.dir/timer.cpp.o"
  "CMakeFiles/eco_base.dir/timer.cpp.o.d"
  "libeco_base.a"
  "libeco_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
