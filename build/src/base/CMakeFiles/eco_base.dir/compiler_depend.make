# Empty compiler generated dependencies file for eco_base.
# This may be replaced when dependencies are built.
