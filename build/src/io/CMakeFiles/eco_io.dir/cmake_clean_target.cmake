file(REMOVE_RECURSE
  "libeco_io.a"
)
