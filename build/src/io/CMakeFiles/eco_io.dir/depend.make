# Empty dependencies file for eco_io.
# This may be replaced when dependencies are built.
