
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/aiger.cpp" "src/io/CMakeFiles/eco_io.dir/aiger.cpp.o" "gcc" "src/io/CMakeFiles/eco_io.dir/aiger.cpp.o.d"
  "/root/repo/src/io/blif.cpp" "src/io/CMakeFiles/eco_io.dir/blif.cpp.o" "gcc" "src/io/CMakeFiles/eco_io.dir/blif.cpp.o.d"
  "/root/repo/src/io/instance_io.cpp" "src/io/CMakeFiles/eco_io.dir/instance_io.cpp.o" "gcc" "src/io/CMakeFiles/eco_io.dir/instance_io.cpp.o.d"
  "/root/repo/src/io/verilog.cpp" "src/io/CMakeFiles/eco_io.dir/verilog.cpp.o" "gcc" "src/io/CMakeFiles/eco_io.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aig/CMakeFiles/eco_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/eco_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
