file(REMOVE_RECURSE
  "CMakeFiles/eco_io.dir/aiger.cpp.o"
  "CMakeFiles/eco_io.dir/aiger.cpp.o.d"
  "CMakeFiles/eco_io.dir/blif.cpp.o"
  "CMakeFiles/eco_io.dir/blif.cpp.o.d"
  "CMakeFiles/eco_io.dir/instance_io.cpp.o"
  "CMakeFiles/eco_io.dir/instance_io.cpp.o.d"
  "CMakeFiles/eco_io.dir/verilog.cpp.o"
  "CMakeFiles/eco_io.dir/verilog.cpp.o.d"
  "libeco_io.a"
  "libeco_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
