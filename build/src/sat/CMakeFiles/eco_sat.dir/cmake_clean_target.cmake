file(REMOVE_RECURSE
  "libeco_sat.a"
)
