# Empty compiler generated dependencies file for eco_sat.
# This may be replaced when dependencies are built.
