file(REMOVE_RECURSE
  "CMakeFiles/eco_sat.dir/solver.cpp.o"
  "CMakeFiles/eco_sat.dir/solver.cpp.o.d"
  "libeco_sat.a"
  "libeco_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
