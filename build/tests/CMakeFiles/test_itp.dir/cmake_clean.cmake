file(REMOVE_RECURSE
  "CMakeFiles/test_itp.dir/test_itp.cpp.o"
  "CMakeFiles/test_itp.dir/test_itp.cpp.o.d"
  "test_itp"
  "test_itp.pdb"
  "test_itp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_itp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
