# Empty compiler generated dependencies file for test_itp.
# This may be replaced when dependencies are built.
