file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fraig.dir/test_sim_fraig.cpp.o"
  "CMakeFiles/test_sim_fraig.dir/test_sim_fraig.cpp.o.d"
  "test_sim_fraig"
  "test_sim_fraig.pdb"
  "test_sim_fraig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fraig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
