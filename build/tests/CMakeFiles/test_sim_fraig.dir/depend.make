# Empty dependencies file for test_sim_fraig.
# This may be replaced when dependencies are built.
