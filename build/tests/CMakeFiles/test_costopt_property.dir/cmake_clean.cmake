file(REMOVE_RECURSE
  "CMakeFiles/test_costopt_property.dir/test_costopt_property.cpp.o"
  "CMakeFiles/test_costopt_property.dir/test_costopt_property.cpp.o.d"
  "test_costopt_property"
  "test_costopt_property.pdb"
  "test_costopt_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costopt_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
