file(REMOVE_RECURSE
  "CMakeFiles/test_integration_flow.dir/test_integration_flow.cpp.o"
  "CMakeFiles/test_integration_flow.dir/test_integration_flow.cpp.o.d"
  "test_integration_flow"
  "test_integration_flow.pdb"
  "test_integration_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
