# Empty dependencies file for test_integration_flow.
# This may be replaced when dependencies are built.
