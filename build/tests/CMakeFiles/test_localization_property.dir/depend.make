# Empty dependencies file for test_localization_property.
# This may be replaced when dependencies are built.
