file(REMOVE_RECURSE
  "CMakeFiles/test_localization_property.dir/test_localization_property.cpp.o"
  "CMakeFiles/test_localization_property.dir/test_localization_property.cpp.o.d"
  "test_localization_property"
  "test_localization_property.pdb"
  "test_localization_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_localization_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
