file(REMOVE_RECURSE
  "CMakeFiles/test_rectifiability.dir/test_rectifiability.cpp.o"
  "CMakeFiles/test_rectifiability.dir/test_rectifiability.cpp.o.d"
  "test_rectifiability"
  "test_rectifiability.pdb"
  "test_rectifiability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rectifiability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
