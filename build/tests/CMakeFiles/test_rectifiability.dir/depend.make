# Empty dependencies file for test_rectifiability.
# This may be replaced when dependencies are built.
