# Empty compiler generated dependencies file for test_proof.
# This may be replaced when dependencies are built.
