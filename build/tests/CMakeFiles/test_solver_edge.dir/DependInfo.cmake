
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_solver_edge.cpp" "tests/CMakeFiles/test_solver_edge.dir/test_solver_edge.cpp.o" "gcc" "tests/CMakeFiles/test_solver_edge.dir/test_solver_edge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eco/CMakeFiles/eco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/eco_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/techmap/CMakeFiles/eco_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/eco_io.dir/DependInfo.cmake"
  "/root/repo/build/src/fraig/CMakeFiles/eco_fraig.dir/DependInfo.cmake"
  "/root/repo/build/src/itp/CMakeFiles/eco_itp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cnf/CMakeFiles/eco_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/eco_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/eco_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/eco_base.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/eco_aig_minimize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
