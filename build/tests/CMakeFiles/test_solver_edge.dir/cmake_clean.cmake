file(REMOVE_RECURSE
  "CMakeFiles/test_solver_edge.dir/test_solver_edge.cpp.o"
  "CMakeFiles/test_solver_edge.dir/test_solver_edge.cpp.o.d"
  "test_solver_edge"
  "test_solver_edge.pdb"
  "test_solver_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
