# Empty dependencies file for test_solver_edge.
# This may be replaced when dependencies are built.
