# Empty compiler generated dependencies file for test_eco_modules.
# This may be replaced when dependencies are built.
