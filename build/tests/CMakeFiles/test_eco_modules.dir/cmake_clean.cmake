file(REMOVE_RECURSE
  "CMakeFiles/test_eco_modules.dir/test_eco_modules.cpp.o"
  "CMakeFiles/test_eco_modules.dir/test_eco_modules.cpp.o.d"
  "test_eco_modules"
  "test_eco_modules.pdb"
  "test_eco_modules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eco_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
