file(REMOVE_RECURSE
  "CMakeFiles/test_eco_engine.dir/test_eco_engine.cpp.o"
  "CMakeFiles/test_eco_engine.dir/test_eco_engine.cpp.o.d"
  "test_eco_engine"
  "test_eco_engine.pdb"
  "test_eco_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eco_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
