# Empty dependencies file for test_eco_engine.
# This may be replaced when dependencies are built.
