# Empty dependencies file for test_techmap.
# This may be replaced when dependencies are built.
