file(REMOVE_RECURSE
  "CMakeFiles/test_techmap.dir/test_techmap.cpp.o"
  "CMakeFiles/test_techmap.dir/test_techmap.cpp.o.d"
  "test_techmap"
  "test_techmap.pdb"
  "test_techmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
