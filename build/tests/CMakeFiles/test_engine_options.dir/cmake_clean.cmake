file(REMOVE_RECURSE
  "CMakeFiles/test_engine_options.dir/test_engine_options.cpp.o"
  "CMakeFiles/test_engine_options.dir/test_engine_options.cpp.o.d"
  "test_engine_options"
  "test_engine_options.pdb"
  "test_engine_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
