# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_aig[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_itp[1]_include.cmake")
include("/root/repo/build/tests/test_sim_fraig[1]_include.cmake")
include("/root/repo/build/tests/test_cnf[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_eco_engine[1]_include.cmake")
include("/root/repo/build/tests/test_eco_modules[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_benchgen[1]_include.cmake")
include("/root/repo/build/tests/test_integration_flow[1]_include.cmake")
include("/root/repo/build/tests/test_proof[1]_include.cmake")
include("/root/repo/build/tests/test_rectifiability[1]_include.cmake")
include("/root/repo/build/tests/test_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_aiger[1]_include.cmake")
include("/root/repo/build/tests/test_blif[1]_include.cmake")
include("/root/repo/build/tests/test_costopt_property[1]_include.cmake")
include("/root/repo/build/tests/test_instance_io[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_solver_edge[1]_include.cmake")
include("/root/repo/build/tests/test_engine_options[1]_include.cmake")
include("/root/repo/build/tests/test_diagnosis[1]_include.cmake")
include("/root/repo/build/tests/test_techmap[1]_include.cmake")
include("/root/repo/build/tests/test_workspace[1]_include.cmake")
include("/root/repo/build/tests/test_localization_property[1]_include.cmake")
